"""Run every registered sweep at full axes through the orchestrator.

Writes the classic text report to results/experiments_full.txt and one
machine-readable BENCH_<figure>.json per figure to results/bench/ (see
docs/BENCHMARKS.md for the schema).  Completed sweep points are cached
under results/bench/.cache, so an interrupted or repeated run only pays
for points that have not been measured under the current code version.
"""

import argparse
import os
import time

from repro.bench.orchestrator import (
    build_meta,
    render_runs_text,
    run_figures,
    write_runs,
)
from repro.bench.resultstore import ResultStore


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figures", nargs="*", help="sweeps to run "
                        "(default: all; see 'twochains bench list')")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument("--out", default="results/bench")
    parser.add_argument("--report", default="results/experiments_full.txt")
    args = parser.parse_args()

    t0 = time.time()
    store = ResultStore(os.path.join(args.out, ".cache"))
    runs = run_figures(args.figures or None, fast=False, jobs=args.jobs,
                       store=store, log=print)
    meta = build_meta(fast=False, smoke=False, jobs=args.jobs)
    paths = write_runs(runs, args.out, meta)
    text = render_runs_text(runs)
    os.makedirs(os.path.dirname(args.report), exist_ok=True)
    with open(args.report, "w") as f:
        f.write(text + "\n")
    print(text, flush=True)
    for path in paths:
        print(f"wrote {path}")
    print(f"DONE in {time.time() - t0:.0f}s "
          f"({store.hits} cached, {store.misses} measured)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
