"""Run every figure at full sweep size and save the report."""
import time
from repro.bench import ALL_FIGURES
from repro.bench.report import render_figure

out = []
for name, fn in ALL_FIGURES.items():
    t0 = time.time()
    result = fn(fast=False)
    txt = render_figure(result)
    out.append(txt + f"\n[{time.time()-t0:.0f}s]\n")
    print(txt, flush=True)
    print(f"[{time.time()-t0:.0f}s]", flush=True)
with open("results/experiments_full.txt", "w") as f:
    f.write("\n".join(out))
print("DONE")
