"""The process-wide sim-time metrics registry: counters, gauges, HDRs.

Where :mod:`.tracer` answers *when* things happened (spans on a
timeline), this module answers *how much* and *how bad*: monotonic
counters, last-value gauges with sim-time-weighted means, and HDR-style
log-bucketed histograms with exact-count percentile queries
(p50/p90/p99/p99.9/max).  Everything is timestamped in **simulated**
nanoseconds off the DES clock — nothing here reads wall-clock time —
so a metrics snapshot is a deterministic pure function of the seed and
sweep point.

The hot-path contract is identical to the tracer's: **disabled metrics
cost exactly one attribute check**::

    from ..obs.metrics import METRICS as _M
    ...
    if _M.enabled:
        _M.count(f"tc_am_sends_total|node={nid}", now)

Metric keys
-----------

A metric is addressed by a flat string key ``name|label=value|...`` with
labels in a fixed order chosen by the call site (``node`` first, then
anything else).  The name carries the Prometheus family name directly
(counters end in ``_total``); the export layer splits the key back into
``family{label="value"}`` pairs.  See docs/METRICS.md for the full name
catalogue.

Stability
---------

Most metrics are *stable*: bit-identical across ``--jobs`` settings and
fork vs ``--no-fork`` world reuse, and therefore safe to embed in
``BENCH_<figure>.json`` ``meta.metrics`` (which the determinism tests
require to be byte-identical).  A few are *unstable* — the per-tier VM
instruction split depends on host-side trace-JIT profile counters that
survive :meth:`World.restore`, so a pooled (forked) world can engage the
trace tier earlier than a fresh one.  Unstable metrics are emitted with
``stable=False``; they still appear in Perfetto counter tracks and the
Prometheus dump, but :meth:`MetricsRegistry.snapshot` excludes them when
``stable_only=True`` (the default for benchmark meta).

Histogram buckets
-----------------

:class:`Histogram` uses ``math.frexp`` octaves subdivided into
``NSUB = 64`` linear sub-buckets, i.e. a relative bucket width of
1/64 of the octave base: the midpoint representative is within ~0.8%
of any recorded value, while percentile *counts* are exact (each sample
lands in exactly one bucket and ranks are walked over true counts).
Non-positive values clamp into a dedicated zero bucket.  Reported
percentiles are additionally clamped into ``[min, max]`` of the observed
samples, so single-sample histograms report that sample exactly.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from .tracer import PID_SIM, node_pid

#: Linear sub-buckets per frexp octave (power of two for cheap math).
NSUB = 64

#: Index reserved for non-positive values.  Values below 1.0 produce
#: *negative* regular indices (frexp exponents reach -1074), so the
#: sentinel sits far beneath any index a float can generate.
ZERO_BUCKET = -(1 << 20)

#: Percentiles reported by summaries, as (json key, q).
PERCENTILES = ((50.0, "p50"), (90.0, "p90"), (99.0, "p99"), (99.9, "p999"))


def bucket_index(value: float) -> int:
    """Bucket index of ``value``; non-positive values share ``ZERO_BUCKET``."""
    if value <= 0.0:
        return ZERO_BUCKET
    m, e = math.frexp(value)  # value = m * 2**e with m in [0.5, 1)
    sub = int((m - 0.5) * (2 * NSUB))
    if sub >= NSUB:  # m == 1.0 - eps rounding guard
        sub = NSUB - 1
    return e * NSUB + sub


def bucket_mid(index: int) -> float:
    """Midpoint representative value of bucket ``index``."""
    if index == ZERO_BUCKET:
        return 0.0
    e, sub = divmod(index, NSUB)  # divmod floors, so negatives decode too
    return math.ldexp(0.5 + (sub + 0.5) / (2 * NSUB), e)


def bucket_upper(index: int) -> float:
    """Exclusive upper edge of bucket ``index`` (Prometheus ``le``)."""
    if index == ZERO_BUCKET:
        return 0.0
    e, sub = divmod(index, NSUB)
    return math.ldexp(0.5 + (sub + 1) / (2 * NSUB), e)


class Counter:
    """Monotonic counter with a cumulative (ts, value) sample series."""

    __slots__ = ("value", "stable", "samples")

    def __init__(self, stable: bool = True) -> None:
        self.value: float = 0
        self.stable = stable
        # (ts_ns, cumulative value) per increment — feeds counter tracks.
        self.samples: list[tuple[float, float]] = []


class Gauge:
    """Last-value gauge with min/max and a sim-time-weighted integral.

    The time-weighted mean over the sampled window is
    ``integral / (t_last - t_first)``; each sample's value is weighted by
    how long it remained current.  The final sample carries zero weight
    (its holding time is unknown), except when it is the only one.
    """

    __slots__ = ("value", "vmin", "vmax", "integral", "t_first", "t_last",
                 "stable", "samples")

    def __init__(self, stable: bool = True) -> None:
        self.value = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.integral = 0.0
        self.t_first: Optional[float] = None
        self.t_last = 0.0
        self.stable = stable
        self.samples: list[tuple[float, float]] = []

    def mean(self) -> float:
        span = self.t_last - (self.t_first or 0.0)
        if self.t_first is None:
            return 0.0
        if span <= 0.0:
            return self.value
        return self.integral / span


class Histogram:
    """HDR-style log-bucketed histogram with exact counts per bucket."""

    __slots__ = ("buckets", "count", "sum", "vmin", "vmax", "stable")

    def __init__(self, stable: bool = True) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.stable = stable

    def percentile(self, q: float) -> Optional[float]:
        """Exact-rank percentile: the representative value of the bucket
        holding the ``ceil(q/100 * count)``-th smallest sample, clamped
        into ``[min, max]``."""
        return percentile_from_buckets(self.buckets, self.count, q,
                                       self.vmin, self.vmax)


def percentile_from_buckets(buckets: dict[int, int], count: int, q: float,
                            vmin: float, vmax: float) -> Optional[float]:
    """Rank-walk percentile over ``{bucket_index: count}`` buckets."""
    if count <= 0:
        return None
    rank = max(1, math.ceil(q / 100.0 * count))
    if rank > count:
        rank = count
    cum = 0
    for idx in sorted(buckets):
        cum += buckets[idx]
        if cum >= rank:
            return min(max(bucket_mid(idx), vmin), vmax)
    return vmax  # unreachable unless counts disagree; stay defensive


class MetricsRegistry:
    """Process-wide metric store.  ``enabled`` gates every emission."""

    __slots__ = ("enabled", "counters", "gauges", "hists", "gen")

    def __init__(self) -> None:
        self.enabled = False
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.hists: dict[str, Histogram] = {}
        #: Generation counter, bumped on every clear.  Forked DES shard
        #: workers (sim/procshard.py) carry a copy of this registry; the
        #: coordinator ships its ``gen`` with each run so a worker can
        #: detect that the parent registry was cleared after the fork and
        #: drop its own stale copy instead of merging it back.
        self.gen = 0

    # -- lifecycle -------------------------------------------------------
    def attach(self, clear: bool = True) -> None:
        """Enable recording (optionally dropping any prior metrics)."""
        if clear:
            self.clear()
        self.enabled = True

    def detach(self) -> None:
        """Stop recording; already-captured metrics stay readable."""
        self.enabled = False

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.hists.clear()
        self.gen += 1

    @contextmanager
    def capture(self) -> Iterator["MetricsRegistry"]:
        """``with METRICS.capture(): ...`` — attach, then detach."""
        self.attach()
        try:
            yield self
        finally:
            self.detach()

    # -- emission (hot paths; call sites pre-gate on ``enabled``) --------
    def count(self, key: str, ts: float, n: float = 1,
              stable: bool = True) -> None:
        """Add ``n`` to counter ``key`` at sim time ``ts``."""
        c = self.counters.get(key)
        if c is None:
            c = self.counters[key] = Counter(stable)
        c.value += n
        c.samples.append((ts, c.value))

    def sample(self, key: str, ts: float, value: float,
               stable: bool = True) -> None:
        """Record gauge ``key`` = ``value`` at sim time ``ts``."""
        g = self.gauges.get(key)
        if g is None:
            g = self.gauges[key] = Gauge(stable)
        if g.t_first is None:
            g.t_first = ts
        else:
            dt = ts - g.t_last
            if dt > 0.0:  # clocks restart across worlds within one point
                g.integral += g.value * dt
        g.value = value
        g.t_last = ts
        if value < g.vmin:
            g.vmin = value
        if value > g.vmax:
            g.vmax = value
        g.samples.append((ts, value))

    def observe(self, key: str, value: float, stable: bool = True) -> None:
        """Record one ``value`` into histogram ``key``."""
        h = self.hists.get(key)
        if h is None:
            h = self.hists[key] = Histogram(stable)
        idx = bucket_index(value)
        h.buckets[idx] = h.buckets.get(idx, 0) + 1
        h.count += 1
        h.sum += value
        if value < h.vmin:
            h.vmin = value
        if value > h.vmax:
            h.vmax = value

    # -- snapshots -------------------------------------------------------
    def snapshot(self, stable_only: bool = False) -> dict:
        """Mergeable, JSON-safe dump of every metric's aggregate state.

        Sample series are *not* included (they feed Perfetto counter
        tracks straight off the live registry); snapshots are compact
        enough to store per sweep point in the result cache.
        """
        counters = {}
        for k in sorted(self.counters):
            c = self.counters[k]
            if stable_only and not c.stable:
                continue
            counters[k] = [c.value, c.stable]
        gauges = {}
        for k in sorted(self.gauges):
            g = self.gauges[k]
            if stable_only and not g.stable:
                continue
            gauges[k] = [g.value, g.vmin, g.vmax, g.integral,
                         (g.t_last - g.t_first) if g.t_first is not None
                         else 0.0,
                         len(g.samples), g.stable]
        hists = {}
        for k in sorted(self.hists):
            h = self.hists[k]
            if stable_only and not h.stable:
                continue
            hists[k] = {"count": h.count, "sum": h.sum,
                        "min": h.vmin if h.count else None,
                        "max": h.vmax if h.count else None,
                        "buckets": {str(i): h.buckets[i]
                                    for i in sorted(h.buckets)},
                        "stable": h.stable}
        return {"counters": counters, "gauges": gauges, "hists": hists}

    # -- cross-process merge (process shard backend) ---------------------
    def dump(self, keys: "set[tuple[str, str]] | None" = None) -> dict:
        """Raw instrument objects (not rendered values), keyed by kind.

        With ``keys`` (a set of ``(kind, name)``), only those instruments
        are included — the shard workers ship the instruments they
        actually touched since forking.  The objects are plain
        ``__slots__`` holders and pickle as-is.
        """
        if keys is None:
            return {"counters": dict(self.counters),
                    "gauges": dict(self.gauges),
                    "hists": dict(self.hists)}
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "hists": {}}
        pools = {"counters": self.counters, "gauges": self.gauges,
                 "hists": self.hists}
        for kind, name in keys:
            obj = pools[kind].get(name)
            if obj is not None:
                out[kind][name] = obj
        return out

    def absorb_dump(self, d: dict) -> None:
        """Merge a worker's :meth:`dump` by **whole-key replacement**.

        Exactness rests on single-writer keys: after a shard worker
        forks, every metric key is mutated by at most one process (all
        instrumented layers tag keys with their node / src-node, and a
        node lives on exactly one shard), so the worker's instrument is
        byte-for-byte the instrument a single-process run would hold, and
        replacing the coordinator's stale fork-time copy is an exact
        merge — no double counting, no gauge-integral stitching.
        """
        self.counters.update(d.get("counters", ()))
        self.gauges.update(d.get("gauges", ()))
        self.hists.update(d.get("hists", ()))

    # -- inspection ------------------------------------------------------
    def series(self) -> list[tuple[str, str, list[tuple[float, float]]]]:
        """All (kind, key, samples) time series with at least one point,
        key-sorted — the feed for Perfetto counter tracks."""
        out: list[tuple[str, str, list[tuple[float, float]]]] = []
        for k in sorted(self.counters):
            s = self.counters[k].samples
            if s:
                out.append(("counter", k, s))
        for k in sorted(self.gauges):
            s = self.gauges[k].samples
            if s:
                out.append(("gauge", k, s))
        return out

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.hists)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MetricsRegistry(enabled={self.enabled}, "
                f"counters={len(self.counters)}, gauges={len(self.gauges)}, "
                f"hists={len(self.hists)})")


#: The process-wide registry every instrumented layer reports into.
METRICS = MetricsRegistry()


# -- snapshot algebra ----------------------------------------------------

def merge_snapshots(snaps: list[dict]) -> dict:
    """Merge per-point snapshots (in sweep order) into one figure-level
    snapshot: counters add, gauge integrals/windows add (last value is
    the final snapshot's), histogram buckets add."""
    counters: dict[str, list] = {}
    gauges: dict[str, list] = {}
    hists: dict[str, dict] = {}
    for snap in snaps:
        if not snap:
            continue
        for k, (v, stable) in snap.get("counters", {}).items():
            cur = counters.get(k)
            if cur is None:
                counters[k] = [v, stable]
            else:
                cur[0] += v
        for k, (last, vmin, vmax, integral, span, n, stable) in \
                snap.get("gauges", {}).items():
            cur = gauges.get(k)
            if cur is None:
                gauges[k] = [last, vmin, vmax, integral, span, n, stable]
            else:
                cur[0] = last
                cur[1] = min(cur[1], vmin)
                cur[2] = max(cur[2], vmax)
                cur[3] += integral
                cur[4] += span
                cur[5] += n
        for k, h in snap.get("hists", {}).items():
            cur = hists.get(k)
            if cur is None:
                hists[k] = {"count": h["count"], "sum": h["sum"],
                            "min": h["min"], "max": h["max"],
                            "buckets": dict(h["buckets"]),
                            "stable": h["stable"]}
            else:
                cur["count"] += h["count"]
                cur["sum"] += h["sum"]
                if h["min"] is not None:
                    cur["min"] = (h["min"] if cur["min"] is None
                                  else min(cur["min"], h["min"]))
                if h["max"] is not None:
                    cur["max"] = (h["max"] if cur["max"] is None
                                  else max(cur["max"], h["max"]))
                for i, n in h["buckets"].items():
                    cur["buckets"][i] = cur["buckets"].get(i, 0) + n
    return {"counters": {k: counters[k] for k in sorted(counters)},
            "gauges": {k: gauges[k] for k in sorted(gauges)},
            "hists": {k: hists[k] for k in sorted(hists)}}


def _round(v: float) -> Any:
    if isinstance(v, int):
        return v
    if v != v or v in (math.inf, -math.inf):  # NaN / inf: JSON-hostile
        return None
    r = round(v, 3)
    return int(r) if r == int(r) else r


def metrics_block(snap: dict) -> dict:
    """The presentation form embedded as ``meta.metrics`` in
    ``BENCH_<figure>.json``: counters as totals, gauges as
    last/min/max/mean summaries, histograms as count/sum/min/max plus
    p50/p90/p99/p99.9."""
    counters = {k: _round(v) for k, (v, _s) in snap.get("counters", {}).items()}
    gauges = {}
    for k, (last, vmin, vmax, integral, span, n, _s) in \
            snap.get("gauges", {}).items():
        mean = integral / span if span > 0.0 else last
        gauges[k] = {"last": _round(last), "min": _round(vmin),
                     "max": _round(vmax), "mean": _round(mean),
                     "samples": n}
    hists = {}
    for k, h in snap.get("hists", {}).items():
        buckets = {int(i): n for i, n in h["buckets"].items()}
        entry = {"count": h["count"], "sum": _round(h["sum"]),
                 "min": _round(h["min"]) if h["min"] is not None else None,
                 "max": _round(h["max"]) if h["max"] is not None else None}
        for q, label in PERCENTILES:
            p = percentile_from_buckets(buckets, h["count"], q,
                                        h["min"] if h["min"] is not None
                                        else 0.0,
                                        h["max"] if h["max"] is not None
                                        else 0.0)
            entry[label] = _round(p) if p is not None else None
        hists[k] = entry
    return {"counters": counters, "gauges": gauges, "histograms": hists}


# -- key handling --------------------------------------------------------

def split_key(key: str) -> tuple[str, dict[str, str]]:
    """``"name|a=1|b=x"`` → ``("name", {"a": "1", "b": "x"})``."""
    parts = key.split("|")
    labels = {}
    for part in parts[1:]:
        k, _, v = part.partition("=")
        labels[k] = v
    return parts[0], labels


def _label_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
    return "{" + inner + "}"


# -- Prometheus text exposition ------------------------------------------

def to_prometheus(snap: dict) -> str:
    """Render a snapshot in Prometheus text exposition format (0.0.4).

    Counters keep their ``_total`` family names; gauges export the last
    sampled value; histograms export classic cumulative
    ``_bucket{le=...}`` series over the occupied bucket edges plus
    ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    seen_family: set[str] = set()

    def head(family: str, kind: str, help_text: str) -> None:
        if family not in seen_family:
            seen_family.add(family)
            lines.append(f"# HELP {family} {help_text}")
            lines.append(f"# TYPE {family} {kind}")

    for key, (value, _stable) in snap.get("counters", {}).items():
        family, labels = split_key(key)
        head(family, "counter", "two-chains simulated counter")
        lines.append(f"{family}{_label_str(labels)} {fmt_value(value)}")
    for key, (last, _mn, _mx, _integ, _span, _n, _stable) in \
            snap.get("gauges", {}).items():
        family, labels = split_key(key)
        head(family, "gauge", "two-chains simulated gauge (last value)")
        lines.append(f"{family}{_label_str(labels)} {fmt_value(last)}")
    for key, h in snap.get("hists", {}).items():
        family, labels = split_key(key)
        head(family, "histogram", "two-chains simulated histogram")
        cum = 0
        for idx in sorted(int(i) for i in h["buckets"]):
            cum += h["buckets"][str(idx)]
            le = fmt_value(bucket_upper(idx))
            ll = _label_str({**labels, "le": le})
            lines.append(f"{family}_bucket{ll} {cum}")
        ll = _label_str({**labels, "le": "+Inf"})
        lines.append(f"{family}_bucket{ll} {h['count']}")
        lines.append(f"{family}_sum{_label_str(labels)} "
                     f"{fmt_value(h['sum'])}")
        lines.append(f"{family}_count{_label_str(labels)} {h['count']}")
    return "\n".join(lines) + "\n"


def fmt_value(v: float) -> str:
    """Shortest faithful decimal for a sample value."""
    if isinstance(v, int) or (isinstance(v, float) and v == int(v)
                              and abs(v) < 1e15):
        return str(int(v))
    return repr(float(v))


def parse_prometheus(text: str) -> dict[str, dict]:
    """Minimal exposition-format parser (validation aid, not a client).

    Returns ``{family: {"type": str, "samples": [(name, labels, value)]}}``
    and raises :class:`ValueError` on lines that fit neither a comment,
    a blank, nor a sample.
    """
    families: dict[str, dict] = {}
    typed: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                typed[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        # sample: name{labels} value  |  name value
        if "{" in line:
            name, rest = line.split("{", 1)
            labelpart, rest = rest.split("}", 1)
            labels = {}
            for item in filter(None, labelpart.split(",")):
                k, _, v = item.partition("=")
                if not (v.startswith('"') and v.endswith('"')):
                    raise ValueError(f"line {lineno}: unquoted label {item!r}")
                labels[k.strip()] = v[1:-1]
            value_str = rest.strip()
        else:
            try:
                name, value_str = line.rsplit(None, 1)
            except ValueError:
                raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        if value_str == "+Inf":
            value = math.inf
        else:
            try:
                value = float(value_str)
            except ValueError:
                raise ValueError(f"line {lineno}: bad value {value_str!r}")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in typed:
                family = name[:-len(suffix)]
                break
        entry = families.setdefault(
            family, {"type": typed.get(family, ""), "samples": []})
        entry["type"] = typed.get(family, entry["type"])
        entry["samples"].append((name, labels, value))
    return families


# -- Perfetto counter-track feed -----------------------------------------

def counter_track_events(registry: Optional[MetricsRegistry] = None,
                         ) -> list[tuple]:
    """Tracer-style event tuples (``ph: "C"``) for every counter/gauge
    series, ready to merge into a Perfetto export.

    A ``node=<n>`` label routes the track onto that node's pid (the
    label is dropped from the display name); everything else lands on
    the simulator pid.  Counter tracks plot the cumulative value.
    """
    reg = registry if registry is not None else METRICS
    events: list[tuple] = []
    for _kind, key, samples in reg.series():
        family, labels = split_key(key)
        node = labels.pop("node", None)
        pid = node_pid(int(node)) if node is not None else PID_SIM
        name = family
        if labels:
            name += "{" + ",".join(f"{k}={v}"
                                   for k, v in sorted(labels.items())) + "}"
        for ts, value in samples:
            events.append(("C", pid, 0, name, ts, 0.0, {"value": value}))
    return events


# -- figure-level collection (CLI back-end) ------------------------------

def collect_figure_metrics(figure: str, point_index: int = 0,
                           fast: bool = True) -> tuple[dict, dict]:
    """Run one sweep point of ``figure`` with metrics enabled and return
    ``(snapshot, info)``.  Mirrors :func:`..obs.perfetto.export_figure_trace`."""
    from ..bench.figures import full_registry

    registry = full_registry()
    if figure not in registry:
        raise ValueError(f"unknown figure {figure!r}; choices: "
                         f"{', '.join(registry)}")
    spec = registry[figure]
    points = spec.points(fast=fast)
    if not 0 <= point_index < len(points):
        raise ValueError(f"{figure} has {len(points)} points; "
                         f"index {point_index} is out of range")
    params = points[point_index]
    with METRICS.capture():
        spec.point(**params)
    snap = METRICS.snapshot()
    info = {
        "figure": figure,
        "params": params,
        "counters": len(snap["counters"]),
        "gauges": len(snap["gauges"]),
        "histograms": len(snap["hists"]),
    }
    return snap, info
