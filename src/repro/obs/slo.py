"""Health indicators and the ``bench diff --health`` regression gate.

The wall-clock gate answers "did the simulator get slower?"; this layer
answers "did the *modelled system* get sicker?" by distilling each
``BENCH_<figure>.json`` ``meta.metrics`` block into a handful of named,
direction-aware indicators:

``fc_stall_ns_per_send``
    Simulated nanoseconds the sender spent blocked in
    ``Connection._wait_bank_free`` per active-message send
    (``tc_fc_stall_ns_total / tc_am_sends_total``).  Lower is better; a
    jump means flow control is throttling the injection path.
``guard_bail_rate``
    Trace-JIT guard bail-outs per trace dispatch, from
    ``meta.sim_throughput``.  Lower is better; a jump means compiled
    traces stopped matching the workload.
``mb_dispatch_p99_ns``
    Worst per-node p99 of the mailbox dispatch-latency histogram
    (``tc_mb_dispatch_ns``).  Lower is better.
``cache_hit_rate_<level>``
    Worst per-node time-weighted mean of the per-level cache hit-rate
    gauges (``tc_cache_hit_rate``).  Higher is better.

Both sides must carry the indicator for it to be compared; one-sided
indicators are reported as notes, never as regressions, so old payloads
(schema < 2, no ``meta.metrics``) diff cleanly against new ones.
Relative deltas below a per-indicator absolute floor are ignored — a
hit rate drifting from 0.0001 to 0.0002 doubles but means nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: better-direction per indicator name (prefix match for labelled ones).
HEALTH_DIRECTIONS = {
    "fc_stall_ns_per_send": "lower",
    "guard_bail_rate": "lower",
    "mb_dispatch_p99_ns": "lower",
    "cache_hit_rate": "higher",
}

#: absolute-delta floor below which a relative change is noise.
HEALTH_FLOORS = {
    "fc_stall_ns_per_send": 1.0,     # ns per send
    "guard_bail_rate": 0.005,        # bails per dispatch
    "mb_dispatch_p99_ns": 1.0,       # ns
    "cache_hit_rate": 0.005,         # rate points
}

#: default relative threshold (percent) for ``bench diff --health``.
DEFAULT_HEALTH_THRESHOLD_PCT = 10.0


def direction_for(indicator: str) -> str:
    for prefix, direction in HEALTH_DIRECTIONS.items():
        if indicator.startswith(prefix):
            return direction
    return "lower"


def floor_for(indicator: str) -> float:
    for prefix, floor in HEALTH_FLOORS.items():
        if indicator.startswith(prefix):
            return floor
    return 0.0


@dataclass(frozen=True)
class HealthDiff:
    """One indicator compared across payloads; renders through
    :func:`..bench.report.render_diff` (field-compatible with
    ``SeriesDiff``)."""

    figure: str
    series: str
    direction: str
    base_mean: float
    new_mean: float
    mean_pct: float
    worst_point_pct: float
    regression: bool


def _sum_family(counters: dict, family: str) -> float:
    """Sum a counter family across every label combination."""
    total = 0.0
    for key, value in counters.items():
        if key == family or key.startswith(family + "|"):
            total += value
    return total


def health_indicators(payload: dict) -> dict[str, float]:
    """Extract the indicator map from one BENCH payload; empty when the
    payload predates ``meta.metrics``."""
    meta = payload.get("meta", {})
    metrics = meta.get("metrics")
    out: dict[str, float] = {}
    if metrics:
        counters = metrics.get("counters", {})
        stalls = _sum_family(counters, "tc_fc_stall_ns_total")
        sends = _sum_family(counters, "tc_am_sends_total")
        if sends > 0:
            out["fc_stall_ns_per_send"] = stalls / sends
        hists = metrics.get("histograms", {})
        p99s = [h["p99"] for k, h in hists.items()
                if k.split("|", 1)[0] == "tc_mb_dispatch_ns"
                and h.get("p99") is not None]
        if p99s:
            out["mb_dispatch_p99_ns"] = max(p99s)
        by_level: dict[str, list[float]] = {}
        for key, g in metrics.get("gauges", {}).items():
            name, _, labelpart = key.partition("|")
            if name != "tc_cache_hit_rate":
                continue
            labels = dict(item.partition("=")[::2]
                          for item in labelpart.split("|") if item)
            level = labels.get("level", "all")
            if g.get("mean") is not None:
                by_level.setdefault(level, []).append(g["mean"])
        for level, means in by_level.items():
            # worst node is the honest summary: one cold node hides
            # inside a cross-node average.
            out[f"cache_hit_rate_{level}"] = min(means)
    sim = meta.get("sim_throughput") or {}
    dispatches = sim.get("trace_dispatches") or 0
    if dispatches:
        out["guard_bail_rate"] = sim.get("guard_bails", 0) / dispatches
    return out


def health_diff_payloads(base: dict, new: dict,
                         threshold_pct: float = DEFAULT_HEALTH_THRESHOLD_PCT,
                         ) -> tuple[list[HealthDiff], list[str]]:
    """Compare the two payloads' health indicators; returns
    ``(diffs, notes)`` in the same shape the wall-clock differ uses."""
    figure = base.get("figure", "?")
    bi = health_indicators(base)
    ni = health_indicators(new)
    diffs: list[HealthDiff] = []
    notes: list[str] = []
    if not bi and not ni:
        notes.append(f"{figure}: no health indicators on either side "
                     "(meta.metrics absent)")
        return diffs, notes
    for name in sorted(set(bi) | set(ni)):
        if name not in bi:
            notes.append(f"{figure}: {name} only in new payload")
            continue
        if name not in ni:
            notes.append(f"{figure}: {name} only in base payload")
            continue
        bv, nv = bi[name], ni[name]
        direction = direction_for(name)
        if bv == 0.0:
            pct = 0.0 if nv == 0.0 else math.inf * (1 if nv > 0 else -1)
        else:
            pct = 100.0 * (nv - bv) / bv
        worse = pct > 0 if direction == "lower" else pct < 0
        regression = (worse and abs(pct) > threshold_pct
                      and abs(nv - bv) >= floor_for(name))
        diffs.append(HealthDiff(
            figure=figure, series=name, direction=direction,
            base_mean=bv, new_mean=nv,
            mean_pct=pct if math.isfinite(pct) else math.copysign(999.99, pct),
            worst_point_pct=pct if math.isfinite(pct)
            else math.copysign(999.99, pct),
            regression=regression))
    return diffs, notes
