"""Chrome/Perfetto trace-event JSON export.

Turns the tracer's event list into the `trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
that chrome://tracing and https://ui.perfetto.dev load directly:
``"X"`` complete spans with microsecond ``ts``/``dur``, ``"i"`` instant
events, ``"C"`` counter samples (the metrics registry's counter/gauge
series, one counter track per metric key), and ``"M"`` metadata naming
each process/thread after the track model in :mod:`.tracer` (DES loop,
toolchain, per-node cores and HCAs).

``export_figure_trace`` is the ``twochains trace export`` backend: it
runs one registered sweep point with the tracer *and* the metrics
registry attached and writes the resulting trace document — spans say
when, counter tracks say how much.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import METRICS, counter_track_events
from .tracer import PID_SIM, TID_DES, TID_HCA, TID_TOOL, TRACER


def _process_name(pid: int) -> str:
    return "sim" if pid == PID_SIM else f"node{pid - 1}"


def _thread_name(pid: int, tid: int) -> str:
    if pid == PID_SIM:
        return {TID_DES: "DES", TID_TOOL: "toolchain"}.get(tid, f"t{tid}")
    if tid == TID_HCA:
        return "HCA"
    return f"core{tid}"


def to_trace_events(events: list[tuple]) -> list[dict]:
    """The ``traceEvents`` array: metadata first, then the events.

    ``ts``/``dur`` are microseconds (floats) per the trace-event spec;
    the tracer records nanoseconds, so values divide by 1000.  Instants
    use thread scope (``"s": "t"``); counter events (``"C"``) carry
    their value in ``args`` and render as per-process counter tracks.
    """
    out: list[dict] = []
    tracks = sorted({(e[1], e[2]) for e in events})
    for pid in sorted({p for p, _ in tracks}):
        out.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": _process_name(pid)}})
    for pid, tid in tracks:
        out.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": _thread_name(pid, tid)}})
    for ph, pid, tid, name, ts, dur, args in events:
        ev = {"ph": ph, "name": name, "cat": name.split(".", 1)[0],
              "pid": pid, "tid": tid, "ts": round(ts / 1000.0, 6)}
        if ph == "X":
            ev["dur"] = round(dur / 1000.0, 6)
        elif ph == "i":
            ev["s"] = "t"
        if args:
            ev["args"] = args
        out.append(ev)
    return out


def to_trace_document(events: list[tuple]) -> dict:
    return {"displayTimeUnit": "ns", "traceEvents": to_trace_events(events)}


def export_figure_trace(figure: str, out_path: str | Path,
                        point_index: int = 0, fast: bool = True) -> dict:
    """Run one sweep point of ``figure`` traced; write the Perfetto JSON.

    Returns a small summary (events, tracks, span names, path) for the
    CLI to print.  Raises ``ValueError`` for unknown figures, like the
    orchestrator does.
    """
    from ..bench.figures import full_registry  # local: avoid import cycle

    registry = full_registry()
    if figure not in registry:
        raise ValueError(f"unknown figure {figure!r}; choices: "
                         f"{', '.join(registry)}")
    spec = registry[figure]
    points = spec.points(fast)
    if not 0 <= point_index < len(points):
        raise ValueError(f"{figure} has {len(points)} points; "
                         f"index {point_index} is out of range")
    with TRACER.capture(), METRICS.capture():
        spec.point(**points[point_index])
        events = list(TRACER.events)
    counters = counter_track_events(METRICS)
    doc = to_trace_document(events + counters)
    path = Path(out_path)
    path.write_text(json.dumps(doc, indent=None, separators=(",", ":"))
                    + "\n")
    spans = [e for e in events if e[0] == "X"]
    return {
        "path": str(path),
        "figure": figure,
        "params": points[point_index],
        "events": len(events) + len(counters),
        "spans": len(spans),
        "tracks": len({(e[1], e[2]) for e in events}),
        "counter_tracks": len({(e[1], e[3]) for e in counters}),
        "span_names": sorted({e[3] for e in spans}),
    }
