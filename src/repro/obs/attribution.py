"""Span-tree latency attribution: from raw events to a phase breakdown.

Two consumers:

* ``bench run --trace`` — every sweep point runs with the tracer
  attached; the per-point span durations are grouped by span name and
  summarized (p50/p95/mean/total) into the ``phase_breakdown`` block of
  ``BENCH_<figure>.json`` meta (schema: docs/OBSERVABILITY.md).
* ``twochains trace`` — the single-message timeline derives its phase
  list from the span tree instead of hand-wired hooks
  (:mod:`repro.bench.timeline`).

Durations are simulated nanoseconds, so every number here is
deterministic for a given seed and sweep point.
"""

from __future__ import annotations

import numpy as np


def phase_durations(events: list[tuple],
                    durs: dict[str, list[float]] | None = None
                    ) -> dict[str, list[float]]:
    """Group complete-span durations by span name.

    ``durs`` accumulates in place when given (the orchestrator merges
    many points into one dict); instants carry no duration and are
    skipped.  Returns the mapping ``name -> [dur_ns, ...]`` in emission
    order, which is deterministic.
    """
    out = durs if durs is not None else {}
    for ev in events:
        if ev[0] != "X":
            continue
        out.setdefault(ev[3], []).append(ev[5])
    return out


def summarize_phase(durs: list[float]) -> dict:
    """p50/p95/mean/total summary of one phase's span durations."""
    arr = np.asarray(durs, dtype=np.float64)
    return {
        "count": int(arr.size),
        "p50_ns": round(float(np.percentile(arr, 50.0)), 3),
        "p95_ns": round(float(np.percentile(arr, 95.0)), 3),
        "mean_ns": round(float(arr.mean()), 3),
        "total_ns": round(float(arr.sum()), 3),
    }


def phase_breakdown(durs_or_events) -> dict[str, dict]:
    """The ``phase_breakdown`` block: per-phase latency summaries.

    Accepts either a raw event list (from :class:`~.tracer.Tracer`) or a
    pre-merged ``name -> [dur_ns, ...]`` mapping.  Keys are sorted so the
    serialized block is stable.
    """
    if isinstance(durs_or_events, dict):
        durs = durs_or_events
    else:
        durs = phase_durations(durs_or_events)
    return {name: summarize_phase(vals)
            for name, vals in sorted(durs.items()) if vals}


def span_children(events: list[tuple], parent: tuple) -> list[tuple]:
    """Spans strictly nested inside ``parent`` on the same track.

    Containment is by ``[ts, ts+dur]`` interval on one ``(pid, tid)``
    track — the same rule Perfetto uses to stack "X" events.  The parent
    itself is excluded; grandchildren are included (it is a subtree
    listing, not a single level).
    """
    _, pid, tid, _, ts, dur, _ = parent
    end = ts + dur
    out = []
    for ev in events:
        if ev[0] != "X" or ev is parent:
            continue
        if ev[1] != pid or ev[2] != tid:
            continue
        if ev[4] >= ts and ev[4] + ev[5] <= end and ev[5] < dur:
            out.append(ev)
    return out


def last_span(events: list[tuple], name: str,
              pid: int | None = None) -> tuple | None:
    """Latest-emitted complete span with ``name`` (and ``pid``, if given)."""
    for ev in reversed(events):
        if ev[0] == "X" and ev[3] == name and (pid is None or ev[1] == pid):
            return ev
    return None
