"""The process-wide structured tracer: spans and instant events.

One :data:`TRACER` per process, disabled by default.  Model code reports
into it from every layer a message crosses — DES callback dispatch, RDMA
post/flight/DMA, mailbox wait/parse/dispatch, VM execution, GOT
rewrites, and cache-hierarchy misses — with the hot-path contract that
**disabled tracing costs exactly one attribute check**::

    from ..obs.tracer import TRACER as _T
    ...
    if _T.enabled:
        _T.span(pid, tid, "mb.dispatch", t0, t1, {"injected": True})

Timestamps are *simulated* nanoseconds (the DES clock), so traces are
bit-deterministic: the same seed and sweep point produce the same event
list, byte for byte.  Nothing in here reads wall-clock time.

Track model
-----------

Events land on Perfetto-style ``(pid, tid)`` tracks:

* ``pid 0`` — the simulator itself: ``tid 0`` the DES event loop,
  ``tid 1`` the toolchain (build-time GOT rewrites).
* ``pid node_id + 1`` — one process per simulated node: ``tid 0..N-1``
  the CPU cores, ``tid 64`` the node's HCA.

:func:`node_pid` maps a node id to its pid; the export layer
(:mod:`.perfetto`) turns these conventions into metadata events.

Events are plain tuples ``(ph, pid, tid, name, ts, dur, args)`` where
``ph`` is the trace-event phase: ``"X"`` complete span, ``"i"`` instant.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

# Track-addressing conventions (see module docstring).
PID_SIM = 0
TID_DES = 0
TID_TOOL = 1
TID_HCA = 64


def node_pid(node_id: int) -> int:
    """Perfetto pid of simulated node ``node_id``."""
    return node_id + 1


class Tracer:
    """Span/instant recorder.  ``enabled`` gates every emission."""

    __slots__ = ("enabled", "events", "_ts_hint")

    def __init__(self) -> None:
        self.enabled = False
        # (ph, pid, tid, name, ts_ns, dur_ns, args|None), emission order.
        self.events: list[tuple] = []
        self._ts_hint = 0.0

    # -- lifecycle -------------------------------------------------------
    def attach(self, clear: bool = True) -> None:
        """Enable recording (optionally dropping any prior events)."""
        if clear:
            self.clear()
        self.enabled = True

    def detach(self) -> None:
        """Stop recording; already-captured events stay readable."""
        self.enabled = False

    def clear(self) -> None:
        self.events.clear()
        self._ts_hint = 0.0

    @contextmanager
    def capture(self) -> Iterator["Tracer"]:
        """``with TRACER.capture(): ...`` — attach, then detach."""
        self.attach()
        try:
            yield self
        finally:
            self.detach()

    # -- emission --------------------------------------------------------
    def span(self, pid: int, tid: int, name: str, start_ns: float,
             end_ns: float, args: Optional[dict] = None) -> None:
        """Record a complete span (``ph: "X"``) on track ``(pid, tid)``."""
        dur = end_ns - start_ns
        if dur < 0.0:  # defensive: a model bug must not corrupt the trace
            dur = 0.0
        self.events.append(("X", pid, tid, name, start_ns, dur, args))
        if end_ns > self._ts_hint:
            self._ts_hint = end_ns

    def instant(self, pid: int, tid: int, name: str, ts_ns: float,
                args: Optional[dict] = None) -> None:
        """Record an instant event (``ph: "i"``)."""
        self.events.append(("i", pid, tid, name, ts_ns, 0.0, args))
        if ts_ns > self._ts_hint:
            self._ts_hint = ts_ns

    # -- inspection ------------------------------------------------------
    def ts_hint(self) -> float:
        """Largest timestamp seen so far — the 'current' trace time for
        emitters with no DES clock of their own (the toolchain)."""
        return self._ts_hint

    def spans(self, name: Optional[str] = None) -> list[tuple]:
        """Complete spans, optionally filtered by exact name."""
        return [e for e in self.events
                if e[0] == "X" and (name is None or e[3] == name)]

    def instants(self, name: Optional[str] = None) -> list[tuple]:
        return [e for e in self.events
                if e[0] == "i" and (name is None or e[3] == name)]

    def tracks(self) -> set[tuple[int, int]]:
        """Distinct ``(pid, tid)`` pairs that carry at least one event."""
        return {(e[1], e[2]) for e in self.events}

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Tracer(enabled={self.enabled}, events={len(self.events)}, "
                f"tracks={len(self.tracks())})")


#: The process-wide tracer every instrumented layer reports into.
TRACER = Tracer()


def span_key(event: tuple) -> tuple[Any, ...]:
    """Stable sort key: (start, -dur) groups parents before children."""
    return (event[4], -event[5])
