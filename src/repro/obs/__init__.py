"""Structured observability for the simulated system.

``obs`` answers *where the nanoseconds of one message go* with
first-class data instead of hand-wired hooks:

* :mod:`.tracer` — the process-wide span/instant recorder every model
  layer reports into (DES dispatch, RDMA verbs, mailbox wait/dispatch,
  VM execution, GOT rewrites, cache misses).  Disabled by default; the
  instrumentation contract is a single ``if TRACER.enabled`` predicate
  on any hot path.
* :mod:`.metrics` — the tracer's sibling for *how much*: counters,
  sim-time-weighted gauges, and HDR latency histograms, with Prometheus
  text export and Perfetto counter-track feeds (``twochains metrics
  export``).  Same disabled-by-default, one-predicate contract.
* :mod:`.slo` — direction-aware health indicators over ``meta.metrics``
  and the ``bench diff --health`` regression gate.
* :mod:`.perfetto` — Chrome/Perfetto trace-event JSON export
  (``twochains trace export``), spans and counter tracks merged.
* :mod:`.attribution` — span-tree helpers and the per-phase latency
  breakdown (``phase_breakdown``) that benchmarks embed in
  ``BENCH_<figure>.json`` meta.

See docs/OBSERVABILITY.md for the track model and schemas, and
docs/METRICS.md for metric semantics, the name catalogue, and the
health gate.
"""

from .attribution import phase_breakdown, phase_durations, span_children
from .metrics import (
    METRICS,
    MetricsRegistry,
    merge_snapshots,
    metrics_block,
    parse_prometheus,
    to_prometheus,
)
from .slo import HealthDiff, health_diff_payloads, health_indicators
from .tracer import (
    PID_SIM,
    TID_DES,
    TID_HCA,
    TID_TOOL,
    TRACER,
    Tracer,
    node_pid,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "PID_SIM",
    "TID_DES",
    "TID_HCA",
    "TID_TOOL",
    "TRACER",
    "Tracer",
    "HealthDiff",
    "health_diff_payloads",
    "health_indicators",
    "merge_snapshots",
    "metrics_block",
    "node_pid",
    "parse_prometheus",
    "phase_breakdown",
    "phase_durations",
    "span_children",
    "to_prometheus",
]
