"""Structured observability for the simulated system.

``obs`` answers *where the nanoseconds of one message go* with
first-class data instead of hand-wired hooks:

* :mod:`.tracer` — the process-wide span/instant recorder every model
  layer reports into (DES dispatch, RDMA verbs, mailbox wait/dispatch,
  VM execution, GOT rewrites, cache misses).  Disabled by default; the
  instrumentation contract is a single ``if TRACER.enabled`` predicate
  on any hot path.
* :mod:`.perfetto` — Chrome/Perfetto trace-event JSON export
  (``twochains trace export``).
* :mod:`.attribution` — span-tree helpers and the per-phase latency
  breakdown (``phase_breakdown``) that benchmarks embed in
  ``BENCH_<figure>.json`` meta.

See docs/OBSERVABILITY.md for the track model and schemas.
"""

from .attribution import phase_breakdown, phase_durations, span_children
from .tracer import (
    PID_SIM,
    TID_DES,
    TID_HCA,
    TID_TOOL,
    TRACER,
    Tracer,
    node_pid,
)

__all__ = [
    "PID_SIM",
    "TID_DES",
    "TID_HCA",
    "TID_TOOL",
    "TRACER",
    "Tracer",
    "node_pid",
    "phase_breakdown",
    "phase_durations",
    "span_children",
]
