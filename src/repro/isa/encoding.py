"""Binary encode/decode for CHAIN instructions."""

from __future__ import annotations

import struct
from typing import NamedTuple

from ..errors import IsaError
from .opcodes import INSTR_BYTES, Op

_WORD = struct.Struct("<BBBBi")

IMM_MIN = -(1 << 31)
IMM_MAX = (1 << 31) - 1


class Instr(NamedTuple):
    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def encode(self) -> bytes:
        if not (0 <= self.rd < 256 and 0 <= self.rs1 < 256 and 0 <= self.rs2 < 256):
            raise IsaError(f"register field out of range in {self}")
        if not (IMM_MIN <= self.imm <= IMM_MAX):
            raise IsaError(f"imm out of range in {self}")
        return _WORD.pack(int(self.op), self.rd, self.rs1, self.rs2, self.imm)


def decode(word: bytes | memoryview, offset: int = 0) -> Instr:
    opb, rd, rs1, rs2, imm = _WORD.unpack_from(word, offset)
    try:
        op = Op(opb)
    except ValueError as exc:
        raise IsaError(f"illegal opcode {opb:#x}") from exc
    return Instr(op, rd, rs1, rs2, imm)


def decode_fields(word: bytes | memoryview, offset: int = 0
                  ) -> tuple[int, int, int, int, int]:
    """Raw field decode with no Op validation — the VM hot path."""
    return _WORD.unpack_from(word, offset)


def encode_program(instrs: list[Instr]) -> bytes:
    return b"".join(i.encode() for i in instrs)


def decode_program(blob: bytes) -> list[Instr]:
    if len(blob) % INSTR_BYTES:
        raise IsaError(f"code length {len(blob)} not a multiple of {INSTR_BYTES}")
    return [decode(blob, off) for off in range(0, len(blob), INSTR_BYTES)]
