"""CHAIN ISA: encoding, assembler, disassembler, interpreter, intrinsics."""

from .assembler import (
    Assembler,
    ObjectModule,
    Reloc,
    RelocKind,
    Symbol,
    assemble,
)
from .disassembler import disassemble, format_instr
from .encoding import Instr, decode, decode_program, encode_program
from .intrinsics import IntrinsicTable
from .opcodes import INSTR_BYTES, Op
from .registers import LR, NREGS, SP, ZR, parse_reg, reg_name
from .vm import NATIVE_BASE, RETURN_SENTINEL, CallResult, Vm, native_address

__all__ = [
    "Assembler",
    "CallResult",
    "INSTR_BYTES",
    "Instr",
    "IntrinsicTable",
    "LR",
    "NATIVE_BASE",
    "NREGS",
    "ObjectModule",
    "Op",
    "RETURN_SENTINEL",
    "Reloc",
    "RelocKind",
    "SP",
    "Symbol",
    "Vm",
    "ZR",
    "assemble",
    "decode",
    "decode_program",
    "disassemble",
    "encode_program",
    "format_instr",
    "native_address",
    "parse_reg",
    "reg_name",
]
