"""CHAIN ISA register file definition.

32 integer registers of 64 bits.  Calling convention (used by the AMC
compiler and the runtime's invocation stubs):

* ``a0``–``a7`` (x0–x7): arguments and return value (a0).
* ``t0``–``t11`` (x8–x19): caller-saved temporaries.
* ``s0``–``s7`` (x20–x27): callee-saved.
* ``zr`` (x29): hardwired zero — reads 0, writes discarded.
* ``lr`` (x30): link register.
* ``sp`` (x31): stack pointer.

x28 is reserved for the assembler as a scratch register (``at``).
"""

from __future__ import annotations

NREGS = 32

ZR = 29
LR = 30
SP = 31
AT = 28  # assembler temporary

REG_NAMES: dict[int, str] = {}
REG_NUMBERS: dict[str, int] = {}


def _register(name: str, num: int) -> None:
    REG_NAMES.setdefault(num, name)
    REG_NUMBERS[name] = num


for _i in range(NREGS):
    _register(f"x{_i}", _i)
for _i in range(8):
    _register(f"a{_i}", _i)
for _i in range(12):
    _register(f"t{_i}", 8 + _i)
for _i in range(8):
    _register(f"s{_i}", 20 + _i)
_register("at", AT)
_register("zr", ZR)
_register("lr", LR)
_register("sp", SP)


def reg_name(num: int) -> str:
    """Canonical disassembly name for a register number."""
    if num == ZR:
        return "zr"
    if num == LR:
        return "lr"
    if num == SP:
        return "sp"
    if num == AT:
        return "at"
    if 0 <= num <= 7:
        return f"a{num}"
    if 8 <= num <= 19:
        return f"t{num - 8}"
    if 20 <= num <= 27:
        return f"s{num - 20}"
    return f"x{num}"


def parse_reg(token: str) -> int | None:
    """Register number for a source token, or None if not a register."""
    return REG_NUMBERS.get(token.lower())
