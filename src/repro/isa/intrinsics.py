"""Native runtime helpers callable from CHAIN code ("libc of the model").

Jams call these through the GOT exactly like any external C function —
``tc_memcpy`` resolves to a *native address* (see :data:`~.vm.NATIVE_BASE`)
instead of CHAIN code.  Functionally they operate on node memory; their
timing uses the hierarchy's batched ``stream_cost`` so a 32 KB memcpy is
one table lookup instead of 4096 interpreted iterations, with the same
cache/DRAM behaviour.  This mirrors how real C code reaches an optimized
libc: the call is honest, only the implementation is native.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import VmFault

# (ret, cost_ns) = fn(vm, now, args)
IntrinsicFn = Callable[["object", float, tuple[int, ...]], tuple[int, float]]

_CALL_OVERHEAD_NS = 6.0  # prologue/epilogue of an optimized native routine


def _i64_view(vm, addr: int, count: int) -> np.ndarray:
    if addr % 8:
        raise VmFault(f"intrinsic needs 8-byte aligned pointer, got {addr:#x}")
    return vm.node.mem.view_i64(addr, count)


# ---------------------------------------------------------------------------
def tc_memcpy(vm, now: float, args) -> tuple[int, float]:
    """memcpy(dst, src, n) -> dst; memmove semantics (copy is staged)."""
    dst, src, n = args[0], args[1], args[2]
    if n < 0:
        raise VmFault(f"tc_memcpy with negative size {n}")
    node = vm.node
    if n:
        if vm.check_pages:
            node.pages.check_read(src, n)
            node.pages.check_write(dst, n)
        blob = node.mem.read(src, n)
        node.mem.write(dst, blob)
        node.notify_write(dst, n)
    cost = _CALL_OVERHEAD_NS
    cost += node.hier.stream_cost(now, vm.core, src, n, "read")
    cost += node.hier.stream_cost(now + cost, vm.core, dst, n, "write")
    return dst, cost


def tc_memset(vm, now: float, args) -> tuple[int, float]:
    """memset(dst, byte, n) -> dst."""
    dst, byte, n = args[0], args[1], args[2]
    if n < 0:
        raise VmFault(f"tc_memset with negative size {n}")
    node = vm.node
    if n:
        if vm.check_pages:
            node.pages.check_write(dst, n)
        node.mem.fill(dst, n, byte & 0xFF)
        node.notify_write(dst, n)
    cost = _CALL_OVERHEAD_NS + node.hier.stream_cost(now, vm.core, dst, n, "write")
    return dst, cost


def tc_sum64(vm, now: float, args) -> tuple[int, float]:
    """sum64(ptr, count) -> sum of count i64 values (wrapping)."""
    ptr, count = args[0], args[1]
    if count < 0:
        raise VmFault(f"tc_sum64 with negative count {count}")
    node = vm.node
    total = 0
    if count:
        if vm.check_pages:
            node.pages.check_read(ptr, count * 8)
        view = _i64_view(vm, ptr, count)
        # Wrapping 64-bit sum, like the C loop `s += p[i]` it stands in for.
        total = int(view.astype(object).sum()) & (1 << 64) - 1
        if total >= 1 << 63:
            total -= 1 << 64
    # One add per element: ~0.5 cycles/8 bytes with SIMD -> 0.0625 cy/byte.
    cost = _CALL_OVERHEAD_NS + node.hier.stream_cost(
        now, vm.core, ptr, count * 8, "read", ops_per_byte=0.0625)
    return total, cost


def tc_sum32(vm, now: float, args) -> tuple[int, float]:
    """sum32(ptr, count) -> sum of count i32 values, widened to i64.

    The paper's Server-Side Sum payloads are integer arrays; its 1-integer
    message is 4 bytes of payload."""
    ptr, count = args[0], args[1]
    if count < 0:
        raise VmFault(f"tc_sum32 with negative count {count}")
    node = vm.node
    total = 0
    if count:
        if vm.check_pages:
            node.pages.check_read(ptr, count * 4)
        if ptr % 4:
            raise VmFault(f"tc_sum32 needs 4-byte alignment, got {ptr:#x}")
        view = node.mem.data[ptr: ptr + count * 4].view(np.int32)
        total = int(view.sum(dtype=np.int64))
    cost = _CALL_OVERHEAD_NS + node.hier.stream_cost(
        now, vm.core, ptr, count * 4, "read", ops_per_byte=0.125)
    return total, cost


def tc_hash64(vm, now: float, args) -> tuple[int, float]:
    """splitmix64 finalizer — the model's canonical hash (pure compute)."""
    x = args[0] & (1 << 64) - 1
    x = (x + 0x9E3779B97F4A7C15) & (1 << 64) - 1
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & (1 << 64) - 1
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & (1 << 64) - 1
    x ^= x >> 31
    if x >= 1 << 63:
        x -= 1 << 64
    return x, 4.0  # ~10 cycles of multiply/xor work


def tc_puts(vm, now: float, args) -> tuple[int, float]:
    """puts(str) — reads a NUL-terminated string from node memory and
    appends it to the intrinsic table's captured stdout."""
    addr = args[0]
    node = vm.node
    chunks = []
    cursor = addr
    for _ in range(4096):
        b = node.mem.read_u8(cursor)
        if b == 0:
            break
        chunks.append(b)
        cursor += 1
    else:
        raise VmFault(f"unterminated string at {addr:#x}")
    if vm.check_pages and cursor > addr:
        node.pages.check_read(addr, cursor - addr)
    text = bytes(chunks).decode("latin-1")
    vm.intrinsics.stdout.append(text)
    cost = _CALL_OVERHEAD_NS + node.hier.stream_cost(
        now, vm.core, addr, max(1, cursor - addr), "read")
    return len(text), cost


def tc_cycles(vm, now: float, args) -> tuple[int, float]:
    """Read the virtual cycle counter (like CNTVCT): now in CPU cycles."""
    return int(now * 2.6), 2.0


class IntrinsicTable:
    """Index -> native helper mapping shared by VMs of one experiment."""

    DEFAULTS: tuple[tuple[str, IntrinsicFn], ...] = (
        ("tc_memcpy", tc_memcpy),
        ("tc_memset", tc_memset),
        ("tc_sum64", tc_sum64),
        ("tc_sum32", tc_sum32),
        ("tc_hash64", tc_hash64),
        ("tc_puts", tc_puts),
        ("tc_cycles", tc_cycles),
    )

    def __init__(self, include_defaults: bool = True):
        self._fns: list[IntrinsicFn] = []
        self._names: dict[str, int] = {}
        self.stdout: list[str] = []
        if include_defaults:
            for name, fn in self.DEFAULTS:
                self.register(name, fn)

    def register(self, name: str, fn: IntrinsicFn) -> int:
        """Add a native helper; returns its index (stable per table)."""
        if name in self._names:
            raise VmFault(f"intrinsic {name!r} already registered")
        idx = len(self._fns)
        self._fns.append(fn)
        self._names[name] = idx
        return idx

    def index_of(self, name: str) -> int | None:
        return self._names.get(name)

    def names(self) -> list[str]:
        return sorted(self._names)

    def valid_index(self, idx: int) -> bool:
        return 0 <= idx < len(self._fns)

    def invoke(self, idx: int, vm, now: float, args: tuple[int, ...]
               ) -> tuple[int, float]:
        return self._fns[idx](vm, now, args)
