"""Disassembler for CHAIN machine code (debugging + toolchain listings)."""

from __future__ import annotations

from .encoding import Instr, decode_program
from .opcodes import (
    BRANCH_OPS,
    INSTR_BYTES,
    LOAD_OPS,
    STORE_OPS,
    Op,
)
from .registers import reg_name

_REG3 = {
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.AND, Op.OR, Op.XOR,
    Op.SHL, Op.SHR, Op.SAR, Op.SLT, Op.SLTU,
}
_IMM = {
    Op.ADDI, Op.MULI, Op.ANDI, Op.ORI, Op.XORI, Op.SHLI, Op.SHRI, Op.SARI,
    Op.SLTI,
}
_CBRANCH = {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU}


def format_instr(instr: Instr, addr: int | None = None) -> str:
    """One instruction as canonical assembly text."""
    op = instr.op
    name = op.name.lower()
    rd, rs1, rs2 = reg_name(instr.rd), reg_name(instr.rs1), reg_name(instr.rs2)
    if op in (Op.NOP, Op.HALT, Op.RET):
        return name
    if op in (Op.WFE, Op.SEV):
        return f"{name} {rs1}"
    if op in (Op.MOVI, Op.MOVHI):
        return f"{name} {rd}, {instr.imm}"
    if op is Op.MOV:
        return f"mov {rd}, {rs1}"
    if op is Op.ADR:
        target = f"{addr + instr.imm:#x}" if addr is not None else f"pc{instr.imm:+d}"
        return f"adr {rd}, {target}"
    if op in _REG3:
        return f"{name} {rd}, {rs1}, {rs2}"
    if op in _IMM:
        return f"{name} {rd}, {rs1}, {instr.imm}"
    if op in LOAD_OPS or op in STORE_OPS:
        return f"{name} {rd}, {instr.imm}({rs1})"
    if op in BRANCH_OPS:
        target = f"{addr + instr.imm:#x}" if addr is not None else f"pc{instr.imm:+d}"
        if op is Op.B or op is Op.CALL:
            return f"{name} {target}"
        return f"{name} {rs1}, {rs2}, {target}"
    if op is Op.CALLR:
        return f"callr {rs1}"
    if op is Op.JR:
        return f"jr {rs1}"
    if op is Op.LDG:
        return f"ldg {rd}, got[{instr.rs2}] (gotpc{instr.imm:+d})"
    if op is Op.LDGI:
        return f"ldgi {rd}, got[{instr.rs2}] (via *pc{instr.imm:+d})"
    return f"{name} rd={instr.rd} rs1={instr.rs1} rs2={instr.rs2} imm={instr.imm}"


def disassemble(code: bytes, base: int = 0) -> list[str]:
    """Disassemble a code blob into ``addr: text`` lines."""
    out = []
    for idx, instr in enumerate(decode_program(code)):
        addr = base + idx * INSTR_BYTES
        out.append(f"{addr:#010x}: {format_instr(instr, addr)}")
    return out
