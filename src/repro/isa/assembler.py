"""Two-pass assembler for CHAIN assembly text.

Produces an :class:`ObjectModule`: section byte images plus symbols,
GOT-slot assignments for externs, and relocations left for the ELF builder
(cross-section PC-relative references and GOT-base offsets are only known
once the shared object is laid out).

Syntax overview::

    ; comment        # comment
    .global jam_main
    .extern tc_memcpy            ; allocates a GOT slot
    .text
    jam_main:
        addi sp, sp, -16
        st   lr, 0(sp)
        ldg  t0, tc_memcpy       ; load extern address via GOT
        callr t0
        ld   lr, 0(sp)
        addi sp, sp, 16
        ret
    .data
    counter: .quad 0
    table:   .quad jam_main      ; ABS64 relocation
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from ..errors import AssemblerError
from .encoding import IMM_MAX, IMM_MIN, Instr
from .opcodes import INSTR_BYTES, Op
from .registers import parse_reg


class RelocKind(enum.Enum):
    PCREL32 = "pcrel32"   # imm = S + A - P  (patched into instruction imm)
    GOTPC32 = "gotpc32"   # imm = GOT_base + A - P (LDG; slot already encoded)
    ABS64 = "abs64"       # 8 data bytes = load_bias + S + A


@dataclass(frozen=True)
class Reloc:
    kind: RelocKind
    section: str      # section containing the patch site
    offset: int       # byte offset of the site within the section
    symbol: str       # target symbol ("" for GOTPC32 — target is GOT base)
    addend: int = 0


@dataclass(frozen=True)
class Symbol:
    name: str
    section: str
    offset: int
    is_global: bool
    is_func: bool


@dataclass
class ObjectModule:
    """Result of assembling one translation unit."""

    text: bytes = b""
    data: bytes = b""
    bss_size: int = 0
    symbols: dict[str, Symbol] = field(default_factory=dict)
    externs: list[str] = field(default_factory=list)     # GOT slot order
    relocs: list[Reloc] = field(default_factory=list)

    def got_slot(self, name: str) -> int:
        try:
            return self.externs.index(name)
        except ValueError:
            raise AssemblerError(f"{name!r} has no GOT slot") from None

    @property
    def got_size(self) -> int:
        return len(self.externs) * 8


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_TOKEN_SPLIT = re.compile(r"[,\s]+")
_MEM_RE = re.compile(r"^(-?(?:0[xX][0-9a-fA-F]+|\d+))\(([^)]+)\)$")
_STR_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')

_IMM_OPS = {
    "addi": Op.ADDI, "muli": Op.MULI, "andi": Op.ANDI, "ori": Op.ORI,
    "xori": Op.XORI, "shli": Op.SHLI, "shri": Op.SHRI, "sari": Op.SARI,
    "slti": Op.SLTI,
}
_REG3_OPS = {
    "add": Op.ADD, "sub": Op.SUB, "mul": Op.MUL, "div": Op.DIV,
    "rem": Op.REM, "and": Op.AND, "or": Op.OR, "xor": Op.XOR,
    "shl": Op.SHL, "shr": Op.SHR, "sar": Op.SAR, "slt": Op.SLT,
    "sltu": Op.SLTU,
}
_LOAD_OPS = {
    "ld": Op.LD, "lw": Op.LW, "lwu": Op.LWU, "lh": Op.LH, "lhu": Op.LHU,
    "lb": Op.LB, "lbu": Op.LBU,
}
_STORE_OPS = {"st": Op.ST, "sw": Op.SW, "sh": Op.SH, "sb": Op.SB}
_CBRANCH_OPS = {
    "beq": Op.BEQ, "bne": Op.BNE, "blt": Op.BLT, "bge": Op.BGE,
    "bltu": Op.BLTU, "bgeu": Op.BGEU,
}


def _parse_int(tok: str, line: int) -> int:
    tok = tok.strip()
    try:
        if len(tok) == 3 and tok[0] == "'" and tok[2] == "'":
            return ord(tok[1])
        return int(tok, 0)
    except ValueError:
        raise AssemblerError(f"bad integer literal {tok!r}", line) from None


def _need_reg(tok: str, line: int) -> int:
    reg = parse_reg(tok)
    if reg is None:
        raise AssemblerError(f"expected register, got {tok!r}", line)
    return reg


class Assembler:
    """Two passes: collect labels/sizes, then emit bytes + relocations."""

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self.text = bytearray()
        self.data = bytearray()
        self.bss_size = 0
        self.section = "text"
        self.symbols: dict[str, Symbol] = {}
        self.globals: set[str] = set()
        self.externs: list[str] = []
        self.relocs: list[Reloc] = []
        self.label_is_func: set[str] = set()

    # -- public -----------------------------------------------------------

    def assemble(self, source: str) -> ObjectModule:
        self._reset()
        lines = self._clean_lines(source)
        labels = self._pass1(lines)
        self._pass2(lines, labels)
        return ObjectModule(
            text=bytes(self.text),
            data=bytes(self.data),
            bss_size=self.bss_size,
            symbols=self.symbols,
            externs=self.externs,
            relocs=self.relocs,
        )

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _clean_lines(source: str) -> list[tuple[int, str]]:
        out = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            # Strip comments, respecting quoted strings.
            stripped = []
            in_str = False
            prev = ""
            for ch in raw:
                if ch == '"' and prev != "\\":
                    in_str = not in_str
                if ch in ";#" and not in_str:
                    break
                stripped.append(ch)
                prev = ch
            line = "".join(stripped).strip()
            if line:
                out.append((lineno, line))
        return out

    def _extern_slot(self, name: str, line: int) -> int:
        try:
            return self.externs.index(name)
        except ValueError:
            raise AssemblerError(
                f"{name!r} used as extern but not declared with .extern", line
            ) from None

    def _data_directive_size(self, op: str, args: str, line: int) -> int:
        if op == ".quad":
            return 8 * len([a for a in args.split(",") if a.strip()])
        if op == ".word":
            return 4 * len([a for a in args.split(",") if a.strip()])
        if op == ".byte":
            return len([a for a in args.split(",") if a.strip()])
        if op == ".zero":
            return _parse_int(args, line)
        if op == ".asciz":
            m = _STR_RE.search(args)
            if not m:
                raise AssemblerError(".asciz needs a quoted string", line)
            return len(self._unescape(m.group(1))) + 1
        if op == ".align":
            # handled inline by caller (depends on current offset)
            return -1
        raise AssemblerError(f"unknown data directive {op}", line)

    @staticmethod
    def _unescape(s: str) -> bytes:
        return s.encode().decode("unicode_escape").encode("latin-1")

    # -- pass 1: label addresses ---------------------------------------------

    def _pass1(self, lines: list[tuple[int, str]]) -> dict[str, tuple[str, int]]:
        labels: dict[str, tuple[str, int]] = {}
        offsets = {"text": 0, "data": 0, "bss": 0}
        section = "text"
        pending_func = False
        for lineno, line in lines:
            while True:
                m = _LABEL_RE.match(line)
                if not m:
                    break
                name = m.group(1)
                if name in labels:
                    raise AssemblerError(f"duplicate label {name!r}", lineno)
                labels[name] = (section, offsets[section])
                if section == "text":
                    self.label_is_func.add(name)
                line = line[m.end():].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            op = parts[0].lower()
            args = parts[1] if len(parts) > 1 else ""
            if op == ".text":
                section = "text"
            elif op == ".data":
                section = "data"
            elif op == ".bss":
                section = "bss"
            elif op in (".global", ".globl", ".extern", ".func"):
                pass
            elif op.startswith("."):
                if section == "text":
                    raise AssemblerError(f"{op} not allowed in .text", lineno)
                if op == ".align":
                    align = _parse_int(args, lineno)
                    cur = offsets[section]
                    offsets[section] = (cur + align - 1) // align * align
                else:
                    offsets[section] += self._data_directive_size(op, args, lineno)
            else:
                if section != "text":
                    raise AssemblerError("instructions only allowed in .text", lineno)
                offsets["text"] += self._instr_size(op, args, lineno)
            _ = pending_func
        return labels

    def _instr_size(self, op: str, args: str, lineno: int) -> int:
        """Size in bytes an instruction line will emit (pseudos may expand)."""
        if op != "li":
            return INSTR_BYTES
        toks = [t for t in _TOKEN_SPLIT.split(args) if t]
        if len(toks) != 2:
            raise AssemblerError("li needs rd, imm", lineno)
        value = _parse_int(toks[1], lineno) & (2**64 - 1)
        low, high = value & 0xFFFFFFFF, value >> 32
        low_signed = low - (1 << 32) if low >= (1 << 31) else low
        if high == (0xFFFFFFFF if low_signed < 0 else 0):
            return INSTR_BYTES
        return 2 * INSTR_BYTES

    # -- pass 2: emit ----------------------------------------------------------

    def _pass2(self, lines: list[tuple[int, str]],
               labels: dict[str, tuple[str, int]]) -> None:
        self.section = "text"
        for lineno, line in lines:
            while True:
                m = _LABEL_RE.match(line)
                if not m:
                    break
                line = line[m.end():].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            op = parts[0].lower()
            args = parts[1].strip() if len(parts) > 1 else ""
            if op.startswith("."):
                self._directive(op, args, lineno, labels)
            else:
                self._instruction(op, args, lineno, labels)
        # Materialize symbols for labels.
        for name, (section, offset) in labels.items():
            self.symbols[name] = Symbol(
                name=name,
                section=section,
                offset=offset,
                is_global=name in self.globals,
                is_func=name in self.label_is_func,
            )

    def _directive(self, op: str, args: str, lineno: int,
                   labels: dict[str, tuple[str, int]]) -> None:
        if op == ".text":
            self.section = "text"
        elif op == ".data":
            self.section = "data"
        elif op == ".bss":
            self.section = "bss"
        elif op in (".global", ".globl"):
            self.globals.add(args.strip())
        elif op == ".extern":
            name = args.strip()
            if not name:
                raise AssemblerError(".extern needs a symbol name", lineno)
            if name not in self.externs:
                self.externs.append(name)
        elif op == ".func":
            pass  # annotation only; functions are .text labels
        elif self.section == "bss":
            if op == ".zero":
                self.bss_size += _parse_int(args, lineno)
            elif op == ".align":
                align = _parse_int(args, lineno)
                self.bss_size = (self.bss_size + align - 1) // align * align
            else:
                raise AssemblerError(f"{op} not allowed in .bss", lineno)
        elif self.section == "data":
            self._data_emit(op, args, lineno, labels)
        else:
            raise AssemblerError(f"unexpected directive {op} in .text", lineno)

    def _data_emit(self, op: str, args: str, lineno: int,
                   labels: dict[str, tuple[str, int]]) -> None:
        if op == ".align":
            align = _parse_int(args, lineno)
            while len(self.data) % align:
                self.data.append(0)
            return
        if op == ".quad":
            for item in (a.strip() for a in args.split(",") if a.strip()):
                if item.lstrip("-").split("x")[0].isdigit() or item.startswith("0x"):
                    value = _parse_int(item, lineno)
                    self.data += (value & (2**64 - 1)).to_bytes(8, "little")
                else:
                    # symbol reference: ABS64 relocation
                    self.relocs.append(Reloc(RelocKind.ABS64, "data",
                                             len(self.data), item))
                    self.data += b"\0" * 8
            return
        if op == ".word":
            for item in (a.strip() for a in args.split(",") if a.strip()):
                value = _parse_int(item, lineno)
                self.data += (value & (2**32 - 1)).to_bytes(4, "little")
            return
        if op == ".byte":
            for item in (a.strip() for a in args.split(",") if a.strip()):
                self.data.append(_parse_int(item, lineno) & 0xFF)
            return
        if op == ".zero":
            self.data += b"\0" * _parse_int(args, lineno)
            return
        if op == ".asciz":
            m = _STR_RE.search(args)
            if not m:
                raise AssemblerError(".asciz needs a quoted string", lineno)
            self.data += self._unescape(m.group(1)) + b"\0"
            return
        raise AssemblerError(f"unknown data directive {op}", lineno)

    # -- instructions -------------------------------------------------------

    def _emit(self, instr: Instr) -> None:
        self.text += instr.encode()

    def _branch_target(self, tok: str, lineno: int,
                       labels: dict[str, tuple[str, int]]) -> int:
        entry = labels.get(tok)
        if entry is None:
            raise AssemblerError(f"undefined label {tok!r}", lineno)
        section, offset = entry
        if section != "text":
            raise AssemblerError(f"branch target {tok!r} not in .text", lineno)
        return offset - len(self.text)

    def _instruction(self, op: str, args: str, lineno: int,
                     labels: dict[str, tuple[str, int]]) -> None:
        toks = [t for t in _TOKEN_SPLIT.split(args) if t] if args else []

        if op == "nop":
            return self._emit(Instr(Op.NOP))
        if op == "halt":
            return self._emit(Instr(Op.HALT))
        if op == "ret":
            return self._emit(Instr(Op.RET))
        if op in ("wfe", "sev"):
            rs1 = _need_reg(toks[0], lineno) if toks else 0
            return self._emit(Instr(Op.WFE if op == "wfe" else Op.SEV, rs1=rs1))

        if op == "movi":
            rd = _need_reg(toks[0], lineno)
            return self._emit(Instr(Op.MOVI, rd=rd, imm=_parse_int(toks[1], lineno)))
        if op == "movhi":
            rd = _need_reg(toks[0], lineno)
            return self._emit(Instr(Op.MOVHI, rd=rd, imm=_parse_int(toks[1], lineno)))
        if op == "li":  # pseudo: load up to 64-bit constant
            rd = _need_reg(toks[0], lineno)
            value = _parse_int(toks[1], lineno) & (2**64 - 1)
            low = value & 0xFFFFFFFF
            high = value >> 32
            low_signed = low - (1 << 32) if low >= (1 << 31) else low
            if high == (0xFFFFFFFF if low_signed < 0 else 0):
                return self._emit(Instr(Op.MOVI, rd=rd, imm=low_signed))
            self._emit(Instr(Op.MOVI, rd=rd, imm=low_signed))
            high_signed = high - (1 << 32) if high >= (1 << 31) else high
            return self._emit(Instr(Op.MOVHI, rd=rd, imm=high_signed))
        if op == "mov":
            rd, rs1 = _need_reg(toks[0], lineno), _need_reg(toks[1], lineno)
            return self._emit(Instr(Op.MOV, rd=rd, rs1=rs1))
        if op == "adr":
            rd = _need_reg(toks[0], lineno)
            sym = toks[1]
            if sym in labels and labels[sym][0] == "text":
                return self._emit(Instr(Op.ADR, rd=rd,
                                        imm=self._branch_target(sym, lineno, labels)))
            self.relocs.append(Reloc(RelocKind.PCREL32, "text", len(self.text), sym))
            return self._emit(Instr(Op.ADR, rd=rd, imm=0))

        if op in _REG3_OPS:
            rd = _need_reg(toks[0], lineno)
            rs1 = _need_reg(toks[1], lineno)
            rs2 = _need_reg(toks[2], lineno)
            return self._emit(Instr(_REG3_OPS[op], rd=rd, rs1=rs1, rs2=rs2))

        if op in _IMM_OPS:
            rd = _need_reg(toks[0], lineno)
            rs1 = _need_reg(toks[1], lineno)
            imm = _parse_int(toks[2], lineno)
            if not IMM_MIN <= imm <= IMM_MAX:
                raise AssemblerError(f"immediate {imm} out of range", lineno)
            return self._emit(Instr(_IMM_OPS[op], rd=rd, rs1=rs1, imm=imm))

        if op in _LOAD_OPS or op in _STORE_OPS:
            rd = _need_reg(toks[0], lineno)
            m = _MEM_RE.match(toks[1]) if len(toks) > 1 else None
            if not m:
                raise AssemblerError(
                    f"expected off(base) operand in {op}, got {args!r}", lineno)
            imm = _parse_int(m.group(1), lineno)
            rs1 = _need_reg(m.group(2), lineno)
            table = _LOAD_OPS if op in _LOAD_OPS else _STORE_OPS
            return self._emit(Instr(table[op], rd=rd, rs1=rs1, imm=imm))

        if op == "b":
            return self._emit(Instr(Op.B, imm=self._branch_target(toks[0], lineno,
                                                                  labels)))
        if op in _CBRANCH_OPS:
            rs1 = _need_reg(toks[0], lineno)
            rs2 = _need_reg(toks[1], lineno)
            off = self._branch_target(toks[2], lineno, labels)
            return self._emit(Instr(_CBRANCH_OPS[op], rs1=rs1, rs2=rs2, imm=off))
        if op == "call":
            target = toks[0]
            if target in labels:
                return self._emit(Instr(Op.CALL,
                                        imm=self._branch_target(target, lineno,
                                                                labels)))
            raise AssemblerError(
                f"call target {target!r} undefined (externs need ldg+callr)",
                lineno)
        if op == "callr":
            return self._emit(Instr(Op.CALLR, rs1=_need_reg(toks[0], lineno)))
        if op == "jr":
            return self._emit(Instr(Op.JR, rs1=_need_reg(toks[0], lineno)))

        if op in ("ldg", "ldgi"):
            rd = _need_reg(toks[0], lineno)
            sym = toks[1]
            slot = self._extern_slot(sym, lineno)
            if slot > 255:
                raise AssemblerError("more than 256 GOT slots", lineno)
            self.relocs.append(Reloc(RelocKind.GOTPC32, "text", len(self.text),
                                     "", addend=0))
            opcode = Op.LDG if op == "ldg" else Op.LDGI
            return self._emit(Instr(opcode, rd=rd, rs2=slot, imm=0))

        raise AssemblerError(f"unknown mnemonic {op!r}", lineno)


_ASSEMBLE_CACHE: dict[str, ObjectModule] = {}


def assemble(source: str) -> ObjectModule:
    """Assemble CHAIN assembly text into an object module.

    Output is memoized by source text: assembly is deterministic, and
    benchmark sweeps assemble the same few programs at every point.
    Consumers treat the module as read-only (the linker copies ``text``
    into its own buffer), so the cached instance is shared as-is.
    """
    mod = _ASSEMBLE_CACHE.get(source)
    if mod is None:
        mod = _ASSEMBLE_CACHE[source] = Assembler().assemble(source)
    return mod
