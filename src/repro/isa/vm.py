"""CHAIN instruction-set interpreter.

Executes machine code resident in a node's physical memory, charging every
instruction fetch and data access to the node's cache hierarchy.  This is
what makes "the function binary travelled in the message" observable: the
receiver's VM fetches the *mailbox bytes* as instructions, so whether those
bytes were stashed into the LLC or drained to DRAM changes execution time.

The VM is synchronous with respect to the DES: ``call`` runs to completion
and returns the simulated time the execution took; the caller advances the
event clock.  ``WFE`` therefore faults here — event waits belong to the
runtime layer, which models them against the engine.

Cost model: the testbed CPU is a 2.6 GHz out-of-order superscalar; we charge
a flat ~0.5 cycles/instruction (IPC 2) which covers L1-hit loads, plus the
hierarchy latency beyond L1 for memory operations, plus intrinsic costs.

Interpreter engine
------------------

The hot loop runs *predecoded* code.  Each executable 64-byte line is
decoded once into 8 slot executors — closures specialized by an
opcode-indexed dispatch table (:data:`_COMPILERS`, one compiler per
opcode byte) with the operand fields, next-pc, branch targets, and
PC-relative GOT addresses bound in at decode time — and cached in
``PhysicalMemory.code_lines``, shared by every VM on the node.  The
memory layer drops overlapping entries on any write (local stores, GOT
rewrites, DMA into mailbox pages), so self-modifying code re-decodes
exactly like a real I-side refetch; the timing model is unchanged either
way because instruction-fetch latency is charged per line transition,
not per decode.  Per step the loop does a step-limit check, a line
transition check, one dict lookup, and one call — no struct unpacking
and no 40-arm opcode ladder.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import VmFault
from ..machine.node import Node
from ..machine.pages import PAGE_SIZE as _PAGE_SIZE, PROT_R as _PROT_R, \
    PROT_W as _PROT_W, PROT_X as _PROT_X
from ..obs.tracer import TRACER as _T, node_pid
from ..perf import COUNTERS as _C
from .encoding import decode_fields
from .opcodes import Op
from .registers import LR, NREGS, SP, ZR

_PAGE_SHIFT = _PAGE_SIZE.bit_length() - 1

MASK64 = (1 << 64) - 1
_TWO64 = 1 << 64
SIGN64 = 1 << 63

# Addresses at and above this are native intrinsic entry points, not memory.
NATIVE_BASE = 0x7000_0000
NATIVE_STRIDE = 16
# `call()` plants this as the return address of the outermost frame.
RETURN_SENTINEL = 0x7FFF_FF00

# Flat per-instruction cost: 0.5 cycles at 2.6 GHz.
CPI_NS = 0.5 / 2.6

DEFAULT_STACK_BYTES = 64 * 1024

# One 64-byte code line = 8 instruction words, unpacked in a single call
# (field layout matches encoding._WORD).
_LINE_WORDS = struct.Struct("<" + "BBBBi" * 8)


def _sx(value: int) -> int:
    """Unsigned 64-bit -> signed."""
    return value - (1 << 64) if value & SIGN64 else value


def _ux(value: int) -> int:
    return value & MASK64


@dataclass
class CallResult:
    ret: int          # a0 on return (signed)
    elapsed_ns: float  # simulated execution time
    steps: int        # instructions retired (intrinsics count as one)


# ---------------------------------------------------------------------------
# Opcode-indexed dispatch table of per-instruction compilers.
#
# ``_COMPILERS[opcode_byte]`` maps a decoded instruction to a slot
# executor ``fn(vm, regs, ebox, now) -> next_pc``: ``regs`` is the
# per-call register file, ``ebox`` a one-element list holding the
# accumulated elapsed-ns (handlers add any latency beyond the flat CPI
# charge), ``now`` the call's DES start time.  Executors are compiled
# per (node, line) and shared by every VM on the node, so node-level
# objects (mem/hier/pages) are bound at compile time while per-VM state
# (core, page checking, intrinsics) is read off the ``vm`` argument.
# Unknown opcode bytes compile to a raiser — lines are decoded whole, so
# data slots sharing a line with code must not fault until executed.
# ---------------------------------------------------------------------------

def _c_illegal(cc, op, rd, rs1, rs2, imm, pc):
    def f(vm, regs, ebox, now):
        raise VmFault(f"illegal opcode {op:#x}", pc=pc)
    return f


def _c_nop(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    return lambda vm, regs, ebox, now: nxt


def _c_halt(cc, op, rd, rs1, rs2, imm, pc):
    return lambda vm, regs, ebox, now: RETURN_SENTINEL


def _c_wfe(cc, op, rd, rs1, rs2, imm, pc):
    def f(vm, regs, ebox, now):
        raise VmFault(
            "WFE executed in synchronous VM context (runtime-only op)",
            pc=pc)
    return f


def _c_sev(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    node = cc.node

    def f(vm, regs, ebox, now):
        node.notify_write(regs[rs1], 8)
        return nxt
    return f


def _c_movi(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt
    val = imm & MASK64

    def f(vm, regs, ebox, now):
        regs[rd] = val
        return nxt
    return f


def _c_movhi(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt
    hi = (imm & 0xFFFFFFFF) << 32

    def f(vm, regs, ebox, now):
        regs[rd] = (regs[rd] & 0xFFFFFFFF) | hi
        return nxt
    return f


def _c_mov(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = regs[rs1]
        return nxt
    return f


def _c_adr(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt
    val = (pc + imm) & MASK64

    def f(vm, regs, ebox, now):
        regs[rd] = val
        return nxt
    return f


# -- register arithmetic ----------------------------------------------------

def _rr(value_fn):
    """Compiler for a pure two-register ALU op; ``value_fn(a, b)`` must
    return the masked 64-bit result."""
    def compiler(cc, op, rd, rs1, rs2, imm, pc):
        nxt = pc + 8
        if rd == ZR:  # pure op: no side effects to preserve
            return lambda vm, regs, ebox, now: nxt

        def f(vm, regs, ebox, now):
            regs[rd] = value_fn(regs[rs1], regs[rs2])
            return nxt
        return f
    return compiler


def _c_div(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8

    def f(vm, regs, ebox, now):
        sa, sb = _sx(regs[rs1]), _sx(regs[rs2])
        if sb == 0:
            raise VmFault("division by zero", pc=pc)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        if rd != ZR:
            regs[rd] = q & MASK64
        return nxt
    return f


def _c_rem(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8

    def f(vm, regs, ebox, now):
        sa, sb = _sx(regs[rs1]), _sx(regs[rs2])
        if sb == 0:
            raise VmFault("division by zero", pc=pc)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        if rd != ZR:
            regs[rd] = (sa - q * sb) & MASK64
        return nxt
    return f


# -- immediate arithmetic ---------------------------------------------------

def _ri(value_fn):
    """Compiler for a pure register+immediate ALU op; ``value_fn`` is
    called at compile time with ``imm`` and returns ``a -> result``."""
    def compiler(cc, op, rd, rs1, rs2, imm, pc):
        nxt = pc + 8
        if rd == ZR:
            return lambda vm, regs, ebox, now: nxt
        apply_fn = value_fn(imm)

        def f(vm, regs, ebox, now):
            regs[rd] = apply_fn(regs[rs1])
            return nxt
        return f
    return compiler


def _c_addi(cc, op, rd, rs1, rs2, imm, pc):
    # ADDI is the single hottest opcode (pointer/stack math): open-code
    # it rather than paying the generic _ri double call.
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = (regs[rs1] + imm) & MASK64
        return nxt
    return f


# The remaining loop-body staples get the same treatment as ADDI: one
# closure, operation inline, no per-execution value_fn call.

def _c_add(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = (regs[rs1] + regs[rs2]) & MASK64
        return nxt
    return f


def _c_sub(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = (regs[rs1] - regs[rs2]) & MASK64
        return nxt
    return f


def _c_and(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = regs[rs1] & regs[rs2]
        return nxt
    return f


def _c_or(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = regs[rs1] | regs[rs2]
        return nxt
    return f


def _c_xor(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = regs[rs1] ^ regs[rs2]
        return nxt
    return f


def _c_shli(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt
    s = imm & 63

    def f(vm, regs, ebox, now):
        regs[rd] = (regs[rs1] << s) & MASK64
        return nxt
    return f


def _c_shri(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt
    s = imm & 63

    def f(vm, regs, ebox, now):
        regs[rd] = regs[rs1] >> s
        return nxt
    return f


def _c_andi(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt
    u = imm & MASK64

    def f(vm, regs, ebox, now):
        regs[rd] = regs[rs1] & u
        return nxt
    return f


def _c_slti(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        a = regs[rs1]
        if a & SIGN64:
            a -= _TWO64
        regs[rd] = 1 if a < imm else 0
        return nxt
    return f


# -- loads ------------------------------------------------------------------

def _load(size, read_fn):
    """Compiler factory for the load family.  ``read_fn(mem, addr)``
    returns the (masked) register value.

    The body open-codes the two dominant fast paths — a one-page
    permission probe and a one-line L1D hit — with bit-identical
    bookkeeping to ``PageTable.check_read`` / ``MemoryHierarchy.access``
    (probe counter, hit count, LRU tick); anything unusual (page
    straddle, denial, L1 miss, line straddle) falls back to the full
    calls.  An L1D hit costs exactly ``l1_lat``, which the VM's CPI
    already covers, so the hit path charges no time — same as before.
    """
    def compiler(cc, op, rd, rs1, rs2, imm, pc):
        nxt = pc + 8
        mem, hier, pages, l1_lat = cc.mem, cc.hier, cc.pages, cc.l1_lat
        prot, mem_size = pages.prot, pages.mem_size
        l1d = hier.l1d
        need = _PROT_R
        size1 = size - 1
        # Unchecked variant of read_fn: the in-bounds test it would do is
        # folded into the fast-path guard below (``end <= mem_size``), so
        # the accessor itself can skip it.  Same value, same faults.
        fast_fn = _FAST_READS.get(read_fn, read_fn)

        def f(vm, regs, ebox, now):
            addr = (regs[rs1] + imm) & MASK64
            end = addr + size
            if vm.check_pages:
                page = addr >> _PAGE_SHIFT
                if (end > mem_size or (end - 1) >> _PAGE_SHIFT != page
                        or prot[page] & need != need):
                    pages.check_read(addr, size)
            line = addr >> 6
            l1 = l1d[vm.core]
            way = l1._map.get(line)
            if way is not None and (addr + size1) >> 6 == line:
                _C.cache_probes += 1
                l1.hits += 1
                l1._tick += 1
                l1.lru[line & l1._set_mask][way] = l1._tick
            else:
                lat = hier.access(now + ebox[0], vm.core, addr, size, "read")
                if lat > l1_lat:
                    ebox[0] += lat - l1_lat
            if end <= mem_size:  # addr is already masked non-negative
                value = fast_fn(mem, addr)
            else:
                value = read_fn(mem, addr)  # out of range: checked path faults
            if rd != ZR:
                regs[rd] = value
            return nxt
        return f
    return compiler


def _read_ld(mem, addr):
    return mem.read_u64(addr)


def _read_lw(mem, addr):
    value = mem.read_u32(addr)
    return (value - (1 << 32)) & MASK64 if value >= (1 << 31) else value


def _read_lwu(mem, addr):
    return mem.read_u32(addr)


def _read_lh(mem, addr):
    value = int.from_bytes(mem.read(addr, 2), "little")
    return (value - (1 << 16)) & MASK64 if value >= (1 << 15) else value


def _read_lhu(mem, addr):
    return int.from_bytes(mem.read(addr, 2), "little")


def _read_lb(mem, addr):
    value = mem.read_u8(addr)
    return (value - (1 << 8)) & MASK64 if value >= (1 << 7) else value


def _read_lbu(mem, addr):
    return mem.read_u8(addr)


# Unchecked scalar readers for the compiled fast path: the caller proves
# ``addr + size <= mem.size`` before dispatching here, so the bounds
# check inside PhysicalMemory.read_* is pure overhead.  Values (and sign
# extension) are identical to the checked counterparts.
def _fast_ld(mem, addr):
    return int.from_bytes(mem._mv[addr:addr + 8], "little")


def _fast_lw(mem, addr):
    value = int.from_bytes(mem._mv[addr:addr + 4], "little")
    return (value - (1 << 32)) & MASK64 if value >= (1 << 31) else value


def _fast_lwu(mem, addr):
    return int.from_bytes(mem._mv[addr:addr + 4], "little")


def _fast_lb(mem, addr):
    value = mem._mv[addr]
    return (value - (1 << 8)) & MASK64 if value >= (1 << 7) else value


def _fast_lbu(mem, addr):
    return mem._mv[addr]


_FAST_READS = {
    _read_ld: _fast_ld,
    _read_lw: _fast_lw,
    _read_lwu: _fast_lwu,
    _read_lb: _fast_lb,
    _read_lbu: _fast_lbu,
}


# -- stores -----------------------------------------------------------------

def _store(size, write_fn):
    """Compiler factory for the store family. ``write_fn(mem, addr, v)``.

    Open-codes the same fast paths as ``_load`` (one-page permission
    probe, one-line L1D hit — which additionally sets the dirty bit,
    as ``access`` does for writes); unusual cases take the full calls.
    """
    def compiler(cc, op, rd, rs1, rs2, imm, pc):
        nxt = pc + 8
        mem, hier, pages, l1_lat = cc.mem, cc.hier, cc.pages, cc.l1_lat
        node = cc.node
        prot, mem_size = pages.prot, pages.mem_size
        l1d = hier.l1d
        need = _PROT_W
        size1 = size - 1
        # Unchecked variant (bounds folded into the fast-path guard, as in
        # the load family above).
        fast_fn = _FAST_WRITES.get(write_fn, write_fn)

        def f(vm, regs, ebox, now):
            addr = (regs[rs1] + imm) & MASK64
            end = addr + size
            if vm.check_pages:
                page = addr >> _PAGE_SHIFT
                if (end > mem_size or (end - 1) >> _PAGE_SHIFT != page
                        or prot[page] & need != need):
                    pages.check_write(addr, size)
            line = addr >> 6
            l1 = l1d[vm.core]
            way = l1._map.get(line)
            one_line = (addr + size1) >> 6 == line
            if way is not None and one_line:
                _C.cache_probes += 1
                l1.hits += 1
                l1._tick += 1
                sidx = line & l1._set_mask
                l1.lru[sidx][way] = l1._tick
                l1.dirty[sidx][way] = True
            else:
                lat = hier.access(now + ebox[0], vm.core, addr, size, "write")
                if lat > l1_lat:
                    ebox[0] += lat - l1_lat
            if end <= mem_size:  # addr is already masked non-negative
                fast_fn(mem, addr, regs[rd])
            else:
                write_fn(mem, addr, regs[rd])  # checked path faults
            w = node._watch
            if w:
                if one_line:  # scalar store hitting one monitor line
                    ev = w.get(line)
                    if ev is not None:
                        ev.fire()
                else:
                    node.notify_write(addr, size)
            return nxt
        return f
    return compiler


def _write_st(mem, addr, value):
    mem.write_u64(addr, value)


def _write_sw(mem, addr, value):
    mem.write_u32(addr, value)


def _write_sh(mem, addr, value):
    mem.write(addr, (value & 0xFFFF).to_bytes(2, "little"))


def _write_sb(mem, addr, value):
    mem.write_u8(addr, value)


# Unchecked scalar writers (see _FAST_READS): bounds proven by the
# caller; the predecoded-code invalidation contract is preserved.
def _fast_st(mem, addr, value):
    mem._mv[addr:addr + 8] = (value & MASK64).to_bytes(8, "little")
    if mem.code_lines:
        mem._retire_code(addr, 8)


def _fast_sw(mem, addr, value):
    mem._mv[addr:addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")
    if mem.code_lines:
        mem._retire_code(addr, 4)


def _fast_sb(mem, addr, value):
    mem._mv[addr] = value & 0xFF
    if mem.code_lines:
        mem._retire_code(addr, 1)


_FAST_WRITES = {
    _write_st: _fast_st,
    _write_sw: _fast_sw,
    _write_sb: _fast_sb,
}


# -- control flow -----------------------------------------------------------

def _c_b(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    return lambda vm, regs, ebox, now: tgt


def _branch(taken_fn):
    """Compiler for conditional branches; ``taken_fn(a, b)`` decides."""
    def compiler(cc, op, rd, rs1, rs2, imm, pc):
        tgt = pc + imm
        nxt = pc + 8

        def f(vm, regs, ebox, now):
            return tgt if taken_fn(regs[rs1], regs[rs2]) else nxt
        return f
    return compiler


# Branches sit in every loop back-edge, so the six compare ops are
# open-coded instead of paying _branch's per-execution taken_fn call
# (sign extension inlined too — same comparison _sx would produce).

def _c_beq(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8
    return lambda vm, regs, ebox, now: tgt if regs[rs1] == regs[rs2] else nxt


def _c_bne(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8
    return lambda vm, regs, ebox, now: tgt if regs[rs1] != regs[rs2] else nxt


def _c_blt(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8

    def f(vm, regs, ebox, now):
        a = regs[rs1]
        b = regs[rs2]
        if a & SIGN64:
            a -= _TWO64
        if b & SIGN64:
            b -= _TWO64
        return tgt if a < b else nxt
    return f


def _c_bge(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8

    def f(vm, regs, ebox, now):
        a = regs[rs1]
        b = regs[rs2]
        if a & SIGN64:
            a -= _TWO64
        if b & SIGN64:
            b -= _TWO64
        return tgt if a >= b else nxt
    return f


def _c_bltu(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8
    return lambda vm, regs, ebox, now: tgt if regs[rs1] < regs[rs2] else nxt


def _c_bgeu(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8
    return lambda vm, regs, ebox, now: tgt if regs[rs1] >= regs[rs2] else nxt


def _c_call(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8

    def f(vm, regs, ebox, now):
        regs[LR] = nxt
        return tgt
    return f


def _c_callr(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8

    def f(vm, regs, ebox, now):
        target = regs[rs1]
        regs[LR] = nxt
        if target >= NATIVE_BASE:
            ebox[0] += vm._run_native(target, regs, now + ebox[0])
            return regs[LR]
        return target
    return f


def _c_ret(cc, op, rd, rs1, rs2, imm, pc):
    return lambda vm, regs, ebox, now: regs[LR]


def _c_jr(cc, op, rd, rs1, rs2, imm, pc):
    def f(vm, regs, ebox, now):
        target = regs[rs1]
        if target >= NATIVE_BASE and target != RETURN_SENTINEL:
            ebox[0] += vm._run_native(target, regs, now + ebox[0])
            return regs[LR]
        return target
    return f


# -- GOT access -------------------------------------------------------------

def _c_ldg(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    mem, hier, pages, l1_lat = cc.mem, cc.hier, cc.pages, cc.l1_lat
    got_entry = (pc + imm + rs2 * 8) & MASK64  # PC-relative: a constant

    def f(vm, regs, ebox, now):
        if vm.check_pages:
            pages.check_read(got_entry, 8)
        lat = hier.access(now + ebox[0], vm.core, got_entry, 8, "read")
        if lat > l1_lat:
            ebox[0] += lat - l1_lat
        if rd != ZR:
            regs[rd] = mem.read_u64(got_entry)
        return nxt
    return f


def _c_ldgi(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    mem, hier, pages, l1_lat = cc.mem, cc.hier, cc.pages, cc.l1_lat
    ptr_loc = (pc + imm) & MASK64  # PC-relative: a constant
    slot_off = rs2 * 8

    def f(vm, regs, ebox, now):
        if vm.check_pages:
            pages.check_read(ptr_loc, 8)
        lat = hier.access(now + ebox[0], vm.core, ptr_loc, 8, "read")
        if lat > l1_lat:
            ebox[0] += lat - l1_lat
        got_entry = (mem.read_u64(ptr_loc) + slot_off) & MASK64
        if vm.check_pages:
            pages.check_read(got_entry, 8)
        lat = hier.access(now + ebox[0], vm.core, got_entry, 8, "read")
        if lat > l1_lat:
            ebox[0] += lat - l1_lat
        if rd != ZR:
            regs[rd] = mem.read_u64(got_entry)
        return nxt
    return f


_COMPILERS: list = [_c_illegal] * 256
for _op, _compiler in {
    Op.NOP: _c_nop, Op.HALT: _c_halt, Op.WFE: _c_wfe, Op.SEV: _c_sev,
    Op.MOVI: _c_movi, Op.MOVHI: _c_movhi, Op.MOV: _c_mov, Op.ADR: _c_adr,
    Op.ADD: _c_add,
    Op.SUB: _c_sub,
    Op.MUL: _rr(lambda a, b: (a * b) & MASK64),
    Op.DIV: _c_div, Op.REM: _c_rem,
    Op.AND: _c_and,
    Op.OR: _c_or,
    Op.XOR: _c_xor,
    Op.SHL: _rr(lambda a, b: (a << (b & 63)) & MASK64),
    Op.SHR: _rr(lambda a, b: a >> (b & 63)),
    Op.SAR: _rr(lambda a, b: (_sx(a) >> (b & 63)) & MASK64),
    Op.SLT: _rr(lambda a, b: 1 if _sx(a) < _sx(b) else 0),
    Op.SLTU: _rr(lambda a, b: 1 if a < b else 0),
    Op.ADDI: _c_addi,
    Op.MULI: _ri(lambda imm: lambda a: (a * imm) & MASK64),
    Op.ANDI: _c_andi,
    Op.ORI: _ri(lambda imm: lambda a, _u=imm & MASK64: a | _u),
    Op.XORI: _ri(lambda imm: lambda a, _u=imm & MASK64: a ^ _u),
    Op.SHLI: _c_shli,
    Op.SHRI: _c_shri,
    Op.SARI: _ri(lambda imm: lambda a, _s=imm & 63: (_sx(a) >> _s) & MASK64),
    Op.SLTI: _c_slti,
    Op.LD: _load(8, _read_ld), Op.LW: _load(4, _read_lw),
    Op.LWU: _load(4, _read_lwu), Op.LH: _load(2, _read_lh),
    Op.LHU: _load(2, _read_lhu), Op.LB: _load(1, _read_lb),
    Op.LBU: _load(1, _read_lbu),
    Op.ST: _store(8, _write_st), Op.SW: _store(4, _write_sw),
    Op.SH: _store(2, _write_sh), Op.SB: _store(1, _write_sb),
    Op.B: _c_b,
    Op.BEQ: _c_beq,
    Op.BNE: _c_bne,
    Op.BLT: _c_blt,
    Op.BGE: _c_bge,
    Op.BLTU: _c_bltu,
    Op.BGEU: _c_bgeu,
    Op.CALL: _c_call, Op.CALLR: _c_callr, Op.RET: _c_ret, Op.JR: _c_jr,
    Op.LDG: _c_ldg, Op.LDGI: _c_ldgi,
}.items():
    _COMPILERS[int(_op)] = _compiler


class NodeCodeCache:
    """Per-node predecoded-code compiler, shared by every VM on the node.

    Compiled lines live in ``node.mem.code_lines`` so the memory layer
    can invalidate them on overlapping writes (the VM never has to check
    staleness itself: the hot loop re-reads the dict every step, so a
    dropped entry forces a re-decode on the very next instruction).
    """

    __slots__ = ("node", "mem", "hier", "pages", "l1_lat", "_decoded")

    def __init__(self, node: Node):
        self.node = node
        self.mem = node.mem
        self.hier = node.hier
        self.pages = node.pages
        self.l1_lat = node.hier.cfg.l1_lat
        # (line, raw bytes) -> compiled slots.  Message delivery rewrites
        # mailbox lines with *identical* bytes on every send of the same
        # function; the invalidation contract still drops the
        # ``code_lines`` entry, but recompiling is pure waste — closures
        # depend only on the line's bytes and its address.  Entries
        # accumulate per (line, content) pair; nodes live for one sweep
        # point, so this stays small.
        self._decoded: dict = {}

    def compile_line(self, line: int) -> tuple:
        """Decode + compile all 8 slots of a 64-byte line, cache, return.

        Memory is a whole number of lines, so a line containing any
        in-bounds pc is fully in bounds; the whole line unpacks in one
        struct call.  Mailbox-delivered code is re-compiled every time a
        new message lands on its lines, so this path is warm, not cold.
        """
        mem = self.mem
        base = line << 6
        raw = bytes(mem._mv[base:base + 64])
        key = (line, raw)
        slots = self._decoded.get(key)
        if slots is None:
            f = _LINE_WORDS.unpack(raw)
            compilers = _COMPILERS
            out = []
            pc = base
            for i in range(0, 40, 5):
                out.append(compilers[f[i]](
                    self, f[i], f[i + 1], f[i + 2], f[i + 3], f[i + 4], pc))
                pc += 8
            slots = self._decoded[key] = tuple(out)
        mem.code_lines[line] = slots
        return slots

    def compile_one(self, pc: int):
        """Uncached single-slot compile (misaligned-pc fallback)."""
        fields = decode_fields(self.mem.data, pc)
        return _COMPILERS[fields[0]](self, *fields, pc)


class Vm:
    """One execution context pinned to a core of a node."""

    def __init__(self, node: Node, core: int = 0, intrinsics=None,
                 check_pages: bool = True):
        from .intrinsics import IntrinsicTable  # local import to avoid cycle
        self.node = node
        self.core = core
        self.intrinsics = intrinsics if intrinsics is not None else IntrinsicTable()
        self.check_pages = check_pages
        code = getattr(node, "code_cache", None)
        if code is None:
            code = node.code_cache = NodeCodeCache(node)
        self._code = code
        from ..machine.pages import PROT_RW
        self.stack_base = node.map_region(DEFAULT_STACK_BYTES, PROT_RW,
                                          align=4096, label="vmstack")
        self.stack_top = self.stack_base + DEFAULT_STACK_BYTES

    # ------------------------------------------------------------------
    def call(self, entry: int, args: tuple[int, ...] = (), now: float = 0.0,
             max_steps: int = 4_000_000) -> CallResult:
        """Call the function at ``entry`` with up to 8 integer args.

        Returns the signed a0 value and the simulated elapsed time.  The
        executed code sees the node's real memory; any register state is
        fresh per call (the runtime's invocation stub behaves likewise).
        """
        if len(args) > 8:
            raise VmFault(f"more than 8 arguments ({len(args)})")
        node = self.node
        mem = node.mem
        hier = node.hier
        pages = node.pages
        core = self.core
        mem_size = mem.size
        code_lines = mem.code_lines
        compile_line = self._code.compile_line

        regs = [0] * NREGS
        for i, a in enumerate(args):
            regs[i] = _ux(int(a))
        regs[SP] = self.stack_top
        regs[LR] = RETURN_SENTINEL

        pc = entry
        # elapsed-ns travels in a one-element box so slot executors can
        # add memory/native latencies to it
        ebox = [node.runnable_delay(core, now)]  # preempted at entry?
        steps = 0
        cur_line = None
        check = self.check_pages
        get_slots = code_lines.get
        access_line = hier.access_line
        check_exec = pages.check_exec
        # Line-transition fast path locals: the exec-permission probe and
        # the sequential L1I hit are open-coded below with the exact
        # bookkeeping of PageTable._check / access_line's inline path;
        # anything unusual falls back to the full calls.
        prot = pages.prot
        last_if = hier._last_ifetch
        l1i = hier.l1i[core]
        l1i_map = l1i._map
        l1_lat = hier._l1_lat

        while pc != RETURN_SENTINEL:
            if steps >= max_steps:
                raise VmFault(f"step limit {max_steps} exceeded", pc=pc)
            line = pc >> 6
            if line != cur_line:
                # bounds before any model side effect: an out-of-range
                # fetch must fault without touching cache state
                if pc < 0 or pc + 8 > mem_size:
                    raise VmFault("instruction fetch out of memory", pc=pc)
                if check:
                    page = pc >> _PAGE_SHIFT
                    if ((pc + 7) >> _PAGE_SHIFT != page
                            or prot[page] & _PROT_X != _PROT_X):
                        check_exec(pc, 8)
                if line == last_if[core] + 1:
                    way = l1i_map.get(line)
                    if way is not None:
                        _C.cache_probes += 1
                        last_if[core] = line
                        l1i.hits += 1
                        l1i._tick += 1
                        l1i.lru[line & l1i._set_mask][way] = l1i._tick
                        ebox[0] += l1_lat
                    else:
                        ebox[0] += access_line(now + ebox[0], core, line,
                                               "ifetch")
                else:
                    ebox[0] += access_line(now + ebox[0], core, line, "ifetch")
                cur_line = line
            steps += 1
            ebox[0] += CPI_NS
            if pc & 7:
                pc = self._step_misaligned(pc, regs, ebox, now)
                continue
            slots = get_slots(line)
            if slots is None:
                slots = compile_line(line)
            pc = slots[(pc >> 3) & 7](self, regs, ebox, now)

        elapsed = ebox[0]
        node.add_busy_ns(core, elapsed)
        _C.instructions += steps
        if _T.enabled:
            _T.span(node_pid(node.node_id), core, "vm.call", now,
                    now + elapsed, {"steps": steps, "entry": entry})
        return CallResult(ret=_sx(regs[0]), elapsed_ns=elapsed, steps=steps)

    # ------------------------------------------------------------------
    def _step_misaligned(self, pc: int, regs: list[int], ebox: list[float],
                         now: float) -> int:
        """Execute one instruction at a non-8-aligned pc.

        Predecoded lines are indexed by 8-byte slot, so a misaligned pc
        (possible only via a computed jump — the toolchain never emits
        one) decodes and executes directly, uncached, with the original
        per-instruction semantics."""
        if pc < 0 or pc + 8 > self.node.mem.size:
            raise VmFault("instruction fetch out of memory", pc=pc)
        return self._code.compile_one(pc)(self, regs, ebox, now)

    # ------------------------------------------------------------------
    def _run_native(self, target: int, regs: list[int], now: float) -> float:
        idx, rem = divmod(target - NATIVE_BASE, NATIVE_STRIDE)
        if rem or not self.intrinsics.valid_index(idx):
            raise VmFault(f"call to bad native address {target:#x}")
        args = tuple(_sx(regs[i]) for i in range(8))
        ret, cost = self.intrinsics.invoke(idx, self, now, args)
        regs[0] = _ux(int(ret))
        return cost


def native_address(index: int) -> int:
    """Native entry-point address for intrinsic ``index``."""
    return NATIVE_BASE + index * NATIVE_STRIDE
