"""CHAIN instruction-set interpreter.

Executes machine code resident in a node's physical memory, charging every
instruction fetch and data access to the node's cache hierarchy.  This is
what makes "the function binary travelled in the message" observable: the
receiver's VM fetches the *mailbox bytes* as instructions, so whether those
bytes were stashed into the LLC or drained to DRAM changes execution time.

The VM is synchronous with respect to the DES: ``call`` runs to completion
and returns the simulated time the execution took; the caller advances the
event clock.  ``WFE`` therefore faults here — event waits belong to the
runtime layer, which models them against the engine.

Cost model: the testbed CPU is a 2.6 GHz out-of-order superscalar; we charge
a flat ~0.5 cycles/instruction (IPC 2) which covers L1-hit loads, plus the
hierarchy latency beyond L1 for memory operations, plus intrinsic costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MemoryFault, VmFault
from ..machine.node import Node
from .encoding import decode_fields
from .opcodes import MEM_SIZE, Op
from .registers import LR, NREGS, SP, ZR

MASK64 = (1 << 64) - 1
SIGN64 = 1 << 63

# Addresses at and above this are native intrinsic entry points, not memory.
NATIVE_BASE = 0x7000_0000
NATIVE_STRIDE = 16
# `call()` plants this as the return address of the outermost frame.
RETURN_SENTINEL = 0x7FFF_FF00

# Flat per-instruction cost: 0.5 cycles at 2.6 GHz.
CPI_NS = 0.5 / 2.6

DEFAULT_STACK_BYTES = 64 * 1024


def _sx(value: int) -> int:
    """Unsigned 64-bit -> signed."""
    return value - (1 << 64) if value & SIGN64 else value


def _ux(value: int) -> int:
    return value & MASK64


@dataclass
class CallResult:
    ret: int          # a0 on return (signed)
    elapsed_ns: float  # simulated execution time
    steps: int        # instructions retired (intrinsics count as one)


class Vm:
    """One execution context pinned to a core of a node."""

    def __init__(self, node: Node, core: int = 0, intrinsics=None,
                 check_pages: bool = True):
        from .intrinsics import IntrinsicTable  # local import to avoid cycle
        self.node = node
        self.core = core
        self.intrinsics = intrinsics if intrinsics is not None else IntrinsicTable()
        self.check_pages = check_pages
        from ..machine.pages import PROT_RW
        self.stack_base = node.map_region(DEFAULT_STACK_BYTES, PROT_RW,
                                          align=4096, label="vmstack")
        self.stack_top = self.stack_base + DEFAULT_STACK_BYTES

    # ------------------------------------------------------------------
    def call(self, entry: int, args: tuple[int, ...] = (), now: float = 0.0,
             max_steps: int = 4_000_000) -> CallResult:
        """Call the function at ``entry`` with up to 8 integer args.

        Returns the signed a0 value and the simulated elapsed time.  The
        executed code sees the node's real memory; any register state is
        fresh per call (the runtime's invocation stub behaves likewise).
        """
        if len(args) > 8:
            raise VmFault(f"more than 8 arguments ({len(args)})")
        node = self.node
        mem = node.mem
        hier = node.hier
        pages = node.pages
        data = mem.data  # numpy view for fast fetch
        core = self.core
        l1_lat = hier.cfg.l1_lat

        regs = [0] * NREGS
        for i, a in enumerate(args):
            regs[i] = _ux(int(a))
        regs[SP] = self.stack_top
        regs[LR] = RETURN_SENTINEL

        pc = entry
        elapsed = node.runnable_delay(core, now)  # preempted at entry?
        steps = 0
        cur_line = -1
        watch = node._watch
        check = self.check_pages

        while True:
            if pc == RETURN_SENTINEL:
                break
            if steps >= max_steps:
                raise VmFault(f"step limit {max_steps} exceeded", pc=pc)
            line = pc >> 6
            if line != cur_line:
                if check:
                    pages.check_exec(pc, 8)
                elapsed += hier.access_line(now + elapsed, core, line, "ifetch")
                cur_line = line
            if pc < 0 or pc + 8 > mem.size:
                raise VmFault("instruction fetch out of memory", pc=pc)
            op, rd, rs1, rs2, imm = decode_fields(data, pc)
            steps += 1
            elapsed += CPI_NS
            next_pc = pc + 8

            if op == Op.ADDI:
                if rd != ZR:
                    regs[rd] = _ux(regs[rs1] + imm)
            elif op == Op.LD or (Op.LW <= op <= Op.LBU):
                addr = _ux(regs[rs1] + imm)
                size = MEM_SIZE[op]
                if check:
                    pages.check_read(addr, size)
                lat = hier.access(now + elapsed, core, addr, size, "read")
                if lat > l1_lat:
                    elapsed += lat - l1_lat
                if op == Op.LD:
                    value = mem.read_u64(addr)
                elif op == Op.LW:
                    value = mem.read_u32(addr)
                    value = _ux(value - (1 << 32) if value >= (1 << 31) else value)
                elif op == Op.LWU:
                    value = mem.read_u32(addr)
                elif op == Op.LH or op == Op.LHU:
                    value = int.from_bytes(mem.read(addr, 2), "little")
                    if op == Op.LH and value >= (1 << 15):
                        value = _ux(value - (1 << 16))
                else:  # LB / LBU
                    value = mem.read_u8(addr)
                    if op == Op.LB and value >= (1 << 7):
                        value = _ux(value - (1 << 8))
                if rd != ZR:
                    regs[rd] = value
            elif Op.ST <= op <= Op.SB:
                addr = _ux(regs[rs1] + imm)
                size = MEM_SIZE[op]
                if check:
                    pages.check_write(addr, size)
                lat = hier.access(now + elapsed, core, addr, size, "write")
                if lat > l1_lat:
                    elapsed += lat - l1_lat
                value = regs[rd]
                if op == Op.ST:
                    mem.write_u64(addr, value)
                elif op == Op.SW:
                    mem.write_u32(addr, value)
                elif op == Op.SH:
                    mem.write(addr, (value & 0xFFFF).to_bytes(2, "little"))
                else:
                    mem.write_u8(addr, value)
                if watch:
                    node.notify_write(addr, size)
            elif Op.ADD <= op <= Op.SLTU:
                a, b = regs[rs1], regs[rs2]
                if op == Op.ADD:
                    value = a + b
                elif op == Op.SUB:
                    value = a - b
                elif op == Op.MUL:
                    value = a * b
                elif op == Op.DIV:
                    sa, sb = _sx(a), _sx(b)
                    if sb == 0:
                        raise VmFault("division by zero", pc=pc)
                    q = abs(sa) // abs(sb)
                    value = q if (sa < 0) == (sb < 0) else -q
                elif op == Op.REM:
                    sa, sb = _sx(a), _sx(b)
                    if sb == 0:
                        raise VmFault("division by zero", pc=pc)
                    q = abs(sa) // abs(sb)
                    if (sa < 0) != (sb < 0):
                        q = -q
                    value = sa - q * sb
                elif op == Op.AND:
                    value = a & b
                elif op == Op.OR:
                    value = a | b
                elif op == Op.XOR:
                    value = a ^ b
                elif op == Op.SHL:
                    value = a << (b & 63)
                elif op == Op.SHR:
                    value = a >> (b & 63)
                elif op == Op.SAR:
                    value = _sx(a) >> (b & 63)
                elif op == Op.SLT:
                    value = 1 if _sx(a) < _sx(b) else 0
                else:  # SLTU
                    value = 1 if a < b else 0
                if rd != ZR:
                    regs[rd] = _ux(value)
            elif Op.MULI <= op <= Op.SLTI:
                a = regs[rs1]
                if op == Op.MULI:
                    value = a * imm
                elif op == Op.ANDI:
                    value = a & _ux(imm)
                elif op == Op.ORI:
                    value = a | _ux(imm)
                elif op == Op.XORI:
                    value = a ^ _ux(imm)
                elif op == Op.SHLI:
                    value = a << (imm & 63)
                elif op == Op.SHRI:
                    value = a >> (imm & 63)
                elif op == Op.SARI:
                    value = _sx(a) >> (imm & 63)
                else:  # SLTI
                    value = 1 if _sx(a) < imm else 0
                if rd != ZR:
                    regs[rd] = _ux(value)
            elif op == Op.B:
                next_pc = pc + imm
            elif Op.BEQ <= op <= Op.BGEU:
                a, b = regs[rs1], regs[rs2]
                if op == Op.BEQ:
                    taken = a == b
                elif op == Op.BNE:
                    taken = a != b
                elif op == Op.BLT:
                    taken = _sx(a) < _sx(b)
                elif op == Op.BGE:
                    taken = _sx(a) >= _sx(b)
                elif op == Op.BLTU:
                    taken = a < b
                else:
                    taken = a >= b
                if taken:
                    next_pc = pc + imm
            elif op == Op.MOVI:
                if rd != ZR:
                    regs[rd] = _ux(imm)
            elif op == Op.MOVHI:
                if rd != ZR:
                    regs[rd] = (regs[rd] & 0xFFFFFFFF) | ((imm & 0xFFFFFFFF) << 32)
            elif op == Op.MOV:
                if rd != ZR:
                    regs[rd] = regs[rs1]
            elif op == Op.ADR:
                if rd != ZR:
                    regs[rd] = _ux(pc + imm)
            elif op == Op.LDG:
                got_entry = _ux(pc + imm + rs2 * 8)
                if check:
                    pages.check_read(got_entry, 8)
                lat = hier.access(now + elapsed, core, got_entry, 8, "read")
                if lat > l1_lat:
                    elapsed += lat - l1_lat
                if rd != ZR:
                    regs[rd] = mem.read_u64(got_entry)
            elif op == Op.LDGI:
                ptr_loc = _ux(pc + imm)
                if check:
                    pages.check_read(ptr_loc, 8)
                lat = hier.access(now + elapsed, core, ptr_loc, 8, "read")
                if lat > l1_lat:
                    elapsed += lat - l1_lat
                got_base = mem.read_u64(ptr_loc)
                got_entry = _ux(got_base + rs2 * 8)
                if check:
                    pages.check_read(got_entry, 8)
                lat = hier.access(now + elapsed, core, got_entry, 8, "read")
                if lat > l1_lat:
                    elapsed += lat - l1_lat
                if rd != ZR:
                    regs[rd] = mem.read_u64(got_entry)
            elif op == Op.CALL:
                regs[LR] = pc + 8
                next_pc = pc + imm
            elif op == Op.CALLR:
                target = regs[rs1]
                regs[LR] = pc + 8
                if target >= NATIVE_BASE:
                    elapsed += self._run_native(target, regs, now + elapsed)
                    next_pc = regs[LR]
                else:
                    next_pc = target
            elif op == Op.RET:
                next_pc = regs[LR]
            elif op == Op.JR:
                target = regs[rs1]
                if target >= NATIVE_BASE and target != RETURN_SENTINEL:
                    elapsed += self._run_native(target, regs, now + elapsed)
                    next_pc = regs[LR]
                else:
                    next_pc = target
            elif op == Op.NOP:
                pass
            elif op == Op.HALT:
                break
            elif op == Op.SEV:
                node.notify_write(regs[rs1], 8)
            elif op == Op.WFE:
                raise VmFault(
                    "WFE executed in synchronous VM context (runtime-only op)",
                    pc=pc)
            else:
                raise VmFault(f"illegal opcode {op:#x}", pc=pc)

            pc = next_pc

        node.add_busy_ns(core, elapsed)
        return CallResult(ret=_sx(regs[0]), elapsed_ns=elapsed, steps=steps)

    # ------------------------------------------------------------------
    def _run_native(self, target: int, regs: list[int], now: float) -> float:
        idx, rem = divmod(target - NATIVE_BASE, NATIVE_STRIDE)
        if rem or not self.intrinsics.valid_index(idx):
            raise VmFault(f"call to bad native address {target:#x}")
        args = tuple(_sx(regs[i]) for i in range(8))
        ret, cost = self.intrinsics.invoke(idx, self, now, args)
        regs[0] = _ux(int(ret))
        return cost


def native_address(index: int) -> int:
    """Native entry-point address for intrinsic ``index``."""
    return NATIVE_BASE + index * NATIVE_STRIDE
