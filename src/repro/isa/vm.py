"""CHAIN instruction-set interpreter.

Executes machine code resident in a node's physical memory, charging every
instruction fetch and data access to the node's cache hierarchy.  This is
what makes "the function binary travelled in the message" observable: the
receiver's VM fetches the *mailbox bytes* as instructions, so whether those
bytes were stashed into the LLC or drained to DRAM changes execution time.

The VM is synchronous with respect to the DES: ``call`` runs to completion
and returns the simulated time the execution took; the caller advances the
event clock.  ``WFE`` therefore faults here — event waits belong to the
runtime layer, which models them against the engine.

Cost model: the testbed CPU is a 2.6 GHz out-of-order superscalar; we charge
a flat ~0.5 cycles/instruction (IPC 2) which covers L1-hit loads, plus the
hierarchy latency beyond L1 for memory operations, plus intrinsic costs.

Interpreter engine
------------------

The hot loop runs *predecoded, block-fused* code.  Each executable
64-byte line is decoded once into 8 slot executors — closures
specialized by an opcode-indexed dispatch table (:data:`_COMPILERS`,
one compiler per opcode byte) with the operand fields, next-pc, branch
targets, and PC-relative GOT addresses bound in at decode time — plus
an 8-entry superblock dispatch table: runs of consecutive pure
instructions are fused into single generated closures that retire the
whole run per dispatch (see the "Basic-block fusion" section below).
Both live in ``PhysicalMemory.code_lines`` / ``code_blocks``, shared by
every VM on the node.  The memory layer drops overlapping entries on
any write that *changes* bytes (local stores, GOT rewrites, DMA into
mailbox pages — identical rewrites keep the decode), so self-modifying
code re-decodes exactly like a real I-side refetch; the timing model is
unchanged either way because instruction-fetch latency is charged per
line transition, not per decode.  Per dispatch the loop does a
step-limit check, a line transition check, one dict lookup, and one
call — no struct unpacking and no 40-arm opcode ladder — and a fused
dispatch amortizes that over every instruction in the block.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import VmFault
from ..machine.node import Node
from ..machine.pages import PAGE_SIZE as _PAGE_SIZE, PROT_R as _PROT_R, \
    PROT_W as _PROT_W, PROT_X as _PROT_X
from ..obs.metrics import METRICS as _M
from ..obs.tracer import TRACER as _T, node_pid
from ..perf import COUNTERS as _C
from .encoding import decode_fields
from .opcodes import Op
from .registers import LR, NREGS, SP, ZR

_PAGE_SHIFT = _PAGE_SIZE.bit_length() - 1

MASK64 = (1 << 64) - 1
_TWO64 = 1 << 64
SIGN64 = 1 << 63

# Addresses at and above this are native intrinsic entry points, not memory.
NATIVE_BASE = 0x7000_0000
NATIVE_STRIDE = 16
# `call()` plants this as the return address of the outermost frame.
RETURN_SENTINEL = 0x7FFF_FF00

# Flat per-instruction cost: 0.5 cycles at 2.6 GHz.
CPI_NS = 0.5 / 2.6

DEFAULT_STACK_BYTES = 64 * 1024

# One 64-byte code line = 8 instruction words, unpacked in a single call
# (field layout matches encoding._WORD).
_LINE_WORDS = struct.Struct("<" + "BBBBi" * 8)


def _sx(value: int) -> int:
    """Unsigned 64-bit -> signed."""
    return value - (1 << 64) if value & SIGN64 else value


def _ux(value: int) -> int:
    return value & MASK64


@dataclass
class CallResult:
    ret: int          # a0 on return (signed)
    elapsed_ns: float  # simulated execution time
    steps: int        # instructions retired (intrinsics count as one)


# ---------------------------------------------------------------------------
# Opcode-indexed dispatch table of per-instruction compilers.
#
# ``_COMPILERS[opcode_byte]`` maps a decoded instruction to a slot
# executor ``fn(vm, regs, ebox, now) -> next_pc``: ``regs`` is the
# per-call register file, ``ebox`` a one-element list holding the
# accumulated elapsed-ns (handlers add any latency beyond the flat CPI
# charge), ``now`` the call's DES start time.  Executors are compiled
# per (node, line) and shared by every VM on the node, so node-level
# objects (mem/hier/pages) are bound at compile time while per-VM state
# (core, page checking, intrinsics) is read off the ``vm`` argument.
# Unknown opcode bytes compile to a raiser — lines are decoded whole, so
# data slots sharing a line with code must not fault until executed.
# ---------------------------------------------------------------------------

def _c_illegal(cc, op, rd, rs1, rs2, imm, pc):
    def f(vm, regs, ebox, now):
        raise VmFault(f"illegal opcode {op:#x}", pc=pc)
    return f


def _c_nop(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    return lambda vm, regs, ebox, now: nxt


def _c_halt(cc, op, rd, rs1, rs2, imm, pc):
    return lambda vm, regs, ebox, now: RETURN_SENTINEL


def _c_wfe(cc, op, rd, rs1, rs2, imm, pc):
    def f(vm, regs, ebox, now):
        raise VmFault(
            "WFE executed in synchronous VM context (runtime-only op)",
            pc=pc)
    return f


def _c_sev(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    node = cc.node

    def f(vm, regs, ebox, now):
        node.notify_write(regs[rs1], 8)
        return nxt
    return f


def _c_movi(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt
    val = imm & MASK64

    def f(vm, regs, ebox, now):
        regs[rd] = val
        return nxt
    return f


def _c_movhi(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt
    hi = (imm & 0xFFFFFFFF) << 32

    def f(vm, regs, ebox, now):
        regs[rd] = (regs[rd] & 0xFFFFFFFF) | hi
        return nxt
    return f


def _c_mov(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = regs[rs1]
        return nxt
    return f


def _c_adr(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt
    val = (pc + imm) & MASK64

    def f(vm, regs, ebox, now):
        regs[rd] = val
        return nxt
    return f


# -- register arithmetic ----------------------------------------------------

def _rr(value_fn):
    """Compiler for a pure two-register ALU op; ``value_fn(a, b)`` must
    return the masked 64-bit result."""
    def compiler(cc, op, rd, rs1, rs2, imm, pc):
        nxt = pc + 8
        if rd == ZR:  # pure op: no side effects to preserve
            return lambda vm, regs, ebox, now: nxt

        def f(vm, regs, ebox, now):
            regs[rd] = value_fn(regs[rs1], regs[rs2])
            return nxt
        return f
    return compiler


def _c_div(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8

    def f(vm, regs, ebox, now):
        sa, sb = _sx(regs[rs1]), _sx(regs[rs2])
        if sb == 0:
            raise VmFault("division by zero", pc=pc)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        if rd != ZR:
            regs[rd] = q & MASK64
        return nxt
    return f


def _c_rem(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8

    def f(vm, regs, ebox, now):
        sa, sb = _sx(regs[rs1]), _sx(regs[rs2])
        if sb == 0:
            raise VmFault("division by zero", pc=pc)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        if rd != ZR:
            regs[rd] = (sa - q * sb) & MASK64
        return nxt
    return f


# -- immediate arithmetic ---------------------------------------------------

def _ri(value_fn):
    """Compiler for a pure register+immediate ALU op; ``value_fn`` is
    called at compile time with ``imm`` and returns ``a -> result``."""
    def compiler(cc, op, rd, rs1, rs2, imm, pc):
        nxt = pc + 8
        if rd == ZR:
            return lambda vm, regs, ebox, now: nxt
        apply_fn = value_fn(imm)

        def f(vm, regs, ebox, now):
            regs[rd] = apply_fn(regs[rs1])
            return nxt
        return f
    return compiler


def _c_addi(cc, op, rd, rs1, rs2, imm, pc):
    # ADDI is the single hottest opcode (pointer/stack math): open-code
    # it rather than paying the generic _ri double call.
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = (regs[rs1] + imm) & MASK64
        return nxt
    return f


# The remaining loop-body staples get the same treatment as ADDI: one
# closure, operation inline, no per-execution value_fn call.

def _c_add(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = (regs[rs1] + regs[rs2]) & MASK64
        return nxt
    return f


def _c_sub(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = (regs[rs1] - regs[rs2]) & MASK64
        return nxt
    return f


def _c_and(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = regs[rs1] & regs[rs2]
        return nxt
    return f


def _c_or(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = regs[rs1] | regs[rs2]
        return nxt
    return f


def _c_xor(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        regs[rd] = regs[rs1] ^ regs[rs2]
        return nxt
    return f


def _c_shli(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt
    s = imm & 63

    def f(vm, regs, ebox, now):
        regs[rd] = (regs[rs1] << s) & MASK64
        return nxt
    return f


def _c_shri(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt
    s = imm & 63

    def f(vm, regs, ebox, now):
        regs[rd] = regs[rs1] >> s
        return nxt
    return f


def _c_andi(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt
    u = imm & MASK64

    def f(vm, regs, ebox, now):
        regs[rd] = regs[rs1] & u
        return nxt
    return f


def _c_slti(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    if rd == ZR:
        return lambda vm, regs, ebox, now: nxt

    def f(vm, regs, ebox, now):
        a = regs[rs1]
        if a & SIGN64:
            a -= _TWO64
        regs[rd] = 1 if a < imm else 0
        return nxt
    return f


# -- loads ------------------------------------------------------------------

def _load(size, read_fn):
    """Compiler factory for the load family.  ``read_fn(mem, addr)``
    returns the (masked) register value.

    The body open-codes the two dominant fast paths — a one-page
    permission probe and a one-line L1D hit — with bit-identical
    bookkeeping to ``PageTable.check_read`` / ``MemoryHierarchy.access``
    (probe counter, hit count, LRU tick); anything unusual (page
    straddle, denial, L1 miss, line straddle) falls back to the full
    calls.  An L1D hit costs exactly ``l1_lat``, which the VM's CPI
    already covers, so the hit path charges no time — same as before.
    """
    def compiler(cc, op, rd, rs1, rs2, imm, pc):
        nxt = pc + 8
        mem, hier, pages, l1_lat = cc.mem, cc.hier, cc.pages, cc.l1_lat
        prot, mem_size = pages.prot, pages.mem_size
        l1d = hier.l1d
        need = _PROT_R
        size1 = size - 1
        # Unchecked variant of read_fn: the in-bounds test it would do is
        # folded into the fast-path guard below (``end <= mem_size``), so
        # the accessor itself can skip it.  Same value, same faults.
        fast_fn = _FAST_READS.get(read_fn, read_fn)

        def f(vm, regs, ebox, now):
            addr = (regs[rs1] + imm) & MASK64
            end = addr + size
            if vm.check_pages:
                page = addr >> _PAGE_SHIFT
                if (end > mem_size or (end - 1) >> _PAGE_SHIFT != page
                        or prot[page] & need != need):
                    pages.check_read(addr, size)
            line = addr >> 6
            l1 = l1d[vm.core]
            way = l1._map.get(line)
            if way is not None and (addr + size1) >> 6 == line:
                _C.cache_probes += 1
                l1.hits += 1
                l1._tick += 1
                l1.lru[line & l1._set_mask][way] = l1._tick
            else:
                lat = hier.access(now + ebox[0], vm.core, addr, size, "read")
                if lat > l1_lat:
                    ebox[0] += lat - l1_lat
            if end <= mem_size:  # addr is already masked non-negative
                value = fast_fn(mem, addr)
            else:
                value = read_fn(mem, addr)  # out of range: checked path faults
            if rd != ZR:
                regs[rd] = value
            return nxt
        return f
    return compiler


def _read_ld(mem, addr):
    return mem.read_u64(addr)


def _read_lw(mem, addr):
    value = mem.read_u32(addr)
    return (value - (1 << 32)) & MASK64 if value >= (1 << 31) else value


def _read_lwu(mem, addr):
    return mem.read_u32(addr)


def _read_lh(mem, addr):
    value = int.from_bytes(mem.read(addr, 2), "little")
    return (value - (1 << 16)) & MASK64 if value >= (1 << 15) else value


def _read_lhu(mem, addr):
    return int.from_bytes(mem.read(addr, 2), "little")


def _read_lb(mem, addr):
    value = mem.read_u8(addr)
    return (value - (1 << 8)) & MASK64 if value >= (1 << 7) else value


def _read_lbu(mem, addr):
    return mem.read_u8(addr)


# Unchecked scalar readers for the compiled fast path: the caller proves
# ``addr + size <= mem.size`` before dispatching here, so the bounds
# check inside PhysicalMemory.read_* is pure overhead.  Values (and sign
# extension) are identical to the checked counterparts.
def _fast_ld(mem, addr):
    return int.from_bytes(mem._mv[addr:addr + 8], "little")


def _fast_lw(mem, addr):
    value = int.from_bytes(mem._mv[addr:addr + 4], "little")
    return (value - (1 << 32)) & MASK64 if value >= (1 << 31) else value


def _fast_lwu(mem, addr):
    return int.from_bytes(mem._mv[addr:addr + 4], "little")


def _fast_lb(mem, addr):
    value = mem._mv[addr]
    return (value - (1 << 8)) & MASK64 if value >= (1 << 7) else value


def _fast_lbu(mem, addr):
    return mem._mv[addr]


_FAST_READS = {
    _read_ld: _fast_ld,
    _read_lw: _fast_lw,
    _read_lwu: _fast_lwu,
    _read_lb: _fast_lb,
    _read_lbu: _fast_lbu,
}


# -- stores -----------------------------------------------------------------

def _store(size, write_fn):
    """Compiler factory for the store family. ``write_fn(mem, addr, v)``.

    Open-codes the same fast paths as ``_load`` (one-page permission
    probe, one-line L1D hit — which additionally sets the dirty bit,
    as ``access`` does for writes); unusual cases take the full calls.
    """
    def compiler(cc, op, rd, rs1, rs2, imm, pc):
        nxt = pc + 8
        mem, hier, pages, l1_lat = cc.mem, cc.hier, cc.pages, cc.l1_lat
        node = cc.node
        prot, mem_size = pages.prot, pages.mem_size
        l1d = hier.l1d
        need = _PROT_W
        size1 = size - 1
        # Unchecked variant (bounds folded into the fast-path guard, as in
        # the load family above).
        fast_fn = _FAST_WRITES.get(write_fn, write_fn)

        def f(vm, regs, ebox, now):
            addr = (regs[rs1] + imm) & MASK64
            end = addr + size
            if vm.check_pages:
                page = addr >> _PAGE_SHIFT
                if (end > mem_size or (end - 1) >> _PAGE_SHIFT != page
                        or prot[page] & need != need):
                    pages.check_write(addr, size)
            line = addr >> 6
            l1 = l1d[vm.core]
            way = l1._map.get(line)
            one_line = (addr + size1) >> 6 == line
            if way is not None and one_line:
                _C.cache_probes += 1
                l1.hits += 1
                l1._tick += 1
                sidx = line & l1._set_mask
                l1.lru[sidx][way] = l1._tick
                l1.dirty[sidx][way] = True
            else:
                lat = hier.access(now + ebox[0], vm.core, addr, size, "write")
                if lat > l1_lat:
                    ebox[0] += lat - l1_lat
            if end <= mem_size:  # addr is already masked non-negative
                fast_fn(mem, addr, regs[rd])
            else:
                write_fn(mem, addr, regs[rd])  # checked path faults
            w = node._watch
            if w:
                if one_line:  # scalar store hitting one monitor line
                    ev = w.get(line)
                    if ev is not None:
                        ev.fire()
                else:
                    node.notify_write(addr, size)
            return nxt
        return f
    return compiler


def _write_st(mem, addr, value):
    mem.write_u64(addr, value)


def _write_sw(mem, addr, value):
    mem.write_u32(addr, value)


def _write_sh(mem, addr, value):
    mem.write(addr, (value & 0xFFFF).to_bytes(2, "little"))


def _write_sb(mem, addr, value):
    mem.write_u8(addr, value)


# Unchecked scalar writers (see _FAST_READS): bounds proven by the
# caller; the predecoded-code invalidation contract is preserved, with
# the same identical-bytes skip as the checked writers — a store that
# does not change memory cannot stale any decode.
def _fast_st(mem, addr, value):
    b = (value & MASK64).to_bytes(8, "little")
    mv = mem._mv
    if mem.code_lines:
        if mv[addr:addr + 8] == b:
            return
        mv[addr:addr + 8] = b
        mem._retire_code(addr, 8)
    else:
        mv[addr:addr + 8] = b


def _fast_sw(mem, addr, value):
    b = (value & 0xFFFFFFFF).to_bytes(4, "little")
    mv = mem._mv
    if mem.code_lines:
        if mv[addr:addr + 4] == b:
            return
        mv[addr:addr + 4] = b
        mem._retire_code(addr, 4)
    else:
        mv[addr:addr + 4] = b


def _fast_sb(mem, addr, value):
    v = value & 0xFF
    mv = mem._mv
    if mem.code_lines:
        if mv[addr] == v:
            return
        mv[addr] = v
        mem._retire_code(addr, 1)
    else:
        mv[addr] = v


_FAST_WRITES = {
    _write_st: _fast_st,
    _write_sw: _fast_sw,
    _write_sb: _fast_sb,
}


# -- control flow -----------------------------------------------------------

def _c_b(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    return lambda vm, regs, ebox, now: tgt


def _branch(taken_fn):
    """Compiler for conditional branches; ``taken_fn(a, b)`` decides."""
    def compiler(cc, op, rd, rs1, rs2, imm, pc):
        tgt = pc + imm
        nxt = pc + 8

        def f(vm, regs, ebox, now):
            return tgt if taken_fn(regs[rs1], regs[rs2]) else nxt
        return f
    return compiler


# Branches sit in every loop back-edge, so the six compare ops are
# open-coded instead of paying _branch's per-execution taken_fn call
# (sign extension inlined too — same comparison _sx would produce).

def _c_beq(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8
    return lambda vm, regs, ebox, now: tgt if regs[rs1] == regs[rs2] else nxt


def _c_bne(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8
    return lambda vm, regs, ebox, now: tgt if regs[rs1] != regs[rs2] else nxt


def _c_blt(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8

    def f(vm, regs, ebox, now):
        a = regs[rs1]
        b = regs[rs2]
        if a & SIGN64:
            a -= _TWO64
        if b & SIGN64:
            b -= _TWO64
        return tgt if a < b else nxt
    return f


def _c_bge(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8

    def f(vm, regs, ebox, now):
        a = regs[rs1]
        b = regs[rs2]
        if a & SIGN64:
            a -= _TWO64
        if b & SIGN64:
            b -= _TWO64
        return tgt if a >= b else nxt
    return f


def _c_bltu(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8
    return lambda vm, regs, ebox, now: tgt if regs[rs1] < regs[rs2] else nxt


def _c_bgeu(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8
    return lambda vm, regs, ebox, now: tgt if regs[rs1] >= regs[rs2] else nxt


def _c_call(cc, op, rd, rs1, rs2, imm, pc):
    tgt = pc + imm
    nxt = pc + 8

    def f(vm, regs, ebox, now):
        regs[LR] = nxt
        return tgt
    return f


def _c_callr(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8

    def f(vm, regs, ebox, now):
        target = regs[rs1]
        regs[LR] = nxt
        if target >= NATIVE_BASE:
            ebox[0] += vm._run_native(target, regs, now + ebox[0])
            return regs[LR]
        return target
    return f


def _c_ret(cc, op, rd, rs1, rs2, imm, pc):
    return lambda vm, regs, ebox, now: regs[LR]


def _c_jr(cc, op, rd, rs1, rs2, imm, pc):
    def f(vm, regs, ebox, now):
        target = regs[rs1]
        if target >= NATIVE_BASE and target != RETURN_SENTINEL:
            ebox[0] += vm._run_native(target, regs, now + ebox[0])
            return regs[LR]
        return target
    return f


# -- GOT access -------------------------------------------------------------

def _c_ldg(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    mem, hier, pages, l1_lat = cc.mem, cc.hier, cc.pages, cc.l1_lat
    got_entry = (pc + imm + rs2 * 8) & MASK64  # PC-relative: a constant

    def f(vm, regs, ebox, now):
        if vm.check_pages:
            pages.check_read(got_entry, 8)
        lat = hier.access(now + ebox[0], vm.core, got_entry, 8, "read")
        if lat > l1_lat:
            ebox[0] += lat - l1_lat
        if rd != ZR:
            regs[rd] = mem.read_u64(got_entry)
        return nxt
    return f


def _c_ldgi(cc, op, rd, rs1, rs2, imm, pc):
    nxt = pc + 8
    mem, hier, pages, l1_lat = cc.mem, cc.hier, cc.pages, cc.l1_lat
    ptr_loc = (pc + imm) & MASK64  # PC-relative: a constant
    slot_off = rs2 * 8

    def f(vm, regs, ebox, now):
        if vm.check_pages:
            pages.check_read(ptr_loc, 8)
        lat = hier.access(now + ebox[0], vm.core, ptr_loc, 8, "read")
        if lat > l1_lat:
            ebox[0] += lat - l1_lat
        got_entry = (mem.read_u64(ptr_loc) + slot_off) & MASK64
        if vm.check_pages:
            pages.check_read(got_entry, 8)
        lat = hier.access(now + ebox[0], vm.core, got_entry, 8, "read")
        if lat > l1_lat:
            ebox[0] += lat - l1_lat
        if rd != ZR:
            regs[rd] = mem.read_u64(got_entry)
        return nxt
    return f


_COMPILERS: list = [_c_illegal] * 256
for _op, _compiler in {
    Op.NOP: _c_nop, Op.HALT: _c_halt, Op.WFE: _c_wfe, Op.SEV: _c_sev,
    Op.MOVI: _c_movi, Op.MOVHI: _c_movhi, Op.MOV: _c_mov, Op.ADR: _c_adr,
    Op.ADD: _c_add,
    Op.SUB: _c_sub,
    Op.MUL: _rr(lambda a, b: (a * b) & MASK64),
    Op.DIV: _c_div, Op.REM: _c_rem,
    Op.AND: _c_and,
    Op.OR: _c_or,
    Op.XOR: _c_xor,
    Op.SHL: _rr(lambda a, b: (a << (b & 63)) & MASK64),
    Op.SHR: _rr(lambda a, b: a >> (b & 63)),
    Op.SAR: _rr(lambda a, b: (_sx(a) >> (b & 63)) & MASK64),
    Op.SLT: _rr(lambda a, b: 1 if _sx(a) < _sx(b) else 0),
    Op.SLTU: _rr(lambda a, b: 1 if a < b else 0),
    Op.ADDI: _c_addi,
    Op.MULI: _ri(lambda imm: lambda a: (a * imm) & MASK64),
    Op.ANDI: _c_andi,
    Op.ORI: _ri(lambda imm: lambda a, _u=imm & MASK64: a | _u),
    Op.XORI: _ri(lambda imm: lambda a, _u=imm & MASK64: a ^ _u),
    Op.SHLI: _c_shli,
    Op.SHRI: _c_shri,
    Op.SARI: _ri(lambda imm: lambda a, _s=imm & 63: (_sx(a) >> _s) & MASK64),
    Op.SLTI: _c_slti,
    Op.LD: _load(8, _read_ld), Op.LW: _load(4, _read_lw),
    Op.LWU: _load(4, _read_lwu), Op.LH: _load(2, _read_lh),
    Op.LHU: _load(2, _read_lhu), Op.LB: _load(1, _read_lb),
    Op.LBU: _load(1, _read_lbu),
    Op.ST: _store(8, _write_st), Op.SW: _store(4, _write_sw),
    Op.SH: _store(2, _write_sh), Op.SB: _store(1, _write_sb),
    Op.B: _c_b,
    Op.BEQ: _c_beq,
    Op.BNE: _c_bne,
    Op.BLT: _c_blt,
    Op.BGE: _c_bge,
    Op.BLTU: _c_bltu,
    Op.BGEU: _c_bgeu,
    Op.CALL: _c_call, Op.CALLR: _c_callr, Op.RET: _c_ret, Op.JR: _c_jr,
    Op.LDG: _c_ldg, Op.LDGI: _c_ldgi,
}.items():
    _COMPILERS[int(_op)] = _compiler


# ---------------------------------------------------------------------------
# Basic-block fusion.
#
# ``NodeCodeCache.compile_blocks`` groups consecutive *pure*
# instructions (ALU / move / immediate ops — anything touching only the
# register file) into superblocks and generates one Python closure per
# block: a single dispatch retires all N instructions, advancing pc and
# steps in bulk.  Memory ops, branches, native calls, and anything else
# that charges the hierarchy or can transfer control terminates a block
# and keeps its per-instruction executor, so every hierarchy charge,
# fault, and trace span is bit-for-bit identical with fusion on or off.
#
# Timing transparency is by construction: the generated body
# accumulates ``CPI_NS`` once per instruction in the same order the
# interpreter loop would (N separate float adds, *not* ``N * CPI_NS``,
# which rounds differently), and a block crossing a 64-byte line
# boundary open-codes the loop's exact exec-permission probe and
# sequential-L1I bookkeeping at the crossing point, materializing the
# elapsed box around every hierarchy call.  DIV/REM keep their faulting
# semantics with the *faulting* pc (not the block head) baked into the
# raise.
#
# Blocks start at every pure slot (suffix fusion), so a branch target
# landing mid-run still dispatches a fused tail.  Blocks may extend
# across line boundaries; the extra lines are recorded as dependencies
# in ``PhysicalMemory.block_deps`` so a write changing *their* bytes
# drops the anchored block too (``memory._retire_code``).
#
# ``set_fusion(False)`` (CLI: ``--no-fuse``) degrades every entry to
# the single-slot executors — the escape hatch the identity tests and
# CI smoke job diff against.
# ---------------------------------------------------------------------------

_FUSE_ENABLED = True
_FUSE_CAP = 32  # max instructions folded into one closure (codegen bound)


def set_fusion(enabled: bool) -> None:
    """Process-wide fusion switch (``--no-fuse``).

    Takes effect for lines compiled after the call; block tables cached
    under the other setting are keyed separately and never mixed.
    """
    global _FUSE_ENABLED
    _FUSE_ENABLED = bool(enabled)


def fusion_enabled() -> bool:
    return _FUSE_ENABLED


# ---------------------------------------------------------------------------
# Cross-branch trace tier (second compilation tier on top of fusion).
#
# Fusion ends every superblock at a control transfer, so a tight loop
# still pays one dispatch per back-edge.  The trace tier watches those
# terminating branches: every conditional branch slot carries a
# taken/not-taken profile (attached at decode time), and when a
# *backward* branch is observed hot and monomorphic the cache stitches
# the blocks along the predicted path into one generated closure — a
# trace.  Each inter-block transition is protected by a branch-direction
# guard charging the interpreter's exact CPI, and a mispredict bails to
# the dispatcher at the precise branch-exit pc with the branch already
# retired (steps + 1), exactly as single-stepping would leave things.  A
# back-edge whose predicted target is the trace anchor closes the trace
# into a loop that retires thousands of instructions per dispatch; the
# back-edge re-checks the step budget before every iteration so
# ``max_steps`` faults land on the same instruction either way.
#
# Identity is by the same construction as fusion: generated traces
# replay the interpreter's float-add sequence, line-transition ifetch
# bookkeeping, fault pcs, and store/watchpoint semantics instruction by
# instruction.  Bailing out is never observable — the dispatcher is
# handed (pc, steps, current line) exactly as the interpreter would
# have them, and proceeds identically.
#
# Invalidation: every 64-byte line a trace stitched over is registered
# in ``PhysicalMemory.trace_deps``; any byte-changing write to one of
# them flips the trace's shared live flag (``memory._kill_traces``).
# The dispatcher checks the flag before entry, generated stores check
# it right after the bytes land, and ``restore()`` kills all live
# traces wholesale (the decode memo can reinstall a dispatch table that
# still carries the dead record — the flag, not the record's presence,
# is the source of truth).
#
# ``set_trace_jit(False)`` (CLI: ``--no-trace``) stops profiling,
# compilation, *and* dispatch of already-installed traces — the A/B
# escape hatch the identity tests and CI smoke job diff against.
# ---------------------------------------------------------------------------

_TRACE_ENABLED = True
_TRACE_HOT = 32    # monomorphic-direction threshold before tracing
_TRACE_CAP = 256   # max instructions stitched into one trace


def set_trace_jit(enabled: bool) -> None:
    """Process-wide trace-tier switch (``--no-trace``).

    Unlike :func:`set_fusion` this also gates *dispatch*: a world built
    with traces installed stops entering them the moment the flag goes
    down (rows are identical either way; only wall-clock changes)."""
    global _TRACE_ENABLED
    _TRACE_ENABLED = bool(enabled)


def trace_jit_enabled() -> bool:
    return _TRACE_ENABLED


# Conditional branches the trace tier can guard on:
# opcode -> (taken comparison, not-taken comparison, signed operands).
_GUARD_CMP = {
    int(Op.BEQ): ("==", "!=", False),
    int(Op.BNE): ("!=", "==", False),
    int(Op.BLT): ("<", ">=", True),
    int(Op.BGE): (">=", "<", True),
    int(Op.BLTU): ("<", ">=", False),
    int(Op.BGEU): (">=", "<", False),
}

# Observability registries for ``twochains profile --hot-loops``:
# backward-branch profile sites [(node_id, branch_pc, target_pc, aux)]
# and installed trace records.  Purely diagnostic — never read on the
# hot path — and reset explicitly by the profiler.
_PROFILE_SITES: list = []
_TRACE_REGISTRY: list = []


def reset_trace_observability() -> None:
    """Clear the --hot-loops registries (profiler run boundary)."""
    _PROFILE_SITES.clear()
    _TRACE_REGISTRY.clear()


def trace_observability() -> tuple[list, list]:
    """(profile sites, installed trace records) — see profile.py."""
    return _PROFILE_SITES, _TRACE_REGISTRY


def _src_rr(expr):
    """Source emitter for a two-register pure op; ``expr`` uses {a}/{b}."""
    def emit(rd, rs1, rs2, imm, pc):
        if rd == ZR:
            return []
        return [" r[%d] = %s" % (rd, expr.format(a=f"r[{rs1}]",
                                                 b=f"r[{rs2}]"))]
    return emit


def _src_ri(expr):
    """Source emitter for a register+immediate pure op; ``expr`` uses
    {a} plus the compile-time constants {imm} (signed), {u} (unsigned),
    {s} (shift count)."""
    def emit(rd, rs1, rs2, imm, pc):
        if rd == ZR:
            return []
        return [" r[%d] = %s" % (rd, expr.format(
            a=f"r[{rs1}]", imm=imm, u=imm & MASK64, s=imm & 63))]
    return emit


def _src_nop(rd, rs1, rs2, imm, pc):
    return []


def _src_movi(rd, rs1, rs2, imm, pc):
    return [] if rd == ZR else [f" r[{rd}] = {imm & MASK64}"]


def _src_movhi(rd, rs1, rs2, imm, pc):
    if rd == ZR:
        return []
    return [f" r[{rd}] = (r[{rd}] & 0xFFFFFFFF) | {(imm & 0xFFFFFFFF) << 32}"]


def _src_adr(rd, rs1, rs2, imm, pc):
    # pc-relative: the anchor pc is a closure variable of the generated
    # factory, so the source (and its compiled code object) stays
    # position-independent and shared across load addresses
    return [] if rd == ZR else [f" r[{rd}] = (_pc0 + {pc + imm}) & M"]


def _src_sar(rd, rs1, rs2, imm, pc):
    if rd == ZR:
        return []
    return [f" _a = r[{rs1}]", " if _a & S:", "  _a -= T",
            f" r[{rd}] = (_a >> (r[{rs2}] & 63)) & M"]


def _src_sari(rd, rs1, rs2, imm, pc):
    if rd == ZR:
        return []
    return [f" _a = r[{rs1}]", " if _a & S:", "  _a -= T",
            f" r[{rd}] = (_a >> {imm & 63}) & M"]


def _src_slt(rd, rs1, rs2, imm, pc):
    if rd == ZR:
        return []
    return [f" _a = r[{rs1}]", f" _b = r[{rs2}]",
            " if _a & S:", "  _a -= T", " if _b & S:", "  _b -= T",
            f" r[{rd}] = 1 if _a < _b else 0"]


def _src_slti(rd, rs1, rs2, imm, pc):
    if rd == ZR:
        return []
    return [f" _a = r[{rs1}]", " if _a & S:", "  _a -= T",
            f" r[{rd}] = 1 if _a < {imm} else 0"]


def _src_divrem(is_rem):
    # Same semantics as _c_div/_c_rem: fault check first (at the exact
    # instruction pc, with elapsed-ns materialized through this
    # instruction, like the interpreted path), truncating division.
    def emit(rd, rs1, rs2, imm, pc):
        out = [f" _a = r[{rs1}]", f" _b = r[{rs2}]",
               " if _b == 0:",
               "  ebox[0] = _e",
               f"  raise VmFault('division by zero', pc=_pc0 + {pc})",
               " if _a & S:", "  _a -= T",
               " if _b & S:", "  _b -= T",
               " _q = abs(_a) // abs(_b)",
               " if (_a < 0) != (_b < 0):", "  _q = -_q"]
        if rd != ZR:
            out.append(f" r[{rd}] = (_a - _q * _b) & M" if is_rem
                       else f" r[{rd}] = _q & M")
        return out
    return emit


def _src_load(size, fast_lines, checked):
    """Source emitter for the load family: bit-identical to the
    ``_load`` executor body (one-page permission probe, one-line L1D
    hit, unchecked fast read with checked fallback), with the elapsed
    box materialized before the slow-path permission call (which can
    fault).  ``fast_lines(rd)`` emits the in-bounds read at indent 2;
    ``checked`` names the bounds-checked reader bound in the exec
    namespace."""
    size1 = size - 1

    def emit(rd, rs1, rs2, imm, pc):
        out = [f" _a = (r[{rs1}] + {imm}) & M",
               f" _q = _a + {size}",
               " if _cp:",
               f"  _pg = _a >> {_PAGE_SHIFT}",
               f"  if _q > MEMSZ or (_q - 1) >> {_PAGE_SHIFT} != _pg"
               " or prot[_pg] & PR != PR:",
               "   ebox[0] = _e",
               f"   check_read(_a, {size})",
               " _ln = _a >> 6",
               " _w = _dmg(_ln)",
               " if _w is not None:" if size == 1 else
               f" if _w is not None and (_a + {size1}) >> 6 == _ln:",
               "  C.cache_probes += 1",
               "  _d1.hits += 1",
               "  _d1._tick += 1",
               "  _d1.lru[_ln & _dmask][_w] = _d1._tick",
               " else:",
               f"  _lat = hacc(now + _e, _co, _a, {size}, 'read')",
               "  if _lat > L1LAT:",
               "   _e += _lat - L1LAT"]
        if rd == ZR:  # value discarded; only the faulting path remains
            out += [" if _q > MEMSZ:", f"  {checked}(mem, _a)"]
        else:
            out += [" if _q <= MEMSZ:", *fast_lines(rd),
                    " else:", f"  r[{rd}] = {checked}(mem, _a)"]
        return out
    return emit


def _src_store(size, fast_lines, checked):
    """Source emitter for the store family (mirrors ``_store``): same
    fast paths as loads plus the dirty bit, the identical-bytes decode
    keep, and the watchpoint probe.  After the bytes land the enclosing
    code generator appends a self-modification bail: a fused block
    verifies it still owns its dispatch-table slot, a trace verifies
    its live flag — either way a store that changed code under the
    closure hands control back to the dispatcher at the *next* pc so
    the line re-decodes from the new bytes, exactly as single-stepping
    would."""
    size1 = size - 1

    def emit(rd, rs1, rs2, imm, pc):
        out = [f" _a = (r[{rs1}] + {imm}) & M",
               f" _q = _a + {size}",
               " if _cp:",
               f"  _pg = _a >> {_PAGE_SHIFT}",
               f"  if _q > MEMSZ or (_q - 1) >> {_PAGE_SHIFT} != _pg"
               " or prot[_pg] & PW != PW:",
               "   ebox[0] = _e",
               f"   check_write(_a, {size})",
               " _ln = _a >> 6"]
        one = "True" if size == 1 else f"(_a + {size1}) >> 6 == _ln"
        if size > 1:
            out.append(f" _one = {one}")
            one = "_one"
        out += [" _w = _dmg(_ln)",
                f" if _w is not None and {one}:" if size > 1 else
                " if _w is not None:",
                "  C.cache_probes += 1",
                "  _d1.hits += 1",
                "  _d1._tick += 1",
                "  _si = _ln & _dmask",
                "  _d1.lru[_si][_w] = _d1._tick",
                "  _d1.dirty[_si][_w] = True",
                " else:",
                f"  _lat = hacc(now + _e, _co, _a, {size}, 'write')",
                "  if _lat > L1LAT:",
                "   _e += _lat - L1LAT",
                " if _q <= MEMSZ:", *fast_lines(rd),
                " else:", f"  {checked}(mem, _a, r[{rd}])",
                " if _wt:"]
        if size == 1:
            out += ["  _ev = _wt.get(_ln)",
                    "  if _ev is not None:",
                    "   _ev.fire()"]
        else:
            out += ["  if _one:",
                    "   _ev = _wt.get(_ln)",
                    "   if _ev is not None:",
                    "    _ev.fire()",
                    "  else:",
                    f"   nwrite(_a, {size})"]
        # the post-store invalidation bail is appended by the block /
        # trace code generators — fused blocks re-check their dispatch
        # table slot, traces their live flag
        return out
    return emit


def _rd_ld(rd):
    return [f"  r[{rd}] = fb(mv[_a:_a + 8], 'little')"]


def _rd_lw(rd):
    return ["  _v = fb(mv[_a:_a + 4], 'little')",
            f"  r[{rd}] = (_v - 4294967296) & M"
            " if _v >= 2147483648 else _v"]


def _rd_lwu(rd):
    return [f"  r[{rd}] = fb(mv[_a:_a + 4], 'little')"]


def _rd_lb(rd):
    return ["  _v = mv[_a]",
            f"  r[{rd}] = (_v - 256) & M if _v >= 128 else _v"]


def _rd_lbu(rd):
    return [f"  r[{rd}] = mv[_a]"]


def _wr_bytes(size):
    mask = MASK64 if size == 8 else (1 << size * 8) - 1
    mexpr = "M" if size == 8 else str(mask)

    def lines(rd):
        return [f"  _b = (r[{rd}] & {mexpr}).to_bytes({size}, 'little')",
                "  if mem.code_lines:",
                f"   if mv[_a:_a + {size}] != _b:",
                f"    mv[_a:_a + {size}] = _b",
                f"    retire(_a, {size})",
                "  else:",
                f"   mv[_a:_a + {size}] = _b"]
    return lines


def _wr_sb(rd):
    return [f"  _v = r[{rd}] & 255",
            "  if mem.code_lines:",
            "   if mv[_a] != _v:",
            "    mv[_a] = _v",
            "    retire(_a, 1)",
            "  else:",
            "   mv[_a] = _v"]


_FUSE_EMIT: dict = {}
# Memory ops fold into blocks too: their executors are straight-line
# (always fall through to pc+8), so the block emits the executor body
# inline and stays a single dispatch.  Stores add the re-fusion bail
# check above.
_FUSE_MEM: dict = {}
for _op, _emit in {
    Op.LD: _src_load(8, _rd_ld, "RLD"),
    Op.LW: _src_load(4, _rd_lw, "RLW"),
    Op.LWU: _src_load(4, _rd_lwu, "RLWU"),
    Op.LB: _src_load(1, _rd_lb, "RLB"),
    Op.LBU: _src_load(1, _rd_lbu, "RLBU"),
    Op.ST: _src_store(8, _wr_bytes(8), "WST"),
    Op.SW: _src_store(4, _wr_bytes(4), "WSW"),
    Op.SB: _src_store(1, _wr_sb, "WSB"),
}.items():
    _FUSE_MEM[int(_op)] = _emit
for _op, _emit in {
    Op.NOP: _src_nop, Op.MOVI: _src_movi, Op.MOVHI: _src_movhi,
    Op.MOV: _src_rr("{a}"), Op.ADR: _src_adr,
    Op.ADD: _src_rr("({a} + {b}) & M"),
    Op.SUB: _src_rr("({a} - {b}) & M"),
    Op.MUL: _src_rr("({a} * {b}) & M"),
    Op.DIV: _src_divrem(False), Op.REM: _src_divrem(True),
    Op.AND: _src_rr("{a} & {b}"),
    Op.OR: _src_rr("{a} | {b}"),
    Op.XOR: _src_rr("{a} ^ {b}"),
    Op.SHL: _src_rr("({a} << ({b} & 63)) & M"),
    Op.SHR: _src_rr("{a} >> ({b} & 63)"),
    Op.SAR: _src_sar,
    Op.SLT: _src_slt,
    Op.SLTU: _src_rr("1 if {a} < {b} else 0"),
    Op.ADDI: _src_ri("({a} + {imm}) & M"),
    Op.MULI: _src_ri("({a} * {imm}) & M"),
    Op.ANDI: _src_ri("{a} & {u}"),
    Op.ORI: _src_ri("{a} | {u}"),
    Op.XORI: _src_ri("{a} ^ {u}"),
    Op.SHLI: _src_ri("({a} << {s}) & M"),
    Op.SHRI: _src_ri("{a} >> {s}"),
    Op.SARI: _src_sari,
    Op.SLTI: _src_slti,
}.items():
    _FUSE_EMIT[int(_op)] = _emit
_FUSE_EMIT.update(_FUSE_MEM)

# Store opcodes need a post-store bail in generated code (the store may
# have invalidated the very closure executing it).
_FUSE_STORE = frozenset((int(Op.ST), int(Op.SW), int(Op.SB)))


# (anchor alignment within its line, instruction words) -> compiled
# code object defining a factory ``_mk(_pc0) -> closure``.  The source
# is position-independent — every pc-dependent constant is expressed
# relative to ``_pc0`` and precomputed in the factory prelude — so one
# compile serves every load address, node, and sweep point where the
# same instruction bytes appear (sweeps shift mailbox layouts per
# point; keying on absolute pc would defeat the cache).
_SRC_CACHE: dict = {}


def _gen_fused_code(align: int, instrs):
    """Compile (cached) the ``_mk`` factory source for a fused run.

    ``align`` is ``anchor_pc & 63`` — it fixes where the run crosses
    64-byte line boundaries, the only positional structure the body
    needs.  Offsets handed to the emitters are relative to ``_pc0``.
    """
    key = (align, instrs)
    code = _SRC_CACHE.get(key)
    if code is not None:
        return code
    mem_ops = _FUSE_MEM
    has_mem = any(ins[0] in mem_ops for ins in instrs)
    prelude = ["def _mk(_pc0, _tbl):",
               f" _end = _pc0 + {8 * len(instrs)}"]
    if has_mem:
        prelude.append(" _al = _pc0 >> 6")
    body = [" def _blk(vm, r, ebox, now):",
            "  C.fused_dispatches += 1",
            "  _e = ebox[0]"]
    if has_mem:
        # Per-block hoists for the load/store fast paths: the core, its
        # L1D, the page-check flag, and the watch table are fixed for
        # the whole dispatch (executors re-derive them per instruction;
        # the values are identical — ``_watch`` is only rebound by
        # World.restore, which never runs mid-dispatch).
        body += ["  _co = vm.core",
                 "  _d1 = l1d[_co]",
                 "  _dmg = _d1._map.get",
                 "  _dmask = _d1._set_mask",
                 "  _cp = vm.check_pages",
                 "  _wt = node._watch"]
    off = 0
    ncross = 0
    for i, (op, rd, rs1, rs2, imm) in enumerate(instrs):
        if i and not (align + off) & 63:
            # Line crossing: replay the interpreter loop's transition
            # bookkeeping (exec-permission probe, sequential-L1I fast
            # path) with the elapsed box materialized around every
            # hierarchy call.  Bounds are static: _fuse_line only
            # crosses into lines that are fully in memory.  The
            # crossing pc/line/page are closure ints built in the
            # factory prelude.
            ncross += 1
            x, n, g = f"_x{ncross}", f"_n{ncross}", f"_g{ncross}"
            prelude += [f" {x} = _pc0 + {off}",
                        f" {n} = {x} >> 6",
                        f" {g} = {x} >> {_PAGE_SHIFT}"]
            body += [
                "  ebox[0] = _e",
                f"  if vm.check_pages and prot[{g}] & PX != PX:",
                f"   check_exec({x}, 8)",
                "  _co = vm.core",
                f"  if last_if[_co] + 1 == {n}:",
                "   _l1 = l1i[_co]",
                f"   _w = _l1._map.get({n})",
                "   if _w is None:",
                f"    ebox[0] += access_line(now + ebox[0], _co, {n},"
                " 'ifetch')",
                "   else:",
                "    C.cache_probes += 1",
                f"    last_if[_co] = {n}",
                "    _l1.hits += 1",
                "    _l1._tick += 1",
                f"    _l1.lru[{n} & _l1._set_mask][_w] = _l1._tick",
                "    ebox[0] += L1LAT",
                "  else:",
                f"   ebox[0] += access_line(now + ebox[0], _co, {n},"
                " 'ifetch')",
                "  _e = ebox[0]",
            ]
        body.append("  _e += C0")
        body += [" " + ln for ln in _FUSE_EMIT[op](rd, rs1, rs2, imm, off)]
        if op in _FUSE_STORE:
            body += ["  if cbg(_al) is not _tbl:",
                     "   ebox[0] = _e",
                     f"   return _pc0 + {off + 8}"]
        off += 8
    body.append("  ebox[0] = _e")
    body.append("  return _end")
    body.append(" return _blk")
    src = "\n".join(prelude + body)
    code = compile(src, f"<fused:+{align}x{len(instrs)}>", "exec")
    _SRC_CACHE[key] = code
    return code


# (anchor alignment, plan, loop flag) -> compiled code object defining
# ``_mk(_pc0, _lv) -> trace_fn``.  Position-independent like
# ``_SRC_CACHE``: every pc/line/page constant is expressed relative to
# ``_pc0`` and precomputed in the factory prelude, so one compile
# serves every load address where the same shape recurs.
_TRACE_SRC_CACHE: dict = {}


def _gen_trace_code(align: int, plan: tuple, loop: bool):
    """Compile (cached) the ``_mk`` factory source for a trace plan.

    The generated ``_tr(vm, r, ebox, now, steps, budget)`` returns
    ``(next_pc, steps, last_line)`` — the dispatcher's exact loop state
    at the hand-back point (``last_line`` is the line of the last
    *retired* instruction, what the dispatcher keeps in ``cur_line``).
    Unit 0 runs without a budget check or entry transition: the
    dispatcher's entry gate (``steps + n0 <= max_steps``) and its
    just-completed line transition cover both, and the loop-closing
    back-edge re-establishes the same invariant before every iteration.
    """
    key = (align, plan, loop)
    code = _TRACE_SRC_CACHE.get(key)
    if code is not None:
        return code
    mem_ops = _FUSE_MEM
    has_mem = any(u[0] == "s" and any(ins[0] in mem_ops for ins in u[2])
                  for u in plan)
    prelude = ["def _mk(_pc0, _lv):"]
    line_names: dict = {}
    page_names: dict = {}
    x_names: dict = {}

    def lname(rel):
        # one runtime line constant per distinct static line offset
        lo = (align + rel) >> 6
        nm = line_names.get(lo)
        if nm is None:
            nm = line_names[lo] = f"_ln{len(line_names)}"
            prelude.append(f" {nm} = (_pc0 + {rel}) >> 6")
        return nm

    def pgname(rel):
        lo = (align + rel) >> 6  # a 64-byte line never straddles a page
        nm = page_names.get(lo)
        if nm is None:
            nm = page_names[lo] = f"_pg{len(page_names)}"
            prelude.append(f" {nm} = (_pc0 + {rel}) >> {_PAGE_SHIFT}")
        return nm

    def xname(rel):
        nm = x_names.get(rel)
        if nm is None:
            nm = x_names[rel] = f"_xp{len(x_names)}"
            prelude.append(f" {nm} = _pc0 + {rel}")
        return nm

    body = [" def _tr(vm, r, ebox, now, steps, budget):",
            "  C.trace_dispatches += 1",
            "  _e = ebox[0]",
            "  _co = vm.core",
            "  _cp = vm.check_pages"]
    if has_mem:
        body += ["  _d1 = l1d[_co]",
                 "  _dmg = _d1._map.get",
                 "  _dmask = _d1._set_mask",
                 "  _wt = node._watch"]
    if loop:
        body.append("  while True:")
        ind = "   "
    else:
        ind = "  "

    def transition(rel):
        # replay of the dispatcher's line-transition bookkeeping (same
        # shape as the fused-block crossing: exec-permission probe,
        # sequential-L1I fast path, elapsed box materialized around
        # every hierarchy call)
        x, n, g = xname(rel), lname(rel), pgname(rel)
        body.extend(ind + ln for ln in (
            "ebox[0] = _e",
            f"if _cp and prot[{g}] & PX != PX:",
            f" check_exec({x}, 8)",
            f"if last_if[_co] + 1 == {n}:",
            " _l1 = l1i[_co]",
            f" _w = _l1._map.get({n})",
            " if _w is None:",
            f"  ebox[0] += access_line(now + ebox[0], _co, {n}, 'ifetch')",
            " else:",
            "  C.cache_probes += 1",
            f"  last_if[_co] = {n}",
            "  _l1.hits += 1",
            "  _l1._tick += 1",
            f"  _l1.lru[{n} & _l1._set_mask][_w] = _l1._tick",
            "  ebox[0] += L1LAT",
            "else:",
            f" ebox[0] += access_line(now + ebox[0], _co, {n}, 'ifetch')",
            "_e = ebox[0]",
        ))

    first = plan[0]
    n0 = len(first[2]) if first[0] == "s" else 1
    anchor_lo = align >> 6
    prev_lo = anchor_lo  # the dispatcher transitioned the anchor's line
    prev_rel = 0
    for ui, unit in enumerate(plan):
        kind = unit[0]
        if kind == "s":
            _k, rel0, instrs = unit
            n_run = len(instrs)
            if ui:
                body += [ind + f"if steps + {n_run} > budget:",
                         ind + " ebox[0] = _e",
                         ind + f" return _pc0 + {rel0}, steps, "
                               f"{lname(prev_rel)}"]
            for j, (op, rd, rs1, rs2, imm) in enumerate(instrs):
                rel = rel0 + 8 * j
                lo = (align + rel) >> 6
                if lo != prev_lo:
                    transition(rel)
                    prev_lo = lo
                body.append(ind + "_e += C0")
                body += [ind[:-1] + ln
                         for ln in _FUSE_EMIT[op](rd, rs1, rs2, imm, rel)]
                if op in _FUSE_STORE:
                    # the store may have changed bytes under the trace
                    body += [ind + "if not _lv[0]:",
                             ind + " ebox[0] = _e",
                             ind + f" return _pc0 + {rel + 8}, "
                                   f"steps + {j + 1}, {lname(rel)}"]
                prev_rel = rel
            body.append(ind + f"steps += {n_run}")
        elif kind == "g":
            _k, rel, op, rs1, rs2, pred_taken, bail_rel, cont_rel = unit
            if ui:
                body += [ind + "if steps >= budget:",
                         ind + " ebox[0] = _e",
                         ind + f" return _pc0 + {rel}, steps, "
                               f"{lname(prev_rel)}"]
            lo = (align + rel) >> 6
            if lo != prev_lo:
                transition(rel)
                prev_lo = lo
            body.append(ind + "_e += C0")
            cmp_taken, cmp_not, signed = _GUARD_CMP[op]
            bail_cmp = cmp_not if pred_taken else cmp_taken
            if signed:
                body += [ind + f"_a = r[{rs1}]",
                         ind + f"_b = r[{rs2}]",
                         ind + "if _a & S:", ind + " _a -= T",
                         ind + "if _b & S:", ind + " _b -= T",
                         ind + f"if _a {bail_cmp} _b:"]
            else:
                body.append(ind + f"if r[{rs1}] {bail_cmp} r[{rs2}]:")
            body += [ind + " C.guard_bails += 1",
                     ind + " ebox[0] = _e",
                     ind + f" return _pc0 + {bail_rel}, steps + 1, "
                           f"{lname(rel)}"]
            body.append(ind + "steps += 1")
            prev_rel = rel
            if cont_rel == 0 and loop:  # loop-closing back-edge
                body += [ind + f"if steps + {n0} > budget:",
                         ind + " ebox[0] = _e",
                         ind + f" return _pc0, steps, {lname(rel)}"]
                if prev_lo != anchor_lo:
                    transition(0)
                    prev_lo = anchor_lo
        elif kind == "j":
            _k, rel, tgt_rel = unit
            if ui:
                body += [ind + "if steps >= budget:",
                         ind + " ebox[0] = _e",
                         ind + f" return _pc0 + {rel}, steps, "
                               f"{lname(prev_rel)}"]
            lo = (align + rel) >> 6
            if lo != prev_lo:
                transition(rel)
                prev_lo = lo
            body.append(ind + "_e += C0")
            body.append(ind + "steps += 1")
            prev_rel = rel
            if tgt_rel == 0 and loop:  # loop-closing back-edge
                body += [ind + f"if steps + {n0} > budget:",
                         ind + " ebox[0] = _e",
                         ind + f" return _pc0, steps, {lname(rel)}"]
                if prev_lo != anchor_lo:
                    transition(0)
                    prev_lo = anchor_lo
        else:  # "x": hand back to the dispatcher (nothing retired here)
            body += [ind + "ebox[0] = _e",
                     ind + f"return _pc0 + {unit[1]}, steps, "
                           f"{lname(prev_rel)}"]
    body.append(" return _tr")
    src = "\n".join(prelude + body)
    code = compile(src, f"<trace:+{align}x{len(plan)}>", "exec")
    _TRACE_SRC_CACHE[key] = code
    return code


class NodeCodeCache:
    """Per-node predecoded-code compiler, shared by every VM on the node.

    Compiled lines live in ``node.mem.code_lines`` (per-slot executors)
    and ``node.mem.code_blocks`` (fused-superblock dispatch tables) so
    the memory layer can invalidate them on overlapping writes (the VM
    never has to check staleness itself: the hot loop re-reads the dict
    every step, so a dropped entry forces a re-decode on the very next
    instruction).
    """

    __slots__ = ("node", "mem", "hier", "pages", "l1_lat", "_decoded",
                 "_fuse_ns", "_mk_cache", "_slot_memo")

    def __init__(self, node: Node):
        self.node = node
        self.mem = node.mem
        self.hier = node.hier
        self.pages = node.pages
        self.l1_lat = node.hier.cfg.l1_lat
        # (line, raw bytes, fusion flag) -> (slots, blocks, deps).
        # Message delivery can still drop ``code_lines`` entries (e.g. a
        # header byte changed in a line sharing code); recompiling is
        # pure waste when the code bytes come back identical — closures
        # depend only on the line's bytes and its address.  Entries
        # accumulate per (line, content) pair; nodes live for one sweep
        # point, so this stays small.
        self._decoded: dict = {}
        # Exec-globals namespace for generated fused closures: node-level
        # objects bound once.  Everything here is identity-stable across
        # World.restore (prot/_last_ifetch are mutated in place, bound
        # methods and the l1i list are never rebound).
        hier = node.hier
        mem = node.mem
        self._fuse_ns = {
            "C": _C, "C0": CPI_NS, "VmFault": VmFault,
            "M": MASK64, "S": SIGN64, "T": _TWO64,
            "prot": node.pages.prot, "PX": _PROT_X,
            "check_exec": node.pages.check_exec,
            "last_if": hier._last_ifetch, "l1i": hier.l1i,
            "access_line": hier.access_line, "L1LAT": hier._l1_lat,
            # load/store emission (all identity-stable per node: the
            # memoryview, dicts and bound methods are never rebound)
            "mem": mem, "mv": mem._mv, "fb": int.from_bytes,
            "retire": mem._retire_code, "cbg": mem.code_blocks.get,
            "l1d": hier.l1d, "hacc": hier.access,
            "node": node, "nwrite": node.notify_write,
            "check_read": node.pages.check_read,
            "check_write": node.pages.check_write,
            "PR": _PROT_R, "PW": _PROT_W, "MEMSZ": node.pages.mem_size,
            "RLD": _read_ld, "RLW": _read_lw, "RLWU": _read_lwu,
            "RLB": _read_lb, "RLBU": _read_lbu,
            "WST": _write_st, "WSW": _write_sw, "WSB": _write_sb,
        }
        # (align, words) -> this node's _mk factory: one exec per
        # distinct source per node; anchoring a block to an address is
        # then a plain call
        self._mk_cache: dict = {}
        # (pc, 5 fields) -> slot executor.  Mailbox lines mix header
        # words with code, so each delivery changes the line's raw bytes
        # and misses the whole-line memo above; the individual slots are
        # nearly always byte-identical, and rebuilding their closures is
        # the expensive part of a line miss.
        self._slot_memo: dict = {}

    def compile_line(self, line: int) -> tuple:
        """Compile (and cache) a line; returns the per-slot executors."""
        self.compile_blocks(line)
        return self.mem.code_lines[line]

    def compile_blocks(self, line: int) -> tuple:
        """Decode + compile + fuse all 8 slots of a 64-byte line.

        Memory is a whole number of lines, so a line containing any
        in-bounds pc is fully in bounds; the whole line unpacks in one
        struct call.  Mailbox-delivered code is re-compiled every time a
        changed message lands on its lines, so this path is warm, not
        cold.

        Returns (and caches in ``mem.code_blocks``) the 8-entry block
        dispatch table — ``(n, fused_fn, slot_fn, aux, trace)`` per
        slot, with ``n >= 2`` where a pure run starts (``aux`` holds
        the run words), else ``n == 1`` and the plain slot executor
        (``aux`` is a branch profile for conditional branches, else
        None).  ``trace`` is the installed trace record, if any.
        Closures are generated *lazily*: a fresh fusible entry carries
        ``fused_fn=None`` plus its instruction words, and the first
        dispatch patches the table in place (``materialize_slot``) —
        most slots are never entered, so eager codegen would be pure
        decode-time waste.
        ``mem.code_lines`` gets the per-slot tuple as before (misaligned
        entries, invalidation contract).  A memo hit whose blocks extend
        into following lines re-verifies those dependency bytes, since
        only the anchor line's bytes are in the key.
        """
        mem = self.mem
        base = line << 6
        raw = bytes(mem._mv[base:base + 64])
        key = (line, raw, _FUSE_ENABLED, _TRACE_ENABLED)
        entry = self._decoded.get(key)
        if entry is not None:
            for dline, draw in entry[2]:
                db = dline << 6
                if bytes(mem._mv[db:db + 64]) != draw:
                    entry = None
                    break
        if entry is None:
            f = _LINE_WORDS.unpack(raw)
            compilers = _COMPILERS
            memo = self._slot_memo
            out = []
            pc = base
            for i in range(0, 40, 5):
                skey = (pc, f[i], f[i + 1], f[i + 2], f[i + 3], f[i + 4])
                s = memo.get(skey)
                if s is None:
                    s = memo[skey] = compilers[f[i]](
                        self, f[i], f[i + 1], f[i + 2], f[i + 3], f[i + 4], pc)
                out.append(s)
                pc += 8
            slots = tuple(out)
            blocks, deps = self._fuse_line(line, f, slots)
            entry = self._decoded[key] = (slots, blocks, deps)
        slots, blocks, deps = entry
        mem.code_lines[line] = slots
        mem.code_blocks[line] = blocks
        if deps:
            bd = mem.block_deps
            for dline, _draw in deps:
                anchors = bd.get(dline)
                if anchors is None:
                    bd[dline] = {line}
                else:
                    anchors.add(line)
        return blocks

    def _fuse_line(self, line: int, fields: tuple, slots: tuple):
        """Build the 8-entry block dispatch table for one line.

        Returns ``(entries, deps)`` where deps is the tuple of
        ``(line, raw bytes)`` follow-on lines whose instructions are
        baked into some emitted block (none when fusion is off).
        """
        entries = [(1, s, s, None, None) for s in slots]
        if not _FUSE_ENABLED:
            return entries, ()
        mem = self.mem
        mem_size = mem.size
        emit = _FUSE_EMIT
        instrs = [fields[i:i + 5] for i in range(0, 40, 5)]
        ext: list = []  # (line, raw) per follow-on line fetched
        max_end = 8     # highest instruction index inside an emitted block

        def fetch_more() -> bool:
            nxt = line + 1 + len(ext)
            hi = (nxt + 1) << 6
            if hi > mem_size:
                return False
            rawn = bytes(mem._mv[nxt << 6:hi])
            fn = _LINE_WORDS.unpack(rawn)
            ext.append((nxt, rawn))
            instrs.extend(fn[i:i + 5] for i in range(0, 40, 5))
            return True

        # One forward scan: find each maximal fusible run once, then cut
        # the per-slot suffix entries out of it, instead of re-walking
        # the run from every slot.  ``stop`` bounds the scan at the
        # furthest index any in-line slot can use (slot 7 + cap).
        stop = 7 + _FUSE_CAP
        k = 0
        while k < 8:
            if instrs[k][0] not in emit:
                k += 1
                continue
            j = k
            while j < stop:
                if j >= len(instrs) and not fetch_more():
                    break
                if instrs[j][0] not in emit:
                    break
                j += 1
            # suffix fusion: a block starts at *every* pure slot, so a
            # branch target landing mid-run still gets a fused tail;
            # the closure itself is generated on first dispatch.  All
            # suffixes share one run tuple (entry carries its offset):
            # per-slot slicing happens only if the slot is ever entered.
            run = tuple(instrs[k:j])
            for i in range(k, min(j - 1, 8)):
                n = j - i
                if n > _FUSE_CAP:
                    n = _FUSE_CAP
                end = i + n
                entries[i] = (n, None, slots[i], (run, i - k), None)
                if end > max_end:
                    max_end = end
            k = j + 1
        if _TRACE_ENABLED:
            # Attach a taken/not-taken profile to every conditional
            # branch slot (branches never fuse, so these are all n == 1
            # entries), and a taken-only profile to every *backward*
            # unconditional B — the shape compiled loops take (top-tested
            # head, unconditional back-edge).  The dispatcher's
            # single-step path updates it; a hot backward edge (either
            # kind) triggers try_trace at its target.  Pure host-side
            # bookkeeping — no timing.
            guards = _GUARD_CMP
            b_op = int(Op.B)
            base = line << 6
            node_id = self.node.node_id
            for i in range(8):
                op = fields[i * 5]
                if entries[i][0] != 1:
                    continue
                imm = fields[i * 5 + 4]
                if op in guards:
                    pc = base + i * 8
                    aux = [0, 0, pc + imm, imm < 0]
                    s = slots[i]
                    entries[i] = (1, s, s, aux, None)
                    if imm < 0:
                        _PROFILE_SITES.append((node_id, pc, pc + imm, aux))
                elif op == b_op and imm < 0:
                    pc = base + i * 8
                    aux = [0, 0, pc + imm, True]
                    s = slots[i]
                    entries[i] = (1, s, s, aux, None)
                    _PROFILE_SITES.append((node_id, pc, pc + imm, aux))
        deps = tuple(ext[:(max_end - 1) // 8]) if max_end > 8 else ()
        return entries, deps

    def materialize_slot(self, line: int, k: int):
        """First dispatch of a lazily fused entry: generate the closure
        and patch the (memo-shared) block table in place."""
        blocks = self.mem.code_blocks[line]
        n, _fn, single, aux, tr = blocks[k]
        run, off = aux
        fn = self._materialize((line << 6) + k * 8, run[off:off + n], blocks)
        blocks[k] = (n, fn, single, aux, tr)
        return fn

    def _materialize(self, pc0: int, instrs: tuple, blocks):
        key = (pc0 & 63, instrs)
        mk = self._mk_cache.get(key)
        if mk is None:
            code = _SRC_CACHE.get(key)
            if code is None:
                code = _gen_fused_code(key[0], instrs)
            ns = self._fuse_ns
            exec(code, ns)
            mk = self._mk_cache[key] = ns.pop("_mk")
        _C.blocks_compiled += 1
        return mk(pc0, blocks)

    # -- trace tier ------------------------------------------------------

    def try_trace(self, anchor_pc: int, t: float = 0.0, core: int = 0
                  ) -> None:
        """Attempt to stitch a trace anchored at a hot back-edge target.

        Called from the dispatcher when a backward branch's profile
        crosses the hot threshold (and again at every power-of-two
        count, so a refused or invalidated trace gets retried).  Purely
        host-side: walking, codegen, and installation charge no
        simulated time; ``t``/``core`` only label the optional tracer
        instant.
        """
        if anchor_pc & 7 or not (_FUSE_ENABLED and _TRACE_ENABLED):
            return
        mem = self.mem
        if anchor_pc < 0 or anchor_pc + 8 > mem.size:
            return
        line = anchor_pc >> 6
        k = (anchor_pc >> 3) & 7
        blocks = mem.code_blocks.get(line)
        if blocks is None:
            blocks = self.compile_blocks(line)
        e = blocks[k]
        tr = e[4]
        if tr is not None:
            if tr[2][0]:
                return  # live trace already anchored here
            blocks[k] = (e[0], e[1], e[2], e[3], None)
        planned = self._plan_trace(anchor_pc)
        if planned is None:
            return
        plan, loop, total, nguards, covered = planned
        code = _gen_trace_code(anchor_pc & 63, plan, loop)
        mkey = ("trace", anchor_pc & 63, plan, loop)
        mk = self._mk_cache.get(mkey)
        if mk is None:
            ns = self._fuse_ns
            exec(code, ns)
            mk = self._mk_cache[mkey] = ns.pop("_mk")
        lv = [True]
        fn = mk(anchor_pc, lv)
        first = plan[0]
        n0 = len(first[2]) if first[0] == "s" else 1
        rec = (n0, fn, lv, [0, 0],
               {"node": self.node.node_id, "anchor": anchor_pc,
                "instrs": total, "guards": nguards, "loop": loop})
        td = mem.trace_deps
        for ln in covered:
            lst = td.get(ln)
            if lst is None:
                td[ln] = [rec]
            else:
                lst.append(rec)
        blocks = mem.code_blocks.get(line)
        if blocks is None:  # planning recompiled the anchor line
            blocks = self.compile_blocks(line)
        e = blocks[k]
        blocks[k] = (e[0], e[1], e[2], e[3], rec)
        _C.traces_compiled += 1
        _TRACE_REGISTRY.append(rec)
        if _T.enabled:
            _T.instant(node_pid(self.node.node_id), core, "trace.compile", t)

    def _plan_trace(self, anchor_pc: int):
        """Walk the predicted path from ``anchor_pc``; returns
        ``(plan, loop, total, nguards, covered_lines)`` or None.

        Plan items (pcs as rels relative to the anchor):

        * ``('s', rel, instrs)`` — straight-line run of fusible ops
        * ``('g', rel, op, rs1, rs2, pred_taken, bail_rel, cont_rel)``
          — guarded conditional branch on the predicted path
        * ``('j', rel, tgt_rel)`` — unconditional branch on the path
        * ``('x', rel)`` — hand back to the dispatcher at ``rel``
          (nothing retired at the exit pc itself)

        A predicted target equal to the anchor closes the plan into a
        loop.  Plans that neither close a loop nor cross a guard are
        refused (fusion already covers straight lines), as are empty
        ones.  Branches are only followed when their profile is hot and
        monomorphic; everything else — calls, returns, computed jumps,
        GOT loads, sub-word memory ops — exits the trace at its pc.
        """
        mem = self.mem
        mem_size = mem.size
        mv = mem._mv
        cbget = mem.code_blocks.get
        emit = _FUSE_EMIT
        guards = _GUARD_CMP
        b_op = int(Op.B)
        lcache: dict = {}
        plan: list = []
        visited: set = set()
        seg: list = []
        seg_rel = 0
        total = 0
        nguards = 0
        loop = False
        pc = anchor_pc

        def flush():
            nonlocal seg
            if seg:
                plan.append(("s", seg_rel, tuple(seg)))
                seg = []

        while True:
            rel = pc - anchor_pc
            if (pc in visited or total >= _TRACE_CAP or pc & 7
                    or pc < 0 or pc + 8 > mem_size):
                flush()
                plan.append(("x", rel))
                break
            ln = pc >> 6
            f = lcache.get(ln)
            if f is None:
                base = ln << 6
                f = lcache[ln] = _LINE_WORDS.unpack(
                    bytes(mv[base:base + 64]))
            i = ((pc >> 3) & 7) * 5
            op = f[i]
            if op in emit:
                if not seg:
                    seg_rel = rel
                seg.append((op, f[i + 1], f[i + 2], f[i + 3], f[i + 4]))
                visited.add(pc)
                total += 1
                pc += 8
                continue
            if op == b_op:
                tgt = pc + f[i + 4]
                flush()
                if tgt == anchor_pc:
                    plan.append(("j", rel, 0))
                    visited.add(pc)
                    total += 1
                    loop = True
                    break
                if (tgt in visited or tgt & 7 or tgt < 0
                        or tgt + 8 > mem_size):
                    plan.append(("x", rel))
                    break
                plan.append(("j", rel, tgt - anchor_pc))
                visited.add(pc)
                total += 1
                pc = tgt
                continue
            if op in guards:
                aux = None
                blocks = cbget(ln)
                if blocks is None:
                    blocks = self.compile_blocks(ln)
                be = blocks[(pc >> 3) & 7]
                if be[0] == 1:
                    aux = be[3]
                if aux is None:
                    flush()
                    plan.append(("x", rel))
                    break
                taken, ntaken = aux[0], aux[1]
                big, small = ((taken, ntaken) if taken >= ntaken
                              else (ntaken, taken))
                if big < _TRACE_HOT // 2 or big < 8 * small:
                    flush()  # not monomorphic (yet): exit before it
                    plan.append(("x", rel))
                    break
                pred_taken = taken >= ntaken
                tgt = aux[2] if pred_taken else pc + 8
                bail = pc + 8 if pred_taken else aux[2]
                if tgt & 7 or tgt < 0 or tgt + 8 > mem_size:
                    flush()
                    plan.append(("x", rel))
                    break
                flush()
                if tgt == anchor_pc:
                    plan.append(("g", rel, op, f[i + 2], f[i + 3],
                                 pred_taken, bail - anchor_pc, 0))
                    visited.add(pc)
                    total += 1
                    nguards += 1
                    loop = True
                    break
                if tgt in visited:
                    plan.append(("x", rel))
                    break
                plan.append(("g", rel, op, f[i + 2], f[i + 3], pred_taken,
                             bail - anchor_pc, tgt - anchor_pc))
                visited.add(pc)
                total += 1
                nguards += 1
                pc = tgt
                continue
            # CALL / CALLR / RET / JR / LDG / LDGI / SEV / HALT / WFE /
            # sub-word memory ops / illegal: not traceable
            flush()
            plan.append(("x", rel))
            break

        if total == 0 or not (loop or nguards):
            return None
        return (tuple(plan), loop, total, nguards,
                {p >> 6 for p in visited})

    def compile_one(self, pc: int):
        """Uncached single-slot compile (misaligned-pc fallback)."""
        fields = decode_fields(self.mem.data, pc)
        return _COMPILERS[fields[0]](self, *fields, pc)


class Vm:
    """One execution context pinned to a core of a node."""

    def __init__(self, node: Node, core: int = 0, intrinsics=None,
                 check_pages: bool = True):
        from .intrinsics import IntrinsicTable  # local import to avoid cycle
        self.node = node
        self.core = core
        self.intrinsics = intrinsics if intrinsics is not None else IntrinsicTable()
        self.check_pages = check_pages
        code = getattr(node, "code_cache", None)
        if code is None:
            code = node.code_cache = NodeCodeCache(node)
        self._code = code
        from ..machine.pages import PROT_RW
        self.stack_base = node.map_region(DEFAULT_STACK_BYTES, PROT_RW,
                                          align=4096, label="vmstack")
        self.stack_top = self.stack_base + DEFAULT_STACK_BYTES

    # ------------------------------------------------------------------
    def call(self, entry: int, args: tuple[int, ...] = (), now: float = 0.0,
             max_steps: int = 4_000_000) -> CallResult:
        """Call the function at ``entry`` with up to 8 integer args.

        Returns the signed a0 value and the simulated elapsed time.  The
        executed code sees the node's real memory; any register state is
        fresh per call (the runtime's invocation stub behaves likewise).
        """
        if len(args) > 8:
            raise VmFault(f"more than 8 arguments ({len(args)})")
        node = self.node
        mem = node.mem
        hier = node.hier
        pages = node.pages
        core = self.core
        mem_size = mem.size
        code_blocks = mem.code_blocks
        compile_blocks = self._code.compile_blocks
        materialize_slot = self._code.materialize_slot
        try_trace = self._code.try_trace
        trace_on = _TRACE_ENABLED  # per-call: the flag never flips mid-run
        m_on = _M.enabled  # per-call tier split for the metrics registry
        if m_on:
            m_fused0 = _C.fused_instructions
            m_trace0 = _C.trace_instructions

        regs = [0] * NREGS
        for i, a in enumerate(args):
            regs[i] = _ux(int(a))
        regs[SP] = self.stack_top
        regs[LR] = RETURN_SENTINEL

        pc = entry
        # elapsed-ns travels in a one-element box so slot executors can
        # add memory/native latencies to it
        ebox = [node.runnable_delay(core, now)]  # preempted at entry?
        steps = 0
        cur_line = None
        check = self.check_pages
        get_blocks = code_blocks.get
        access_line = hier.access_line
        check_exec = pages.check_exec
        # Line-transition fast path locals: the exec-permission probe and
        # the sequential L1I hit are open-coded below with the exact
        # bookkeeping of PageTable._check / access_line's inline path;
        # anything unusual falls back to the full calls.
        prot = pages.prot
        last_if = hier._last_ifetch
        l1i = hier.l1i[core]
        l1i_map = l1i._map
        l1_lat = hier._l1_lat

        while pc != RETURN_SENTINEL:
            if steps >= max_steps:
                raise VmFault(f"step limit {max_steps} exceeded", pc=pc)
            line = pc >> 6
            if line != cur_line:
                # bounds before any model side effect: an out-of-range
                # fetch must fault without touching cache state
                if pc < 0 or pc + 8 > mem_size:
                    raise VmFault("instruction fetch out of memory", pc=pc)
                if check:
                    page = pc >> _PAGE_SHIFT
                    if ((pc + 7) >> _PAGE_SHIFT != page
                            or prot[page] & _PROT_X != _PROT_X):
                        check_exec(pc, 8)
                if line == last_if[core] + 1:
                    way = l1i_map.get(line)
                    if way is not None:
                        _C.cache_probes += 1
                        last_if[core] = line
                        l1i.hits += 1
                        l1i._tick += 1
                        l1i.lru[line & l1i._set_mask][way] = l1i._tick
                        ebox[0] += l1_lat
                    else:
                        ebox[0] += access_line(now + ebox[0], core, line,
                                               "ifetch")
                else:
                    ebox[0] += access_line(now + ebox[0], core, line, "ifetch")
                cur_line = line
            if pc & 7:
                steps += 1
                ebox[0] += CPI_NS
                pc = self._step_misaligned(pc, regs, ebox, now)
                continue
            blocks = get_blocks(line)
            if blocks is None:
                blocks = compile_blocks(line)
            e = blocks[(pc >> 3) & 7]
            tr = e[4]
            if tr is not None and trace_on:
                if tr[2][0]:
                    if steps + tr[0] <= max_steps:
                        # trace: one dispatch retires a whole predicted
                        # path (possibly thousands of loop iterations);
                        # returns the dispatcher's exact state at the
                        # hand-back point.  tr[0] guarantees the first
                        # unit fits the budget; every back-edge
                        # re-checks before looping.
                        s0 = steps
                        pc, steps, cur_line = tr[1](self, regs, ebox,
                                                    now, steps, max_steps)
                        st = tr[3]
                        st[0] += 1
                        d = steps - s0
                        st[1] += d
                        _C.trace_instructions += d
                        continue
                else:
                    # invalidated (store/DMA/restore under a stitched
                    # line): detach the dead record; the branch profile
                    # re-arms a rebuild at the next power-of-two count
                    e = (e[0], e[1], e[2], e[3], None)
                    blocks[(pc >> 3) & 7] = e
            n = e[0]
            if n > 1 and steps + n <= max_steps:
                # fused superblock: one dispatch retires n instructions
                # (the closure charges n * CPI one add at a time and
                # does the loop's transition bookkeeping at any line
                # crossing, so timing is identical to single-stepping).
                # Blocks are straight-line, so the retired count is the
                # pc distance — exact even when a self-modifying store
                # bails out mid-block to force a re-fuse.
                fused = e[1]
                if fused is None:  # first entry at this slot: generate
                    fused = materialize_slot(line, (pc >> 3) & 7)
                ret = fused(self, regs, ebox, now)
                d = (ret - pc) >> 3
                _C.fused_instructions += d
                steps += d
                pc = ret
                cur_line = (pc - 8) >> 6  # line of the last retired instr
            else:
                # single step: not a fusible run head, or the block
                # would overshoot max_steps — stepping keeps the limit
                # fault at the exact instruction count
                steps += 1
                ebox[0] += CPI_NS
                npc = e[2](self, regs, ebox, now)
                if n == 1 and trace_on:
                    a = e[3]
                    if a is not None:  # conditional branch: profile it
                        if npc == a[2]:
                            taken = a[0] + 1
                            a[0] = taken
                            if (a[3] and taken >= _TRACE_HOT
                                    and not (taken & (taken - 1))):
                                try_trace(a[2], now + ebox[0], core)
                        else:
                            a[1] += 1
                pc = npc

        elapsed = ebox[0]
        node.add_busy_ns(core, elapsed)
        _C.instructions += steps
        if m_on:
            # Per-tier split: the trace (and therefore fused/interp)
            # share depends on host-side profile counters that survive
            # World.restore, so only the total is fork-stable.
            nid = node.node_id
            fd = _C.fused_instructions - m_fused0
            td = _C.trace_instructions - m_trace0
            end = now + elapsed
            _M.count(f"tc_vm_instructions_total|node={nid}", end, steps)
            _M.count(f"tc_vm_tier_instructions_total|node={nid}|tier=interp",
                     end, steps - fd - td, stable=False)
            if fd:
                _M.count(f"tc_vm_tier_instructions_total|node={nid}"
                         "|tier=fused", end, fd, stable=False)
            if td:
                _M.count(f"tc_vm_tier_instructions_total|node={nid}"
                         "|tier=trace", end, td, stable=False)
        if _T.enabled:
            _T.span(node_pid(node.node_id), core, "vm.call", now,
                    now + elapsed, {"steps": steps, "entry": entry})
        return CallResult(ret=_sx(regs[0]), elapsed_ns=elapsed, steps=steps)

    # ------------------------------------------------------------------
    def _step_misaligned(self, pc: int, regs: list[int], ebox: list[float],
                         now: float) -> int:
        """Execute one instruction at a non-8-aligned pc.

        Predecoded lines are indexed by 8-byte slot, so a misaligned pc
        (possible only via a computed jump — the toolchain never emits
        one) decodes and executes directly, uncached, with the original
        per-instruction semantics."""
        if pc < 0 or pc + 8 > self.node.mem.size:
            raise VmFault("instruction fetch out of memory", pc=pc)
        return self._code.compile_one(pc)(self, regs, ebox, now)

    # ------------------------------------------------------------------
    def _run_native(self, target: int, regs: list[int], now: float) -> float:
        idx, rem = divmod(target - NATIVE_BASE, NATIVE_STRIDE)
        if rem or not self.intrinsics.valid_index(idx):
            raise VmFault(f"call to bad native address {target:#x}")
        args = tuple(_sx(regs[i]) for i in range(8))
        ret, cost = self.intrinsics.invoke(idx, self, now, args)
        regs[0] = _ux(int(ret))
        return cost


def native_address(index: int) -> int:
    """Native entry-point address for intrinsic ``index``."""
    return NATIVE_BASE + index * NATIVE_STRIDE
