"""CHAIN ISA opcode table.

Fixed 8-byte instruction word, little-endian:

    byte 0   opcode
    byte 1   rd
    byte 2   rs1
    byte 3   rs2        (doubles as the GOT slot index for LDG/LDGI)
    bytes 4-7 imm       (signed 32-bit)

The fixed width is the property the Two-Chains toolchain depends on: the
GOT-access rewrite (``LDG`` -> ``LDGI``) is an in-place, same-size patch,
so no other offset in the function moves (§III-B of the paper).
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    # control
    NOP = 0x00
    HALT = 0x01
    WFE = 0x02       # wait-for-event on address in rs1 (runtime use only)
    SEV = 0x03       # send-event (wakes WFE waiters on addr in rs1)

    # moves / constants
    MOVI = 0x08      # rd = sext(imm)
    MOVHI = 0x09     # rd = (rd & 0xffffffff) | (imm << 32)
    MOV = 0x0A       # rd = rs1
    ADR = 0x0B       # rd = pc + imm   (PC of this instruction)

    # register arithmetic
    ADD = 0x10
    SUB = 0x11
    MUL = 0x12
    DIV = 0x13       # signed; divide by zero faults
    REM = 0x14
    AND = 0x15
    OR = 0x16
    XOR = 0x17
    SHL = 0x18
    SHR = 0x19       # logical right
    SAR = 0x1A       # arithmetic right
    SLT = 0x1B       # rd = (rs1 < rs2) signed
    SLTU = 0x1C

    # immediate arithmetic (rd = rs1 OP sext(imm))
    ADDI = 0x20
    MULI = 0x21
    ANDI = 0x22
    ORI = 0x23
    XORI = 0x24
    SHLI = 0x25
    SHRI = 0x26
    SARI = 0x27
    SLTI = 0x28

    # memory: address = rs1 + sext(imm)
    LD = 0x30        # 64-bit load
    LW = 0x31        # 32-bit sign-extending load
    LWU = 0x32
    LH = 0x33
    LHU = 0x34
    LB = 0x35
    LBU = 0x36
    ST = 0x38        # 64-bit store of rd
    SW = 0x39
    SH = 0x3A
    SB = 0x3B

    # control flow; branch targets are byte offsets relative to this
    # instruction's address
    B = 0x40
    BEQ = 0x41
    BNE = 0x42
    BLT = 0x43       # signed rs1 < rs2
    BGE = 0x44
    BLTU = 0x45
    BGEU = 0x46
    CALL = 0x48      # lr = pc+8; pc += imm
    CALLR = 0x49     # lr = pc+8; pc = rs1
    RET = 0x4A       # pc = lr
    JR = 0x4B        # pc = rs1

    # global-offset-table access (§III-B)
    LDG = 0x50       # rd = *[pc + imm + slot*8]           (slot in rs2 byte)
    LDGI = 0x51      # rd = *[ *(pc + imm) + slot*8 ]      (rewritten form)


INSTR_BYTES = 8

# Opcodes whose imm field is a PC-relative byte offset (branch targets).
BRANCH_OPS = frozenset({
    Op.B, Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU, Op.CALL,
})

LOAD_OPS = frozenset({Op.LD, Op.LW, Op.LWU, Op.LH, Op.LHU, Op.LB, Op.LBU})
STORE_OPS = frozenset({Op.ST, Op.SW, Op.SH, Op.SB})

# bytes moved by each memory op
MEM_SIZE = {
    Op.LD: 8, Op.ST: 8,
    Op.LW: 4, Op.LWU: 4, Op.SW: 4,
    Op.LH: 2, Op.LHU: 2, Op.SH: 2,
    Op.LB: 1, Op.LBU: 1, Op.SB: 1,
}
