"""Two-Chains reproduction: function injection & execution over simulated RDMA.

A full-stack simulation reproduction of *Two-Chains: High Performance
Framework for Function Injection and Execution* (CLUSTER 2021): the CHAIN
ISA + AMC compiler + ELF toolchain substrate, a cycle-cost two-node
machine model with LLC stashing, an RDMA/mini-UCX fabric, and the
Two-Chains active-message runtime on top.

Quickstart: see ``examples/quickstart.py`` and :mod:`repro.core.stdworld`.

Subpackages: ``sim`` (DES kernel), ``machine`` (nodes/caches/DRAM),
``isa`` (CHAIN), ``amc`` (mini-C), ``elf``, ``linker``, ``rdma``, ``ucp``,
``core`` (the Two-Chains framework), ``bench`` (figure reproduction),
``workloads``.
"""

__version__ = "1.0.0"

from . import amc, core, elf, isa, linker, machine, rdma, sim, ucp  # noqa: F401
from .core import (  # noqa: F401
    Connection,
    JamSource,
    RiedSource,
    RuntimeConfig,
    TwoChainsRuntime,
    WaitMode,
    build_package,
    connect_runtimes,
)
from .rdma import Testbed  # noqa: F401

__all__ = [
    "Connection",
    "JamSource",
    "RiedSource",
    "RuntimeConfig",
    "Testbed",
    "TwoChainsRuntime",
    "WaitMode",
    "build_package",
    "connect_runtimes",
    "__version__",
]
