"""Memory regions and RKEY protection (IBTA security model, §V).

Registering memory for remote access yields a 32-bit RKEY derived from the
region's address, length, permissions, and a per-HCA nonce — matching the
paper's description of the IBTA mechanism it relies on.  Every inbound
one-sided operation is validated against (rkey, bounds, permission) and
rejected "at the hardware level" on mismatch.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

from ..errors import RdmaError, RkeyViolation


class Access(enum.IntFlag):
    LOCAL = 0
    REMOTE_READ = 1
    REMOTE_WRITE = 2
    REMOTE_ATOMIC = 4


@dataclass(frozen=True)
class MemoryRegion:
    node_id: int
    addr: int
    length: int
    access: Access
    rkey: int
    lkey: int

    def covers(self, addr: int, size: int) -> bool:
        return self.addr <= addr and addr + size <= self.addr + self.length

    def check(self, addr: int, size: int, op: Access) -> None:
        if not self.covers(addr, size):
            raise RkeyViolation(
                f"access [{addr:#x},{addr + size:#x}) outside MR "
                f"[{self.addr:#x},{self.addr + self.length:#x})")
        if not (self.access & op):
            raise RkeyViolation(
                f"MR rkey={self.rkey:#010x} lacks {op.name} permission")


class MrTable:
    """Per-HCA registered-region table keyed by rkey."""

    def __init__(self, node_id: int, nonce: int = 0x5EED):
        self.node_id = node_id
        self.nonce = nonce
        self._counter = 0
        self._by_rkey: dict[int, MemoryRegion] = {}

    def register(self, addr: int, length: int, access: Access) -> MemoryRegion:
        if length <= 0:
            raise RdmaError("cannot register an empty region")
        self._counter += 1
        digest = hashlib.sha256(
            f"{self.nonce}:{addr}:{length}:{int(access)}:{self._counter}"
            .encode()).digest()
        rkey = int.from_bytes(digest[:4], "little") or 1
        while rkey in self._by_rkey:  # extremely unlikely 32-bit collision
            rkey = (rkey + 1) & 0xFFFFFFFF or 1
        mr = MemoryRegion(self.node_id, addr, length, access, rkey,
                          lkey=self._counter)
        self._by_rkey[rkey] = mr
        return mr

    def snapshot(self) -> tuple:
        """Capture registration state.  The counter matters for identity:
        rkeys hash it, so a restored table must hand out the same rkey
        sequence a fresh table would."""
        return self._counter, dict(self._by_rkey)

    def restore(self, snap: tuple) -> None:
        self._counter, by_rkey = snap
        self._by_rkey = dict(by_rkey)

    def deregister(self, mr: MemoryRegion) -> None:
        self._by_rkey.pop(mr.rkey, None)

    def validate(self, rkey: int, addr: int, size: int, op: Access
                 ) -> MemoryRegion:
        mr = self._by_rkey.get(rkey)
        if mr is None:
            raise RkeyViolation(f"unknown rkey {rkey:#010x}")
        mr.check(addr, size, op)
        return mr

    def __len__(self) -> int:
        return len(self._by_rkey)
