"""RDMA verbs model: memory regions/rkeys, queue pairs, N-node fabric."""

from .fabric import Fabric, Testbed, Topology
from .mr import Access, MemoryRegion, MrTable
from .params import DEFAULT_LINK, LinkParams
from .verbs import Completion, Hca, QueuePair, WcStatus, connect

__all__ = [
    "Access",
    "Fabric",
    "Topology",
    "Completion",
    "DEFAULT_LINK",
    "Hca",
    "LinkParams",
    "MemoryRegion",
    "MrTable",
    "QueuePair",
    "Testbed",
    "WcStatus",
    "connect",
]
