"""RDMA verbs model: memory regions/rkeys, queue pairs, two-node fabric."""

from .fabric import Testbed
from .mr import Access, MemoryRegion, MrTable
from .params import DEFAULT_LINK, LinkParams
from .verbs import Completion, Hca, QueuePair, WcStatus, connect

__all__ = [
    "Access",
    "Completion",
    "DEFAULT_LINK",
    "Hca",
    "LinkParams",
    "MemoryRegion",
    "MrTable",
    "QueuePair",
    "Testbed",
    "WcStatus",
    "connect",
]
