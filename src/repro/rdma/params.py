"""RDMA fabric cost-model parameters.

Derived from the paper's testbed (§VI-C): ConnectX-6 200 Gb/s HCAs on PCIe
Gen4 x16, two servers cabled back-to-back (no switch).  Public ConnectX-6
figures put the half-round-trip of a small RDMA WRITE at ~0.8-1.0 us; the
decomposition below reproduces that while exposing the knobs the model
needs (software post cost, HCA processing, PCIe, wire, ack).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkParams:
    # CPU-side cost of building a WQE and ringing the doorbell.
    post_overhead_ns: float = 70.0
    # HCA packet processing, each direction.
    hca_proc_ns: float = 160.0
    # PCIe Gen4 x16 round across the root complex, each host.
    pcie_lat_ns: float = 180.0
    # Wire: 200 Gb/s => 25 GB/s payload bandwidth, ~2 m DAC cable.
    wire_bandwidth_gbps: float = 25.0
    wire_prop_ns: float = 25.0
    # Per-message framing/serialization overhead on the wire.
    wire_msg_overhead_ns: float = 32.0
    # MTU for segmentation (affects only very large messages' pipelining).
    mtu: int = 4096
    # ACK return for sender-side completion of a reliable write.
    ack_ns: float = 350.0
    # Whether inter-put ordering is enforced between hosts (§III-A: the
    # paper's testbed enforces it, letting data+signal travel in one put;
    # set False to model fabrics that need a fence + separate signal put).
    enforces_ordering: bool = True

    def wire_time_ns(self, size: int) -> float:
        return self.wire_msg_overhead_ns + size / self.wire_bandwidth_gbps

    def one_way_base_ns(self) -> float:
        """Size-independent half-RTT component."""
        return (self.post_overhead_ns + self.hca_proc_ns + self.pcie_lat_ns
                + self.wire_prop_ns + self.hca_proc_ns + self.pcie_lat_ns)


DEFAULT_LINK = LinkParams()
