"""The N-node world fabric: topologies, nodes, HCAs, and the QP mesh.

The paper's testbed (§VI-C) is exactly two servers cabled back-to-back;
this module generalizes it.  A :class:`Topology` describes a world —
node count, named roles, and a per-directed-pair link model — and a
:class:`Fabric` instantiates it: one :class:`~repro.machine.node.Node`
and one :class:`~repro.rdma.verbs.Hca` per topology node plus a
reliable-connected queue pair for every directed pair, so `put`/`get`
and mailbox delivery can address *any* peer by node id.

``Testbed`` remains as an alias of :class:`Fabric`; the default
two-node topology reproduces the original back-to-back testbed exactly
(same construction order, same costs, byte-identical benchmark rows).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Mapping

from ..errors import RdmaError
from ..machine.hierarchy import HierarchyConfig
from ..machine.node import Node
from ..sim import shard as _shard
from ..sim.engine import Engine
from ..sim.rng import RngPool
from .params import DEFAULT_LINK, LinkParams
from .verbs import Hca, QueuePair, connect, envelope_lookahead_ns


def shard_of(node_id: int, nodes: int, nshards: int) -> int:
    """Contiguous node -> shard partition (shard sizes differ by <= 1)."""
    return node_id * nshards // nodes

DEFAULT_MEM_SIZE = 64 * 1024 * 1024


@dataclass(frozen=True)
class Topology:
    """A world description: how many nodes, what they are called, and
    what every pair's cable looks like.

    ``links`` overrides the link model per *directed* pair
    ``(src, dst)``; unlisted pairs use ``default_link``.  ``roles`` maps
    stable names ("client", "head", "tail", …) to node ids so workloads
    never hard-code peer indices.  Topologies are value objects: they
    serialize canonically (:meth:`canonical`) and therefore participate
    in the world setup-cache key (see ``core.stdworld.world_setup_key``).
    """

    nodes: int = 2
    roles: Mapping[str, int] = field(default_factory=dict)
    links: Mapping[tuple[int, int], LinkParams] = field(default_factory=dict)
    default_link: LinkParams = DEFAULT_LINK
    mem_size: int = DEFAULT_MEM_SIZE

    def __post_init__(self):
        if self.nodes < 1:
            raise RdmaError(f"topology needs at least 1 node, got {self.nodes}")
        for name, nid in self.roles.items():
            if not (0 <= nid < self.nodes):
                raise RdmaError(f"role {name!r} names node {nid}, but the "
                                f"topology has {self.nodes} node(s)")
        for (src, dst) in self.links:
            if src == dst or not (0 <= src < self.nodes
                                  and 0 <= dst < self.nodes):
                raise RdmaError(f"link override ({src}, {dst}) is not a "
                                f"valid directed pair of {self.nodes} nodes")

    # -- lookups -----------------------------------------------------------

    def link_for(self, src: int, dst: int) -> LinkParams:
        """The link model governing puts from ``src`` to ``dst``."""
        return self.links.get((src, dst), self.default_link)

    def role_id(self, role: str) -> int:
        try:
            return self.roles[role]
        except KeyError:
            raise RdmaError(f"topology has no role {role!r}; "
                            f"known: {sorted(self.roles)}") from None

    def resolve(self, who: int | str) -> int:
        """A node id, from either an id or a role name."""
        return self.role_id(who) if isinstance(who, str) else who

    def pairs(self) -> list[tuple[int, int]]:
        """Every unordered pair, in canonical (i < j) order."""
        return [(i, j) for i in range(self.nodes)
                for j in range(i + 1, self.nodes)]

    # -- canonical serialization (setup-cache keys) ------------------------

    def canonical(self) -> dict:
        return {
            "nodes": self.nodes,
            "roles": {k: self.roles[k] for k in sorted(self.roles)},
            "links": [[s, d, asdict(self.links[(s, d)])]
                      for s, d in sorted(self.links)],
            "default_link": asdict(self.default_link),
            "mem_size": self.mem_size,
        }

    # -- constructors ------------------------------------------------------

    @classmethod
    def pair(cls, link: LinkParams = DEFAULT_LINK,
             mem_size: int = DEFAULT_MEM_SIZE) -> "Topology":
        """The paper's two-node back-to-back testbed: node 0 is the
        client/initiator, node 1 the server/target."""
        return cls(nodes=2, roles={"client": 0, "server": 1},
                   default_link=link, mem_size=mem_size)

    @classmethod
    def chain(cls, replicas: int, link: LinkParams = DEFAULT_LINK,
              mem_size: int = DEFAULT_MEM_SIZE) -> "Topology":
        """A chain-replication world: node 0 is the client, nodes
        1..replicas the chain (head = 1, tail = replicas)."""
        if replicas < 1:
            raise RdmaError("chain needs at least 1 replica")
        roles = {"client": 0, "head": 1, "tail": replicas}
        return cls(nodes=replicas + 1, roles=roles, default_link=link,
                   mem_size=mem_size)


@dataclass
class Fabric:
    """N servers, N HCAs, and a full QP mesh, built from a Topology.

    For the default two-node topology the legacy attribute surface
    (``node0``/``node1``/``hca0``/``hca1``/``qp01``/``qp10``) still
    works; new code addresses peers by id via :meth:`node`, :meth:`hca`,
    and :meth:`qp`.
    """

    __test__ = False  # not a pytest class despite the legacy alias

    engine: Engine
    rngs: RngPool
    topology: Topology
    nodes: list[Node]
    hcas: list[Hca]
    qps: dict[tuple[int, int], QueuePair]

    @classmethod
    def create(cls, hier_cfg: HierarchyConfig | None = None,
               link: LinkParams = DEFAULT_LINK, seed: int | None = None,
               mem_size: int | None = None,
               topology: Topology | None = None) -> "Fabric":
        from ..sim.rng import DEFAULT_SEED
        if topology is None:
            topology = Topology.pair(link=link,
                                     mem_size=mem_size or DEFAULT_MEM_SIZE)
        requested, backend = _shard.get_policy()
        nshards = _shard.resolve_shards(requested, topology.nodes)
        if nshards > 1:
            coord = _shard.make_coordinator(nshards, backend=backend)
            engine = coord
            engines = [coord.view(shard_of(i, topology.nodes, nshards))
                       for i in range(topology.nodes)]
        else:
            engine = Engine()
            engines = [engine] * topology.nodes
        rngs = RngPool(DEFAULT_SEED if seed is None else seed)
        cfg0 = hier_cfg or HierarchyConfig()
        nodes: list[Node] = []
        for i in range(topology.nodes):
            # Each node gets its own hierarchy instance with identical
            # config (node 0 owns the caller's instance, like before).
            cfg = cfg0 if i == 0 else HierarchyConfig(**vars(cfg0))
            nodes.append(Node(engines[i], i, mem_size=topology.mem_size,
                              hier_cfg=cfg))
        # One HCA per node; its default link is the topology default (the
        # per-pair override rides on the QP, not the HCA).
        hcas = [Hca(node, topology.default_link) for node in nodes]
        qps: dict[tuple[int, int], QueuePair] = {}
        for i, j in topology.pairs():
            if nshards > 1:
                # Each QP schedules on its source node's shard; pairs
                # that cross shards register the channel lookahead.
                lo = topology.link_for(i, j)
                lb = topology.link_for(j, i)
                qps[(i, j)] = QueuePair(engines[i], hcas[i], hcas[j], link=lo)
                qps[(j, i)] = QueuePair(engines[j], hcas[j], hcas[i], link=lb)
                # Name every QP as an engine endpoint: the process shard
                # backend wire-encodes cross-shard callables as (endpoint
                # key, method), and registration must precede its fork.
                coord.register_endpoint(f"qp:{i}:{j}", qps[(i, j)])
                coord.register_endpoint(f"qp:{j}:{i}", qps[(j, i)])
                si, sj = engines[i].shard, engines[j].shard
                if si != sj:
                    coord.register_link(si, sj, envelope_lookahead_ns(lo))
                    coord.register_link(sj, si, envelope_lookahead_ns(lb))
            else:
                qps[(i, j)], qps[(j, i)] = connect(
                    engine, hcas[i], hcas[j],
                    link_out=topology.link_for(i, j),
                    link_back=topology.link_for(j, i))
        return cls(engine, rngs, topology, nodes, hcas, qps)

    @property
    def nshards(self) -> int:
        """Effective DES shard count this fabric was built with."""
        return getattr(self.engine, "nshards", 1)

    # -- fabric-aware addressing -------------------------------------------

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def hca(self, node_id: int) -> Hca:
        return self.hcas[node_id]

    def qp(self, src: int, dst: int) -> QueuePair:
        try:
            return self.qps[(src, dst)]
        except KeyError:
            raise RdmaError(f"no queue pair {src} -> {dst}") from None

    def peers_of(self, node_id: int) -> list[int]:
        """Every peer ``node_id`` holds a QP to, in ascending id order."""
        return sorted(dst for (src, dst) in self.qps if src == node_id)

    def qps_from(self, node_id: int) -> dict[int, QueuePair]:
        """Outbound QPs of one node, keyed by destination node id."""
        return {dst: self.qps[(node_id, dst)]
                for dst in self.peers_of(node_id)}

    # -- legacy two-node surface -------------------------------------------

    @property
    def node0(self) -> Node:
        return self.nodes[0]

    @property
    def node1(self) -> Node:
        return self.nodes[1]

    @property
    def hca0(self) -> Hca:
        return self.hcas[0]

    @property
    def hca1(self) -> Hca:
        return self.hcas[1]

    @property
    def qp01(self) -> QueuePair:
        return self.qps[(0, 1)]

    @property
    def qp10(self) -> QueuePair:
        return self.qps[(1, 0)]

    def qp_from(self, node_id: int) -> QueuePair:
        """Two-node legacy helper: the node's QP to the other node."""
        return self.qps[(node_id, 1 - node_id)]


#: Historical name for the two-node instantiation; same class.
Testbed = Fabric
