"""The two-node back-to-back testbed (§VI-C) in one convenience object."""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.hierarchy import HierarchyConfig
from ..machine.node import Node
from ..sim.engine import Engine
from ..sim.rng import RngPool
from .params import DEFAULT_LINK, LinkParams
from .verbs import Hca, QueuePair, connect


@dataclass
class Testbed:
    """Two servers, two HCAs, one cable.  node0 is the client/initiator and
    node1 the server/target in all benchmark shapes."""

    __test__ = False  # not a pytest class despite the name

    engine: Engine
    rngs: RngPool
    node0: Node
    node1: Node
    hca0: Hca
    hca1: Hca
    qp01: QueuePair   # node0 -> node1
    qp10: QueuePair   # node1 -> node0

    @classmethod
    def create(cls, hier_cfg: HierarchyConfig | None = None,
               link: LinkParams = DEFAULT_LINK, seed: int | None = None,
               mem_size: int = 64 * 1024 * 1024) -> "Testbed":
        from ..sim.rng import DEFAULT_SEED
        engine = Engine()
        rngs = RngPool(DEFAULT_SEED if seed is None else seed)
        cfg0 = hier_cfg or HierarchyConfig()
        # Each node gets its own hierarchy instance with identical config.
        cfg1 = HierarchyConfig(**vars(cfg0))
        node0 = Node(engine, 0, mem_size=mem_size, hier_cfg=cfg0)
        node1 = Node(engine, 1, mem_size=mem_size, hier_cfg=cfg1)
        hca0 = Hca(node0, link)
        hca1 = Hca(node1, link)
        qp01, qp10 = connect(engine, hca0, hca1)
        return cls(engine, rngs, node0, node1, hca0, hca1, qp01, qp10)

    def node(self, node_id: int) -> Node:
        return self.node0 if node_id == 0 else self.node1

    def hca(self, node_id: int) -> Hca:
        return self.hca0 if node_id == 0 else self.hca1

    def qp_from(self, node_id: int) -> QueuePair:
        return self.qp01 if node_id == 0 else self.qp10
