"""Queue pairs and one-sided operations over the simulated fabric.

A reliable-connected QP between two HCAs.  ``post_put`` models the full
path of an RDMA WRITE: sender software post, sender HCA DMA-read of the
source buffer, wire serialization, receiver-side rkey/bounds check, and
the receiver DMA write — which allocates into the LLC when stashing is
enabled (the property §VII-B measures).  Writes on one QP complete in
order, matching the paper's testbed ("modern servers like the one we use
enforce ordering"); a ``fence`` marker is available for fabrics that do
not.

Delivery is asynchronous in simulated time: payload bytes appear in
receiver memory at the delivery instant (never earlier), then WFE monitors
covering the written range fire.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import RdmaError, RkeyViolation
from ..machine.node import Node
from ..obs.metrics import METRICS as _M
from ..obs.tracer import TID_HCA, TRACER as _T, node_pid
from ..sim.engine import Engine, Event
from ..sim.shard import shard_route
from .mr import Access, MemoryRegion, MrTable
from .params import DEFAULT_LINK, LinkParams


def envelope_lookahead_ns(link: LinkParams) -> float:
    """Minimum simulated latency of any message on ``link``: the static
    lookahead a cross-shard channel over this link may promise (software
    post + 2x HCA + 2x PCIe + propagation + zero-byte serialization).
    Every ``post_put``/``post_get`` delivery time provably meets it."""
    return link.one_way_base_ns() + link.wire_msg_overhead_ns


class WcStatus(enum.Enum):
    SUCCESS = "success"
    REMOTE_ACCESS_ERROR = "remote_access_error"


@dataclass
class Completion:
    """Work completion for a posted one-sided op."""
    op: str
    size: int
    status: WcStatus = WcStatus.SUCCESS
    posted_at: float = 0.0
    delivered_at: float = 0.0
    completed_at: float = 0.0
    event: Optional[Event] = None  # fired at completed_at

    @property
    def ok(self) -> bool:
        return self.status is WcStatus.SUCCESS


class Hca:
    """Host channel adapter: owns the MR table and the DMA pacing state."""

    def __init__(self, node: Node, link: LinkParams = DEFAULT_LINK):
        self.node = node
        self.link = link
        self.mrs = MrTable(node.node_id)
        self.tx_busy_until = 0.0   # sender-side engine serialization
        self.rx_busy_until = 0.0   # receiver-side DMA serialization
        self.bytes_tx = 0
        self.bytes_rx = 0

    def snapshot(self) -> tuple:
        return (self.mrs.snapshot(), self.tx_busy_until, self.rx_busy_until,
                self.bytes_tx, self.bytes_rx)

    def restore(self, snap: tuple) -> None:
        mrs, self.tx_busy_until, self.rx_busy_until, \
            self.bytes_tx, self.bytes_rx = snap
        self.mrs.restore(mrs)

    def register_memory(self, addr: int, length: int,
                        access: Access = Access.REMOTE_READ | Access.REMOTE_WRITE
                        ) -> MemoryRegion:
        # Registration pins pages; bounds-check against node memory here.
        if addr < 0 or addr + length > self.node.mem.size:
            raise RdmaError(f"register outside node memory: {addr:#x}+{length}")
        return self.mrs.register(addr, length, access)


class QueuePair:
    """One direction of a reliable connection (create both via connect()).

    ``link`` is this pair's link model; it defaults to the source HCA's
    link but may differ per peer on heterogeneous fabrics (the
    ``Topology`` per-pair overrides land here).
    """

    def __init__(self, engine: Engine, src: Hca, dst: Hca,
                 link: LinkParams | None = None):
        self.engine = engine
        self.src = src
        self.dst = dst
        self.link = link if link is not None else src.link
        self._last_delivery = 0.0   # in-order delivery horizon
        self.puts_posted = 0
        self.puts_failed = 0
        # Puts posted but not yet delivered.  Not part of the snapshot:
        # checkpoints require a quiescent fabric, so this is 0 there.
        self._inflight = 0

    def snapshot(self) -> tuple:
        return self._last_delivery, self.puts_posted, self.puts_failed

    def restore(self, snap: tuple) -> None:
        self._last_delivery, self.puts_posted, self.puts_failed = snap
        self._inflight = 0

    # -- timing helpers -----------------------------------------------------

    def _schedule(self, size: int, now: float, src_addr: int | None
                  ) -> tuple[float, float, float]:
        """Returns (sender_free_at, delivered_at, occupancy_release)."""
        link = self.link
        post_done = now + link.post_overhead_ns
        start = max(post_done, self.src.tx_busy_until)
        # Sender-side DMA read of the source buffer (may hit its LLC).
        read_occ = 0.0
        if src_addr is not None and size > 0:
            read_occ = self.src.node.hier.dma_read(start, src_addr, size)
        wire = link.wire_time_ns(size)
        # The engine pipelines messages: it is occupied for the larger of
        # the source read and the wire serialization.
        self.src.tx_busy_until = start + max(read_occ, wire)
        latency = (link.hca_proc_ns + link.pcie_lat_ns + link.wire_prop_ns
                   + wire + link.hca_proc_ns + link.pcie_lat_ns)
        delivered = start + latency
        # Reliable delivery on a QP is in-order.
        delivered = max(delivered, self._last_delivery + 1e-3)
        self._last_delivery = delivered
        return post_done, delivered, start

    # -- one-sided write ------------------------------------------------------

    def post_put(self, now: float, src_addr: int, dst_addr: int, size: int,
                 rkey: int, payload: bytes | None = None) -> Completion:
        """Post an RDMA WRITE of ``size`` bytes.

        ``payload`` overrides reading source bytes from node memory (used
        by tests); normally the bytes come from ``src_addr``.  The sender
        CPU is busy until the post returns; the wire and remote side
        proceed asynchronously.  Returns a Completion whose ``event`` fires
        at sender completion (ACK), with ``delivered_at`` the instant the
        bytes became visible at the receiver.
        """
        if size < 0:
            raise RdmaError("negative put size")
        now = max(now, self.engine.now)  # posts cannot happen in the past
        comp = Completion(op="put", size=size, posted_at=now,
                          event=self.engine.event("put.comp"))
        self.puts_posted += 1
        data = payload if payload is not None else (
            self.src.node.mem.read(src_addr, size) if size else b"")
        if len(data) != size:
            raise RdmaError(f"payload length {len(data)} != size {size}")
        post_done, delivered, _ = self._schedule(
            size, now, src_addr if payload is None else None)
        self.src.bytes_tx += size
        self._inflight += 1
        if _M.enabled:
            link = f"src={self.src.node.node_id}|dst={self.dst.node.node_id}"
            _M.count(f"tc_rdma_puts_total|{link}", now)
            _M.count(f"tc_rdma_link_bytes_total|{link}", now, size)
            _M.sample(f"tc_qp_inflight|{link}", now, self._inflight)
        if _T.enabled:
            # Sender HCA track: the whole put (outer), its software post
            # and wire/DMA flight nested inside.
            pid = node_pid(self.src.node.node_id)
            _T.span(pid, TID_HCA, "rdma.put", now, delivered, {"size": size})
            _T.span(pid, TID_HCA, "rdma.post", now, post_done)
            _T.span(pid, TID_HCA, "rdma.flight", post_done, delivered,
                    {"size": size})

        route = shard_route(self.engine, self.dst.node.engine)
        if route is not None:
            # Cross-shard put: the receiver-side work runs on the dst
            # shard via a lookahead-checked envelope; the sender retire
            # (status/ACK) rides back on an expect barrier registered at
            # the delivery time we just computed from src-local state.
            src_view, dst_view = route
            src_view.expect(delivered)
            dst_view.call_at(delivered, self._deliver_remote, comp, data,
                             dst_addr, size, rkey, src_view, delivered)
            return comp

        def deliver() -> None:
            try:
                self.dst.mrs.validate(rkey, dst_addr, size, Access.REMOTE_WRITE)
            except RkeyViolation:
                comp.status = WcStatus.REMOTE_ACCESS_ERROR
                self.puts_failed += 1
                self._inflight -= 1
                comp.completed_at = self.engine.now + self.link.ack_ns
                self.engine.call_at(comp.completed_at, comp.event.fire, comp)
                return
            node = self.dst.node
            if size:
                node.mem.write(dst_addr, data)
                # Inbound DMA timing: stash to LLC or drain to DRAM.
                occ = node.hier.dma_write(self.engine.now, dst_addr, size,
                                          owner_core=None)
                self.dst.rx_busy_until = max(self.dst.rx_busy_until,
                                             self.engine.now) + occ
                if _T.enabled:
                    _T.span(node_pid(node.node_id), TID_HCA,
                            "rdma.dma_write", self.engine.now,
                            self.engine.now + occ,
                            {"size": size,
                             "stash": node.hier.cfg.stash_enabled})
            self.dst.bytes_rx += size
            self._inflight -= 1
            if _M.enabled:
                _M.sample(f"tc_qp_inflight|src={self.src.node.node_id}"
                          f"|dst={self.dst.node.node_id}",
                          self.engine.now, self._inflight)
            comp.delivered_at = self.engine.now
            node.notify_write(dst_addr, size)
            comp.completed_at = self.engine.now + self.link.ack_ns
            self.engine.call_at(comp.completed_at, comp.event.fire, comp)

        self.engine.call_at(delivered, deliver)
        return comp

    # -- cross-shard put halves (see sim/shard.py) ----------------------------

    def _deliver_remote(self, comp: Completion, data: bytes, dst_addr: int,
                        size: int, rkey: int, src_view, delivered: float
                        ) -> None:
        """Receiver half of a cross-shard put, executing on the dst
        shard at the delivery instant; mirrors ``deliver()`` above."""
        now = self.dst.node.engine.now
        try:
            self.dst.mrs.validate(rkey, dst_addr, size, Access.REMOTE_WRITE)
        except RkeyViolation:
            src_view.resolve(delivered, self._retire_local, comp, False)
            return
        node = self.dst.node
        if size:
            node.mem.write(dst_addr, data)
            occ = node.hier.dma_write(now, dst_addr, size, owner_core=None)
            self.dst.rx_busy_until = max(self.dst.rx_busy_until, now) + occ
            if _T.enabled:
                _T.span(node_pid(node.node_id), TID_HCA, "rdma.dma_write",
                        now, now + occ,
                        {"size": size, "stash": node.hier.cfg.stash_enabled})
        self.dst.bytes_rx += size
        node.notify_write(dst_addr, size)
        src_view.resolve(delivered, self._retire_local, comp, True)

    def _retire_local(self, comp: Completion, ok: bool) -> None:
        """Sender half: status + ACK on the src shard, same instant."""
        now = self.engine.now
        if not ok:
            comp.status = WcStatus.REMOTE_ACCESS_ERROR
            self.puts_failed += 1
            self._inflight -= 1
            comp.completed_at = now + self.link.ack_ns
            self.engine.call_at(comp.completed_at, comp.event.fire, comp)
            return
        self._inflight -= 1
        if _M.enabled:
            _M.sample(f"tc_qp_inflight|src={self.src.node.node_id}"
                      f"|dst={self.dst.node.node_id}", now, self._inflight)
        comp.delivered_at = now
        comp.completed_at = now + self.link.ack_ns
        self.engine.call_at(comp.completed_at, comp.event.fire, comp)

    # -- one-sided read --------------------------------------------------------

    def post_get(self, now: float, dst_addr: int, src_addr: int, size: int,
                 rkey: int) -> Completion:
        """RDMA READ: fetch from the remote node into local memory."""
        if size < 0:
            raise RdmaError("negative get size")
        now = max(now, self.engine.now)
        comp = Completion(op="get", size=size, posted_at=now,
                          event=self.engine.event("get.comp"))
        link = self.link
        post_done = now + link.post_overhead_ns
        start = max(post_done, self.src.tx_busy_until)
        wire = link.wire_time_ns(size)
        rtt = (2 * (link.hca_proc_ns + link.pcie_lat_ns + link.wire_prop_ns)
               + wire + link.hca_proc_ns)
        done = start + rtt
        self.src.tx_busy_until = start + wire
        if _T.enabled:
            _T.span(node_pid(self.src.node.node_id), TID_HCA, "rdma.get",
                    now, done, {"size": size})

        route = shard_route(self.engine, self.dst.node.engine)
        if route is not None:
            src_view, dst_view = route
            src_view.expect(done)
            dst_view.call_at(done, self._get_remote, comp, dst_addr,
                             src_addr, size, rkey, src_view, done)
            return comp

        def finish() -> None:
            try:
                self.dst.mrs.validate(rkey, src_addr, size, Access.REMOTE_READ)
            except RkeyViolation:
                comp.status = WcStatus.REMOTE_ACCESS_ERROR
                comp.completed_at = self.engine.now
                comp.event.fire(comp)
                return
            data = self.dst.node.mem.read(src_addr, size)
            self.dst.node.hier.dma_read(self.engine.now, src_addr, size)
            self.src.node.mem.write(dst_addr, data)
            self.src.node.hier.dma_write(self.engine.now, dst_addr, size,
                                         owner_core=None)
            self.src.node.notify_write(dst_addr, size)
            comp.delivered_at = comp.completed_at = self.engine.now
            comp.event.fire(comp)

        self.engine.call_at(done, finish)
        return comp

    def _get_remote(self, comp: Completion, dst_addr: int, src_addr: int,
                    size: int, rkey: int, src_view, done: float) -> None:
        """Remote half of a cross-shard get: validate + read on the dst
        shard, then ship data back through the expect barrier."""
        try:
            self.dst.mrs.validate(rkey, src_addr, size, Access.REMOTE_READ)
        except RkeyViolation:
            src_view.resolve(done, self._get_finish, comp, None, dst_addr, 0)
            return
        data = self.dst.node.mem.read(src_addr, size)
        self.dst.node.hier.dma_read(self.dst.node.engine.now, src_addr, size)
        src_view.resolve(done, self._get_finish, comp, data, dst_addr, size)

    def _get_finish(self, comp: Completion, data: bytes | None,
                    dst_addr: int, size: int) -> None:
        """Local half of a cross-shard get, on the src shard."""
        now = self.engine.now
        if data is None:
            comp.status = WcStatus.REMOTE_ACCESS_ERROR
            comp.completed_at = now
            comp.event.fire(comp)
            return
        self.src.node.mem.write(dst_addr, data)
        self.src.node.hier.dma_write(now, dst_addr, size, owner_core=None)
        self.src.node.notify_write(dst_addr, size)
        comp.delivered_at = comp.completed_at = now
        comp.event.fire(comp)

    def fence(self) -> None:
        """Order subsequent posts after all prior deliveries (no-op cost on
        this fabric, which already delivers in order; kept for fabrics
        configured without inter-put ordering)."""
        self.src.tx_busy_until = max(self.src.tx_busy_until,
                                     self._last_delivery)


def connect(engine: Engine, a: Hca, b: Hca,
            link_out: LinkParams | None = None,
            link_back: LinkParams | None = None
            ) -> tuple[QueuePair, QueuePair]:
    """Create the RC queue-pair pair between two HCAs.

    ``link_out``/``link_back`` override the link model per direction
    (Topology per-pair links); by default each QP uses its source HCA's
    link, like the original back-to-back cable."""
    return (QueuePair(engine, a, b, link=link_out),
            QueuePair(engine, b, a, link=link_back))
