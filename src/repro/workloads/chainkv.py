"""Chain-replicated KV store over injected functions (docs/TOPOLOGY.md).

The paper's motivating setting (§I) is disaggregated services that ship
*functions* to where the data lives.  This workload builds the canonical
distributed-systems version of that idea on the N-node fabric: a
chain-replicated key/value store whose replication and lookup logic are
**injected jams**, not pre-installed server code.

Topology (``chain_topology(k)``): node 0 is the client; nodes 1..k are
replicas with roles ``head`` (node 1) and ``tail`` (node k).

* ``put(key, value)`` — the client sends an injected ``jam_chain_put``
  to the head; the head's waiter applies it to the local store and its
  hook *forwards the same active message* (payload read straight out of
  the mailbox slot) to its successor, hop by hop, until the tail applies
  it and sends a small no-exec ack back to the client.
* ``get(key)`` — served at the tail (chain replication's consistency
  point): an injected ``jam_chain_get`` copies the value into the
  tail-side ``ck_reply`` ried buffer, and the tail's hook ships those
  bytes back in a no-exec reply frame.
* ``multicast_install(...)`` — one sweep installs a jam on every
  replica: the client posts the injected frame to all k replicas
  back-to-back (the posts pipeline over per-peer QPs) and waits for all
  acks; the cost vs k is the ``figchain_mcast`` figure family.
* ``drop_replica(i)`` / relink-on-reconfig — removing a middle replica
  re-links the chain: the predecessor runs a fresh out-of-band exchange
  (a new :class:`~repro.core.runtime.Connection`) with the successor, so
  subsequent injected frames carry the successor's element-GOT address
  (the GOT patch) and the store keeps operating as a (k-1)-chain.

Importing this module registers the ``"chainkv"`` package with
:mod:`repro.core.stdworld`'s named-builder registry, so chain worlds
stay setup-cacheable (``make_world(topology=chain_topology(k),
package="chainkv")``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.stdworld import PACKAGE_BUILDERS, World
from ..core.runtime import Connection, connect_runtimes
from ..core.toolchain import JamSource, PackageBuild, RiedSource, build_package
from ..errors import TwoChainsError
from ..machine.pages import PROT_RW
from ..obs.metrics import METRICS as _M
from ..rdma.fabric import Topology
from ..rdma.params import DEFAULT_LINK, LinkParams

#: Chain worlds default to a smaller per-node memory than the two-node
#: testbed: k+1 nodes are live at once and the store's footprint is
#: bounded by the ried arrays below.
CHAIN_MEM_SIZE = 16 * 1024 * 1024

CK_SLOTS = 1024          # open-addressed table slots (power of two)
CK_DATA_BYTES = 262144   # per-replica value heap
CK_REPLY_BYTES = 4096    # tail-side reply staging buffer (max value size)

# -- the replica-side ried ---------------------------------------------------

RIED_CHAIN = RiedSource("ried_chain", r"""
// Per-replica chain-KV store: open-addressed key table binding keys to
// (offset, size) in a value heap, plus the tail's reply staging buffer.
extern long tc_hash64(long k);
long ck_keys[1024];
long ck_offsets[1024];
long ck_sizes[1024];
char ck_data[262144];
char ck_reply[4096];
long ck_cursor = 0;
long ck_puts = 0;
long ck_gets = 0;
long ck_installs = 0;

// Replica-local lookup used by tests (the jams carry their own probe
// loops — the client controls the lookup function).
long ck_find(long key) {
    long idx = tc_hash64(key) & 1023;
    long probes = 0;
    while (probes < 1024) {
        long k = ck_keys[idx];
        if (k == 0) { return -1; }
        if (k == key + 1) { return ck_offsets[idx]; }
        idx = (idx + 1) & 1023;
        probes = probes + 1;
    }
    return -1;
}

long ck_put_count() { return ck_puts; }
""")

# -- the injected jams -------------------------------------------------------

JAM_CHAIN_PUT = JamSource("jam_chain_put", r"""
extern long tc_hash64(long k);
extern long tc_memcpy(char* dst, char* src, long n);
extern long ck_keys[];
extern long ck_offsets[];
extern long ck_sizes[];
extern char ck_data[];
extern long ck_cursor;
extern long ck_puts;

long jam_chain_put(char* payload, long nbytes, long key, long a1) {
    // probe with the client-chosen key (key rides in inline arg 0; the
    // payload is the value bytes)
    long mask = 1023;
    long idx = tc_hash64(key) & mask;
    long probes = 0;
    while (probes < 1024) {
        long k = ck_keys[idx];
        if (k == 0 || k == key + 1) { break; }
        idx = (idx + 1) & mask;
        probes = probes + 1;
    }
    long off;
    if (ck_keys[idx] == key + 1) {
        off = ck_offsets[idx];
    } else {
        ck_keys[idx] = key + 1;
        off = ck_cursor;
        ck_cursor = off + nbytes;
        ck_offsets[idx] = off;
    }
    ck_sizes[idx] = nbytes;
    tc_memcpy(ck_data + off, payload, nbytes);
    ck_puts = ck_puts + 1;
    return off;
}
""", pad_code_to=1152)

JAM_CHAIN_GET = JamSource("jam_chain_get", r"""
extern long tc_hash64(long k);
extern long tc_memcpy(char* dst, char* src, long n);
extern long ck_keys[];
extern long ck_offsets[];
extern long ck_sizes[];
extern char ck_data[];
extern char ck_reply[];
extern long ck_gets;

long jam_chain_get(char* payload, long nbytes, long key, long a1) {
    long mask = 1023;
    long idx = tc_hash64(key) & mask;
    long probes = 0;
    long sz = 0;
    while (probes < 1024) {
        long k = ck_keys[idx];
        if (k == 0) { break; }
        if (k == key + 1) {
            sz = ck_sizes[idx];
            tc_memcpy(ck_reply, ck_data + ck_offsets[idx], sz);
            break;
        }
        idx = (idx + 1) & mask;
        probes = probes + 1;
    }
    ck_gets = ck_gets + 1;
    return sz;
}
""", pad_code_to=768)

# The multicast-install probe jam: tiny, so install cost is dominated by
# the per-replica injection sweep, not execution.
JAM_MC_TOUCH = JamSource("jam_mc_touch", r"""
extern long ck_installs;

long jam_mc_touch(char* payload, long nbytes, long a0, long a1) {
    ck_installs = ck_installs + 1;
    return ck_installs;
}
""", pad_code_to=256)


def build_chain_package() -> PackageBuild:
    """The chain-KV package: put/get/multicast jams + the replica ried."""
    return build_package("tcchain", [JAM_CHAIN_PUT, JAM_CHAIN_GET,
                                     JAM_MC_TOUCH], [RIED_CHAIN])


PACKAGE_BUILDERS.setdefault("chainkv", build_chain_package)


def chain_topology(replicas: int, link: LinkParams = DEFAULT_LINK,
                   mem_size: int = CHAIN_MEM_SIZE) -> Topology:
    """The chain world: client (node 0) + ``replicas`` chain nodes."""
    return Topology.chain(replicas, link=link, mem_size=mem_size)


# ---------------------------------------------------------------------------
# the wired store
# ---------------------------------------------------------------------------

@dataclass
class _Hop:
    """Receiver-side state of one chain link on a replica."""
    mailbox: object
    waiter: object
    conn: Connection       # the sender-side handle feeding this mailbox


class ChainKV:
    """A chain-replicated KV store wired onto a chain-topology world.

    Construction performs every out-of-band exchange the paper's model
    requires: per-hop mailboxes + connections down the chain, the tail's
    get/ack/reply channels, and per-replica multicast channels.  All
    replication logic then travels as injected jams at ``put``/``get``
    time — nothing store-specific is pre-installed beyond the package.
    """

    def __init__(self, world: World, value_bytes: int = 64,
                 banks: int = 2, slots: int = 4):
        topo = world.topology
        if "head" not in topo.roles or "tail" not in topo.roles:
            raise TwoChainsError(
                "ChainKV needs a chain topology (roles head/tail); "
                "build the world with topology=chain_topology(k)")
        if value_bytes < 1 or value_bytes > CK_REPLY_BYTES:
            raise TwoChainsError(
                f"value_bytes must be 1..{CK_REPLY_BYTES}")
        self.world = world
        self.engine = world.engine
        self.value_bytes = value_bytes
        self.client = world.runtime("client")
        self.head = topo.role_id("head")
        self.tail = topo.role_id("tail")
        self.replicas = list(range(self.head, self.tail + 1))
        self.build = world.build
        self._pkg = {i: world.runtimes[i].packages[self.build.package_id]
                     for i in range(topo.nodes)}
        put_frame = world.frame_size_for("jam_chain_put", value_bytes, True)
        get_frame = world.frame_size_for("jam_chain_get", 0, True)
        reply_frame = world.frame_size_for("jam_chain_get", value_bytes,
                                           False)
        mc_frame = world.frame_size_for("jam_mc_touch", 0, True)
        ack_frame = world.frame_size_for("jam_chain_put", 0, False)

        # successor connection of each live replica (tail maps to the
        # client ack channel); hooks look this up at send time so a
        # relink only has to swap the dict entry.
        self._next: dict[int, Connection] = {}
        self._hops: dict[int, _Hop] = {}

        # -- put path: client -> head -> ... -> tail -> ack ----------------
        self._in_conn: dict[int, Connection] = {}
        prev_rt = self.client
        for i in self.replicas:
            rt = world.runtimes[i]
            mb = rt.create_mailbox(banks, slots, put_frame)
            conn = connect_runtimes(prev_rt, rt, mb, flow_control=True)
            waiter = rt.make_waiter(mb, flag_target=conn.flag_target())
            waiter.on_frame = self._replica_hook(i, waiter)
            waiter.start()
            self._hops[i] = _Hop(mailbox=mb, waiter=waiter, conn=conn)
            if i > self.head:
                self._next[i - 1] = conn
            prev_rt = rt
        self.c2h = self._hops[self.head].conn

        # -- ack path: tail -> client --------------------------------------
        ack_mb = self.client.create_mailbox(banks, slots, ack_frame)
        self._ack_conn = connect_runtimes(world.runtimes[self.tail],
                                          self.client, ack_mb,
                                          flow_control=True)
        self._next[self.tail] = self._ack_conn
        self.acks: list[tuple[int, int]] = []   # (key, offset), arrival order
        self._ack_ev = self.engine.event("chainkv.ack")

        def ack_hook(view, slot_addr):
            self.acks.append((view.args[0], view.args[1]))
            self._ack_ev.fire()
            return None

        self._ack_waiter = self.client.make_waiter(
            ack_mb, on_frame=ack_hook,
            flag_target=self._ack_conn.flag_target())
        self._ack_waiter.start()

        # -- get path: client -> tail, reply: tail -> client ---------------
        tail_rt = world.runtimes[self.tail]
        get_mb = tail_rt.create_mailbox(1, 1, get_frame)
        self._get_conn = connect_runtimes(self.client, tail_rt, get_mb)
        reply_mb = self.client.create_mailbox(1, 1, reply_frame)
        self._reply_conn = connect_runtimes(tail_rt, self.client, reply_mb)
        self._reply_addr = self._pkg[self.tail].library.symbol("ck_reply")
        self._reply: dict[str, object] = {}
        self._reply_ev = self.engine.event("chainkv.reply")

        def tail_get_hook(waiter):
            def hook(view, slot_addr):
                sz = waiter.stats.last_exec_ret
                pkg = self._pkg[self.tail]
                yield from self._reply_conn.send_jam(
                    pkg, "jam_chain_get", self._reply_addr, sz,
                    args=(view.args[0], sz), inject=False, no_exec=True)
            return hook

        self._get_waiter = tail_rt.make_waiter(get_mb)
        self._get_waiter.on_frame = tail_get_hook(self._get_waiter)
        self._get_waiter.start()

        def reply_hook(view, slot_addr):
            node = self.client.node
            self._reply["size"] = view.args[1]
            self._reply["value"] = node.mem.read(
                slot_addr + view.payload_off, view.payload_size)
            self._reply_ev.fire()
            return None

        self._reply_waiter = self.client.make_waiter(reply_mb,
                                                     on_frame=reply_hook)
        self._reply_waiter.start()

        # -- multicast channels: client -> each replica, ack back ----------
        self._mc_conn: dict[int, Connection] = {}
        self._mc_waiters = []
        self._mc_acks = 0
        self._mc_ev = self.engine.event("chainkv.mc")
        for i in self.replicas:
            rt = world.runtimes[i]
            mc_mb = rt.create_mailbox(1, 1, mc_frame)
            conn = connect_runtimes(self.client, rt, mc_mb)
            self._mc_conn[i] = conn
            mcack_mb = self.client.create_mailbox(1, 1, ack_frame)
            back = connect_runtimes(rt, self.client, mcack_mb)

            def mc_hook(view, slot_addr, _back=back, _i=i):
                pkg = self._pkg[_i]
                yield from _back.send_jam(pkg, "jam_mc_touch", 0, 0,
                                          args=(_i,), inject=False,
                                          no_exec=True)

            w = rt.make_waiter(mc_mb, on_frame=mc_hook)
            w.start()
            self._mc_waiters.append(w)

            def mcack_hook(view, slot_addr):
                self._mc_acks += 1
                self._mc_ev.fire()
                return None

            wa = self.client.make_waiter(mcack_mb, on_frame=mcack_hook)
            wa.start()
            self._mc_waiters.append(wa)

        # value staging buffer in client memory
        self._val_addr = self.client.node.map_region(
            max(value_bytes, 64), PROT_RW, label="ck.value")

    # -- chain hooks --------------------------------------------------------

    def _replica_hook(self, node_id: int, waiter):
        """After a put applies on ``node_id``: forward down-chain, or ack
        back to the client when this node is the current tail."""
        def hook(view, slot_addr):
            conn = self._next[node_id]
            pkg = self._pkg[node_id]
            t0 = self.engine.now
            if conn is self._ack_conn:
                yield from conn.send_jam(
                    pkg, "jam_chain_put", 0, 0,
                    args=(view.args[0], waiter.stats.last_exec_ret),
                    inject=False, no_exec=True)
                if _M.enabled:
                    _M.observe(f"tc_chainkv_ack_ns|node={node_id}",
                               self.engine.now - t0)
            else:
                yield from conn.send_jam(
                    pkg, "jam_chain_put", slot_addr + view.payload_off,
                    view.payload_size, args=(view.args[0],), inject=True)
                if _M.enabled:
                    # Per-hop forward latency: apply done -> next-replica
                    # frame posted (fc stalls on the down-chain link
                    # included, which is what makes it diagnostic).
                    _M.observe(f"tc_chainkv_hop_ns|node={node_id}",
                               self.engine.now - t0)
                    _M.count(f"tc_chainkv_forwards_total|node={node_id}",
                             self.engine.now)
        return hook

    # -- client operations ---------------------------------------------------

    def _stage_value(self, value: bytes) -> int:
        if not value or len(value) > self.value_bytes:
            raise TwoChainsError(
                f"value must be 1..{self.value_bytes} bytes")
        self.client.node.mem.write(self._val_addr, value)
        return len(value)

    def send_put(self, key: int, value: bytes):
        """Process body: post one put into the chain (does not wait for
        the tail ack — streaming callers overlap puts with acks)."""
        nbytes = self._stage_value(value)
        pkg = self._pkg[0]
        yield from self.c2h.send_jam(pkg, "jam_chain_put", self._val_addr,
                                     nbytes, args=(key,), inject=True)

    def wait_acks(self, count: int):
        """Process body: park until ``count`` total acks have arrived."""
        while len(self.acks) < count:
            yield self._ack_ev

    def put(self, key: int, value: bytes) -> int:
        """Synchronous put: drive the DES until the tail ack arrives.
        Returns the tail-assigned value offset."""
        want = len(self.acks) + 1

        def proc():
            yield from self.send_put(key, value)
            yield from self.wait_acks(want)

        self.engine.run_process(proc(), name="chainkv.put")
        return self.acks[-1][1]

    def get(self, key: int) -> bytes | None:
        """Synchronous get at the tail: returns the value bytes, or None
        for a missing key."""
        def proc():
            pkg = self._pkg[0]
            yield from self._get_conn.send_jam(pkg, "jam_chain_get", 0, 0,
                                               args=(key,), inject=True)
            yield self._reply_ev

        self.engine.run_process(proc(), name="chainkv.get")
        size = self._reply["size"]
        if not size:
            return None
        return self._reply["value"][:size]

    def stream_puts(self, count: int, key_base: int = 1000) -> float:
        """Pipelined puts: post ``count`` back-to-back, wait for all tail
        acks.  Returns the elapsed simulated ns (tail-applied)."""
        value = bytes((3 * i + 5) & 0xFF for i in range(self.value_bytes))
        want = len(self.acks) + count
        marks = {}

        def proc():
            marks["t0"] = self.engine.now
            for j in range(count):
                yield from self.send_put(key_base + (j % 32), value)
            yield from self.wait_acks(want)
            marks["t1"] = self.engine.now

        self.engine.run_process(proc(), name="chainkv.stream")
        return marks["t1"] - marks["t0"]

    def multicast_install(self, element: str = "jam_mc_touch") -> float:
        """Install one jam on every live replica in a single sweep: post
        the injected frame to all replicas back-to-back, then wait for
        every ack.  Returns the elapsed simulated ns."""
        self._mc_acks = 0
        marks = {}

        def proc():
            marks["t0"] = self.engine.now
            pkg = self._pkg[0]
            for i in self.replicas:
                yield from self._mc_conn[i].send_jam(pkg, element, 0, 0,
                                                     args=(i,), inject=True)
            if _M.enabled:
                # Replication fan-out: replicas reached by one install.
                _M.count("tc_chainkv_mcast_installs_total", self.engine.now)
                _M.count("tc_chainkv_mcast_fanout_total", self.engine.now,
                         len(self.replicas))
            while self._mc_acks < len(self.replicas):
                yield self._mc_ev
            marks["t1"] = self.engine.now

        self.engine.run_process(proc(), name="chainkv.mcast")
        return marks["t1"] - marks["t0"]

    # -- reconfiguration ----------------------------------------------------

    def drop_replica(self, node_id: int) -> Connection:
        """Remove a middle replica and re-link the chain around it.

        The predecessor runs a fresh out-of-band exchange with the
        successor: a new mailbox on the successor, a new
        :class:`Connection` whose frames carry the successor's
        element-GOT address (the GOT patch — returned for inspection).
        The dropped replica's waiters stop; its store is abandoned.
        """
        if node_id in (self.head, self.tail):
            raise TwoChainsError(
                "only middle replicas can be dropped (head/tail handoff "
                "is a different reconfiguration)")
        if node_id not in self.replicas:
            raise TwoChainsError(f"node {node_id} is not a live replica")
        idx = self.replicas.index(node_id)
        pred, succ = self.replicas[idx - 1], self.replicas[idx + 1]

        # stop the dropped replica's put waiter and detach it
        hop = self._hops.pop(node_id)
        hop.waiter.stop()
        self.replicas.remove(node_id)
        del self._next[node_id]

        # fresh exchange pred -> succ: new mailbox, new connection, new
        # waiter (the successor's old mailbox kept its old sender's
        # sequence state, so reconfig always starts a clean channel).
        old = self._hops[succ]
        old.waiter.stop()
        succ_rt = self.world.runtimes[succ]
        mb = succ_rt.create_mailbox(old.mailbox.banks, old.mailbox.slots,
                                    old.mailbox.frame_size)
        conn = connect_runtimes(self.world.runtimes[pred], succ_rt, mb,
                                flow_control=True)
        waiter = succ_rt.make_waiter(mb, flag_target=conn.flag_target())
        waiter.on_frame = self._replica_hook(succ, waiter)
        waiter.start()
        self._hops[succ] = _Hop(mailbox=mb, waiter=waiter, conn=conn)
        if pred == 0:
            self.c2h = conn
        self._next[pred] = conn
        return conn

    # -- introspection / teardown -------------------------------------------

    def put_count(self, node_id: int) -> int:
        """Replica-side ck_puts counter (how many puts applied there).

        Read through the world (shard-routable: the node's memory may
        live in a shard worker process) rather than the node object.
        """
        lib = self._pkg[node_id].library
        return self.world.read_u64(node_id, lib.symbol("ck_puts"))

    def install_count(self, node_id: int) -> int:
        lib = self._pkg[node_id].library
        return self.world.read_u64(node_id, lib.symbol("ck_installs"))

    def element_got_addr(self, node_id: int, element: str) -> int:
        return self._pkg[node_id].element(element).got_addr

    def shutdown(self) -> None:
        """Stop every waiter (leaves the world quiescent for snapshots)."""
        for hop in self._hops.values():
            hop.waiter.stop()
        self._ack_waiter.stop()
        self._get_waiter.stop()
        self._reply_waiter.stop()
        for w in self._mc_waiters:
            w.stop()


@dataclass
class ChainOutcome:
    """One chain benchmark point (consumed by bench.chainfigs)."""
    replicas: int
    put_ns: list[float] = field(default_factory=list)
    get_ns: list[float] = field(default_factory=list)
    stream_elapsed_ns: float = 0.0
    stream_count: int = 0
    mcast_ns: list[float] = field(default_factory=list)

    @property
    def put_rate_mps(self) -> float:
        return self.stream_count / (self.stream_elapsed_ns * 1e-9)


def chain_point(world: World, *, value_bytes: int = 64, warmup: int = 4,
                iters: int = 12, stream_count: int = 0,
                mcast_iters: int = 0) -> ChainOutcome:
    """Measure one chain world: put/get latency, streaming put rate, and
    multicast install sweeps.  Keys cycle over a small working set so the
    value heap stays bounded regardless of iteration count."""
    kv = ChainKV(world, value_bytes=value_bytes)
    engine = world.engine
    out = ChainOutcome(replicas=len(kv.replicas))
    value = bytes((5 * i + 1) & 0xFF for i in range(value_bytes))
    for i in range(warmup + iters):
        key = 7 + (i % 32)
        t0 = engine.now
        kv.put(key, value)
        t1 = engine.now
        kv.get(key)
        t2 = engine.now
        if i >= warmup:
            out.put_ns.append(t1 - t0)
            out.get_ns.append(t2 - t1)
    if stream_count:
        out.stream_elapsed_ns = kv.stream_puts(stream_count)
        out.stream_count = stream_count
    for i in range(mcast_iters):
        out.mcast_ns.append(kv.multicast_install())
    kv.shutdown()
    return out
