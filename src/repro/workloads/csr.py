"""CSR graph helpers for the analytics workloads.

The motivating applications (§I) operate on large shared graphs.
:func:`build_csr` flattens a graph (anything with ``number_of_nodes()``
and ``neighbors()``, e.g. a networkx graph — networkx itself is
optional) into compressed-sparse-row ``(xadj, adj)`` int64 arrays, and
:func:`load_csr` writes those arrays into a server-side ried's exported
symbols.  That is how the examples and tests place "the data" on the
node that receives injected analysis functions: the graph lives in the
receiver's address space, and arriving jams walk it through the
ried-donated GOT.
"""

from __future__ import annotations

import numpy as np

from ..linker.loader import LoadedLibrary
from ..machine.node import Node


def build_csr(graph) -> tuple[np.ndarray, np.ndarray]:
    """(xadj, adj) int64 arrays for an undirected networkx graph."""
    n = graph.number_of_nodes()
    xadj = np.zeros(n + 1, dtype=np.int64)
    adj: list[int] = []
    for v in range(n):
        xadj[v] = len(adj)
        adj.extend(sorted(graph.neighbors(v)))
    xadj[n] = len(adj)
    return xadj, np.asarray(adj, dtype=np.int64)


def load_csr(node: Node, lib: LoadedLibrary, xadj: np.ndarray,
             adj: np.ndarray, xadj_symbol: str = "g_xadj",
             adj_symbol: str = "g_adj") -> None:
    """Write CSR arrays into the ried's exported arrays on ``node``.

    Raises if the ried's arrays are too small for the graph — sizes are
    fixed at package build time, like any C static array.
    """
    xadj_addr = lib.symbol(xadj_symbol)
    adj_addr = lib.symbol(adj_symbol)
    node.mem.write(xadj_addr, xadj.astype("<i8").tobytes())
    node.mem.write(adj_addr, adj.astype("<i8").tobytes())
