"""Workload models: the stress interferer and application substrates."""

from ..machine.noise import StressConfig, StressWorkload
from .csr import build_csr, load_csr

__all__ = ["StressConfig", "StressWorkload", "build_csr", "load_csr"]
