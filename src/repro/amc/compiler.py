"""AMC compilation driver: source text -> ObjectModule (+ listing)."""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.assembler import ObjectModule, assemble
from .codegen import generate_assembly
from .parser import parse


@dataclass
class CompileResult:
    module: ObjectModule
    assembly: str


_COMPILE_CACHE: dict[str, CompileResult] = {}


def compile_amc(source: str) -> CompileResult:
    """Compile AMC source to a CHAIN object module.

    Pipeline: lex/parse -> codegen to assembly text -> assemble.  The
    intermediate assembly is returned too — the Two-Chains build tool keeps
    it as the listing artifact, and tests assert on it.

    Compilation is deterministic and benchmark sweeps rebuild the same
    few sources at every point, so results are memoized by source text
    (consumers treat CompileResult as read-only, like ``assemble``'s).
    """
    res = _COMPILE_CACHE.get(source)
    if res is None:
        program = parse(source)
        assembly = generate_assembly(program)
        res = _COMPILE_CACHE[source] = CompileResult(
            module=assemble(assembly), assembly=assembly)
    return res
