"""AMC code generator: typed AST -> CHAIN assembly text.

A deliberately simple one-pass generator: expressions evaluate into a
register stack (t0..t11), locals live in fixed sp-relative slots, and the
frame also reserves spill slots so temporaries survive calls.  All
external references (functions *and* data) go through the GOT via ``ldg``
— that is the property the Two-Chains toolchain later rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompileError
from . import ast
from .ast import Ty

_TEMP_BASE = 8       # x8..x19 are the expression stack (t0..t11)
_NUM_TEMPS = 12
_SPILL_BASE = 8      # frame offset of temp spill area (after saved lr)
_LOCAL_BASE = _SPILL_BASE + 8 * _NUM_TEMPS


@dataclass
class _Local:
    ty: Ty
    offset: int          # sp-relative


@dataclass
class _Global:
    ty: Ty
    is_array: bool
    is_extern: bool


class _FuncContext:
    def __init__(self, func: ast.FuncDef):
        self.func = func
        self.locals: dict[str, _Local] = {}
        self.depth = 0                      # live expression temps
        self.loop_stack: list[tuple[str, str]] = []   # (break, continue)
        self.frame_size = 0
        self.epilogue = ""


class CodeGen:
    def __init__(self, program: ast.Program):
        self.program = program
        self.lines: list[str] = []
        self.data_lines: list[str] = []
        self.bss_lines: list[str] = []
        self.externs: list[str] = []
        self.label_counter = 0
        self.string_labels: dict[bytes, str] = {}
        self.globals: dict[str, _Global] = {}
        self.functions: dict[str, ast.FuncDef | ast.FuncDecl] = {}

    # -- helpers ---------------------------------------------------------

    def error(self, msg: str, node=None) -> CompileError:
        line = getattr(node, "line", None)
        return CompileError(msg, line)

    def emit(self, text: str) -> None:
        self.lines.append("    " + text)

    def label(self, text: str) -> None:
        self.lines.append(f"{text}:")

    def new_label(self, hint: str) -> str:
        self.label_counter += 1
        return f".L{hint}{self.label_counter}"

    def add_extern(self, name: str) -> None:
        if name not in self.externs:
            self.externs.append(name)

    def temp(self, idx: int) -> str:
        return f"t{idx}"

    def _intern_string(self, value: bytes) -> str:
        lbl = self.string_labels.get(value)
        if lbl is None:
            lbl = self.new_label("str")
            self.string_labels[value] = lbl
            escaped = "".join(
                chr(b) if 32 <= b < 127 and b not in (34, 92) else
                {10: "\\n", 9: "\\t", 13: "\\r"}.get(b, f"\\x{b:02x}")
                for b in value
            )
            self.data_lines.append(f"{lbl}: .asciz \"{escaped}\"")
        return lbl

    # -- program ------------------------------------------------------------

    def generate(self) -> str:
        # Collect global declarations first so forward references work.
        for item in self.program.items:
            if isinstance(item, (ast.FuncDef, ast.FuncDecl)):
                prev = self.functions.get(item.name)
                if isinstance(prev, ast.FuncDef):
                    if isinstance(item, ast.FuncDef):
                        raise self.error(f"redefinition of {item.name!r}", item)
                    continue  # extern decl after a definition: no-op
                if isinstance(item, ast.FuncDef) and prev is not None:
                    # Definition supersedes an earlier extern declaration
                    # (happens in merged package translation units).
                    if item.name in self.externs:
                        self.externs.remove(item.name)
                self.functions[item.name] = item
                if isinstance(item, ast.FuncDecl):
                    self.add_extern(item.name)
            elif isinstance(item, ast.GlobalVar):
                existing = self.globals.get(item.name)
                if existing is not None:
                    if item.is_extern:
                        continue  # redundant extern declaration is harmless
                    if not existing.is_extern:
                        raise self.error(f"redefinition of {item.name!r}", item)
                    # definition supersedes extern declaration
                    if item.name in self.externs:
                        self.externs.remove(item.name)
                self.globals[item.name] = _Global(
                    item.ty, item.array_len is not None, item.is_extern)
                if item.is_extern:
                    self.add_extern(item.name)
                else:
                    self._emit_global(item)
        for func in self.program.functions():
            self._gen_function(func)
        out = []
        for name in self.externs:
            out.append(f".extern {name}")
        out.append(".text")
        out.extend(self.lines)
        if self.data_lines:
            out.append(".data")
            out.extend(self.data_lines)
        if self.bss_lines:
            out.append(".bss")
            out.extend(self.bss_lines)
        return "\n".join(out) + "\n"

    def _emit_global(self, item: ast.GlobalVar) -> None:
        size = item.ty.size
        # Data globals are exported (visible to dlsym and cross-library
        # linking) just like functions.
        target = self.bss_lines if (item.array_len is not None
                                    and not isinstance(item.init, ast.StrLit)
                                    ) else self.data_lines
        target.append(f".global {item.name}")
        if item.array_len is not None:
            nbytes = size * item.array_len
            if isinstance(item.init, ast.StrLit):
                if item.ty is not Ty.CHAR:
                    raise self.error("string initializer needs char[]", item)
                self.data_lines.append(
                    f"{item.name}: .asciz \"" + item.init.value.decode("latin-1")
                    .replace("\\", "\\\\").replace('"', '\\"') + '"')
                return
            if item.init is not None:
                raise self.error("array initializers not supported", item)
            self.bss_lines.append(".align 8")
            self.bss_lines.append(f"{item.name}: .zero {max(nbytes, size)}")
            return
        value = 0
        if item.init is not None:
            value = self._const_value(item.init)
        self.data_lines.append(".align 8")
        if item.ty is Ty.CHAR:
            self.data_lines.append(f"{item.name}: .byte {value & 0xFF}")
        elif item.ty is Ty.INT:
            self.data_lines.append(f"{item.name}: .word {value & 0xFFFFFFFF}")
        else:
            self.data_lines.append(f"{item.name}: .quad {value}")

    def _const_value(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_value(expr.operand)
        raise self.error("global initializer must be an integer constant", expr)

    # -- functions --------------------------------------------------------------

    def _count_locals(self, stmts: list[ast.Stmt]) -> int:
        count = 0
        for stmt in stmts:
            if isinstance(stmt, ast.Decl):
                count += 1
            elif isinstance(stmt, ast.If):
                count += self._count_locals(stmt.then)
                count += self._count_locals(stmt.orelse)
            elif isinstance(stmt, ast.While):
                count += self._count_locals(stmt.body)
            elif isinstance(stmt, ast.For):
                if isinstance(stmt.init, ast.Decl):
                    count += 1
                count += self._count_locals(stmt.body)
        return count

    def _gen_function(self, func: ast.FuncDef) -> None:
        ctx = _FuncContext(func)
        nlocals = len(func.params) + self._count_locals(func.body)
        frame = _LOCAL_BASE + 8 * nlocals
        ctx.frame_size = (frame + 15) & ~15
        ctx.epilogue = self.new_label("ret")
        self.lines.append(f".global {func.name}")
        self.label(func.name)
        self.emit(f"addi sp, sp, -{ctx.frame_size}")
        self.emit("st lr, 0(sp)")
        self._next_local = _LOCAL_BASE  # bump cursor for slot assignment
        for i, param in enumerate(func.params):
            off = self._alloc_local(ctx, param.name, param.ty, func)
            self.emit(f"st a{i}, {off}(sp)")
        self._gen_stmts(ctx, func.body)
        # Implicit return (value 0 for non-void falls out naturally).
        self.emit("mov a0, zr")
        self.label(ctx.epilogue)
        self.emit("ld lr, 0(sp)")
        self.emit(f"addi sp, sp, {ctx.frame_size}")
        self.emit("ret")

    def _alloc_local(self, ctx: _FuncContext, name: str, ty: Ty, node) -> int:
        # Locals are function-scoped; a redeclaration (e.g. `long i` in two
        # sibling for-loops) rebinds the name to a fresh slot.
        off = self._next_local
        self._next_local += 8
        ctx.locals[name] = _Local(ty, off)
        return off

    # -- statements ------------------------------------------------------------------

    def _gen_stmts(self, ctx: _FuncContext, stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            self._gen_stmt(ctx, stmt)

    def _gen_stmt(self, ctx: _FuncContext, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Decl):
            off = self._alloc_local(ctx, stmt.name, stmt.ty, stmt)
            if stmt.init is not None:
                reg, _ = self._gen_expr(ctx, stmt.init)
                self.emit(f"st {reg}, {off}(sp)")
                self._pop(ctx)
            else:
                self.emit(f"st zr, {off}(sp)")
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr(ctx, stmt.expr)
            self._pop(ctx)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg, _ = self._gen_expr(ctx, stmt.value)
                self.emit(f"mov a0, {reg}")
                self._pop(ctx)
            else:
                self.emit("mov a0, zr")
            self.emit(f"b {ctx.epilogue}")
        elif isinstance(stmt, ast.If):
            else_lbl = self.new_label("else")
            end_lbl = self.new_label("endif")
            reg, _ = self._gen_expr(ctx, stmt.cond)
            self.emit(f"beq {reg}, zr, {else_lbl}")
            self._pop(ctx)
            self._gen_stmts(ctx, stmt.then)
            if stmt.orelse:
                self.emit(f"b {end_lbl}")
            self.label(else_lbl)
            if stmt.orelse:
                self._gen_stmts(ctx, stmt.orelse)
                self.label(end_lbl)
        elif isinstance(stmt, ast.While):
            top = self.new_label("while")
            done = self.new_label("wdone")
            self.label(top)
            reg, _ = self._gen_expr(ctx, stmt.cond)
            self.emit(f"beq {reg}, zr, {done}")
            self._pop(ctx)
            ctx.loop_stack.append((done, top))
            self._gen_stmts(ctx, stmt.body)
            ctx.loop_stack.pop()
            self.emit(f"b {top}")
            self.label(done)
        elif isinstance(stmt, ast.For):
            top = self.new_label("for")
            step_lbl = self.new_label("fstep")
            done = self.new_label("fdone")
            if stmt.init is not None:
                self._gen_stmt(ctx, stmt.init)
            self.label(top)
            if stmt.cond is not None:
                reg, _ = self._gen_expr(ctx, stmt.cond)
                self.emit(f"beq {reg}, zr, {done}")
                self._pop(ctx)
            ctx.loop_stack.append((done, step_lbl))
            self._gen_stmts(ctx, stmt.body)
            ctx.loop_stack.pop()
            self.label(step_lbl)
            if stmt.step is not None:
                self._gen_expr(ctx, stmt.step)
                self._pop(ctx)
            self.emit(f"b {top}")
            self.label(done)
        elif isinstance(stmt, ast.Break):
            if not ctx.loop_stack:
                raise self.error("break outside loop", stmt)
            self.emit(f"b {ctx.loop_stack[-1][0]}")
        elif isinstance(stmt, ast.Continue):
            if not ctx.loop_stack:
                raise self.error("continue outside loop", stmt)
            self.emit(f"b {ctx.loop_stack[-1][1]}")
        else:  # pragma: no cover - parser produces no other nodes
            raise self.error(f"unsupported statement {type(stmt).__name__}", stmt)

    # -- expression stack ---------------------------------------------------------------

    def _push(self, ctx: _FuncContext) -> str:
        if ctx.depth >= _NUM_TEMPS:
            raise self.error("expression too deep (register stack exhausted)",
                             ctx.func)
        reg = self.temp(ctx.depth)
        ctx.depth += 1
        return reg

    def _pop(self, ctx: _FuncContext) -> None:
        if ctx.depth > 0:
            ctx.depth -= 1

    # -- expressions -------------------------------------------------------------------

    def _gen_expr(self, ctx: _FuncContext, expr: ast.Expr) -> tuple[str, Ty]:
        """Evaluate ``expr`` into a fresh temp; returns (reg, type)."""
        if isinstance(expr, ast.IntLit):
            reg = self._push(ctx)
            self.emit(f"li {reg}, {expr.value}")
            return reg, Ty.LONG
        if isinstance(expr, ast.StrLit):
            reg = self._push(ctx)
            lbl = self._intern_string(expr.value)
            self.emit(f"adr {reg}, {lbl}")
            return reg, Ty.PCHAR
        if isinstance(expr, ast.Name):
            return self._gen_name(ctx, expr)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(ctx, expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(ctx, expr)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(ctx, expr)
        if isinstance(expr, ast.Call):
            return self._gen_call(ctx, expr)
        if isinstance(expr, ast.Index):
            addr_reg, elem_ty = self._gen_index_addr(ctx, expr)
            self._load_through(addr_reg, elem_ty)
            return addr_reg, Ty.LONG if elem_ty in (Ty.CHAR, Ty.INT) else elem_ty
        raise self.error(f"unsupported expression {type(expr).__name__}", expr)

    def _gen_name(self, ctx: _FuncContext, expr: ast.Name) -> tuple[str, Ty]:
        local = ctx.locals.get(expr.ident)
        if local is not None:
            reg = self._push(ctx)
            self.emit(f"ld {reg}, {local.offset}(sp)")
            return reg, local.ty
        glob = self.globals.get(expr.ident)
        if glob is not None:
            reg = self._push(ctx)
            if glob.is_extern:
                self.emit(f"ldg {reg}, {expr.ident}")
            else:
                self.emit(f"adr {reg}, {expr.ident}")
            if glob.is_array:
                # arrays decay to a pointer to their first element
                return reg, glob.ty.pointer_to()
            self._load_through(reg, glob.ty)
            return reg, Ty.LONG if glob.ty in (Ty.CHAR, Ty.INT) else glob.ty
        raise self.error(f"undefined identifier {expr.ident!r}", expr)

    def _load_through(self, reg: str, ty: Ty) -> None:
        if ty is Ty.CHAR:
            self.emit(f"lb {reg}, 0({reg})")
        elif ty is Ty.INT:
            self.emit(f"lw {reg}, 0({reg})")
        else:
            self.emit(f"ld {reg}, 0({reg})")

    def _gen_unary(self, ctx: _FuncContext, expr: ast.Unary) -> tuple[str, Ty]:
        if expr.op == "&":
            return self._gen_addr_of(ctx, expr.operand)
        if expr.op == "*":
            reg, ty = self._gen_expr(ctx, expr.operand)
            if not ty.is_pointer:
                raise self.error("cannot dereference a non-pointer", expr)
            self._load_through(reg, ty.pointee)
            return reg, Ty.LONG
        reg, _ = self._gen_expr(ctx, expr.operand)
        if expr.op == "-":
            self.emit(f"sub {reg}, zr, {reg}")
        elif expr.op == "~":
            self.emit(f"xori {reg}, {reg}, -1")
        elif expr.op == "!":
            self.emit(f"sltu {reg}, zr, {reg}")
            self.emit(f"xori {reg}, {reg}, 1")
        else:  # pragma: no cover
            raise self.error(f"unsupported unary {expr.op!r}", expr)
        return reg, Ty.LONG

    def _gen_addr_of(self, ctx: _FuncContext, target: ast.Expr) -> tuple[str, Ty]:
        if isinstance(target, ast.Name):
            local = ctx.locals.get(target.ident)
            if local is not None:
                reg = self._push(ctx)
                self.emit(f"addi {reg}, sp, {local.offset}")
                try:
                    ptr_ty = local.ty.pointer_to()
                except ValueError:
                    ptr_ty = Ty.PLONG
                return reg, ptr_ty
            glob = self.globals.get(target.ident)
            if glob is not None:
                reg = self._push(ctx)
                if glob.is_extern:
                    self.emit(f"ldg {reg}, {target.ident}")
                else:
                    self.emit(f"adr {reg}, {target.ident}")
                try:
                    return reg, glob.ty.pointer_to()
                except ValueError:
                    return reg, Ty.PLONG
            raise self.error(f"undefined identifier {target.ident!r}", target)
        if isinstance(target, ast.Index):
            return self._gen_index_addr_as_ptr(ctx, target)
        raise self.error("can only take address of a variable or element",
                         target)

    def _gen_index_addr(self, ctx: _FuncContext, expr: ast.Index
                        ) -> tuple[str, Ty]:
        base_reg, base_ty = self._gen_expr(ctx, expr.base)
        if not base_ty.is_pointer:
            raise self.error("indexing a non-pointer", expr)
        idx_reg, _ = self._gen_expr(ctx, expr.index)
        self._scale(idx_reg, base_ty.pointee_size)
        self.emit(f"add {base_reg}, {base_reg}, {idx_reg}")
        self._pop(ctx)  # idx
        return base_reg, base_ty.pointee

    def _gen_index_addr_as_ptr(self, ctx: _FuncContext, expr: ast.Index
                               ) -> tuple[str, Ty]:
        reg, elem = self._gen_index_addr(ctx, expr)
        return reg, elem.pointer_to()

    def _scale(self, reg: str, size: int) -> None:
        """Multiply an index register by the pointee size."""
        if size == 8:
            self.emit(f"shli {reg}, {reg}, 3")
        elif size == 4:
            self.emit(f"shli {reg}, {reg}, 2")
        elif size != 1:  # pragma: no cover - no such type exists
            self.emit(f"muli {reg}, {reg}, {size}")

    _CMP = {"<": False, ">": True}

    def _gen_binary(self, ctx: _FuncContext, expr: ast.Binary) -> tuple[str, Ty]:
        op = expr.op
        if op in ("&&", "||"):
            return self._gen_shortcircuit(ctx, expr)
        lreg, lty = self._gen_expr(ctx, expr.left)
        rreg, rty = self._gen_expr(ctx, expr.right)
        out_ty = Ty.LONG
        if op in ("+", "-"):
            if lty.is_pointer and not rty.is_pointer:
                self._scale(rreg, lty.pointee_size)
                out_ty = lty
            elif rty.is_pointer and not lty.is_pointer and op == "+":
                self._scale(lreg, rty.pointee_size)
                out_ty = rty
            elif lty.is_pointer and rty.is_pointer:
                if op == "+":
                    raise self.error("cannot add two pointers", expr)
                out_ty = Ty.LONG  # difference, scaled below
        simple = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
                  "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "sar"}
        if op in simple:
            self.emit(f"{simple[op]} {lreg}, {lreg}, {rreg}")
            if op == "-" and lty.is_pointer and rty.is_pointer:
                if lty.pointee_size == 8:
                    self.emit(f"sari {lreg}, {lreg}, 3")
                elif lty.pointee_size == 4:
                    self.emit(f"sari {lreg}, {lreg}, 2")
            self._pop(ctx)
            return lreg, out_ty
        if op == "<":
            self.emit(f"slt {lreg}, {lreg}, {rreg}")
        elif op == ">":
            self.emit(f"slt {lreg}, {rreg}, {lreg}")
        elif op == "<=":
            self.emit(f"slt {lreg}, {rreg}, {lreg}")
            self.emit(f"xori {lreg}, {lreg}, 1")
        elif op == ">=":
            self.emit(f"slt {lreg}, {lreg}, {rreg}")
            self.emit(f"xori {lreg}, {lreg}, 1")
        elif op == "==":
            self.emit(f"sub {lreg}, {lreg}, {rreg}")
            self.emit(f"sltu {lreg}, zr, {lreg}")
            self.emit(f"xori {lreg}, {lreg}, 1")
        elif op == "!=":
            self.emit(f"sub {lreg}, {lreg}, {rreg}")
            self.emit(f"sltu {lreg}, zr, {lreg}")
        else:  # pragma: no cover
            raise self.error(f"unsupported operator {op!r}", expr)
        self._pop(ctx)
        return lreg, Ty.LONG

    def _gen_shortcircuit(self, ctx: _FuncContext, expr: ast.Binary
                          ) -> tuple[str, Ty]:
        end = self.new_label("sc")
        lreg, _ = self._gen_expr(ctx, expr.left)
        self.emit(f"sltu {lreg}, zr, {lreg}")     # normalize to 0/1
        if expr.op == "&&":
            self.emit(f"beq {lreg}, zr, {end}")
        else:
            self.emit(f"bne {lreg}, zr, {end}")
        self._pop(ctx)
        rreg, _ = self._gen_expr(ctx, expr.right)
        self.emit(f"sltu {rreg}, zr, {rreg}")
        self.label(end)
        return rreg, Ty.LONG

    def _gen_assign(self, ctx: _FuncContext, expr: ast.Assign) -> tuple[str, Ty]:
        value_reg, value_ty = self._gen_expr(ctx, expr.value)
        target = expr.target
        if isinstance(target, ast.Name):
            local = ctx.locals.get(target.ident)
            if local is not None:
                self.emit(f"st {value_reg}, {local.offset}(sp)")
                return value_reg, value_ty
            glob = self.globals.get(target.ident)
            if glob is not None:
                if glob.is_array:
                    raise self.error("cannot assign to an array", target)
                addr_reg = self._push(ctx)
                if glob.is_extern:
                    self.emit(f"ldg {addr_reg}, {target.ident}")
                else:
                    self.emit(f"adr {addr_reg}, {target.ident}")
                self._store_through(value_reg, addr_reg, glob.ty)
                self._pop(ctx)
                return value_reg, value_ty
            raise self.error(f"undefined identifier {target.ident!r}", target)
        if isinstance(target, ast.Unary) and target.op == "*":
            addr_reg, ptr_ty = self._gen_expr(ctx, target.operand)
            if not ptr_ty.is_pointer:
                raise self.error("cannot store through a non-pointer", target)
            self._store_through(value_reg, addr_reg, ptr_ty.pointee)
            self._pop(ctx)
            return value_reg, value_ty
        if isinstance(target, ast.Index):
            addr_reg, elem = self._gen_index_addr(ctx, target)
            # _gen_index_addr loads nothing; addr is in addr_reg
            self._store_through(value_reg, addr_reg, elem)
            self._pop(ctx)
            return value_reg, value_ty
        raise self.error("invalid assignment target", target)

    def _store_through(self, value_reg: str, addr_reg: str, ty: Ty) -> None:
        if ty is Ty.CHAR:
            self.emit(f"sb {value_reg}, 0({addr_reg})")
        elif ty is Ty.INT:
            self.emit(f"sw {value_reg}, 0({addr_reg})")
        else:
            self.emit(f"st {value_reg}, 0({addr_reg})")

    def _gen_call(self, ctx: _FuncContext, expr: ast.Call) -> tuple[str, Ty]:
        target = self.functions.get(expr.func)
        if target is None:
            raise self.error(f"call to undefined function {expr.func!r}", expr)
        expected = len(target.params)
        if len(expr.args) != expected:
            raise self.error(
                f"{expr.func} expects {expected} args, got {len(expr.args)}",
                expr)
        base_depth = ctx.depth
        arg_regs = []
        for arg in expr.args:
            reg, _ = self._gen_expr(ctx, arg)
            arg_regs.append(reg)
        # Spill every live temp (callee may clobber t-registers), move args
        # into the a-registers, call, then restore the survivors.
        for d in range(ctx.depth):
            self.emit(f"st {self.temp(d)}, {_SPILL_BASE + 8 * d}(sp)")
        for i, reg in enumerate(arg_regs):
            self.emit(f"mov a{i}, {reg}")
        if isinstance(target, ast.FuncDecl):
            self.emit(f"ldg at, {expr.func}")
            self.emit("callr at")
        else:
            self.emit(f"call {expr.func}")
        # Discard arg temps; restore temps below them; push the result.
        ctx.depth = base_depth
        for d in range(base_depth):
            self.emit(f"ld {self.temp(d)}, {_SPILL_BASE + 8 * d}(sp)")
        result = self._push(ctx)
        self.emit(f"mov {result}, a0")
        return result, target.ret if target.ret is not Ty.VOID else Ty.LONG


def generate_assembly(program: ast.Program) -> str:
    """Compile a parsed AMC program to CHAIN assembly text."""
    return CodeGen(program).generate()
