"""AMC: the mini-C dialect and compiler used for jam/ried sources."""

from .ast import Program, Ty
from .compiler import CompileResult, compile_amc
from .lexer import Token, tokenize
from .parser import parse

__all__ = [
    "CompileResult",
    "Program",
    "Token",
    "Ty",
    "compile_amc",
    "parse",
    "tokenize",
]
