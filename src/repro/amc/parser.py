"""Recursive-descent parser for AMC."""

from __future__ import annotations

from typing import Optional

from ..errors import CompileError
from . import ast
from .ast import Ty
from .lexer import Token, tokenize

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def error(self, msg: str) -> CompileError:
        tok = self.cur
        return CompileError(msg, tok.line, tok.col)

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, kind: str, text: str | None = None) -> Optional[Token]:
        tok = self.cur
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            want = text or kind
            raise self.error(f"expected {want!r}, found {self.cur.text!r}")
        return tok

    def accept_op(self, text: str) -> bool:
        return self.accept("op", text) is not None

    # -- types -----------------------------------------------------------------

    def try_type(self) -> Optional[Ty]:
        if self.cur.kind != "kw" or self.cur.text not in ("long", "int",
                                                          "char", "void"):
            return None
        base = self.advance().text
        if base == "void":
            return Ty.VOID
        ty = {"long": Ty.LONG, "int": Ty.INT, "char": Ty.CHAR}[base]
        if self.accept_op("*"):
            ty = ty.pointer_to()
        return ty

    def expect_type(self) -> Ty:
        ty = self.try_type()
        if ty is None:
            raise self.error(f"expected type, found {self.cur.text!r}")
        return ty

    # -- top level ----------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        prog = ast.Program()
        while self.cur.kind != "eof":
            prog.items.append(self.parse_top_item())
        return prog

    def parse_top_item(self):
        line = self.cur.line
        is_extern = self.accept("kw", "extern") is not None
        ty = self.expect_type()
        name = self.expect("ident").text
        if self.cur.kind == "op" and self.cur.text == "(":
            return self._parse_function(ty, name, is_extern, line)
        return self._parse_global(ty, name, is_extern, line)

    def _parse_function(self, ret: Ty, name: str, is_extern: bool, line: int):
        self.expect("op", "(")
        params: list[ast.Param] = []
        if not self.accept_op(")"):
            while True:
                if self.accept("kw", "void") and self.cur.text == ")":
                    self.expect("op", ")")
                    break
                pty = self.expect_type()
                if pty is Ty.VOID:
                    raise self.error("void parameter not allowed")
                pname = self.expect("ident").text
                params.append(ast.Param(pty, pname))
                if self.accept_op(")"):
                    break
                self.expect("op", ",")
        if len(params) > 8:
            raise self.error("more than 8 parameters not supported")
        if is_extern or self.cur.text == ";":
            self.expect("op", ";")
            return ast.FuncDecl(ret, name, params, line)
        body = self.parse_block()
        return ast.FuncDef(ret, name, params, body, line)

    def _parse_global(self, ty: Ty, name: str, is_extern: bool, line: int):
        if ty is Ty.VOID:
            raise self.error("void variable not allowed")
        array_len: Optional[int] = None
        if self.accept_op("["):
            if self.cur.kind == "int":
                array_len = self.advance().value  # type: ignore[assignment]
            elif is_extern:
                array_len = 0  # extern long a[]; size unknown
            else:
                raise self.error("array definition needs a length")
            self.expect("op", "]")
        init: Optional[ast.Expr] = None
        if self.accept_op("="):
            if is_extern:
                raise self.error("extern variable cannot have an initializer")
            init = self.parse_expr()
            if not isinstance(init, (ast.IntLit, ast.StrLit, ast.Unary)):
                raise self.error("global initializer must be a constant")
        self.expect("op", ";")
        return ast.GlobalVar(ty, name, array_len, init, is_extern, line)

    # -- statements ------------------------------------------------------------------

    def parse_block(self) -> list[ast.Stmt]:
        self.expect("op", "{")
        stmts: list[ast.Stmt] = []
        while not self.accept_op("}"):
            if self.cur.kind == "eof":
                raise self.error("unterminated block")
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self) -> ast.Stmt:
        line = self.cur.line
        ty = self.try_type()
        if ty is not None:
            if ty is Ty.VOID:
                raise self.error("void local not allowed")
            name = self.expect("ident").text
            init = self.parse_expr() if self.accept_op("=") else None
            self.expect("op", ";")
            return ast.Decl(ty, name, init, line)
        if self.accept("kw", "return"):
            value = None if self.cur.text == ";" else self.parse_expr()
            self.expect("op", ";")
            return ast.Return(value, line)
        if self.accept("kw", "if"):
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            then = self._stmt_or_block()
            orelse: list[ast.Stmt] = []
            if self.accept("kw", "else"):
                orelse = self._stmt_or_block()
            return ast.If(cond, then, orelse, line)
        if self.accept("kw", "while"):
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            return ast.While(cond, self._stmt_or_block(), line)
        if self.accept("kw", "for"):
            self.expect("op", "(")
            init: Optional[ast.Stmt] = None
            if not self.accept_op(";"):
                ity = self.try_type()
                if ity is not None:
                    iname = self.expect("ident").text
                    iinit = self.parse_expr() if self.accept_op("=") else None
                    init = ast.Decl(ity, iname, iinit, line)
                else:
                    init = ast.ExprStmt(self.parse_expr(), line)
                self.expect("op", ";")
            cond = None if self.cur.text == ";" else self.parse_expr()
            self.expect("op", ";")
            step = None if self.cur.text == ")" else self.parse_expr()
            self.expect("op", ")")
            return ast.For(init, cond, step, self._stmt_or_block(), line)
        if self.accept("kw", "break"):
            self.expect("op", ";")
            return ast.Break(line)
        if self.accept("kw", "continue"):
            self.expect("op", ";")
            return ast.Continue(line)
        expr = self.parse_expr()
        self.expect("op", ";")
        return ast.ExprStmt(expr, line)

    def _stmt_or_block(self) -> list[ast.Stmt]:
        if self.cur.kind == "op" and self.cur.text == "{":
            return self.parse_block()
        return [self.parse_stmt()]

    # -- expressions ---------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_assign()

    def parse_assign(self) -> ast.Expr:
        line = self.cur.line
        left = self.parse_binary(0)
        if self.accept_op("="):
            value = self.parse_assign()  # right-associative
            if not isinstance(left, (ast.Name, ast.Index)) and not (
                isinstance(left, ast.Unary) and left.op == "*"
            ):
                raise self.error("invalid assignment target")
            return ast.Assign(left, value, line)
        return left

    def parse_binary(self, min_prec: int) -> ast.Expr:
        left = self.parse_unary()
        while True:
            tok = self.cur
            if tok.kind != "op":
                return left
            prec = _PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                return left
            op = self.advance().text
            right = self.parse_binary(prec + 1)
            left = ast.Binary(op, left, right, tok.line)

    def parse_unary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind == "op" and tok.text in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            if tok.text == "-" and isinstance(operand, ast.IntLit):
                return ast.IntLit(-operand.value, tok.line)
            return ast.Unary(tok.text, operand, tok.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept_op("["):
                index = self.parse_expr()
                self.expect("op", "]")
                expr = ast.Index(expr, index, self.cur.line)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind == "int" or tok.kind == "char":
            self.advance()
            return ast.IntLit(tok.value, tok.line)  # type: ignore[arg-type]
        if tok.kind == "string":
            self.advance()
            return ast.StrLit(tok.value, tok.line)  # type: ignore[arg-type]
        if tok.kind == "ident":
            self.advance()
            if self.accept_op("("):
                args: list[ast.Expr] = []
                if not self.accept_op(")"):
                    while True:
                        args.append(self.parse_expr())
                        if self.accept_op(")"):
                            break
                        self.expect("op", ",")
                if len(args) > 8:
                    raise self.error("more than 8 call arguments not supported")
                return ast.Call(tok.text, args, tok.line)
            return ast.Name(tok.text, tok.line)
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise self.error(f"unexpected token {tok.text!r} in expression")


def parse(source: str) -> ast.Program:
    """Parse AMC source into a Program AST."""
    return Parser(tokenize(source)).parse_program()
