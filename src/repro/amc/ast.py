"""AST node definitions and the AMC type lattice.

Types are deliberately tiny: 64-bit ``long``, 8-bit ``char``, one level of
pointers over each, and ``void`` for procedure returns.  This is the subset
the paper's jams use (payload pointers, counters, hash keys, byte buffers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union


class Ty(enum.Enum):
    LONG = "long"
    INT = "int"
    CHAR = "char"
    PLONG = "long*"
    PINT = "int*"
    PCHAR = "char*"
    VOID = "void"

    @property
    def is_pointer(self) -> bool:
        return self in (Ty.PLONG, Ty.PINT, Ty.PCHAR)

    @property
    def pointee(self) -> "Ty":
        if self is Ty.PLONG:
            return Ty.LONG
        if self is Ty.PINT:
            return Ty.INT
        if self is Ty.PCHAR:
            return Ty.CHAR
        raise ValueError(f"{self} is not a pointer type")

    @property
    def pointee_size(self) -> int:
        return self.pointee.size

    def pointer_to(self) -> "Ty":
        if self is Ty.LONG:
            return Ty.PLONG
        if self is Ty.INT:
            return Ty.PINT
        if self is Ty.CHAR:
            return Ty.PCHAR
        raise ValueError(f"cannot take pointer to {self}")

    @property
    def size(self) -> int:
        if self is Ty.CHAR:
            return 1
        if self is Ty.INT:
            return 4
        return 8


# -- expressions -------------------------------------------------------------

@dataclass
class IntLit:
    value: int
    line: int = 0


@dataclass
class StrLit:
    value: bytes
    line: int = 0


@dataclass
class Name:
    ident: str
    line: int = 0


@dataclass
class Unary:
    op: str              # '-', '!', '~', '*', '&'
    operand: "Expr"
    line: int = 0


@dataclass
class Binary:
    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass
class Assign:
    target: "Expr"       # Name, Unary('*'), or Index
    value: "Expr"
    line: int = 0


@dataclass
class Call:
    func: str
    args: list["Expr"]
    line: int = 0


@dataclass
class Index:
    base: "Expr"
    index: "Expr"
    line: int = 0


Expr = Union[IntLit, StrLit, Name, Unary, Binary, Assign, Call, Index]


# -- statements ---------------------------------------------------------------

@dataclass
class Decl:
    ty: Ty
    name: str
    init: Optional[Expr]
    line: int = 0


@dataclass
class ExprStmt:
    expr: Expr
    line: int = 0


@dataclass
class If:
    cond: Expr
    then: list["Stmt"]
    orelse: list["Stmt"]
    line: int = 0


@dataclass
class While:
    cond: Expr
    body: list["Stmt"]
    line: int = 0


@dataclass
class For:
    init: Optional["Stmt"]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: list["Stmt"]
    line: int = 0


@dataclass
class Return:
    value: Optional[Expr]
    line: int = 0


@dataclass
class Break:
    line: int = 0


@dataclass
class Continue:
    line: int = 0


Stmt = Union[Decl, ExprStmt, If, While, For, Return, Break, Continue]


# -- top level -----------------------------------------------------------------

@dataclass
class Param:
    ty: Ty
    name: str


@dataclass
class FuncDef:
    ret: Ty
    name: str
    params: list[Param]
    body: list[Stmt]
    line: int = 0


@dataclass
class FuncDecl:
    """``extern long f(...);`` — resolved through the GOT at runtime."""
    ret: Ty
    name: str
    params: list[Param]
    line: int = 0


@dataclass
class GlobalVar:
    ty: Ty
    name: str
    array_len: Optional[int]     # None for scalars
    init: Optional[Expr]         # IntLit / StrLit only
    is_extern: bool = False
    line: int = 0


@dataclass
class Program:
    items: list[Union[FuncDef, FuncDecl, GlobalVar]] = field(default_factory=list)

    def functions(self) -> list[FuncDef]:
        return [i for i in self.items if isinstance(i, FuncDef)]
