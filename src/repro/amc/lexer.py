"""Lexer for AMC, the mini-C dialect jam/ried sources are written in.

Token kinds: keywords, identifiers, integer/char/string literals, operators
and punctuation.  Comments are ``//`` and ``/* */``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompileError

KEYWORDS = frozenset({
    "long", "int", "char", "void", "extern", "return", "if", "else",
    "while", "for", "break", "continue",
})

# Longest-match-first operator table.
OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";",
)


@dataclass(frozen=True)
class Token:
    kind: str       # 'kw' | 'ident' | 'int' | 'char' | 'string' | 'op' | 'eof'
    text: str
    value: int | bytes | None
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind},{self.text!r}@{self.line}:{self.col})"


_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> CompileError:
        return CompileError(msg, line, col)

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            for c in source[i : end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, None, line, col))
            col += i - start
            continue
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
            else:
                while i < n and source[i].isdigit():
                    i += 1
            text = source[start:i]
            try:
                value = int(text, 0)
            except ValueError:
                raise error(f"bad number {text!r}") from None
            tokens.append(Token("int", text, value, line, col))
            col += i - start
            continue
        if ch == "'":
            start = i
            i += 1
            if i < n and source[i] == "\\":
                if i + 1 >= n or source[i + 1] not in _ESCAPES:
                    raise error("bad escape in char literal")
                value = _ESCAPES[source[i + 1]]
                i += 2
            elif i < n:
                value = ord(source[i])
                i += 1
            else:
                raise error("unterminated char literal")
            if i >= n or source[i] != "'":
                raise error("unterminated char literal")
            i += 1
            text = source[start:i]
            tokens.append(Token("char", text, value, line, col))
            col += i - start
            continue
        if ch == '"':
            start = i
            i += 1
            out = bytearray()
            while i < n and source[i] != '"':
                if source[i] == "\\":
                    if i + 1 >= n or source[i + 1] not in _ESCAPES:
                        raise error("bad escape in string literal")
                    out.append(_ESCAPES[source[i + 1]])
                    i += 2
                elif source[i] == "\n":
                    raise error("newline in string literal")
                else:
                    out.append(ord(source[i]))
                    i += 1
            if i >= n:
                raise error("unterminated string literal")
            i += 1
            text = source[start:i]
            tokens.append(Token("string", text, bytes(out), line, col))
            col += i - start
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, None, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", None, line, col))
    return tokens
