"""Command-line tools for the Two-Chains reproduction.

Subcommands mirror the toolchain a user of the real system would have:

* ``twochains build <srcdir> -n NAME -o DIR`` — build a package from a
  canonical source tree (``jam_*.amc`` / ``ried_*.rdc``) and install it.
* ``twochains inspect <installdir>`` — show a package's manifest, element
  table, and generated header.
* ``twochains disas <installdir> <element>`` — disassemble an element's
  injectable blob (post-GOT-rewrite CHAIN code).
* ``twochains perf <shape>`` — run a benchmark shape on the simulated
  testbed (the ucx_perftest analog), e.g.::

      twochains perf pingpong --jam jam_indirect_put --size 256
      twochains perf rate --jam jam_ss_sum --size 4096 --local
* ``twochains figures [fig5 ...]`` — regenerate paper figures.
* ``twochains bench run|diff|list`` — the parallel benchmark
  orchestrator: run every registered sweep across a process pool with
  on-disk point caching, emit ``BENCH_<figure>.json`` result files, and
  compare two result sets for regressions (see docs/BENCHMARKS.md)::

      twochains bench run --jobs 4
      twochains bench run fig9 fig10 --full --out results/bench
      twochains bench run --smoke            # one point per figure (CI)
      twochains bench run --trace            # + phase_breakdown in meta
      twochains bench diff results/old results/bench --threshold 5
      twochains bench diff results/old results/bench --wall-clock
      twochains bench diff results/old results/bench --health
* ``twochains trace [--json]`` — phase breakdown of one message;
  ``twochains trace export --figure fig7 -o trace.json`` runs one traced
  sweep point and writes Chrome/Perfetto trace-event JSON with metrics
  counter tracks (docs/OBSERVABILITY.md).
* ``twochains metrics export`` — run one sweep point with the metrics
  registry attached and dump every counter/gauge/histogram in Prometheus
  text exposition format (docs/METRICS.md)::

      twochains metrics export --figure fig7
      twochains metrics export --figure figchain -o metrics.prom
* ``twochains profile [figN ...]`` — cProfile the benchmark sweeps and
  report simulator throughput (instructions/s, sim-ns per wall-second),
  per-subsystem time, and function hotspots::

      twochains profile fig8 --top 20
      twochains profile --quick --json prof.json   # CI smoke
      twochains profile figchain --hot-loops       # trace-JIT coverage
"""

from __future__ import annotations

import argparse
import sys

from .core.install import (
    build_package_from_dir,
    install_package,
    load_installed_package,
)


def _cmd_build(args) -> int:
    build = build_package_from_dir(args.name, args.srcdir)
    out = install_package(build, args.output)
    print(f"package {build.name!r} (id {build.package_id:#010x}) "
          f"installed to {out}")
    for art in build.jams:
        print(f"  element {art.element_id}: {art.name}  "
              f"code {art.code_size} B, {len(art.externs)} GOT slots")
    return 0


def _cmd_inspect(args) -> int:
    build = load_installed_package(args.installdir)
    print(f"package:    {build.name}")
    print(f"package id: {build.package_id:#010x}")
    print(f"library:    {len(build.library_elf)} bytes (ELF64 ET_DYN)")
    print("elements:")
    for art in build.jams:
        print(f"  [{art.element_id}] {art.name}: text {art.text_size} B, "
              f"rodata {art.rodata_size} B")
        for slot, sym in enumerate(art.externs):
            print(f"        got[{slot}] -> {sym}")
    if build.header:
        print("header:")
        for line in build.header.splitlines():
            print(f"  {line}")
    return 0


def _cmd_disas(args) -> int:
    from .isa import disassemble

    build = load_installed_package(args.installdir)
    art = build.jam(args.element)
    print(f"; {art.name}: {art.text_size} B code, "
          f"{art.rodata_size} B in-message rodata")
    for line in disassemble(art.blob[: art.text_size]):
        print(line)
    if art.rodata_size:
        data = art.blob[art.text_size:]
        print(f"; rodata ({art.rodata_size} B): {data[:64]!r}"
              + ("..." if len(data) > 64 else ""))
    return 0


def _cmd_perf(args) -> int:
    from .bench.shapes import am_injection_rate, am_pingpong
    from .core.config import RuntimeConfig, WaitMode
    from .core.stdworld import make_world
    from .isa.vm import set_fusion, set_trace_jit
    from .machine.hierarchy import HierarchyConfig

    set_fusion(not args.no_fuse)
    set_trace_jit(not args.no_trace)
    hier = HierarchyConfig(stash_enabled=not args.nonstash,
                           prefetch_enabled=not args.noprefetch)
    mode = WaitMode.WFE if args.wfe else WaitMode.POLL
    cfg = lambda: RuntimeConfig(wait_mode=mode)  # noqa: E731
    world = make_world(hier_cfg=hier, client_cfg=cfg(), server_cfg=cfg())
    if args.shape == "pingpong":
        out = am_pingpong(world, args.jam, args.size,
                          inject=not args.local, warmup=args.warmup,
                          iters=args.iters, stress=args.stress)
        s = out.stats
        print(f"# {args.jam} size={args.size} "
              f"{'local' if args.local else 'injected'} "
              f"wire={out.wire_size}B mode={mode.value}"
              f"{' +stress' if args.stress else ''}")
        print(f"one-way latency: p50 {s.p50:.1f} ns   p99.9 {s.p999:.1f} ns"
              f"   min {s.minimum:.1f}   max {s.maximum:.1f}")
        print(f"tail spread: {s.tail_spread_pct:.1f}%   "
              f"server cycles/msg: {out.server_cycles_per_iter:.0f}")
    else:
        out = am_injection_rate(world, args.jam, args.size,
                                inject=not args.local,
                                messages=args.messages)
        print(f"# {args.jam} size={args.size} "
              f"{'local' if args.local else 'injected'} wire={out.wire_size}B")
        print(f"message rate: {out.rate_mps / 1e6:.3f} M msg/s   "
              f"wire bw: {out.wire_gbps:.2f} GB/s   "
              f"payload bw: {out.payload_gbps:.3f} GB/s")
    return 0


def _cmd_trace(args) -> int:
    import json as _json

    from .bench.timeline import trace_message

    tl = trace_message(jam=args.jam, payload_bytes=args.size,
                       inject=not args.local, stash=not args.nonstash,
                       wfe=args.wfe)
    if args.json:
        print(_json.dumps(tl.to_dict(), indent=1))
        return 0
    print(f"# {args.jam} size={args.size} "
          f"{'local' if args.local else 'injected'} "
          f"{'nonstash' if args.nonstash else 'stash'} "
          f"{'wfe' if args.wfe else 'poll'}")
    print(tl.render())
    return 0


def _cmd_trace_export(args) -> int:
    from .obs.perfetto import export_figure_trace

    try:
        summary = export_figure_trace(args.figure, args.out,
                                      point_index=args.point,
                                      fast=not args.full)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(f"wrote {summary['path']}: {summary['events']} events "
          f"({summary['spans']} spans) on {summary['tracks']} tracks "
          f"+ {summary['counter_tracks']} counter tracks")
    print(f"  figure {summary['figure']} point {summary['params']}")
    print(f"  spans: {', '.join(summary['span_names'])}")
    print("  open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_metrics_export(args) -> int:
    import json as _json

    from .obs.metrics import metrics_block, to_prometheus

    try:
        from .obs.metrics import collect_figure_metrics

        snap, info = collect_figure_metrics(args.figure,
                                            point_index=args.point,
                                            fast=not args.full)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        text = _json.dumps(metrics_block(snap), indent=1) + "\n"
    else:
        text = to_prometheus(snap)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}: {info['counters']} counters, "
              f"{info['gauges']} gauges, {info['histograms']} histograms "
              f"(figure {info['figure']} point {info['params']})",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_figures(args) -> int:
    from .bench.figures import ALL_FIGURES
    from .bench.report import render_figure

    names = args.names or list(ALL_FIGURES)
    for name in names:
        fn = ALL_FIGURES.get(name)
        if fn is None:
            print(f"unknown figure {name!r}; choices: "
                  f"{', '.join(ALL_FIGURES)}", file=sys.stderr)
            return 2
        print(render_figure(fn(fast=not args.full)))
        print()
    return 0


def _parse_shards(value: str) -> int | str:
    """``--shards`` accepts a positive integer or the string 'auto'."""
    if value == "auto":
        return "auto"
    try:
        n = int(value)
    except ValueError:
        raise ValueError(f"--shards must be an integer or 'auto', "
                         f"got {value!r}") from None
    if n < 1:
        raise ValueError("--shards must be >= 1")
    return n


def _cmd_bench_run(args) -> int:
    from .bench.orchestrator import (
        build_meta,
        render_runs_text,
        resolve_jobs,
        resolve_names,
        run_figures,
        write_runs,
    )
    from .bench.resultstore import ResultStore

    try:
        names = resolve_names(args.figures or None)
        jobs = resolve_jobs(args.jobs)
        shards = _parse_shards(args.shards)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    store = None
    if not args.no_cache:
        cache_dir = args.cache or f"{args.out}/.cache"
        store = ResultStore(cache_dir)
    fast = not args.full
    fork = not args.no_fork
    fuse = not args.no_fuse
    trace_jit = not args.no_trace
    metrics = not args.no_metrics
    runs = run_figures(names, fast=fast, smoke=args.smoke, jobs=jobs,
                       store=store, trace=args.trace, fork=fork, fuse=fuse,
                       trace_jit=trace_jit, metrics=metrics,
                       shards=shards, shard_backend=args.shard_backend,
                       log=None if args.quiet else
                       (lambda m: print(m, file=sys.stderr)))
    meta = build_meta(fast=fast, smoke=args.smoke, jobs=jobs,
                      trace=args.trace, fork=fork, fuse=fuse,
                      trace_jit=trace_jit, metrics=metrics,
                      shards=shards, shard_backend=args.shard_backend)
    paths = write_runs(runs, args.out, meta)
    if not args.quiet:
        print(render_runs_text(runs))
        print()
    for path in paths:
        print(f"wrote {path}")
    return 0


def _cmd_bench_diff(args) -> int:
    from .bench.orchestrator import diff_paths
    from .bench.report import render_diff
    from .obs.slo import DEFAULT_HEALTH_THRESHOLD_PCT

    if args.wall_clock and args.health:
        print("--wall-clock and --health are mutually exclusive",
              file=sys.stderr)
        return 2
    threshold = args.threshold
    if threshold is None:
        threshold = (20.0 if args.wall_clock
                     else DEFAULT_HEALTH_THRESHOLD_PCT if args.health
                     else 5.0)
    try:
        diffs, notes = diff_paths(args.base, args.new,
                                  threshold_pct=threshold,
                                  wall_clock=args.wall_clock,
                                  health=args.health)
    except (OSError, ValueError) as exc:
        print(f"cannot diff: {exc}", file=sys.stderr)
        return 2
    print(render_diff(diffs, notes, threshold_pct=threshold))
    return 1 if any(d.regression for d in diffs) else 0


def _cmd_profile(args) -> int:
    import json as _json

    from .bench.profile import profile_figures, render_profile_text

    try:
        shards = _parse_shards(args.shards)
        report = profile_figures(args.figures or None, fast=not args.full,
                                 smoke=args.quick, top=args.top,
                                 hot_loops=args.hot_loops, shards=shards,
                                 shard_backend=args.shard_backend)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(render_profile_text(report))
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report, fh, indent=1)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0


def _cmd_bench_list(args) -> int:
    from .bench.figures import full_registry

    for name, spec in full_registry().items():
        npts = len(spec.points(True)), len(spec.points(False))
        print(f"{name:12s} {spec.title}  [{npts[0]} fast / "
              f"{npts[1]} full points]")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="twochains",
        description="Two-Chains (CLUSTER'21) reproduction toolchain")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="build + install a package from a "
                                     "jam_*.amc / ried_*.rdc source tree")
    p.add_argument("srcdir")
    p.add_argument("-n", "--name", required=True)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=_cmd_build)

    p = sub.add_parser("inspect", help="show an installed package")
    p.add_argument("installdir")
    p.set_defaults(fn=_cmd_inspect)

    p = sub.add_parser("disas", help="disassemble an element's jam blob")
    p.add_argument("installdir")
    p.add_argument("element")
    p.set_defaults(fn=_cmd_disas)

    p = sub.add_parser("perf", help="run a benchmark shape (perftest analog)")
    p.add_argument("shape", choices=("pingpong", "rate"))
    p.add_argument("--jam", default="jam_ss_sum")
    p.add_argument("--size", type=int, default=64,
                   help="payload bytes (default 64)")
    p.add_argument("--local", action="store_true",
                   help="Local Function frames (no code on the wire)")
    p.add_argument("--wfe", action="store_true", help="WFE wait mode")
    p.add_argument("--nonstash", action="store_true",
                   help="disable LLC stashing")
    p.add_argument("--noprefetch", action="store_true",
                   help="disable the stride prefetcher")
    p.add_argument("--stress", action="store_true",
                   help="run with the stress workload (pingpong only)")
    p.add_argument("--no-fuse", action="store_true",
                   help="disable the VM's basic-block fusion JIT "
                        "(slower; measurements are identical either way)")
    p.add_argument("--no-trace", action="store_true",
                   help="disable the VM's cross-branch trace JIT "
                        "(slower; measurements are identical either way)")
    p.add_argument("--iters", type=int, default=120)
    p.add_argument("--warmup", type=int, default=24)
    p.add_argument("--messages", type=int, default=1000)
    p.set_defaults(fn=_cmd_perf)

    p = sub.add_parser("trace", help="phase breakdown of one message, or "
                                     "'trace export' for Perfetto JSON")
    p.add_argument("--jam", default="jam_indirect_put")
    p.add_argument("--size", type=int, default=64)
    p.add_argument("--local", action="store_true")
    p.add_argument("--nonstash", action="store_true")
    p.add_argument("--wfe", action="store_true")
    p.add_argument("--json", action="store_true",
                   help="print the timeline as JSON instead of text")
    p.set_defaults(fn=_cmd_trace)
    tsub = p.add_subparsers(dest="trace_command", required=False,
                            metavar="export")
    t = tsub.add_parser("export", help="run one traced sweep point, write "
                                       "Chrome/Perfetto trace-event JSON")
    t.add_argument("--figure", default="fig7",
                   help="registered sweep (default fig7; see 'bench list')")
    t.add_argument("--point", type=int, default=0,
                   help="sweep-point index (default 0)")
    t.add_argument("--full", action="store_true",
                   help="index into the full sweep axes")
    t.add_argument("-o", "--out", default="trace.json",
                   help="output path (default trace.json)")
    t.set_defaults(fn=_cmd_trace_export)

    p = sub.add_parser("figures", help="regenerate paper figures")
    p.add_argument("names", nargs="*", metavar="figN")
    p.add_argument("--full", action="store_true",
                   help="full sweep axes (slower)")
    p.set_defaults(fn=_cmd_figures)

    p = sub.add_parser("bench", help="parallel benchmark orchestrator "
                                     "(run / diff / list)")
    bsub = p.add_subparsers(dest="bench_command", required=True)

    b = bsub.add_parser("run", help="run figure sweeps in parallel, "
                                    "write BENCH_<figure>.json files")
    b.add_argument("figures", nargs="*", metavar="figN",
                   help="registered sweeps (default: all; "
                        "see 'bench list')")
    b.add_argument("--jobs", default="auto",
                   help="worker processes, or 'auto' for one per CPU "
                        "(default: auto)")
    b.add_argument("--full", action="store_true",
                   help="full sweep axes (slower)")
    b.add_argument("--smoke", action="store_true",
                   help="one point per figure (CI smoke target)")
    b.add_argument("--out", default="results/bench",
                   help="output directory (default results/bench)")
    b.add_argument("--cache", default=None,
                   help="point-cache directory (default <out>/.cache)")
    b.add_argument("--no-cache", action="store_true",
                   help="ignore and do not populate the point cache")
    b.add_argument("--trace", action="store_true",
                   help="run every point under the structured tracer and "
                        "embed a phase_breakdown block in the result meta "
                        "(skips cache reads; rows are unchanged)")
    b.add_argument("--no-fork", action="store_true",
                   help="build every world fresh instead of forking warm "
                        "setup-cache checkpoints (slower; rows are "
                        "identical either way)")
    b.add_argument("--no-fuse", action="store_true",
                   help="disable the VM's basic-block fusion JIT "
                        "(slower; rows are identical either way)")
    b.add_argument("--no-trace", action="store_true",
                   help="disable the VM's cross-branch trace JIT "
                        "(slower; rows are identical either way)")
    b.add_argument("--no-metrics", action="store_true",
                   help="skip the metrics registry: no meta.metrics "
                        "block in the result files (rows are identical "
                        "either way)")
    b.add_argument("--shards", default="1",
                   help="DES shards per world: an integer or 'auto' for "
                        "one per available CPU divided by --jobs, capped "
                        "at the world's node count (default 1 = single "
                        "heap; rows are identical either way)")
    b.add_argument("--shard-backend", default="serial",
                   choices=("serial", "thread", "process"),
                   help="sharded-run scheduler: 'serial' interleaves "
                        "shards on one thread, 'thread' runs one thread "
                        "per shard, 'process' forks one worker process "
                        "per non-zero shard for multi-core wall-clock "
                        "(default serial)")
    b.add_argument("--quiet", action="store_true",
                   help="suppress progress and text tables")
    b.set_defaults(fn=_cmd_bench_run)

    b = bsub.add_parser("diff", help="compare two result sets, flag "
                                     "regressions beyond a noise "
                                     "threshold")
    b.add_argument("base", help="baseline BENCH_*.json file or directory")
    b.add_argument("new", help="new BENCH_*.json file or directory")
    b.add_argument("--threshold", type=float, default=None,
                   help="noise threshold in percent (default 5, "
                        "20 with --wall-clock, 10 with --health)")
    b.add_argument("--wall-clock", action="store_true",
                   help="compare simulator throughput "
                        "(meta.sim_throughput) instead of simulated "
                        "series — flags host-perf regressions")
    b.add_argument("--health", action="store_true",
                   help="compare direction-aware health indicators "
                        "derived from meta.metrics (fc-stall per send, "
                        "guard-bail rate, dispatch p99, cache hit-rates)")
    b.set_defaults(fn=_cmd_bench_diff)

    b = bsub.add_parser("list", help="list registered sweeps")
    b.set_defaults(fn=_cmd_bench_list)

    p = sub.add_parser("metrics",
                       help="metrics registry tools ('metrics export' "
                            "dumps one sweep point in Prometheus text "
                            "format)")
    msub = p.add_subparsers(dest="metrics_command", required=True,
                            metavar="export")
    m = msub.add_parser("export", help="run one sweep point with metrics "
                                       "attached, dump Prometheus text")
    m.add_argument("--figure", default="fig7",
                   help="registered sweep (default fig7; see 'bench list')")
    m.add_argument("--point", type=int, default=0,
                   help="sweep-point index (default 0)")
    m.add_argument("--full", action="store_true",
                   help="index into the full sweep axes")
    m.add_argument("--json", action="store_true",
                   help="dump the rounded meta.metrics block as JSON "
                        "instead of Prometheus text")
    m.add_argument("-o", "--out", default=None,
                   help="output path (default: stdout)")
    m.set_defaults(fn=_cmd_metrics_export)

    p = sub.add_parser("profile",
                       help="cProfile figure sweeps; report simulator "
                            "throughput, per-subsystem time, hotspots")
    p.add_argument("figures", nargs="*", metavar="figN",
                   help="registered sweeps (default: all)")
    p.add_argument("--quick", action="store_true",
                   help="one point per figure (CI smoke target)")
    p.add_argument("--full", action="store_true",
                   help="full sweep axes (slower)")
    p.add_argument("--top", type=int, default=12,
                   help="hotspot count (default 12)")
    p.add_argument("--hot-loops", action="store_true",
                   help="report the trace JIT's hot back-edges and "
                        "per-anchor trace coverage")
    p.add_argument("--shards", default="1",
                   help="DES shards per world for shardable sweeps "
                        "(integer or 'auto'); adds a per-shard busy vs "
                        "sync-stall utilization block")
    p.add_argument("--shard-backend", default="serial",
                   choices=("serial", "thread", "process"),
                   help="sharded-run scheduler (default serial); "
                        "'process' rows are labeled by worker pid")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the report as JSON")
    p.set_defaults(fn=_cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
