"""Simulated node hardware: memory, pages, caches, DRAM, prefetcher, noise."""

from .cache import LINE_BYTES, SetAssocCache, line_of, lines_touched
from .dram import Dram
from .hierarchy import HierarchyConfig, MemoryHierarchy
from .memory import BumpAllocator, PhysicalMemory, align_up
from .node import Node
from .noise import StressConfig, StressWorkload
from .pages import (
    PAGE_SIZE,
    PROT_NONE,
    PROT_R,
    PROT_RW,
    PROT_RWX,
    PROT_RX,
    PROT_W,
    PROT_X,
    PageTable,
    prot_str,
)
from .prefetcher import StridePrefetcher

__all__ = [
    "BumpAllocator",
    "Dram",
    "HierarchyConfig",
    "LINE_BYTES",
    "MemoryHierarchy",
    "Node",
    "PAGE_SIZE",
    "PROT_NONE",
    "PROT_R",
    "PROT_RW",
    "PROT_RWX",
    "PROT_RX",
    "PROT_W",
    "PROT_X",
    "PageTable",
    "PhysicalMemory",
    "SetAssocCache",
    "StressConfig",
    "StressWorkload",
    "StridePrefetcher",
    "align_up",
    "line_of",
    "lines_touched",
    "prot_str",
]
