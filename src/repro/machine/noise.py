"""Interference model standing in for ``stress-ng --class vm --all 1``.

The paper's §VII-C runs the benchmarks on a fully loaded system: stress-ng
VM-class workers on all four cores thrash the paging and memory systems.
Three effects matter for the measured tails and are modeled here:

1. **DRAM channel contention** — stress workers continuously stream
   memory, stealing channel time.  Modeled as periodic ``inject_busy``
   into the DRAM ledger at a configurable duty cycle with jitter.
2. **LLC pollution** — the workers' footprints evict resident lines,
   including stashed message lines if the consumer is slow.  Modeled by
   installing random lines into the LLC every tick.
3. **Scheduler preemption** — benchmark threads occasionally lose the
   CPU; off-CPU episodes are heavy-tailed (lognormal).  This is the main
   source of the 99.9th-percentile spikes for *both* configurations, while
   (1)+(2) hit the non-stashed configuration much harder.

All draws come from named RNG streams so tails are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.engine import Delay, Engine
from ..sim.rng import RngPool
from .node import Node


@dataclass
class StressConfig:
    tick_ns: float = 1000.0          # model granularity: 1 us
    dram_duty: float = 0.55          # fraction of channel stolen per tick
    dram_jitter: float = 0.8         # +- multiplicative jitter on each tick
    llc_pollution_lines: int = 48    # random LLC installs per tick
    # The benchmark threads spin at high priority; stress-ng workers only
    # rarely take the CPU from them, and briefly (the paper's stash spread
    # peaking at ~182% implies p99.9 only ~2.8x the median).
    preempt_prob: float = 0.0015    # per-core chance of losing the CPU/tick
    preempt_median_ns: float = 2600.0   # median off-CPU episode
    preempt_sigma: float = 0.6       # lognormal shape
    burst_prob: float = 0.05         # chance of a saturating burst per tick
    burst_ns: float = 2400.0         # extra channel time during a burst


class StressWorkload:
    """Background load on one node.  ``start`` spawns the driver process;
    ``stop`` lets the current tick finish and halts."""

    def __init__(self, engine: Engine, node: Node, rngs: RngPool,
                 cfg: StressConfig | None = None, cores: tuple[int, ...] = (0, 1, 2, 3)):
        self.engine = engine
        self.node = node
        self.cfg = cfg or StressConfig()
        self.cores = tuple(c for c in cores if c < node.ncores)
        self.rng = rngs.child(f"stress.n{node.node_id}")
        self._running = False
        self.ticks = 0
        self.preemptions = 0

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.engine.spawn(self._run(), name=f"stress.n{self.node.node_id}")

    def stop(self) -> None:
        self._running = False

    def _run(self):
        # fig11/fig12 run this body millions of times, so every per-tick
        # attribute lookup is hoisted and the LLC pollution goes through
        # the bulk install_many / charge_bandwidth_bulk paths.  The RNG
        # draw order and every float
        # expression are unchanged, so results stay byte-identical: LLC
        # installs never read DRAM state and charge_bandwidth never reads
        # LLC state, so batching the dirty-eviction charges after the
        # install loop (same ``now``) is invisible to the model.
        cfg = self.cfg
        node = self.node
        rng = self.rng
        engine = self.engine
        rnd = rng.random
        rint = rng.integers
        logn = rng.lognormal
        dram = node.hier.dram
        inject = dram.inject_busy
        charge_bulk = dram.charge_bandwidth_bulk
        install_many = node.hier.llc.install_many
        preempt = node.preempt
        dd = cfg.dram_duty
        dj = cfg.dram_jitter
        tk = cfg.tick_ns
        bp = cfg.burst_prob
        bns = cfg.burst_ns
        npoll = cfg.llc_pollution_lines
        pp = cfg.preempt_prob
        pmed = cfg.preempt_median_ns
        psig = cfg.preempt_sigma
        cores = self.cores
        delay = Delay(tk)
        llc_span_lines = node.mem.size >> 6
        while self._running:
            now = engine.now
            self.ticks += 1
            # (1) channel contention
            duty = dd * (1.0 + dj * (2.0 * rnd() - 1.0))
            inject(now, duty * tk)
            if rnd() < bp:
                inject(now, bns)
            # (2) LLC pollution
            if npoll:
                k = install_many(rint(0, llc_span_lines, npoll).tolist())
                if k:
                    charge_bulk(now, k)
            # (3) preemption
            for core in cores:
                if rnd() < pp:
                    episode = pmed * float(logn(0.0, psig))
                    preempt(core, now + episode)
                    self.preemptions += 1
            yield delay
