"""Physical memory of a simulated node.

A flat little-endian byte-addressable array backed by numpy, with a simple
aligned bump allocator.  The paper's servers carry 16 GB each; the
simulation only ever touches a few megabytes (libraries, mailboxes, heap),
so the default size is 64 MiB — addresses are *node-physical* and have no
relation to host memory.
"""

from __future__ import annotations

import numpy as np

from ..errors import MachineError, MemoryFault
from ..perf import COUNTERS as _C

LINE = 64  # cache-line size in bytes, fixed across the model


def align_up(value: int, align: int) -> int:
    if align <= 0 or align & (align - 1):
        raise MachineError(f"alignment must be a power of two, got {align}")
    return (value + align - 1) & ~(align - 1)


class PhysicalMemory:
    """Byte-addressable storage with bounds checking."""

    def __init__(self, size: int = 64 * 1024 * 1024):
        if size <= 0 or size % LINE:
            raise MachineError("memory size must be a positive multiple of 64")
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        # memoryview over the same buffer: scalar reads/writes go through
        # it because a mv slice + int.from_bytes is several times cheaper
        # than a numpy slice + tobytes on the VM's per-load path
        self._mv = memoryview(self.data)
        # Predecoded-code cache: line index -> opaque decode payload,
        # populated by the CHAIN VM (repro.isa.vm).  Every mutator below
        # drops overlapping entries, so a cached decode can never outlive
        # the bytes it was decoded from — this is the invalidation
        # contract for self-modifying code, GOT rewrites, and DMA into
        # code pages.  Writers that bypass these methods (mutating a
        # numpy view directly) would break it; no simulator code does.
        #
        # Mutators first compare the incoming bytes against the resident
        # ones for *tracked* lines and skip the drop when nothing
        # changes: message delivery rewrites mailbox code with identical
        # bytes on every send of the same function, and re-decoding it
        # each time is pure waste.  An identical write is observationally
        # a no-op, so keeping the decode is always sound.
        self.code_lines: dict[int, object] = {}
        # Fused-superblock cache: line index -> 8-entry dispatch table
        # (repro.isa.vm fusion layer).  Blocks may *read* instructions
        # from following lines; ``block_deps`` maps each such dependency
        # line to the anchor lines whose blocks must die with it.
        self.code_blocks: dict[int, object] = {}
        self.block_deps: dict[int, set[int]] = {}
        # Cross-branch trace registry: line index -> list of trace
        # records whose stitched blocks overlap that line (repro.isa.vm
        # trace tier).  A trace record carries a one-element live flag
        # (``rec[2]``); retiring any covered line flips it False, which
        # the VM dispatcher observes before every trace entry.  Traces
        # are never resurrected — the VM rebuilds from fresh profiles.
        self.trace_deps: dict[int, list] = {}

    def _kill_traces(self, line: int) -> None:
        """Flip the live flag of every trace stitched over ``line``."""
        recs = self.trace_deps.pop(line, None)
        if recs is None:
            return
        inval = 0
        for rec in recs:
            lv = rec[2]
            if lv[0]:
                lv[0] = False
                inval += 1
        if inval:
            _C.trace_invalidations += inval

    def _retire_code(self, addr: int, length: int) -> None:
        """Drop predecoded lines/blocks overlapping [addr, addr+length).

        A line serving as a *dependency* of fused blocks anchored
        elsewhere also kills those anchors' block tables (their closures
        baked in this line's instructions); the anchors' per-slot
        decodes stay valid and are kept.
        """
        cl = self.code_lines
        bd = self.block_deps
        td = self.trace_deps
        if (not cl and not bd and not td) or length <= 0:
            return
        cb = self.code_blocks
        first = addr >> 6
        last = (addr + length - 1) >> 6
        if last - first < len(cl) + len(bd) + len(td):
            lines = range(first, last + 1)
        else:  # huge write, small cache: intersect the other way
            lines = [ln for ln in set(cl) | set(bd) | set(td)
                     if first <= ln <= last]
        inval = 0
        for line in lines:
            if line in cl:
                del cl[line]
            if cb.pop(line, None) is not None:
                inval += 1
            if line in bd:
                for anchor in bd.pop(line):
                    if cb.pop(anchor, None) is not None:
                        inval += 1
            if line in td:
                self._kill_traces(line)
        if inval:
            _C.block_invalidations += inval

    def _retire_changed(self, addr: int, payload, length: int) -> None:
        """Selective invalidation for bulk writes (called *before* the
        bytes land): drop only tracked lines whose overlapped bytes
        actually change.  ``payload`` must be a memoryview."""
        cl = self.code_lines
        cb = self.code_blocks
        bd = self.block_deps
        td = self.trace_deps
        mv = self._mv
        first = addr >> 6
        last = (addr + length - 1) >> 6
        if last - first < len(cl) + len(bd) + len(td):
            lines = range(first, last + 1)
        else:
            lines = [ln for ln in set(cl) | set(bd) | set(td)
                     if first <= ln <= last]
        end = addr + length
        inval = 0
        for line in lines:
            # block anchors are always decoded lines (cb keys ⊆ cl keys),
            # so membership in cl/bd covers cb too; trace units are
            # stitched over decoded lines, but a trace may outlive the
            # decode drop that preceded the re-decode, so td is checked
            # independently
            if line not in cl and line not in bd and line not in td:
                continue
            lo = line << 6
            hi = lo + 64
            if lo < addr:
                lo = addr
            if hi > end:
                hi = end
            if mv[lo:hi] == payload[lo - addr:hi - addr]:
                continue  # identical bytes: decode stays valid
            if line in cl:
                del cl[line]
            if cb.pop(line, None) is not None:
                inval += 1
            if line in bd:
                for anchor in bd.pop(line):
                    if cb.pop(anchor, None) is not None:
                        inval += 1
            if line in td:
                self._kill_traces(line)
        if inval:
            _C.block_invalidations += inval

    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size:
            raise MemoryFault(
                f"physical access out of range: [{addr:#x}, {addr + length:#x})",
                addr=addr,
            )

    # raw bytes ----------------------------------------------------------
    def read(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        return bytes(self._mv[addr : addr + length])

    def write(self, addr: int, payload: bytes | bytearray | memoryview) -> None:
        length = len(payload)
        self._check(addr, length)
        # mv slice assignment accepts any contiguous bytes-like and skips
        # the frombuffer wrapper — measurably cheaper for the small
        # payloads (headers, descriptors) that dominate this path
        if (self.code_lines or self.block_deps or self.trace_deps) \
                and length > 0:
            # per-line compare *before* the bytes land: redelivered code
            # (same function, new message) keeps its decode
            self._retire_changed(addr, memoryview(payload), length)
        self._mv[addr : addr + length] = payload

    def fill(self, addr: int, length: int, value: int = 0) -> None:
        self._check(addr, length)
        self.data[addr : addr + length] = value & 0xFF
        if self.code_lines or self.trace_deps:
            self._retire_code(addr, length)

    # scalars (little-endian) ---------------------------------------------
    def read_u64(self, addr: int) -> int:
        self._check(addr, 8)
        return int.from_bytes(self._mv[addr : addr + 8], "little")

    def write_u64(self, addr: int, value: int) -> None:
        self._check(addr, 8)
        b = (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        mv = self._mv
        if self.code_lines or self.block_deps or self.trace_deps:
            if mv[addr : addr + 8] == b:
                return  # identical bytes (e.g. GOT re-patch): keep decodes
            mv[addr : addr + 8] = b
            self._retire_code(addr, 8)
        else:
            mv[addr : addr + 8] = b

    def read_u32(self, addr: int) -> int:
        self._check(addr, 4)
        return int.from_bytes(self._mv[addr : addr + 4], "little")

    def write_u32(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        b = (value & 0xFFFFFFFF).to_bytes(4, "little")
        mv = self._mv
        if self.code_lines or self.block_deps or self.trace_deps:
            if mv[addr : addr + 4] == b:
                return
            mv[addr : addr + 4] = b
            self._retire_code(addr, 4)
        else:
            mv[addr : addr + 4] = b

    def read_u8(self, addr: int) -> int:
        self._check(addr, 1)
        return self._mv[addr]

    def write_u8(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        v = value & 0xFF
        mv = self._mv
        if self.code_lines or self.block_deps or self.trace_deps:
            if mv[addr] == v:
                return
            mv[addr] = v
            self._retire_code(addr, 1)
        else:
            mv[addr] = v

    def read_i64(self, addr: int) -> int:
        v = self.read_u64(addr)
        return v - (1 << 64) if v >= (1 << 63) else v

    def write_i64(self, addr: int, value: int) -> None:
        self.write_u64(addr, value & 0xFFFFFFFFFFFFFFFF)

    # checkpointing -------------------------------------------------------
    def snapshot(self, upto: int | None = None) -> tuple[int, bytes]:
        """Capture memory contents for a later :meth:`restore`.

        ``upto`` bounds the copy: callers that know the high-water mark of
        writes (the bump-allocator cursor) pass it so the snapshot covers
        only the touched prefix, not the whole (mostly zero) array.
        """
        upto = self.size if upto is None else upto
        if upto < 0 or upto > self.size:
            raise MachineError(f"snapshot bound {upto:#x} outside memory")
        return upto, self.data[:upto].tobytes()

    def restore(self, snap: tuple[int, bytes], dirty_upto: int | None = None
                ) -> None:
        """Rewind contents to a snapshot.

        ``dirty_upto`` is the current write high-water mark: bytes between
        the snapshot bound and it are zeroed (they were allocated after
        the snapshot and must read as fresh zeros again).  The predecoded
        ``code_lines``/``code_blocks`` caches are dropped wholesale —
        this path bypasses the per-write ``_retire_code`` invalidation
        contract.  Live traces are killed silently (no
        ``trace_invalidations`` bump): a restore rewinds the world, it
        is not a self-modifying-code event, and the VM's decode memo
        may reinstall the same dispatch tables afterwards — the dead
        live flag is what stops a stale trace from re-entering.
        """
        upto, blob = snap
        self.data[:upto] = np.frombuffer(blob, dtype=np.uint8)
        end = self.size if dirty_upto is None else min(dirty_upto, self.size)
        if end > upto:
            self.data[upto:end] = 0
        self.code_lines.clear()
        self.code_blocks.clear()
        self.block_deps.clear()
        if self.trace_deps:
            for recs in self.trace_deps.values():
                for rec in recs:
                    rec[2][0] = False
            self.trace_deps.clear()

    # vector views --------------------------------------------------------
    def view_i64(self, addr: int, count: int) -> np.ndarray:
        """Zero-copy int64 view; requires 8-byte alignment.

        The view is writable, so any predecoded code overlapping it is
        conservatively retired up front (callers today only read)."""
        if addr % 8:
            raise MemoryFault(f"unaligned i64 view at {addr:#x}", addr=addr)
        self._check(addr, count * 8)
        if self.code_lines or self.trace_deps:
            self._retire_code(addr, count * 8)
        return self.data[addr : addr + count * 8].view(np.int64)


class BumpAllocator:
    """Aligned bump allocator over a PhysicalMemory region.

    No free(): simulation runs are short-lived and regions (libraries,
    mailboxes) live for the whole experiment.  ``reset`` rewinds wholesale.
    """

    def __init__(self, base: int, limit: int):
        if base % LINE:
            raise MachineError("allocator base must be line-aligned")
        if limit <= base:
            raise MachineError("allocator limit must exceed base")
        self.base = base
        self.limit = limit
        self.cursor = base

    def alloc(self, size: int, align: int = LINE) -> int:
        if size <= 0:
            raise MachineError(f"allocation size must be positive, got {size}")
        addr = align_up(self.cursor, align)
        if addr + size > self.limit:
            raise MachineError(
                f"allocator exhausted: need {size} at {addr:#x}, limit "
                f"{self.limit:#x}"
            )
        self.cursor = addr + size
        return addr

    @property
    def used(self) -> int:
        return self.cursor - self.base

    def reset(self) -> None:
        self.cursor = self.base

    def snapshot(self) -> int:
        return self.cursor

    def restore(self, snap: int) -> None:
        self.cursor = snap
