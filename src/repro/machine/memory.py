"""Physical memory of a simulated node.

A flat little-endian byte-addressable array backed by numpy, with a simple
aligned bump allocator.  The paper's servers carry 16 GB each; the
simulation only ever touches a few megabytes (libraries, mailboxes, heap),
so the default size is 64 MiB — addresses are *node-physical* and have no
relation to host memory.
"""

from __future__ import annotations

import numpy as np

from ..errors import MachineError, MemoryFault

LINE = 64  # cache-line size in bytes, fixed across the model


def align_up(value: int, align: int) -> int:
    if align <= 0 or align & (align - 1):
        raise MachineError(f"alignment must be a power of two, got {align}")
    return (value + align - 1) & ~(align - 1)


class PhysicalMemory:
    """Byte-addressable storage with bounds checking."""

    def __init__(self, size: int = 64 * 1024 * 1024):
        if size <= 0 or size % LINE:
            raise MachineError("memory size must be a positive multiple of 64")
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)

    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size:
            raise MemoryFault(
                f"physical access out of range: [{addr:#x}, {addr + length:#x})",
                addr=addr,
            )

    # raw bytes ----------------------------------------------------------
    def read(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        return self.data[addr : addr + length].tobytes()

    def write(self, addr: int, payload: bytes | bytearray | memoryview) -> None:
        length = len(payload)
        self._check(addr, length)
        self.data[addr : addr + length] = np.frombuffer(payload, dtype=np.uint8)

    def fill(self, addr: int, length: int, value: int = 0) -> None:
        self._check(addr, length)
        self.data[addr : addr + length] = value & 0xFF

    # scalars (little-endian) ---------------------------------------------
    def read_u64(self, addr: int) -> int:
        self._check(addr, 8)
        return int.from_bytes(self.data[addr : addr + 8].tobytes(), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self._check(addr, 8)
        self.data[addr : addr + 8] = np.frombuffer(
            (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"), dtype=np.uint8
        )

    def read_u32(self, addr: int) -> int:
        self._check(addr, 4)
        return int.from_bytes(self.data[addr : addr + 4].tobytes(), "little")

    def write_u32(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        self.data[addr : addr + 4] = np.frombuffer(
            (value & 0xFFFFFFFF).to_bytes(4, "little"), dtype=np.uint8
        )

    def read_u8(self, addr: int) -> int:
        self._check(addr, 1)
        return int(self.data[addr])

    def write_u8(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self.data[addr] = value & 0xFF

    def read_i64(self, addr: int) -> int:
        v = self.read_u64(addr)
        return v - (1 << 64) if v >= (1 << 63) else v

    def write_i64(self, addr: int, value: int) -> None:
        self.write_u64(addr, value & 0xFFFFFFFFFFFFFFFF)

    # vector views --------------------------------------------------------
    def view_i64(self, addr: int, count: int) -> np.ndarray:
        """Zero-copy int64 view; requires 8-byte alignment."""
        if addr % 8:
            raise MemoryFault(f"unaligned i64 view at {addr:#x}", addr=addr)
        self._check(addr, count * 8)
        return self.data[addr : addr + count * 8].view(np.int64)


class BumpAllocator:
    """Aligned bump allocator over a PhysicalMemory region.

    No free(): simulation runs are short-lived and regions (libraries,
    mailboxes) live for the whole experiment.  ``reset`` rewinds wholesale.
    """

    def __init__(self, base: int, limit: int):
        if base % LINE:
            raise MachineError("allocator base must be line-aligned")
        if limit <= base:
            raise MachineError("allocator limit must exceed base")
        self.base = base
        self.limit = limit
        self.cursor = base

    def alloc(self, size: int, align: int = LINE) -> int:
        if size <= 0:
            raise MachineError(f"allocation size must be positive, got {size}")
        addr = align_up(self.cursor, align)
        if addr + size > self.limit:
            raise MachineError(
                f"allocator exhausted: need {size} at {addr:#x}, limit "
                f"{self.limit:#x}"
            )
        self.cursor = addr + size
        return addr

    @property
    def used(self) -> int:
        return self.cursor - self.base

    def reset(self) -> None:
        self.cursor = self.base
