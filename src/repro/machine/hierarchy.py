"""Cache hierarchy of one node, with LLC stashing and prefetching.

Geometry follows the paper's testbed (§VI-C): 4 cores at 2.6 GHz, a
private 1 MB L2 per core, a 1 MB L3 shared per 2-core cluster, and an 8 MB
shared LLC; we add conventional 64 KB L1I/L1D (the paper's "modern
superscalar processor" necessarily has them even though the text only
names L2 and up).  DRAM is the bandwidth-ledger model in :mod:`.dram`.

The two firmware/kernel toggles the paper sweeps are first-class here:

* ``stash_enabled`` — inbound DMA writes allocate into the LLC (dirty)
  instead of draining to DRAM.
* ``prefetch_enabled`` — the per-core stride prefetcher hides DRAM latency
  on trained streams.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MachineError
from ..obs.tracer import TRACER as _T, node_pid
from ..perf import COUNTERS as _C
from .cache import SetAssocCache, lines_touched
from .dram import Dram
from .prefetcher import StridePrefetcher


@dataclass
class HierarchyConfig:
    ncores: int = 4
    # capacities (bytes) and associativity
    l1_size: int = 64 * 1024
    l1_ways: int = 4
    l2_size: int = 1024 * 1024
    l2_ways: int = 8
    l3_size: int = 1024 * 1024
    l3_ways: int = 16
    llc_size: int = 8 * 1024 * 1024
    llc_ways: int = 16
    # load-to-use latencies (ns) at 2.6 GHz
    l1_lat: float = 1.6    # ~4 cycles
    l2_lat: float = 4.6    # ~12 cycles
    l3_lat: float = 11.5   # ~30 cycles
    llc_lat: float = 21.0  # ~55 cycles across the 1.6 GHz NOC
    # streaming (bandwidth-bound) per-line costs for batched intrinsics
    stream_line_ns: float = 0.77        # ~2 cycles/line once resident
    prefetched_line_lat: float = 6.0    # latency seen when a hot stream covers
    # Sequential instruction fetch (next-line I-prefetcher): mostly hidden
    # when the line is in the LLC, only partially hidden from DRAM (the
    # fetch-ahead distance cannot cover ~90ns at IPC 2).
    ifetch_seq_llc_ns: float = 7.0
    ifetch_seq_dram_ns: float = 9.5
    # feature toggles
    stash_enabled: bool = True
    prefetch_enabled: bool = True
    dram_base_latency_ns: float = 88.0
    dram_bandwidth_gbps: float = 42.6  # 2x DDR4-2666 channels (16 GB = 2 DIMMs)


class MemoryHierarchy:
    """All caches + DRAM of one node, shared by CPU cores and the HCA."""

    def __init__(self, cfg: HierarchyConfig | None = None):
        self.cfg = cfg = cfg or HierarchyConfig()
        # Which node this hierarchy belongs to (Node.__init__ sets it);
        # only read when tracing, to tag miss events with a track.
        self.node_id = 0
        if cfg.ncores % 2:
            raise MachineError("core count must be even (2-core clusters)")
        n = cfg.ncores
        self.l1i = [SetAssocCache(f"L1I.c{c}", cfg.l1_size, cfg.l1_ways) for c in range(n)]
        self.l1d = [SetAssocCache(f"L1D.c{c}", cfg.l1_size, cfg.l1_ways) for c in range(n)]
        self.l2 = [SetAssocCache(f"L2.c{c}", cfg.l2_size, cfg.l2_ways) for c in range(n)]
        self.l3 = [SetAssocCache(f"L3.cl{k}", cfg.l3_size, cfg.l3_ways) for k in range(n // 2)]
        self.llc = SetAssocCache("LLC", cfg.llc_size, cfg.llc_ways)
        self.dram = Dram(cfg.dram_base_latency_ns, cfg.dram_bandwidth_gbps)
        self.prefetchers = [StridePrefetcher(enabled=cfg.prefetch_enabled) for _ in range(n)]
        # per-core last instruction-fetch line (next-line I-prefetch state)
        self._last_ifetch = [-2] * n
        # hot-path constants: plain float attributes, so the L1-hit fast
        # path in access_line and the per-line stream path never chase
        # self.cfg (these are all fixed at construction)
        self._l1_lat = cfg.l1_lat
        self._stream_ns = cfg.stream_line_ns
        self._stream_l2_ns = cfg.stream_line_ns + 0.4
        self._stream_l3_ns = cfg.stream_line_ns + 1.2
        self._stream_llc_ns = max(cfg.stream_line_ns, cfg.llc_lat / 6.0)
        self._stream_covered_ns = max(self.dram.service_per_line_ns,
                                      cfg.stream_line_ns)
        # Precomputed per-core cache chains (the cache *objects* are
        # stable for the hierarchy's lifetime; snapshot/restore mutates
        # their contents in place):
        #  - _clean_fill[core]: the L2/L3/LLC legs of a fill walk
        #  - _snoop_set[core]:  every cache an owner-core snoop must probe
        self._clean_fill = [(self.l2[c], self.l3[c >> 1], self.llc)
                            for c in range(n)]
        self._snoop_set = [(self.l1i[c], self.l1d[c], self.l2[c],
                            self.l3[c >> 1]) for c in range(n)]
        # stats
        self.dma_stash_lines = 0
        self.dma_dram_lines = 0
        self.demand_dram_lines = 0

    # ------------------------------------------------------------------
    def sample_metrics(self, registry, now: float) -> None:
        """Sample cumulative per-level hit-rate gauges into ``registry``.

        Call sites gate on ``registry.enabled`` and invoke this at low
        frequency (per dispatched frame / completed send), never per
        access — the L1-hit fast path stays untouched.  Counts are part
        of the world snapshot, so the gauges are fork-deterministic.
        """
        nid = self.node_id
        for level, caches in (("l1i", self.l1i), ("l1d", self.l1d),
                              ("l2", self.l2), ("l3", self.l3),
                              ("llc", (self.llc,))):
            hits = 0
            total = 0
            for c in caches:
                hits += c.hits
                total += c.hits + c.misses
            if total:
                registry.sample(
                    f"tc_cache_hit_rate|node={nid}|level={level}",
                    now, hits / total)

    # ------------------------------------------------------------------
    def _cluster(self, core: int) -> int:
        return core // 2

    def _writeback(self, now: float, _line: int) -> None:
        self.dram.charge_bandwidth(now, 1)

    def _install_path(self, now: float, core: int, line: int, l1: SetAssocCache,
                      dirty: bool) -> None:
        """Fill a line into L1/L2/L3/LLC after a miss, charging write-backs.

        The install body is inlined per level (this runs once per line of
        every streamed payload); write-backs are charged one line at a
        time, in eviction order, so the DRAM ledger floats match the
        per-call formulation exactly.
        """
        charge = self.dram.charge_bandwidth
        # L1 leg: the only level that can install dirty.  Invalid ways
        # always carry dirty=False (invalidate/snoop reset it), so the
        # dirty bit is only written when it can actually change: on a
        # dirty fill, or when clearing an evicted dirty way.
        m = l1._map
        l1._tick = tick = l1._tick + 1
        sidx = line & l1._set_mask
        lru = l1.lru
        way = m.get(line)
        if way is not None:  # refresh
            lru[sidx][way] = tick
            if dirty:
                l1.dirty[sidx][way] = True
        else:
            tags = l1.tags
            row = tags.get(sidx)
            if row is None:
                w = l1.ways
                row = tags[sidx] = [-1] * w
                lrow = lru[sidx] = [0] * w
                l1.dirty[sidx] = [False] * w
                way = 0  # fresh set: every way is free
            elif -1 in row:
                way = row.index(-1)
                lrow = lru[sidx]
            else:
                lrow = lru[sidx]
                way = lrow.index(min(lrow))
                drow = l1.dirty[sidx]
                if drow[way]:
                    charge(now, 1)
                    drow[way] = False
                del m[row[way]]
                l1.evictions += 1
            row[way] = line
            m[line] = way
            lrow[way] = tick
            if dirty:
                l1.dirty[sidx][way] = True
        # Clean legs (L2 -> L3 -> LLC): identical walk, dirty never set.
        for cache in self._clean_fill[core]:
            m = cache._map
            cache._tick = tick = cache._tick + 1
            way = m.get(line)
            lru = cache.lru
            if way is not None:  # refresh (typical for the LLC level)
                lru[line & cache._set_mask][way] = tick
                continue
            sidx = line & cache._set_mask
            tags = cache.tags
            row = tags.get(sidx)
            if row is None:
                w = cache.ways
                row = tags[sidx] = [-1] * w
                lrow = lru[sidx] = [0] * w
                cache.dirty[sidx] = [False] * w
                way = 0
            elif -1 in row:
                way = row.index(-1)
                lrow = lru[sidx]
            else:
                lrow = lru[sidx]
                way = lrow.index(min(lrow))
                drow = cache.dirty[sidx]
                if drow[way]:
                    charge(now, 1)
                    drow[way] = False
                del m[row[way]]
                cache.evictions += 1
            row[way] = line
            m[line] = way
            lrow[way] = tick

    # ------------------------------------------------------------------
    def access_line(self, now: float, core: int, line: int, kind: str) -> float:
        """One demand access by ``core`` to line ``line``.

        kind: 'read' | 'write' | 'ifetch'.  Returns load-to-use latency ns.
        """
        _C.cache_probes += 1
        write = kind == "write"
        if kind != "ifetch":
            # L1D hit: the 95%+ case for both loads and stores.  Inline
            # the lookup (one dict get) and skip every other attribute
            # chase on this path.
            l1 = self.l1d[core]
            way = l1._map.get(line)
            if way is not None:
                l1.hits += 1
                l1._tick += 1
                sidx = line & l1._set_mask
                l1.lru[sidx][way] = l1._tick
                if write:
                    l1.dirty[sidx][way] = True
                return self._l1_lat
        cfg = self.cfg
        ifetch = kind == "ifetch"
        if ifetch:
            # Sequential fetch that hits L1I: the straight-line hot-loop
            # case, inlined like the L1D path above.  A miss (or taken
            # branch) falls through to the full model, which re-derives
            # ``sequential`` — ``_last_ifetch`` is untouched here on miss.
            last = self._last_ifetch
            if line == last[core] + 1:
                l1 = self.l1i[core]
                way = l1._map.get(line)
                if way is not None:
                    last[core] = line
                    l1.hits += 1
                    l1._tick += 1
                    l1.lru[line & l1._set_mask][way] = l1._tick
                    return self._l1_lat
            # The front end runs a next-line instruction prefetcher:
            # straight-line code never stalls on fetch; only taken
            # branches to cold lines pay the full miss.
            sequential = line == self._last_ifetch[core] + 1
            self._last_ifetch[core] = line
            if sequential:
                l1 = self.l1i[core]
                if l1.access(line):
                    return cfg.l1_lat
                if (self.l2[core].access(line, False)
                        or self.l3[self._cluster(core)].access(line, False)):
                    l1.install(line)
                    return cfg.l1_lat
                in_llc = self.llc.access(line, False)
                self._install_path(now, core, line, l1, False)
                if in_llc:
                    if _T.enabled:
                        _T.instant(node_pid(self.node_id), core,
                                   "cache.miss.llc", now, {"kind": kind})
                    return cfg.ifetch_seq_llc_ns
                self.dram.charge_bandwidth(now, 1)
                self.demand_dram_lines += 1
                if _T.enabled:
                    _T.instant(node_pid(self.node_id), core,
                               "cache.miss.dram", now, {"kind": kind})
                return cfg.ifetch_seq_dram_ns  # front end runs ahead of the queue
        if ifetch:
            l1 = self.l1i[core]
            if l1.access(line, write):
                return cfg.l1_lat
        else:
            # reads and writes only reach here on an L1D miss — the
            # inline hit path above already returned
            l1 = self.l1d[core]
            l1.misses += 1
        l2 = self.l2[core]
        way = l2._map.get(line)
        if way is not None:
            l2.hits += 1
            l2._tick += 1
            l2.lru[line & l2._set_mask][way] = l2._tick
            l1.install(line, dirty=write)
            if _T.enabled:
                _T.instant(node_pid(self.node_id), core, "cache.miss.l2",
                           now, {"kind": kind})
            return cfg.l2_lat
        l2.misses += 1
        # Inline L3/LLC probes, as in _stream_line: demand misses that
        # reach this depth walk both probes on the way to DRAM.
        l3 = self.l3[core >> 1]
        way = l3._map.get(line)
        if way is not None:
            l3.hits += 1
            l3._tick += 1
            l3.lru[line & l3._set_mask][way] = l3._tick
            ev = l2.install(line)
            if ev is not None and ev[1]:
                self._writeback(now, ev[0])
            l1.install(line, dirty=write)
            if _T.enabled:
                _T.instant(node_pid(self.node_id), core, "cache.miss.l3",
                           now, {"kind": kind})
            return cfg.l2_lat + (cfg.l3_lat - cfg.l2_lat)
        l3.misses += 1
        llc = self.llc
        way = llc._map.get(line)
        if way is not None:
            llc.hits += 1
            llc._tick += 1
            llc.lru[line & llc._set_mask][way] = llc._tick
            self._install_path(now, core, line, l1, write)
            if _T.enabled:
                _T.instant(node_pid(self.node_id), core, "cache.miss.llc",
                           now, {"kind": kind})
            return cfg.llc_lat
        llc.misses += 1
        # Miss all the way to DRAM.
        covered = self.prefetchers[core].observe_miss(line)
        self._install_path(now, core, line, l1, write)
        if _T.enabled:
            _T.instant(node_pid(self.node_id), core, "cache.miss.dram",
                       now, {"kind": kind, "prefetched": covered})
        if covered:
            # A hot stream already has the line in flight: latency mostly
            # hidden, but the line still crosses the DRAM channel.
            self.dram.charge_bandwidth(now, 1)
            self.demand_dram_lines += 1
            return cfg.prefetched_line_lat + self.dram.queue_delay(now) * 0.25
        self.demand_dram_lines += 1
        return self.dram.access(now, 1)

    def access(self, now: float, core: int, addr: int, size: int, kind: str) -> float:
        """Demand access possibly spanning lines; latencies accumulate."""
        if size > 0 and addr >> 6 == addr + size - 1 >> 6:
            # within one line: the overwhelmingly common case (VM loads
            # and stores are <= 8 bytes).  Duplicate access_line's L1D
            # hit path here to save the delegation call itself.
            line = addr >> 6
            if kind != "ifetch":
                l1 = self.l1d[core]
                way = l1._map.get(line)
                if way is not None:
                    _C.cache_probes += 1
                    l1.hits += 1
                    l1._tick += 1
                    sidx = line & l1._set_mask
                    l1.lru[sidx][way] = l1._tick
                    if kind == "write":
                        l1.dirty[sidx][way] = True
                    return self._l1_lat
            return self.access_line(now, core, line, kind)
        total = 0.0
        for line in lines_touched(addr, size):
            total += self.access_line(now + total, core, line, kind)
        return total

    # ------------------------------------------------------------------
    def stream_cost(self, now: float, core: int, addr: int, size: int,
                    kind: str, ops_per_byte: float = 0.0) -> float:
        """Cost of a batched sequential sweep (memcpy/sum intrinsics).

        Resident lines stream at ``stream_line_ns``; misses pay the demand
        path (which the prefetcher will progressively cover).  CPU work per
        byte (``ops_per_byte`` cycles) is added on top, max'd against the
        memory cost per line since real cores overlap the two.
        """
        if size <= 0:
            return 0.0
        # The per-line L1D hit path is open-coded here (warm streams hit
        # L1 on nearly every line) with the tick and the hit/probe
        # counters batched in locals; both are flushed before any miss
        # takes the full `_stream_line` walk, which reads and bumps the
        # same state.
        l1 = self.l1d[core]
        m = l1._map
        lru = l1.lru
        dirty = l1.dirty
        mask = l1._set_mask
        write = kind == "write"
        stream_ns = self._stream_ns
        stream_line = self._stream_line
        tick = l1._tick
        pend = 0
        mem_total = 0.0
        for line in lines_touched(addr, size):
            way = m.get(line)
            if way is not None:
                pend += 1
                tick += 1
                sidx = line & mask
                lru[sidx][way] = tick
                if write:
                    dirty[sidx][way] = True
                mem_total += stream_ns
                continue
            if pend:
                l1.hits += pend
                _C.cache_probes += pend
                pend = 0
            l1._tick = tick
            mem_total += stream_line(now + mem_total, core, line, kind)
            tick = l1._tick  # the fill walk bumped it
        if pend:
            l1.hits += pend
            _C.cache_probes += pend
        l1._tick = tick
        cpu_total = ops_per_byte * size / 2.6  # cycles -> ns at 2.6 GHz
        return max(mem_total, cpu_total)

    def _stream_line(self, now: float, core: int, line: int, kind: str) -> float:
        _C.cache_probes += 1
        write = kind == "write"
        l1 = self.l1d[core]
        # inline L1D hit (dominant once a stream is warm), as in access_line
        way = l1._map.get(line)
        if way is not None:
            l1.hits += 1
            l1._tick += 1
            sidx = line & l1._set_mask
            l1.lru[sidx][way] = l1._tick
            if write:
                l1.dirty[sidx][way] = True
            return self._stream_ns
        l1.misses += 1
        # Inline the L2/L3/LLC probes (SetAssocCache.access bodies, hit
        # and miss bookkeeping included) — on a cold streamed payload
        # every line walks this whole chain, so the three delegation
        # calls are pure dispatch overhead.
        l2 = self.l2[core]
        way = l2._map.get(line)
        if way is not None:
            l2.hits += 1
            l2._tick += 1
            l2.lru[line & l2._set_mask][way] = l2._tick
            l1.install(line, dirty=write)
            return self._stream_l2_ns
        l2.misses += 1
        l3 = self.l3[core >> 1]
        way = l3._map.get(line)
        if way is not None:
            l3.hits += 1
            l3._tick += 1
            l3.lru[line & l3._set_mask][way] = l3._tick
            l1.install(line, dirty=write)
            l2.install(line)
            return self._stream_l3_ns
        l3.misses += 1
        llc = self.llc
        way = llc._map.get(line)
        if way is not None:
            llc.hits += 1
            llc._tick += 1
            llc.lru[line & llc._set_mask][way] = llc._tick
            self._install_path(now, core, line, l1, write)
            # LLC streaming reads are pipelined; pay a fraction of the
            # load-to-use latency per line.
            return self._stream_llc_ns
        llc.misses += 1
        covered = self.prefetchers[core].observe_miss(line)
        self._install_path(now, core, line, l1, write)
        self.demand_dram_lines += 1
        if covered:
            self.dram.charge_bandwidth(now, 1)
            return self._stream_covered_ns
        return self.dram.access(now, 1)

    # ------------------------------------------------------------------
    def dma_write(self, now: float, addr: int, size: int,
                  owner_core: int | None = None) -> float:
        """Inbound DMA (HCA -> memory).  Returns channel occupancy ns.

        With stashing the payload is allocated into the LLC (dirty) and the
        only DRAM traffic is eventual write-back of evicted lines; without
        it the payload drains straight to DRAM.  Stale copies in CPU caches
        are invalidated either way (the HCA is coherent).  ``owner_core``
        narrows the snoop to the caches that can actually hold mailbox
        lines, which every call site knows.
        """
        lines = list(lines_touched(addr, size))
        self._snoop_invalidate(lines, owner_core)
        if self.cfg.stash_enabled:
            self.dma_stash_lines += len(lines)
            # Inline SetAssocCache.install for the LLC fill loop (every
            # payload line passes through here when stashing is on);
            # dirty evictions charge the DRAM ledger exactly as before.
            llc = self.llc
            m, tags, lru, dirty = llc._map, llc.tags, llc.lru, llc.dirty
            mget = m.get
            tget = tags.get
            mask = llc._set_mask
            w = llc.ways
            charge = self.dram.charge_bandwidth
            tick = llc._tick
            evictions = 0
            # Same steady-state shortcut as SetAssocCache.install_many:
            # once every allocated set is full the invalid-way scan can
            # never hit, so skip it per line.
            full = len(m) == len(tags) * w
            for line in lines:
                tick += 1
                way = mget(line)
                if way is not None:  # refresh
                    sidx = line & mask
                    lru[sidx][way] = tick
                    dirty[sidx][way] = True
                    continue
                sidx = line & mask
                row = tget(sidx)
                if row is None:
                    row = tags[sidx] = [-1] * w
                    lrow = lru[sidx] = [0] * w
                    dirty[sidx] = [False] * w
                    way = 0  # fresh set: every way is free
                    full = False
                elif full or -1 not in row:
                    lrow = lru[sidx]
                    way = lrow.index(min(lrow))
                    if dirty[sidx][way]:
                        charge(now, 1)
                    del m[row[way]]
                    evictions += 1
                else:
                    way = row.index(-1)
                    lrow = lru[sidx]
                row[way] = line
                m[line] = way
                lrow[way] = tick
                dirty[sidx][way] = True
            llc._tick = tick
            llc.evictions += evictions
            # LLC fill crosses the NOC at interconnect speed: ~64B/cycle at
            # 1.6 GHz -> 0.625ns/line; generous but the NOC is not the
            # bottleneck in this system.
            return len(lines) * 0.625
        self.dma_dram_lines += len(lines)
        llc_map = self.llc._map
        for line in lines:
            if line in llc_map:
                self.llc.invalidate(line)
        q = self.dram.charge_bandwidth(now, len(lines))
        return len(lines) * self.dram.service_per_line_ns + q

    def dma_read(self, now: float, addr: int, size: int,
                 owner_core: int | None = None) -> float:
        """Outbound DMA (memory -> HCA): source lines are read from LLC if
        present, else from DRAM; returns occupancy ns for pacing."""
        lines = list(lines_touched(addr, size))
        # C-level residency count: map() over the dict's __contains__
        # beats a genexpr of probe() calls on these multi-hundred-line
        # payload spans
        dram_lines = len(lines) - sum(map(self.llc._map.__contains__, lines))
        if dram_lines:
            q = self.dram.charge_bandwidth(now, dram_lines)
        else:
            q = 0.0
        return len(lines) * 0.625 + dram_lines * self.dram.service_per_line_ns + q

    def _snoop_invalidate(self, lines: list[int], owner_core: int | None) -> None:
        if owner_core is None:
            caches = []
            for c in range(self.cfg.ncores):
                caches += (self.l1i[c], self.l1d[c], self.l2[c])
            caches += self.l3
        else:
            caches = self._snoop_set[owner_core]
        # The DMA span is a contiguous line range, so residency can be
        # found from whichever side is smaller: scan the cache's resident
        # map with two range compares, or probe each span line against
        # the map.  Residents are dropped without write-back (the HCA
        # overwrites the whole line), exactly as before.
        if not lines:
            return
        first = lines[0]
        last = lines[-1]
        nlines = len(lines)
        for cache in caches:
            cmap = cache._map
            if not cmap:
                continue
            if len(cmap) <= nlines:
                hits = [ln for ln in cmap if first <= ln <= last]
            else:
                hits = [ln for ln in lines if ln in cmap]
            if not hits:
                continue
            mask = cache._set_mask
            tags, lru, dirty = cache.tags, cache.lru, cache.dirty
            for line in hits:
                way = cmap.pop(line)
                sidx = line & mask
                tags[sidx][way] = -1
                dirty[sidx][way] = False
                lru[sidx][way] = 0

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture every cache level, DRAM ledger, prefetchers, and stats."""
        return {
            "l1i": [c.snapshot() for c in self.l1i],
            "l1d": [c.snapshot() for c in self.l1d],
            "l2": [c.snapshot() for c in self.l2],
            "l3": [c.snapshot() for c in self.l3],
            "llc": self.llc.snapshot(),
            "dram": self.dram.snapshot(),
            "prefetchers": [p.snapshot() for p in self.prefetchers],
            "last_ifetch": list(self._last_ifetch),
            "dma_stash_lines": self.dma_stash_lines,
            "dma_dram_lines": self.dma_dram_lines,
            "demand_dram_lines": self.demand_dram_lines,
        }

    def restore(self, snap: dict) -> None:
        for group, snaps in (("l1i", snap["l1i"]), ("l1d", snap["l1d"]),
                             ("l2", snap["l2"]), ("l3", snap["l3"])):
            for cache, s in zip(getattr(self, group), snaps):
                cache.restore(s)
        self.llc.restore(snap["llc"])
        self.dram.restore(snap["dram"])
        for pf, s in zip(self.prefetchers, snap["prefetchers"]):
            pf.restore(s)
        # in-place: the VM's fused closures bind this list at codegen time
        self._last_ifetch[:] = snap["last_ifetch"]
        self.dma_stash_lines = snap["dma_stash_lines"]
        self.dma_dram_lines = snap["dma_dram_lines"]
        self.demand_dram_lines = snap["demand_dram_lines"]

    # ------------------------------------------------------------------
    def flush_all(self) -> None:
        for group in (self.l1i, self.l1d, self.l2, self.l3):
            for cache in group:
                cache.flush_all()
        self.llc.flush_all()
        for pf in self.prefetchers:
            pf.reset()
