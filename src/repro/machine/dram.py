"""DRAM latency + bandwidth model (DDR4-2666, per-node).

Latency: a base access cost (controller + rank access + on-chip
interconnect hop).  Bandwidth: a single busy-until ledger — every line
moved to or from DRAM occupies the channel for a service quantum, and a
request arriving while the channel is busy queues behind it.  The stress
workload of §VII-C injects busy time directly, which is what makes
DRAM-bound message processing erratic under load while LLC-stashed
processing stays tight.
"""

from __future__ import annotations

from .cache import LINE_BYTES


class Dram:
    """Bandwidth ledger + latency model for one node's memory system."""

    def __init__(
        self,
        base_latency_ns: float = 88.0,
        bandwidth_gbps: float = 21.3,
        queue_cap_ns: float = 4000.0,
        read_queue_cap_ns: float = 1000.0,
    ):
        # base_latency_ns: loaded-idle DDR4-2666 access ~75-95ns on server
        # parts once the NOC hop (1.6 GHz interconnect) is included.
        # bandwidth_gbps: one DDR4-2666 channel moves 21.3 GB/s peak; the
        # model exposes a single effective channel.
        self.base_latency_ns = base_latency_ns
        self.service_per_line_ns = LINE_BYTES / bandwidth_gbps  # B / (B/ns)
        self.queue_cap_ns = queue_cap_ns
        # Demand reads get priority over the write/prefetch stream at the
        # memory controller, bounding how long a read can queue.
        self.read_queue_cap_ns = read_queue_cap_ns
        self.busy_until = 0.0
        self.lines_moved = 0
        self.queue_ns_total = 0.0

    def queue_delay(self, now: float) -> float:
        return min(max(0.0, self.busy_until - now), self.queue_cap_ns)

    def access(self, now: float, lines: int = 1) -> float:
        """A demand access of ``lines`` lines starting at ``now``.

        Returns the latency seen by the requester (base + queueing); the
        channel is occupied for the transfer afterwards.
        """
        q = min(self.queue_delay(now), self.read_queue_cap_ns)
        self.busy_until = max(now, self.busy_until) + lines * self.service_per_line_ns
        self.lines_moved += lines
        self.queue_ns_total += q
        return self.base_latency_ns + q

    def charge_bandwidth(self, now: float, lines: int) -> float:
        """Occupy the channel without a latency-critical requester (write-
        backs, prefetches, DMA drains).  Returns the queue delay the
        transfer itself experienced, for pacing DMA engines."""
        q = self.queue_delay(now)
        self.busy_until = max(now, self.busy_until) + lines * self.service_per_line_ns
        self.lines_moved += lines
        return q

    def charge_bandwidth_bulk(self, now: float, lines: int) -> float:
        """``lines`` back-to-back single-line :meth:`charge_bandwidth`
        calls at one instant, batched (the stress workload's pollution
        charges are the hot caller).  Float-identical to the per-line
        loop: after the first line the channel is busy past ``now``, so
        every later call reduces to ``busy_until += service_quantum`` —
        replayed here as repeated addition, never rewritten as one
        multiply, which would round differently.  Returns the queue
        delay the first line saw."""
        if lines <= 0:
            return 0.0
        q = self.queue_delay(now)
        s = self.service_per_line_ns
        b = max(now, self.busy_until) + s
        for _ in range(lines - 1):
            b += s
        self.busy_until = b
        self.lines_moved += lines
        return q

    def inject_busy(self, now: float, ns: float) -> None:
        """Used by the stress-workload model: steal channel time."""
        self.busy_until = max(now, self.busy_until) + ns

    def snapshot(self) -> tuple:
        return self.busy_until, self.lines_moved, self.queue_ns_total

    def restore(self, snap: tuple) -> None:
        self.busy_until, self.lines_moved, self.queue_ns_total = snap

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Dram(lines={self.lines_moved}, busy_until={self.busy_until:.1f})"
        )
