"""Per-core stride prefetcher.

Models the hardware prefetchers the paper's testbed can toggle from user
space (custom 5.4 kernel, §VI-C).  The mechanism that matters for the
stash-vs-nonstash figures is: once a sequential miss stream is detected,
the prefetcher runs far enough ahead that DRAM latency is hidden and only
DRAM *bandwidth* is consumed.  Small messages never train it; large
messages do, which is why the stashing advantage narrows with size
(Fig 9/10).

A small fully-associative table of stream slots tracks (last line, stride,
confidence).  Confidence ≥ TRAIN_THRESHOLD makes the stream "hot": demand
accesses matching the prediction are served at prefetched latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

TRAIN_THRESHOLD = 2  # consecutive same-stride misses before a stream is hot
MAX_STREAMS = 8      # stream slots per core (typical for server cores)
MAX_DISTANCE = 16    # lines a prediction may run ahead of the last access


@dataclass
class _Stream:
    last_line: int = -1
    stride: int = 0
    confidence: int = 0
    tick: int = 0


@dataclass
class StridePrefetcher:
    enabled: bool = True
    streams: list[_Stream] = field(
        default_factory=lambda: [_Stream() for _ in range(MAX_STREAMS)]
    )
    _tick: int = 0
    trained_hits: int = 0

    def observe_miss(self, line_addr: int) -> bool:
        """Feed a demand miss; returns True when the miss was covered by a
        hot stream (i.e. its latency is hidden by an in-flight prefetch)."""
        if not self.enabled:
            return False
        self._tick += 1
        # Look for the stream this miss continues.
        best = None
        exact = False
        for s in self.streams:
            if s.last_line < 0:
                continue
            delta = line_addr - s.last_line
            if s.stride and delta and delta == s.stride:
                best = s
                exact = True
                break
            # An ascending trained stream runs ahead of the core by up to
            # MAX_DISTANCE lines, so any forward jump inside that window
            # (e.g. header -> payload -> signal byte -> next frame) lands
            # on a line already in flight and keeps the stream alive.
            if (s.stride > 0 and s.confidence >= TRAIN_THRESHOLD
                    and 0 < delta <= MAX_DISTANCE):
                best = s
                exact = True
                break
            if 0 < abs(delta) <= MAX_DISTANCE and s.stride == 0:
                best = best or s
        if best is not None:
            delta = line_addr - best.last_line
            if exact:
                best.confidence = min(best.confidence + 1, 8)
            else:
                best.stride = delta
                best.confidence = 1
            best.last_line = line_addr
            best.tick = self._tick
            if best.confidence >= TRAIN_THRESHOLD:
                self.trained_hits += 1
                return True
            return False
        # Allocate a new stream slot (LRU by tick).
        victim = min(self.streams, key=lambda s: s.tick)
        victim.last_line = line_addr
        victim.stride = 0
        victim.confidence = 0
        victim.tick = self._tick
        return False

    def reset(self) -> None:
        for s in self.streams:
            s.last_line, s.stride, s.confidence, s.tick = -1, 0, 0, 0

    def snapshot(self) -> tuple:
        return ([(s.last_line, s.stride, s.confidence, s.tick)
                 for s in self.streams], self._tick, self.trained_hits)

    def restore(self, snap: tuple) -> None:
        rows, tick, trained = snap
        for s, row in zip(self.streams, rows):
            s.last_line, s.stride, s.confidence, s.tick = row
        self._tick = tick
        self.trained_hits = trained
