"""A simulated server node: memory, pages, caches, cores, monitors.

The node is the meeting point of the functional model (bytes in
:class:`PhysicalMemory`) and the timing model (:class:`MemoryHierarchy`).
CPU-side code (the CHAIN VM and the Two-Chains runtime) and the HCA DMA
engine both go through the node so that watchpoints (the WFE monitor) and
preemption state are observed consistently.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..sim.clock import CPU_CLOCK
from ..sim.engine import Engine, Event
from ..sim.trace import Scoreboard
from .hierarchy import HierarchyConfig, MemoryHierarchy
from .memory import BumpAllocator, PhysicalMemory
from .pages import PROT_RW, PageTable

# First 64 KiB is never mapped: null-pointer dereferences fault.
_HEAP_BASE = 64 * 1024


class Node:
    """One server of the two-node testbed."""

    def __init__(
        self,
        engine: Engine,
        node_id: int,
        mem_size: int = 64 * 1024 * 1024,
        hier_cfg: HierarchyConfig | None = None,
    ):
        self.engine = engine
        self.node_id = node_id
        self.mem = PhysicalMemory(mem_size)
        self.pages = PageTable(mem_size)
        self.alloc = BumpAllocator(_HEAP_BASE, mem_size)
        self.hier = MemoryHierarchy(hier_cfg)
        self.hier.node_id = node_id
        self.ncores = self.hier.cfg.ncores
        self.board = Scoreboard()
        # WFE monitors: line address -> Event fired on any write to the line.
        self._watch: dict[int, Event] = {}
        # Preemption (stress model): core is off-CPU until this time.
        self.preempt_until = [0.0] * self.ncores

    # -- allocation ---------------------------------------------------------

    def map_region(self, size: int, prot: int = PROT_RW, align: int = 64,
                   label: str = "") -> int:
        """Allocate node memory and set its page permissions.

        Permissions are per-page, so regions are padded out to page
        granularity — two regions never share a page (a later mapping
        would otherwise silently change an earlier one's protection).
        """
        from .pages import PAGE_SIZE
        addr = self.alloc.alloc((size + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1),
                                max(align, PAGE_SIZE))
        self.pages.set_prot(addr, size, prot)
        if label:
            self.board.bump(f"map.{label}.bytes", size)
        return addr

    # -- WFE monitor ---------------------------------------------------------

    def monitor_event(self, addr: int) -> Event:
        """Event fired whenever the line containing ``addr`` is written
        (by a local store or by inbound DMA) — the WFE wake-up source."""
        line = addr >> 6
        ev = self._watch.get(line)
        if ev is None:
            ev = self.engine.event(f"wfe:n{self.node_id}:{line:#x}")
            self._watch[line] = ev
        return ev

    def notify_write(self, addr: int, size: int) -> None:
        """Fire monitors overlapping [addr, addr+size); called by every
        store path that can signal a waiter."""
        if not self._watch:
            return
        first = addr >> 6
        last = (addr + max(size, 1) - 1) >> 6
        if first == last:  # scalar store: the overwhelmingly common case
            ev = self._watch.get(first)
            if ev is not None:
                ev.fire()
        elif last - first < 8:
            for line in range(first, last + 1):
                ev = self._watch.get(line)
                if ev is not None:
                    ev.fire()
        else:  # large writes: intersect with the (small) watch set instead
            for line, ev in list(self._watch.items()):
                if first <= line <= last:
                    ev.fire()

    # -- checkpointing --------------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the node's full mutable state (memory up to the
        allocator cursor, pages, hierarchy, scoreboard, monitors,
        preemption).  Requires quiescence: a WFE monitor with parked
        waiters references live processes that cannot survive a rewind."""
        for line, ev in self._watch.items():
            if ev._waiters:
                raise SimulationError(
                    f"node {self.node_id} checkpoint: WFE monitor on line "
                    f"{line:#x} has {len(ev._waiters)} parked waiter(s)")
        return {
            "cursor": self.alloc.cursor,
            "mem": self.mem.snapshot(self.alloc.cursor),
            "prot": self.pages.snapshot(),
            "hier": self.hier.snapshot(),
            "board": self.board.checkpoint(),
            "watch": {line: (ev, ev.fire_count)
                      for line, ev in self._watch.items()},
            "preempt": list(self.preempt_until),
        }

    def restore(self, snap: dict) -> None:
        """Rewind to a snapshot.  Monitors created after the snapshot are
        dropped (their events — and any dead processes parked on them —
        become garbage); kept monitors lose post-snapshot waiters and
        rewind their fire counts.  Memory written beyond the snapshot
        cursor is re-zeroed before the allocator itself rewinds."""
        self.mem.restore(snap["mem"], dirty_upto=self.alloc.cursor)
        self.alloc.cursor = snap["cursor"]
        self.pages.restore(snap["prot"])
        self.hier.restore(snap["hier"])
        self.board.restore(snap["board"])
        self._watch = {}
        for line, (ev, fire_count) in snap["watch"].items():
            ev._waiters.clear()
            ev.fire_count = fire_count
            self._watch[line] = ev
        self.preempt_until = list(snap["preempt"])

    # -- preemption (stress workload) ----------------------------------------

    def preempt(self, core: int, until: float) -> None:
        if until > self.preempt_until[core]:
            self.preempt_until[core] = until

    def runnable_delay(self, core: int, now: float) -> float:
        """Extra delay before ``core`` can run at ``now`` (0 if on-CPU)."""
        return max(0.0, self.preempt_until[core] - now)

    # -- cycle accounting ------------------------------------------------------

    def add_busy_cycles(self, core: int, cycles: int) -> None:
        self.board.bump(f"core{core}.busy_cycles", cycles)

    def add_wait_cycles(self, core: int, cycles: int) -> None:
        """Cycles burned in a spin-poll loop (the WFE figures count these)."""
        self.board.bump(f"core{core}.wait_cycles", cycles)

    def add_busy_ns(self, core: int, ns: float) -> None:
        self.add_busy_cycles(core, CPU_CLOCK.ns_to_cycles(ns))

    def cpu_cycles(self, core: int) -> int:
        """Total cycles the core spent awake (busy + spinning)."""
        return (self.board.count(f"core{core}.busy_cycles")
                + self.board.count(f"core{core}.wait_cycles"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.node_id}, mem={self.mem.size >> 20}MiB)"
