"""Page-permission table (R/W/X) for a node's physical memory.

Two-Chains' compact message layout marks mailbox pages RWX; the §V security
reconfiguration splits code (RX) from data (RW).  The CHAIN VM enforces X on
instruction fetch and W on stores through this table, so those
configurations are functionally distinguishable, not just labels.
"""

from __future__ import annotations

from ..errors import MachineError, MemoryFault

PAGE_SIZE = 4096

PROT_NONE = 0
PROT_R = 1
PROT_W = 2
PROT_X = 4
PROT_RW = PROT_R | PROT_W
PROT_RX = PROT_R | PROT_X
PROT_RWX = PROT_R | PROT_W | PROT_X

_PROT_NAMES = {PROT_R: "R", PROT_W: "W", PROT_X: "X"}


def prot_str(prot: int) -> str:
    return "".join(n for bit, n in _PROT_NAMES.items() if prot & bit) or "-"


class PageTable:
    """Per-page permission bits over a physical address range."""

    def __init__(self, mem_size: int):
        if mem_size % PAGE_SIZE:
            raise MachineError("memory size must be page-aligned")
        self.mem_size = mem_size
        # bytearray, not numpy: permission checks are one scalar index
        # on the VM's per-memory-op path, where bytearray indexing is a
        # plain int fetch
        self.prot = bytearray(mem_size // PAGE_SIZE)

    def set_prot(self, addr: int, length: int, prot: int) -> None:
        """Set permissions for all pages overlapping [addr, addr+length)."""
        if addr < 0 or addr + length > self.mem_size:
            raise MachineError(f"mprotect out of range: {addr:#x}+{length}")
        first = addr // PAGE_SIZE
        last = (addr + length - 1) // PAGE_SIZE
        self.prot[first : last + 1] = bytes([prot & 0xFF]) * (last + 1 - first)

    def snapshot(self) -> bytes:
        return bytes(self.prot)

    def restore(self, snap: bytes) -> None:
        self.prot[:] = snap

    def prot_of(self, addr: int) -> int:
        if addr < 0 or addr >= self.mem_size:
            raise MemoryFault(f"address out of range: {addr:#x}", addr=addr)
        return self.prot[addr // PAGE_SIZE]

    def _check(self, addr: int, length: int, need: int, kind: str) -> None:
        if addr < 0 or addr + length > self.mem_size:
            raise MemoryFault(
                f"{kind} out of range: [{addr:#x}, {addr + length:#x})",
                addr=addr,
                kind=kind,
            )
        first = addr // PAGE_SIZE
        last = (addr + length - 1) // PAGE_SIZE
        if first == last:  # fast path: the overwhelmingly common case
            if self.prot[first] & need == need:
                return
            raise MemoryFault(
                f"{kind} denied at {addr:#x} (need {prot_str(need)})",
                addr=addr,
                kind=kind,
            )
        pages = self.prot[first : last + 1]
        if any(p & need != need for p in pages):
            raise MemoryFault(
                f"{kind} denied at {addr:#x} (need {prot_str(need)})",
                addr=addr,
                kind=kind,
            )

    def check_read(self, addr: int, length: int = 1) -> None:
        self._check(addr, length, PROT_R, "read")

    def check_write(self, addr: int, length: int = 1) -> None:
        self._check(addr, length, PROT_W, "write")

    def check_exec(self, addr: int, length: int = 1) -> None:
        self._check(addr, length, PROT_X, "exec")
