"""Set-associative cache with true-LRU replacement.

All caches in the hierarchy (L1I/L1D/L2/L3/LLC) are instances of
:class:`SetAssocCache`.  State is kept in numpy arrays (tags, LRU ticks,
dirty bits) indexed by set; lookups are O(ways) numpy scans, which profiling
showed beats dict-based designs at the access counts our benchmarks reach.

Addresses are node-physical.  The cache works in units of *lines*
(``line_addr = addr >> 6`` for 64-byte lines).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import MachineError

LINE_SHIFT = 6
LINE_BYTES = 1 << LINE_SHIFT


def line_of(addr: int) -> int:
    return addr >> LINE_SHIFT


def lines_touched(addr: int, size: int) -> range:
    """Range of line addresses overlapped by [addr, addr+size)."""
    if size <= 0:
        return range(0)
    return range(addr >> LINE_SHIFT, (addr + size - 1 >> LINE_SHIFT) + 1)


class SetAssocCache:
    """One cache level.

    Parameters
    ----------
    name:
        Label for stats (e.g. ``"L2.c0"``).
    size_bytes:
        Total capacity; must be sets*ways*64.
    ways:
        Associativity.
    """

    __slots__ = (
        "name", "size_bytes", "ways", "sets", "tags", "lru", "dirty",
        "_tick", "hits", "misses", "evictions",
    )

    def __init__(self, name: str, size_bytes: int, ways: int):
        if size_bytes % (ways * LINE_BYTES):
            raise MachineError(
                f"{name}: size {size_bytes} not divisible by ways*line"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.sets = size_bytes // (ways * LINE_BYTES)
        if self.sets & (self.sets - 1):
            raise MachineError(f"{name}: set count {self.sets} not a power of 2")
        self.tags = np.full((self.sets, ways), -1, dtype=np.int64)
        self.lru = np.zeros((self.sets, ways), dtype=np.int64)
        self.dirty = np.zeros((self.sets, ways), dtype=bool)
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- internals ---------------------------------------------------------

    def _set_and_tag(self, line_addr: int) -> tuple[int, int]:
        return line_addr & (self.sets - 1), line_addr >> self.sets.bit_length() - 1

    def _find(self, sidx: int, tag: int) -> int:
        row = self.tags[sidx]
        for way in range(self.ways):
            if row[way] == tag:
                return way
        return -1

    # -- operations ---------------------------------------------------------

    def probe(self, line_addr: int) -> bool:
        """Presence test with no LRU side effects (used by DMA snoop)."""
        sidx, tag = self._set_and_tag(line_addr)
        return self._find(sidx, tag) >= 0

    def access(self, line_addr: int, write: bool = False) -> bool:
        """Look up a line; on hit update LRU (and dirty for writes).

        Returns True on hit.  Misses do NOT allocate — callers decide
        whether to ``install`` after fetching from the next level.
        """
        sidx, tag = self._set_and_tag(line_addr)
        way = self._find(sidx, tag)
        if way < 0:
            self.misses += 1
            return False
        self.hits += 1
        self._tick += 1
        self.lru[sidx, way] = self._tick
        if write:
            self.dirty[sidx, way] = True
        return True

    def install(self, line_addr: int, dirty: bool = False
                ) -> Optional[tuple[int, bool]]:
        """Fill a line, evicting the LRU way if the set is full.

        Returns (evicted_line_addr, evicted_dirty) or None.  Installing a
        line already present just refreshes it.
        """
        sidx, tag = self._set_and_tag(line_addr)
        self._tick += 1
        way = self._find(sidx, tag)
        if way >= 0:
            self.lru[sidx, way] = self._tick
            if dirty:
                self.dirty[sidx, way] = True
            return None
        row = self.tags[sidx]
        evicted: Optional[tuple[int, bool]] = None
        # Prefer an invalid way; otherwise evict true-LRU.
        for w in range(self.ways):
            if row[w] == -1:
                way = w
                break
        else:
            way = int(np.argmin(self.lru[sidx]))
            old_tag = int(row[way])
            old_line = (old_tag << (self.sets.bit_length() - 1)) | sidx
            evicted = (old_line, bool(self.dirty[sidx, way]))
            self.evictions += 1
        row[way] = tag
        self.lru[sidx, way] = self._tick
        self.dirty[sidx, way] = dirty
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line if present; returns whether it was dirty."""
        sidx, tag = self._set_and_tag(line_addr)
        way = self._find(sidx, tag)
        if way < 0:
            return False
        was_dirty = bool(self.dirty[sidx, way])
        self.tags[sidx, way] = -1
        self.dirty[sidx, way] = False
        self.lru[sidx, way] = 0
        return was_dirty

    def flush_all(self) -> int:
        """Invalidate everything; returns count of dirty lines dropped."""
        ndirty = int(self.dirty.sum())
        self.tags.fill(-1)
        self.dirty.fill(False)
        self.lru.fill(0)
        return ndirty

    @property
    def occupancy(self) -> int:
        return int((self.tags != -1).sum())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SetAssocCache({self.name}, {self.size_bytes >> 10}KiB, "
            f"{self.ways}-way, hits={self.hits}, misses={self.misses})"
        )
