"""Set-associative cache with true-LRU replacement.

All caches in the hierarchy (L1I/L1D/L2/L3/LLC) are instances of
:class:`SetAssocCache`.  State is kept in plain Python ints — per-set
rows of resident line addresses, LRU ticks and dirty bits — plus a
``line -> way`` dict (``_map``) covering every resident line.  The dict
makes the three operations that dominate simulator profiles O(1):
presence probes (DMA snoops are >90% misses), hit lookups, and
invalidations.  Only the install path still scans a set row, and that
row is a tiny list of ints (``ways`` <= 16).

An earlier numpy-backed layout paid a scalar-scan (`row[way] == tag`)
per probe; at the access counts our benchmarks reach the dict design is
~4x faster end to end (see docs/ARCHITECTURE.md, "Performance
engineering").

Addresses are node-physical.  The cache works in units of *lines*
(``line_addr = addr >> 6`` for 64-byte lines).
"""

from __future__ import annotations

from typing import Optional

from ..errors import MachineError

LINE_SHIFT = 6
LINE_BYTES = 1 << LINE_SHIFT


def line_of(addr: int) -> int:
    return addr >> LINE_SHIFT


def lines_touched(addr: int, size: int) -> range:
    """Range of line addresses overlapped by [addr, addr+size)."""
    if size <= 0:
        return range(0)
    return range(addr >> LINE_SHIFT, (addr + size - 1 >> LINE_SHIFT) + 1)


class SetAssocCache:
    """One cache level.

    Parameters
    ----------
    name:
        Label for stats (e.g. ``"L2.c0"``).
    size_bytes:
        Total capacity; must be sets*ways*64.
    ways:
        Associativity.
    """

    __slots__ = (
        "name", "size_bytes", "ways", "sets", "_set_mask", "_map",
        "tags", "lru", "dirty", "_tick", "hits", "misses", "evictions",
    )

    def __init__(self, name: str, size_bytes: int, ways: int):
        if size_bytes % (ways * LINE_BYTES):
            raise MachineError(
                f"{name}: size {size_bytes} not divisible by ways*line"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.sets = size_bytes // (ways * LINE_BYTES)
        if self.sets & (self.sets - 1):
            raise MachineError(f"{name}: set count {self.sets} not a power of 2")
        self._set_mask = self.sets - 1
        # Per-set rows: resident line address (-1 = invalid), LRU tick,
        # dirty bit.  Rows are created lazily on first install into a
        # set — a 32 MB LLC has 32k sets, and benchmarks construct whole
        # hierarchies per sweep point, so eager allocation dominates the
        # constructor.  A line present in ``_map`` (line -> way, every
        # resident line) implies its set's rows exist.
        self.tags: dict[int, list[int]] = {}
        self.lru: dict[int, list[int]] = {}
        self.dirty: dict[int, list[bool]] = {}
        self._map: dict[int, int] = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- operations ---------------------------------------------------------

    def probe(self, line_addr: int) -> bool:
        """Presence test with no LRU side effects (used by DMA snoop)."""
        return line_addr in self._map

    def access(self, line_addr: int, write: bool = False) -> bool:
        """Look up a line; on hit update LRU (and dirty for writes).

        Returns True on hit.  Misses do NOT allocate — callers decide
        whether to ``install`` after fetching from the next level.
        """
        way = self._map.get(line_addr)
        if way is None:
            self.misses += 1
            return False
        self.hits += 1
        self._tick += 1
        sidx = line_addr & self._set_mask
        self.lru[sidx][way] = self._tick
        if write:
            self.dirty[sidx][way] = True
        return True

    def install(self, line_addr: int, dirty: bool = False
                ) -> Optional[tuple[int, bool]]:
        """Fill a line, evicting the LRU way if the set is full.

        Returns (evicted_line_addr, evicted_dirty) or None.  Installing a
        line already present just refreshes it.
        """
        self._tick = tick = self._tick + 1
        sidx = line_addr & self._set_mask
        way = self._map.get(line_addr)
        if way is not None:
            self.lru[sidx][way] = tick
            if dirty:
                self.dirty[sidx][way] = True
            return None
        row = self.tags.get(sidx)
        if row is None:
            row = self.tags[sidx] = [-1] * self.ways
            self.lru[sidx] = [0] * self.ways
            self.dirty[sidx] = [False] * self.ways
        evicted: Optional[tuple[int, bool]] = None
        # Prefer an invalid way; otherwise evict true-LRU.  Scans stay
        # at C speed (list `in`/`index`/`min`); ticks are unique, so
        # `index(min(...))` is the unambiguous LRU way.
        if -1 in row:
            way = row.index(-1)
        else:
            lru_row = self.lru[sidx]
            way = lru_row.index(min(lru_row))
            old_line = row[way]
            evicted = (old_line, self.dirty[sidx][way])
            del self._map[old_line]
            self.evictions += 1
        row[way] = line_addr
        self._map[line_addr] = way
        self.lru[sidx][way] = tick
        self.dirty[sidx][way] = dirty
        return evicted

    def install_many(self, line_addrs) -> int:
        """Bulk clean-fill; returns the count of dirty lines evicted.

        Semantically identical to calling :meth:`install` once per element
        with ``dirty=False`` — same tick sequence, same eviction decisions —
        but with the per-call attribute lookups hoisted.  Exists for the
        stress workload's LLC-pollution loop, which installs tens of
        millions of lines per noise-heavy figure.
        """
        tick = self._tick
        mask = self._set_mask
        mp = self._map
        mget = mp.get
        tags = self.tags
        tget = tags.get
        lru = self.lru
        dirty = self.dirty
        ways = self.ways
        evictions = 0
        ndirty = 0
        # Steady state for a polluted cache: every allocated set is full,
        # so the invalid-way scan below cannot find anything — skip it.
        # Allocating a fresh set re-arms the scan; a stale False is safe
        # (it just falls back to the scan), a stale True is impossible
        # (evictions keep occupancy constant, fills only grow it).
        full = len(mp) == len(tags) * ways
        for line_addr in line_addrs:
            tick += 1
            way = mget(line_addr)
            if way is not None:
                lru[line_addr & mask][way] = tick
                continue
            sidx = line_addr & mask
            row = tget(sidx)
            if row is None:
                row = tags[sidx] = [-1] * ways
                lrow = lru[sidx] = [0] * ways
                dirty[sidx] = [False] * ways
                way = 0
                full = False
            elif full or -1 not in row:
                lrow = lru[sidx]
                way = lrow.index(min(lrow))
                drow = dirty[sidx]
                if drow[way]:
                    ndirty += 1
                    drow[way] = False
                del mp[row[way]]
                evictions += 1
            else:
                # Invalid ways carry dirty=False (invalidate and snoop
                # reset it), so only the eviction path must clear it.
                way = row.index(-1)
                lrow = lru[sidx]
            row[way] = line_addr
            mp[line_addr] = way
            lrow[way] = tick
        self._tick = tick
        self.evictions += evictions
        return ndirty

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line if present; returns whether it was dirty."""
        way = self._map.pop(line_addr, None)
        if way is None:
            return False
        sidx = line_addr & self._set_mask
        was_dirty = self.dirty[sidx][way]
        self.tags[sidx][way] = -1
        self.dirty[sidx][way] = False
        self.lru[sidx][way] = 0
        return was_dirty

    def flush_all(self) -> int:
        """Invalidate everything; returns count of dirty lines dropped."""
        ndirty = sum(row.count(True) for row in self.dirty.values())
        self.tags.clear()
        self.dirty.clear()
        self.lru.clear()
        self._map.clear()
        return ndirty

    def snapshot(self) -> tuple:
        """Full replacement-state capture (tags/LRU/dirty/stats)."""
        return (
            {s: row[:] for s, row in self.tags.items()},
            {s: row[:] for s, row in self.lru.items()},
            {s: row[:] for s, row in self.dirty.items()},
            dict(self._map),
            self._tick, self.hits, self.misses, self.evictions,
        )

    def restore(self, snap: tuple) -> None:
        tags, lru, dirty, amap, tick, hits, misses, evictions = snap
        self.tags = {s: row[:] for s, row in tags.items()}
        self.lru = {s: row[:] for s, row in lru.items()}
        self.dirty = {s: row[:] for s, row in dirty.items()}
        self._map = dict(amap)
        self._tick = tick
        self.hits = hits
        self.misses = misses
        self.evictions = evictions

    @property
    def occupancy(self) -> int:
        return len(self._map)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SetAssocCache({self.name}, {self.size_bytes >> 10}KiB, "
            f"{self.ways}-way, hits={self.hits}, misses={self.misses})"
        )
