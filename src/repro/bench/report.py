"""Plain-text rendering of figure results (the harness's 'plots')."""

from __future__ import annotations

from .figures import FigureResult


def _fmt(value) -> str:
    if isinstance(value, float):
        if abs(value) >= 1e6:
            return f"{value:.4g}"
        return f"{value:,.2f}"
    return str(value)


def render_figure(result: FigureResult) -> str:
    """Render one figure's series as an aligned table plus its metrics."""
    rows = result.as_rows()
    widths = [max(len(_fmt(row[i])) for row in rows)
              for i in range(len(rows[0]))]
    lines = [f"== {result.figure}: {result.title} =="]
    header, *body = rows
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))
    if result.metrics:
        lines.append("metrics:")
        for key, value in result.metrics.items():
            lines.append(f"  {key} = {_fmt(value)}")
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def print_figure(result: FigureResult) -> None:
    print()
    print(render_figure(result))
