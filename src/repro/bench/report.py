"""Rendering of figure results: plain-text tables (the harness's
'plots'), the machine-readable ``BENCH_<figure>.json`` payload, and the
``bench diff`` report.  The JSON schema is documented field by field in
docs/BENCHMARKS.md."""

from __future__ import annotations

from .figures import FigureResult
from .resultstore import SCHEMA_VERSION, config_fingerprint
from .stats import series_summary


def _fmt(value) -> str:
    if isinstance(value, float):
        if abs(value) >= 1e6:
            return f"{value:.4g}"
        return f"{value:,.2f}"
    return str(value)


def render_figure(result: FigureResult) -> str:
    """Render one figure's series as an aligned table plus its metrics."""
    rows = result.as_rows()
    widths = [max(len(_fmt(row[i])) for row in rows)
              for i in range(len(rows[0]))]
    lines = [f"== {result.figure}: {result.title} =="]
    header, *body = rows
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))
    if result.metrics:
        lines.append("metrics:")
        for key, value in result.metrics.items():
            lines.append(f"  {key} = {_fmt(value)}")
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def print_figure(result: FigureResult) -> None:
    print()
    print(render_figure(result))


def bench_payload(run, meta: dict) -> dict:
    """The BENCH_<figure>.json document for one orchestrator FigureRun.

    Everything host- or time-dependent goes under ``meta``; the rest is a
    pure function of (figure, sweep params, configs, code), which is what
    the determinism test asserts.
    """
    fr = run.result
    points = []
    for rec in run.points:
        points.append({
            "params": rec.params,
            "cached": rec.cached,
            "x": rec.row["x"],
            "values": {k: v for k, v in rec.row.items()
                       if k != "x" and not k.startswith("_")},
            "counters": dict(sorted(rec.row.get("_counters", {}).items())),
        })
    return {
        "schema_version": SCHEMA_VERSION,
        "figure": fr.figure,
        "title": fr.title,
        "x_label": fr.x_label,
        "meta": meta,
        "config": config_fingerprint(),
        "points": points,
        "x": fr.x,
        "series": fr.series,
        "summary": {k: series_summary(v) for k, v in fr.series.items()},
        "metrics": fr.metrics,
        "counters": fr.counters,
        "directions": dict(run.spec.directions),
        "notes": fr.notes,
    }


def render_diff(diffs, notes=(), threshold_pct: float = 5.0) -> str:
    """Aligned table of SeriesDiff records plus unmatched-figure notes."""
    lines = [f"== bench diff (noise threshold {threshold_pct:g}%) =="]
    if not diffs and not notes:
        return lines[0] + "\nnothing comparable"
    rows = [["figure", "series", "better", "base", "new", "mean %",
             "worst pt %", ""]]
    for d in diffs:
        rows.append([d.figure, d.series, d.direction, _fmt(d.base_mean),
                     _fmt(d.new_mean), f"{d.mean_pct:+.2f}",
                     f"{d.worst_point_pct:+.2f}",
                     "REGRESSION" if d.regression else "ok"])
    widths = [max(len(str(r[i])) for r in rows) for i in range(len(rows[0]))]
    header, *body = rows
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    for note in notes:
        lines.append(f"note: {note}")
    bad = sum(1 for d in diffs if d.regression)
    lines.append(f"{len(diffs)} series compared, {bad} regression(s)")
    return "\n".join(lines)
