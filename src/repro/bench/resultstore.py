"""On-disk cache of completed sweep points, keyed by content hashes.

A *point key* is the SHA-256 of the canonical JSON of::

    {figure, sweep params, RuntimeConfig+HierarchyConfig defaults,
     code version}

so a cached measurement is reused only while everything that could have
produced a different number is unchanged.  The code version hashes every
``src/repro/**/*.py`` source *except* the presentation/orchestration
modules (this file, ``bench/orchestrator.py``, ``bench/report.py``,
``cli.py``) — editing how results are scheduled or rendered does not
invalidate the measurements themselves, so re-runs after such edits are
near-instant; editing any model/runtime module invalidates everything,
conservatively.

Entries are one JSON file per point under ``<root>/<key[:2]>/<key>.json``
and self-describing: each records the figure, params, and its own key.
On load the key is recomputed from the recorded figure/params under the
*current* config fingerprint and code version; any mismatch (tampered
file, renamed key, changed config, changed code) is treated as a miss and
the entry is ignored.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import subprocess
from dataclasses import asdict
from pathlib import Path

from ..core.config import RuntimeConfig
from ..machine.hierarchy import HierarchyConfig

#: Version of the ``BENCH_<figure>.json`` document layout (see
#: docs/BENCHMARKS.md); bumped on any breaking schema change.
#: v2: ``meta.metrics`` block (docs/METRICS.md) joined the document.
SCHEMA_VERSION = 2

# bench-orchestration modules whose edits cannot change measured numbers
_VERSION_EXCLUDES = {
    "bench/orchestrator.py",
    "bench/resultstore.py",
    "bench/report.py",
    "cli.py",
}

_code_version_cache: str | None = None


def _jsonable(obj):
    """Recursively convert enums so dataclass dicts serialize to JSON."""
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def config_fingerprint() -> dict:
    """Default RuntimeConfig + HierarchyConfig, as plain JSON data."""
    return {"runtime": _jsonable(asdict(RuntimeConfig())),
            "hierarchy": _jsonable(asdict(HierarchyConfig()))}


def code_version() -> str:
    """SHA-256 over the simulator/runtime sources (cached per process)."""
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel in _VERSION_EXCLUDES:
                continue
            digest.update(rel.encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


def git_sha() -> str | None:
    """Current repo HEAD, if the working tree is a git checkout."""
    import repro

    try:
        out = subprocess.run(
            ["git", "-C", os.path.dirname(repro.__file__), "rev-parse",
             "HEAD"],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def canonical_json(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def point_key(figure: str, params: dict, *, fingerprint: dict | None = None,
              version: str | None = None) -> str:
    """Stable cache key for one (figure, sweep-point) pair."""
    doc = {
        "figure": figure,
        "params": params,
        "config": fingerprint if fingerprint is not None
        else config_fingerprint(),
        "code": version if version is not None else code_version(),
    }
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


class ResultStore:
    """Directory of cached point rows with self-verifying keys."""

    def __init__(self, root: str | os.PathLike, *,
                 fingerprint: dict | None = None,
                 version: str | None = None) -> None:
        self.root = Path(root)
        self.fingerprint = (fingerprint if fingerprint is not None
                            else config_fingerprint())
        self.version = version if version is not None else code_version()
        self.hits = 0
        self.misses = 0

    def key_for(self, figure: str, params: dict) -> str:
        return point_key(figure, params, fingerprint=self.fingerprint,
                         version=self.version)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get_entry(self, key: str,
                  require_metrics: bool = False) -> dict | None:
        """The full cached entry for ``key`` (``row`` plus the optional
        deterministic ``metrics`` snapshot), or None on a miss.  Entries
        written before the metrics subsystem lack the field; with
        ``require_metrics`` they count as misses, so a metrics-on run
        transparently refreshes them."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        expected = self.key_for(entry.get("figure", ""),
                                entry.get("params", {}))
        if entry.get("key") != key or expected != key:
            self.misses += 1
            return None
        if require_metrics and "metrics" not in entry:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def get(self, key: str) -> dict | None:
        """The cached row for ``key``, or None (miss/tampered/stale)."""
        entry = self.get_entry(key)
        return entry["row"] if entry is not None else None

    def put(self, key: str, figure: str, params: dict, row: dict,
            metrics: dict | None = None) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        entry = {"key": key, "figure": figure, "params": params, "row": row}
        if metrics is not None:
            # The stable-metrics snapshot is as deterministic as the row
            # itself, so caching it keeps metrics-on re-runs warm.
            entry["metrics"] = metrics
        tmp.write_text(json.dumps(entry, indent=1))
        os.replace(tmp, path)


# ---------------------------------------------------------------------------
# timing history (scheduling hints, not results)
# ---------------------------------------------------------------------------

def timing_key(figure: str, params: dict) -> str:
    """History key for one point's expected duration: figure + params
    only — deliberately *not* the code version, because a stale estimate
    merely mis-sorts the run queue, it can never corrupt a result."""
    doc = {"figure": figure, "params": params}
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()[:16]


class TimingStore:
    """``<root>/timings.json``: per-point wall-clock history.

    The orchestrator uses it to order setup-key groups longest-first
    (LPT) so a slow group never starts last and stretches the run's
    tail.  Best-effort by design: unreadable or missing history just
    means unknown durations, and unknown points sort *first* — running
    them early both bounds the schedule damage and fills in the history.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.path = Path(root) / "timings.json"
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            data = {}
        self._data: dict[str, float] = data if isinstance(data, dict) else {}

    def get(self, figure: str, params: dict) -> float | None:
        value = self._data.get(timing_key(figure, params))
        return float(value) if isinstance(value, (int, float)) else None

    def record(self, figure: str, params: dict, elapsed_s: float) -> None:
        self._data[timing_key(figure, params)] = round(elapsed_s, 6)

    def save(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self._data, sort_keys=True, indent=1))
        os.replace(tmp, self.path)
