"""``twochains profile``: where does simulator wall-clock time go?

Runs figure sweeps serially (no pool — cProfile is per-process) under
cProfile and reduces the result to three views:

* **throughput** — the process-wide :mod:`repro.perf` counters for the
  profiled span, normalized per wall-second (instructions retired,
  cache probes, DES events, simulated ns).  The same block the bench
  orchestrator records in every ``BENCH_*.json`` meta.
* **subsystems** — tottime rolled up by top-level package under
  ``repro/`` (isa, machine, sim, runtime, ...), answering "which layer
  is hot" without reading 200 stack lines.
* **hotspots** — the classic top-N functions by tottime.

The report is a plain dict (JSON-able, ``--json``) plus a text renderer
for the terminal.  Profiling wraps the same ``spec.point`` calls the
orchestrator runs, so the numbers describe real benchmark work; the
point cache is deliberately bypassed.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from pathlib import Path

from ..perf import COUNTERS, throughput
from .figures import full_registry
from .orchestrator import resolve_names

_SRC_MARKER = "repro"


def _subsystem_of(path: str) -> str | None:
    """Top-level repro package of a profiled file, or None if foreign."""
    parts = Path(path).parts
    for i, part in enumerate(parts):
        if part == _SRC_MARKER and i + 1 < len(parts):
            nxt = parts[i + 1]
            return nxt[:-3] if nxt.endswith(".py") else nxt
    return None


def profile_figures(names: list[str] | None = None, *, fast: bool = True,
                    smoke: bool = False, top: int = 12) -> dict:
    """Profile the named sweeps (all registered figures by default).

    ``smoke`` runs only the first point of each sweep — the CI quick
    check.  Returns the JSON-able report dict.
    """
    names = resolve_names(names)
    registry = full_registry()
    tasks: list[tuple[str, dict]] = []
    for name in names:
        points = registry[name].points(fast)
        if smoke:
            points = points[:1]
        tasks.extend((name, params) for params in points)

    before = COUNTERS.snapshot()
    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    for name, params in tasks:
        registry[name].point(**params)
    profiler.disable()
    wall_s = time.perf_counter() - t0
    counters = COUNTERS.delta(before)

    stats = pstats.Stats(profiler)
    subsystems: dict[str, dict] = {}
    hotspots = []
    for (path, line, func), (_cc, ncalls, tottime, cumtime, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        sub = _subsystem_of(path)
        bucket = subsystems.setdefault(sub or "(stdlib/other)",
                                       {"tottime_s": 0.0, "calls": 0})
        bucket["tottime_s"] += tottime
        bucket["calls"] += ncalls
        if sub is not None:
            hotspots.append({
                "func": f"{Path(path).name}:{line}({func})",
                "calls": ncalls,
                "tottime_s": round(tottime, 4),
                "cumtime_s": round(cumtime, 4),
            })
    hotspots.sort(key=lambda h: -h["tottime_s"])

    return {
        "figures": names,
        "points": len(tasks),
        "smoke": smoke,
        "fast": fast,
        "wall_s": round(wall_s, 4),
        "sim_throughput": throughput(counters, wall_s),
        "subsystems": sorted(
            ({"name": k, "tottime_s": round(v["tottime_s"], 4),
              "calls": v["calls"]} for k, v in subsystems.items()),
            key=lambda s: -s["tottime_s"]),
        "hotspots": hotspots[:top],
    }


def render_profile_text(report: dict) -> str:
    """Terminal rendering of a :func:`profile_figures` report."""
    tp = report["sim_throughput"]
    lines = [
        f"profiled {', '.join(report['figures'])} "
        f"({report['points']} points{', smoke' if report['smoke'] else ''}) "
        f"in {report['wall_s']:.2f}s",
        "",
        "simulator throughput:",
        f"  instructions retired   {tp['instructions']:>14,}"
        f"   ({tp['instructions_per_s']:,.0f}/s)",
        f"  cache probes           {tp['cache_probes']:>14,}",
        f"  DES events             {tp['des_events']:>14,}",
        f"  simulated ns           {tp['sim_ns']:>14,.0f}"
        f"   ({tp['sim_ns_per_wall_s']:,.0f} sim-ns/wall-s)",
        f"  fused dispatches       {tp['fused_dispatches']:>14,}"
        f"   ({tp['blocks_compiled']:,} blocks compiled, "
        f"{tp['block_invalidations']:,} invalidated)",
        "",
        "time by subsystem (tottime):",
    ]
    for sub in report["subsystems"]:
        lines.append(f"  {sub['name']:<16} {sub['tottime_s']:>8.3f}s"
                     f"  ({sub['calls']:,} calls)")
    lines += ["", f"top {len(report['hotspots'])} functions (tottime):"]
    for h in report["hotspots"]:
        lines.append(f"  {h['tottime_s']:>8.3f}s  {h['calls']:>10,}  "
                     f"{h['func']}")
    return "\n".join(lines)
