"""``twochains profile``: where does simulator wall-clock time go?

Runs figure sweeps serially (no pool — cProfile is per-process) under
cProfile and reduces the result to three views:

* **throughput** — the process-wide :mod:`repro.perf` counters for the
  profiled span, normalized per wall-second (instructions retired,
  cache probes, DES events, simulated ns).  The same block the bench
  orchestrator records in every ``BENCH_*.json`` meta.
* **subsystems** — tottime rolled up by top-level package under
  ``repro/`` (isa, machine, sim, runtime, ...), answering "which layer
  is hot" without reading 200 stack lines.
* **hotspots** — the classic top-N functions by tottime.

The report is a plain dict (JSON-able, ``--json``) plus a text renderer
for the terminal.  Profiling wraps the same ``spec.point`` calls the
orchestrator runs, so the numbers describe real benchmark work; the
point cache is deliberately bypassed.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from pathlib import Path

from ..perf import COUNTERS, throughput
from ..sim import shard as _shard
from .figures import full_registry
from .orchestrator import resolve_names

_SRC_MARKER = "repro"


def _subsystem_of(path: str) -> str | None:
    """Top-level repro package of a profiled file, or None if foreign."""
    parts = Path(path).parts
    for i, part in enumerate(parts):
        if part == _SRC_MARKER and i + 1 < len(parts):
            nxt = parts[i + 1]
            return nxt[:-3] if nxt.endswith(".py") else nxt
    return None


def profile_figures(names: list[str] | None = None, *, fast: bool = True,
                    smoke: bool = False, top: int = 12,
                    hot_loops: bool = False, shards: int | str = 1,
                    shard_backend: str = "serial") -> dict:
    """Profile the named sweeps (all registered figures by default).

    ``smoke`` runs only the first point of each sweep — the CI quick
    check.  ``hot_loops`` additionally collects the VM's trace-JIT
    observability registries (profiled backward branches and installed
    traces) and attaches a ``hot_loops`` block: the top back-edges by
    dispatch count and per-anchor trace coverage.  ``shards`` sets the
    DES shard policy for shardable sweeps (an int or ``"auto"``) and
    attaches a per-shard utilization block — busy vs sync-stall wall —
    whenever any profiled world actually ran sharded.  Returns the
    JSON-able report dict.
    """
    names = resolve_names(names)
    registry = full_registry()
    tasks: list[tuple[str, dict]] = []
    for name in names:
        points = registry[name].points(fast)
        if smoke:
            points = points[:1]
        tasks.extend((name, params) for params in points)

    if hot_loops:
        from ..isa import vm as _vm
        _vm.reset_trace_observability()
    _shard.RUN_STATS.reset()
    before = COUNTERS.snapshot()
    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    with _shard.scoped_policy(shards, shard_backend):
        for name, params in tasks:
            spec = registry[name]
            if spec.shardable:
                spec.point(**params)
            else:
                with _shard.forced_single():
                    spec.point(**params)
    profiler.disable()
    wall_s = time.perf_counter() - t0
    counters = COUNTERS.delta(before)

    stats = pstats.Stats(profiler)
    subsystems: dict[str, dict] = {}
    hotspots = []
    for (path, line, func), (_cc, ncalls, tottime, cumtime, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        sub = _subsystem_of(path)
        bucket = subsystems.setdefault(sub or "(stdlib/other)",
                                       {"tottime_s": 0.0, "calls": 0})
        bucket["tottime_s"] += tottime
        bucket["calls"] += ncalls
        if sub is not None:
            hotspots.append({
                "func": f"{Path(path).name}:{line}({func})",
                "calls": ncalls,
                "tottime_s": round(tottime, 4),
                "cumtime_s": round(cumtime, 4),
            })
    hotspots.sort(key=lambda h: -h["tottime_s"])

    report = {
        "figures": names,
        "points": len(tasks),
        "smoke": smoke,
        "fast": fast,
        "wall_s": round(wall_s, 4),
        "sim_throughput": throughput(counters, wall_s),
        "subsystems": sorted(
            ({"name": k, "tottime_s": round(v["tottime_s"], 4),
              "calls": v["calls"]} for k, v in subsystems.items()),
            key=lambda s: -s["tottime_s"]),
        "hotspots": hotspots[:top],
    }
    if hot_loops:
        sites, recs = _vm.trace_observability()
        report["hot_loops"] = _hot_loops_block(sites, recs, counters, top)
    stats_by_shard = _shard.RUN_STATS.snapshot()
    if stats_by_shard:
        report["shards"] = {
            "requested": shards,
            "backend": shard_backend,
            "runs": _shard.RUN_STATS.runs,
            "per_shard": [
                {"shard": s,
                 # Which OS process executed the shard: the driver pid
                 # for serial/thread, the forked worker for process.
                 "pid": int(d["pid"]),
                 "events": int(d["events"]),
                 "busy_wall_s": round(d["busy_wall_ns"] / 1e9, 4),
                 "stall_wall_s": round(d["stall_wall_ns"] / 1e9, 4),
                 "busy_pct": round(100.0 * d["busy_frac"], 2),
                 "null_msgs": int(d["null_msgs"])}
                for s, d in stats_by_shard.items()],
        }
    return report


def _hot_loops_block(sites: list, recs: list, counters: dict,
                     top: int) -> dict:
    """Reduce the VM's trace-JIT registries to a report block.

    ``sites`` are profiled backward branches ``(node, pc, target, aux)``
    with ``aux = [taken, not_taken, target, is_back]``; ``recs`` are
    installed trace records ``(n0, fn, live, [dispatches, instrs],
    info)``.  Coverage is the share of all retired instructions that
    retired inside traces — the headline number for "is the trace tier
    engaging on this workload".
    """
    back_edges = sorted(
        ({"node": node, "branch_pc": pc, "target_pc": tgt,
          "taken": aux[0], "not_taken": aux[1]}
         for node, pc, tgt, aux in sites if aux[0] or aux[1]),
        key=lambda s: -(s["taken"] + s["not_taken"]))[:top]
    traces = sorted(
        ({"node": info["node"], "anchor_pc": info["anchor"],
          "loop": info["loop"], "guards": info["guards"],
          "instrs_per_pass": info["instrs"], "dispatches": stats[0],
          "instructions": stats[1], "live": live[0]}
         for _n0, _fn, live, stats, info in recs),
        key=lambda t: -t["dispatches"])[:top]
    instrs = counters.get("instructions", 0)
    traced = counters.get("trace_instructions", 0)
    return {
        "traces_compiled": counters.get("traces_compiled", 0),
        "trace_dispatches": counters.get("trace_dispatches", 0),
        "trace_instructions": traced,
        "guard_bails": counters.get("guard_bails", 0),
        "coverage_pct": round(100.0 * traced / instrs, 2) if instrs else 0.0,
        "back_edges": back_edges,
        "traces": traces,
    }


def render_profile_text(report: dict) -> str:
    """Terminal rendering of a :func:`profile_figures` report."""
    tp = report["sim_throughput"]
    lines = [
        f"profiled {', '.join(report['figures'])} "
        f"({report['points']} points{', smoke' if report['smoke'] else ''}) "
        f"in {report['wall_s']:.2f}s",
        "",
        "simulator throughput:",
        f"  instructions retired   {tp['instructions']:>14,}"
        f"   ({tp['instructions_per_s']:,.0f}/s)",
        f"  cache probes           {tp['cache_probes']:>14,}",
        f"  DES events             {tp['des_events']:>14,}",
        f"  simulated ns           {tp['sim_ns']:>14,.0f}"
        f"   ({tp['sim_ns_per_wall_s']:,.0f} sim-ns/wall-s)",
        f"  fused dispatches       {tp['fused_dispatches']:>14,}"
        f"   ({tp['blocks_compiled']:,} blocks compiled, "
        f"{tp['block_invalidations']:,} invalidated)",
        "",
        "time by subsystem (tottime):",
    ]
    for sub in report["subsystems"]:
        lines.append(f"  {sub['name']:<16} {sub['tottime_s']:>8.3f}s"
                     f"  ({sub['calls']:,} calls)")
    lines += ["", f"top {len(report['hotspots'])} functions (tottime):"]
    for h in report["hotspots"]:
        lines.append(f"  {h['tottime_s']:>8.3f}s  {h['calls']:>10,}  "
                     f"{h['func']}")
    hl = report.get("hot_loops")
    if hl is not None:
        lines += [
            "",
            "hot loops (trace JIT):",
            f"  traces compiled        {hl['traces_compiled']:>14,}",
            f"  trace dispatches       {hl['trace_dispatches']:>14,}"
            f"   ({hl['guard_bails']:,} guard bails)",
            f"  traced instructions    {hl['trace_instructions']:>14,}"
            f"   ({hl['coverage_pct']:.2f}% of all retired)",
        ]
        if hl["back_edges"]:
            lines.append("  top back-edges (taken / not-taken):")
            for s in hl["back_edges"]:
                lines.append(
                    f"    n{s['node']} pc={s['branch_pc']:#x} -> "
                    f"{s['target_pc']:#x}   {s['taken']:,} / "
                    f"{s['not_taken']:,}")
        else:
            lines.append("  no profiled backward branches "
                         "(straight-line or intrinsic-bound workload)")
        if hl["traces"]:
            lines.append("  installed traces (by dispatches):")
            for t in hl["traces"]:
                lines.append(
                    f"    n{t['node']} anchor={t['anchor_pc']:#x} "
                    f"{'loop' if t['loop'] else 'line'} "
                    f"guards={t['guards']} "
                    f"instrs/pass={t['instrs_per_pass']} "
                    f"dispatches={t['dispatches']:,} "
                    f"retired={t['instructions']:,}"
                    f"{'' if t['live'] else ' (dead)'}")
    sh = report.get("shards")
    if sh is not None:
        lines += [
            "",
            f"DES shard utilization ({sh['backend']} backend, "
            f"{sh['runs']} sharded runs):",
        ]
        for d in sh["per_shard"]:
            lines.append(
                f"  shard {d['shard']} (pid {d['pid']}): "
                f"busy {d['busy_wall_s']:.3f}s / "
                f"stall {d['stall_wall_s']:.3f}s ({d['busy_pct']:.1f}% "
                f"busy), {d['events']:,} events, "
                f"{d['null_msgs']:,} null msgs")
    return "\n".join(lines)
