"""Calibration constants and the paper's target numbers, in one place.

Every magic number in the model is either defined here or in the module
that owns it with a derivation comment; this module additionally records
the quantitative *shapes* §VII reports, which the benchmark harness
compares against (with generous tolerance — the substrate is a simulator,
not the authors' testbed, so who-wins/by-roughly-what-factor is the
reproduction target, not absolute numbers).
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Sweeps (x-axes).  The paper plots payload sizes as integer counts for the
# Indirect Put figures (1..1024 four-byte integers) and byte sizes for the
# Server-Side Sum figures (64 B .. 32 KB).
INT_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
BYTE_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768)
# Tail figures need thousands of iterations per point for a stable p99.9,
# so their full sweeps use a thinner axis.
TAIL_INT_COUNTS = (1, 4, 16, 64, 256, 1024)
TAIL_BYTE_SIZES = (64, 512, 2048, 8192, 32768)

# Default iteration counts.  The paper runs 10k warmup + 1M measured
# iterations on hardware; the simulator is deterministic outside the
# stress experiments, so far fewer iterations suffice (warmup only has to
# reach cache/branch steady state).
WARMUP_ITERS = 24
MEASURE_ITERS = 120
TAIL_ITERS = 2500          # tail figures need enough samples for p99.9
RATE_MESSAGES = 1500       # messages per injection-rate point


@dataclass(frozen=True)
class PaperTargets:
    """§VII headline numbers (see EXPERIMENTS.md for the full mapping)."""

    # Fig 5: AM put without-execution vs UCX put latency: <=1.5% worse.
    fig5_max_latency_overhead_pct: float = 1.5
    # Fig 6: AM streaming bandwidth 1.79x..4.48x the UCX put test.
    fig6_speedup_range: tuple[float, float] = (1.79, 4.48)
    # Fig 7/8: injected vs local at small payloads: ~40% worse latency and
    # message rate; overhead negligible by 1024 ints (Indirect Put), with
    # Server-Side Sum converging around 64 ints.
    fig7_small_payload_loss_pct: float = 40.0
    fig7_converge_ints_indirect_put: int = 1024
    fig7_converge_ints_sum: int = 64
    # Fig 9: stashing cuts Indirect Put latency by up to 31%.
    fig9_max_latency_gain_pct: float = 31.0
    # Fig 10: stashing raises Indirect Put message rate by up to 92%;
    # Server-Side Sum sees up to 28%.
    fig10_max_rate_gain_pct: float = 92.0
    fig10_sum_rate_gain_pct: float = 28.0
    # Fig 11: loaded system, Indirect Put: tail latency up to 2.4x better
    # with stashing; stash tail-spread peaks at 182%.
    fig11_tail_improvement_max: float = 2.4
    fig11_stash_spread_peak_pct: float = 182.0
    # Fig 12: loaded system, Server-Side Sum: stash spread <=137% from the
    # 2KB size up; tail up to 2x better.
    fig12_stash_spread_cap_pct: float = 137.0
    # Fig 13: WFE vs polling (Indirect Put): latency penalty <=1.5%
    # (worst at 64B), cycle reduction 2.5x..3.8x.
    fig13_max_latency_penalty_pct: float = 1.5
    fig13_cycle_reduction_range: tuple[float, float] = (2.5, 3.8)
    # Fig 14: Server-Side Sum: 3.6x fewer cycles at 512B, 1.84x at 32KB.
    fig14_cycle_reduction_512b: float = 3.6
    fig14_cycle_reduction_32kb: float = 1.84


TARGETS = PaperTargets()

# Wide acceptance bands used by the benchmark assertions: the reproduced
# effect must point the same way and land within a factor of the paper's
# magnitude, not match it exactly.
def within_band(measured: float, target: float, rel: float = 0.6) -> bool:
    """True if ``measured`` is within +-``rel`` (fraction) of ``target``."""
    return abs(measured - target) <= rel * abs(target)
