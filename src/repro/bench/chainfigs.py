"""Chain-KV figure family: latency/throughput and multicast cost vs k.

Two registered sweeps over the chain-replicated KV store
(:mod:`repro.workloads.chainkv`, docs/TOPOLOGY.md):

* ``figchain`` — put latency (client -> head -> ... -> tail -> ack),
  get latency (served at the tail), and pipelined put throughput as the
  chain length k grows 1..8.  Put latency should climb ~linearly with k
  (one injected-message hop per replica); get latency should stay flat
  (always exactly client<->tail); throughput degrades more gently than
  latency because the hops pipeline.
* ``figchain_mcast`` — multicast install: one sweep posts the same
  injected jam to all k replicas back-to-back over per-peer QPs and
  waits for every ack.  The per-replica cost should *fall* with k as
  the post software path overlaps earlier frames' flight time.

Every point builds (or forks) a ``Topology.chain(k)`` world with the
``"chainkv"`` package; the per-k ``setup_key`` keeps equal-k points on
one pool worker so they share warm worlds through the setup cache, and
the fork==fresh identity tests cover these specs like any other.
"""

from __future__ import annotations

from ..core.stdworld import shared_world
from ..workloads.chainkv import chain_point, chain_topology
from .figures import FigureResult, FigureSpec, board_counters, register
from .stats import summarize

CHAIN_KS = (1, 2, 3, 4, 5, 6, 7, 8)
CHAIN_KS_FAST = (1, 2, 4)


def _points_chain(fast: bool) -> list[dict]:
    ks = CHAIN_KS_FAST if fast else CHAIN_KS
    warmup, iters = (4, 12) if fast else (8, 30)
    stream = 48 if fast else 192
    return [{"k": k, "value_bytes": 64, "warmup": warmup, "iters": iters,
             "stream": stream} for k in ks]


def _point_chain(k: int, value_bytes: int, warmup: int, iters: int,
                 stream: int) -> dict:
    w = shared_world(topology=chain_topology(k), package="chainkv")
    out = chain_point(w, value_bytes=value_bytes, warmup=warmup,
                      iters=iters, stream_count=stream)
    return {"x": k,
            "put_ns": summarize(out.put_ns).p50,
            "get_ns": summarize(out.get_ns).p50,
            "put_mps": out.put_rate_mps,
            "_counters": board_counters(w)}


def _metrics_chain(r: FigureResult) -> dict:
    put, get, x = r.series["put_ns"], r.series["get_ns"], r.x
    per_hop = ((put[-1] - put[0]) / (x[-1] - x[0])) if len(x) > 1 else 0.0
    return {"put_ns_per_hop": per_hop,
            "get_flatness_pct": (max(get) - min(get)) / min(get) * 100.0,
            "rate_k1_over_kmax": (r.series["put_mps"][0]
                                  / r.series["put_mps"][-1])}


register(FigureSpec(
    name="figchain",
    title="Chain KV: put/get latency and put throughput vs chain length",
    x_label="chain length (replicas)",
    points=_points_chain,
    point=_point_chain,
    metrics=_metrics_chain,
    directions={"put_ns": "lower", "get_ns": "lower", "put_mps": "higher"},
    notes="put pays one injected-jam hop per replica; get is flat (tail "
          "serves it regardless of k); streamed puts pipeline the hops",
    setup_key=lambda p: {"chain": p["k"]},
    # All cross-node coupling is fabric traffic (jam forwards, acks,
    # flag puts); the driver reads replica state only between runs.
    shardable=True,
))


def _points_mcast(fast: bool) -> list[dict]:
    ks = CHAIN_KS_FAST if fast else CHAIN_KS
    iters = 5 if fast else 15
    return [{"k": k, "iters": iters} for k in ks]


def _point_mcast(k: int, iters: int) -> dict:
    w = shared_world(topology=chain_topology(k), package="chainkv")
    out = chain_point(w, warmup=0, iters=0, mcast_iters=iters)
    install = summarize(out.mcast_ns).p50
    return {"x": k,
            "install_ns": install,
            "per_replica_ns": install / k,
            "_counters": board_counters(w)}


def _metrics_mcast(r: FigureResult) -> dict:
    per = r.series["per_replica_ns"]
    return {"per_replica_k1_ns": per[0], "per_replica_kmax_ns": per[-1],
            "amortization": per[0] / per[-1]}


register(FigureSpec(
    name="figchain_mcast",
    title="Chain KV: multicast jam install cost vs replica count",
    x_label="replicas installed",
    points=_points_mcast,
    point=_point_mcast,
    metrics=_metrics_mcast,
    directions={"install_ns": "lower", "per_replica_ns": "lower"},
    notes="one sweep posts the injected frame to k replicas back-to-back; "
          "per-replica cost amortizes as posts overlap earlier flights",
    setup_key=lambda p: {"chain": p["k"]},
    shardable=True,
))
