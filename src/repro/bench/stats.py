"""Latency statistics: percentiles and the paper's tail-latency spread."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class LatencyStats:
    n: int
    mean: float
    p50: float
    p999: float
    minimum: float
    maximum: float

    @property
    def tail_spread_pct(self) -> float:
        """Equation (1): (tail - typical) / typical, as a percentage."""
        if self.p50 == 0:
            return float("inf")
        return 100.0 * (self.p999 - self.p50) / self.p50


def summarize(samples: Iterable[float]) -> LatencyStats:
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no samples")
    return LatencyStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50.0)),
        p999=float(np.percentile(arr, 99.9, method="higher")),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def pct_diff(value: float, baseline: float) -> float:
    """(value - baseline) / baseline in percent; positive = value larger."""
    if baseline == 0:
        return float("inf")
    return 100.0 * (value - baseline) / baseline


def series_summary(values: Iterable[float]) -> dict:
    """Summary stats for one series of a BENCH_*.json payload."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {"n": 0}
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50.0)),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
