"""Ablation sweeps, registered alongside the §VII figures.

Each ablation from ``benchmarks/bench_ablation_*.py`` is expressed as a
:class:`~.figures.FigureSpec` so the orchestrator can run, cache, and
serialize it exactly like a paper figure.  The bench scripts keep their
qualitative assertions; the sweeps themselves live here.

Entries (x-axis is categorical for most):

* ``abl_adaptive``  — always-injected vs always-local vs adaptive sender
* ``abl_mailbox``   — injection rate vs mailbox geometry (banks x slots)
* ``abl_multicore`` — aggregate rate with N waiter cores
* ``abl_prefetch``  — prefetcher x stashing 2x2 factorial latency
* ``abl_security``  — latency cost of the §V security reconfigurations
* ``abl_got``       — GOT rewrite pass: structural before/after counts
* ``abl_tracejit``  — loop-based (non-intrinsic) sum latency vs payload;
  the one sweep whose jam carries a hot guest loop, so it exercises the
  VM's cross-branch trace JIT (rows are identical with ``--no-trace``)
"""

from __future__ import annotations

from ..amc import compile_amc
from ..core import AdaptiveJamSender, connect_runtimes
from ..core.config import RuntimeConfig
from ..core.gotrewrite import count_got_accesses, rewrite_got_accesses
from ..core.stdjams import (
    JAM_INDIRECT_PUT,
    JAM_SS_SUM,
    JAM_SS_SUM_NAIVE,
    JAM_TAG,
)
from ..core.stdworld import shared_world
from ..errors import ReproError
from ..machine.hierarchy import HierarchyConfig
from ..machine.pages import PROT_RW
from .figures import FigureResult, FigureSpec, board_counters, register
from .shapes import am_injection_rate, am_pingpong


def _series_at(r: FigureResult, series: str, x) -> float | None:
    """Series value at sweep point ``x``, or None on partial (smoke) runs."""
    try:
        return r.series[series][r.x.index(x)]
    except ValueError:
        return None


# ---------------------------------------------------------------------------
# abl_adaptive: the SS VIII future-work auto-switch
# ---------------------------------------------------------------------------

def _adaptive_rate(messages: int):
    """Rate of the adaptive sender (inject 4x, then auto-switch local)."""
    world = shared_world()
    nb = 32
    fsize = world.frame_size_for("jam_indirect_put", nb, True)
    mb = world.server.create_mailbox(4, 8, fsize)
    conn = connect_runtimes(world.client, world.server, mb,
                            flow_control=True)
    pkg = world.client.packages[world.build.package_id]
    payload = world.bed.node0.map_region(64, PROT_RW)
    sender = AdaptiveJamSender(conn, pkg, "jam_indirect_put", payload,
                               nb, threshold=4)
    done = world.engine.event("done")
    seen = {"n": 0, "t": 0.0}

    def on_frame(view, slot_addr):
        seen["n"] += 1
        if seen["n"] >= messages:
            seen["t"] = world.engine.now
            done.fire()

    waiter = world.server.make_waiter(mb, on_frame=on_frame,
                                      flag_target=conn.flag_target())
    waiter.start()
    marks = {}

    def driver():
        marks["t0"] = world.engine.now
        for _ in range(messages):
            yield from sender.send()
        yield done
        waiter.stop()

    world.engine.run_process(driver())
    if not sender.stats.switched:
        raise ReproError("adaptive sender never switched to local sends")
    rate = messages / ((seen["t"] - marks["t0"]) * 1e-9)
    return rate, sender.stats, fsize, world


def _points_adaptive(fast: bool) -> list[dict]:
    return [{"mode": m, "messages": 400}
            for m in ("injected", "local", "adaptive")]


def _point_adaptive(mode: str, messages: int) -> dict:
    if mode == "adaptive":
        rate, stats, fsize, world = _adaptive_rate(messages)
        saved_pct = 100.0 * stats.wire_bytes_saved / (messages * fsize)
        injected_sends = stats.injected_sends
    else:
        world = shared_world()
        rate = am_injection_rate(world, "jam_indirect_put", 32,
                                 inject=(mode == "injected"),
                                 messages=messages).rate_mps
        saved_pct = 0.0
        injected_sends = messages if mode == "injected" else 0
    return {"x": mode, "rate_mps": rate, "wire_saved_pct": saved_pct,
            "injected_sends": injected_sends,
            "_counters": board_counters(world)}


def _metrics_adaptive(r: FigureResult) -> dict:
    inj = _series_at(r, "rate_mps", "injected")
    loc = _series_at(r, "rate_mps", "local")
    ada = _series_at(r, "rate_mps", "adaptive")
    out: dict[str, float] = {}
    if inj and loc:
        out["local_vs_injected"] = loc / inj
    if inj and ada:
        out["adaptive_vs_injected"] = ada / inj
        out["adaptive_wire_saved_pct"] = _series_at(
            r, "wire_saved_pct", "adaptive")
        out["adaptive_injected_sends"] = _series_at(
            r, "injected_sends", "adaptive")
    return out


register(FigureSpec(
    name="abl_adaptive",
    title="Ablation: adaptive injection vs always-injected/always-local",
    x_label="sender mode",
    points=_points_adaptive,
    point=_point_adaptive,
    metrics=_metrics_adaptive,
    directions={"rate_mps": "higher", "wire_saved_pct": "higher"},
    notes="adaptive injects 4x then switches to compact Local frames; "
          "message rate stays near injected while wire bytes drop >80%",
    setup_key="std",
))


# ---------------------------------------------------------------------------
# abl_mailbox: injection rate vs mailbox geometry
# ---------------------------------------------------------------------------

def _points_mailbox(fast: bool) -> list[dict]:
    return [{"banks": b, "slots": s, "messages": 300}
            for b, s in ((1, 1), (1, 8), (2, 8), (4, 8), (4, 16))]


def _point_mailbox(banks: int, slots: int, messages: int) -> dict:
    world = shared_world()
    rate = am_injection_rate(world, "jam_ss_sum", 64, messages=messages,
                             banks=banks, slots=slots).rate_mps
    return {"x": f"{banks}x{slots}", "rate_mps": rate,
            "_counters": board_counters(world)}


def _metrics_mailbox(r: FigureResult) -> dict:
    r11 = _series_at(r, "rate_mps", "1x1")
    r48 = _series_at(r, "rate_mps", "4x8")
    r416 = _series_at(r, "rate_mps", "4x16")
    out: dict[str, float] = {}
    if r11 and r48:
        out["depth_speedup"] = r48 / r11
    if r48 and r416:
        out["saturation_ratio"] = r416 / r48
    return out


register(FigureSpec(
    name="abl_mailbox",
    title="Ablation: injection rate vs mailbox geometry (banks x slots)",
    x_label="banks x slots",
    points=_points_mailbox,
    point=_point_mailbox,
    metrics=_metrics_mailbox,
    directions={"rate_mps": "higher"},
    notes="deeper mailboxes amortize the per-bank flow-control flag "
          "round-trip; a 1x1 mailbox serializes on it entirely",
    setup_key="std",
))


# ---------------------------------------------------------------------------
# abl_multicore: parallel waiter threads on separate cores
# ---------------------------------------------------------------------------

def _multicore_rate(ncores: int, messages_per_core: int,
                    payload_bytes: int):
    from ..core.runtime import PreparedJam

    world = shared_world()
    engine = world.engine
    fsize = world.frame_size_for("jam_indirect_put", payload_bytes, True)
    pkg = world.client.packages[world.build.package_id]
    total = ncores * messages_per_core
    done = engine.event("all")
    state = {"seen": 0, "t_end": 0.0}

    def on_frame(view, slot_addr):
        state["seen"] += 1
        if state["seen"] >= total:
            state["t_end"] = engine.now
            done.fire()

    lanes = []
    for core in range(ncores):
        mb = world.server.create_mailbox(2, 4, fsize)
        conn = connect_runtimes(world.client, world.server, mb,
                                flow_control=True)
        waiter = world.server.make_waiter(
            mb, on_frame=on_frame, flag_target=conn.flag_target(),
            core=core)
        waiter.start()
        payload = world.bed.node0.map_region(payload_bytes, PROT_RW)
        # distinct keys per lane so heap writes don't collide
        pj = PreparedJam(conn, pkg, "jam_indirect_put", payload,
                         payload_bytes, args=(1000 + core,))
        lanes.append((pj, waiter))

    marks = {}

    def sender():
        marks["t0"] = engine.now
        for _ in range(messages_per_core):
            for pj, _w in lanes:
                yield from pj.send()
        yield done
        for _pj, w in lanes:
            w.stop()

    engine.run_process(sender())
    return total / ((state["t_end"] - marks["t0"]) * 1e-9), world


def _points_multicore(fast: bool) -> list[dict]:
    return [{"ncores": n, "messages_per_core": 150, "payload_bytes": 4096}
            for n in (1, 2, 4)]


def _point_multicore(ncores: int, messages_per_core: int,
                     payload_bytes: int) -> dict:
    rate, world = _multicore_rate(ncores, messages_per_core, payload_bytes)
    return {"x": ncores, "rate_mps": rate, "per_core_mps": rate / ncores,
            "_counters": board_counters(world)}


def _metrics_multicore(r: FigureResult) -> dict:
    r1 = _series_at(r, "rate_mps", 1)
    r2 = _series_at(r, "rate_mps", 2)
    r4 = _series_at(r, "rate_mps", 4)
    out: dict[str, float] = {}
    if r1 and r2:
        out["scaling_2core"] = r2 / r1
    if r1 and r4:
        out["scaling_4core"] = r4 / r1
    return out


register(FigureSpec(
    name="abl_multicore",
    title="Ablation: aggregate rate with N waiter cores",
    x_label="waiter cores",
    points=_points_multicore,
    point=_point_multicore,
    metrics=_metrics_multicore,
    directions={"rate_mps": "higher"},
    notes="execution-bound at 4KB payloads: extra cores overlap message "
          "processing until the shared wire/sender binds",
    setup_key="std",
))


# ---------------------------------------------------------------------------
# abl_prefetch: prefetcher x stashing 2x2 factorial
# ---------------------------------------------------------------------------

_PF_LABELS = {(True, True): "stash+prefetch", (True, False): "stash",
              (False, True): "prefetch", (False, False): "neither"}


def _points_prefetch(fast: bool) -> list[dict]:
    return [{"stash": s, "prefetch": p, "payload_bytes": 4096,
             "warmup": 8, "iters": 20}
            for s in (True, False) for p in (True, False)]


def _point_prefetch(stash: bool, prefetch: bool, payload_bytes: int,
                    warmup: int, iters: int) -> dict:
    cfg = HierarchyConfig(stash_enabled=stash, prefetch_enabled=prefetch)
    world = shared_world(hier_cfg=cfg)
    p50 = am_pingpong(world, "jam_indirect_put", payload_bytes,
                      warmup=warmup, iters=iters).stats.p50
    return {"x": _PF_LABELS[(stash, prefetch)], "p50_ns": p50,
            "_counters": board_counters(world)}


def _metrics_prefetch(r: FigureResult) -> dict:
    sp = _series_at(r, "p50_ns", "stash+prefetch")
    s = _series_at(r, "p50_ns", "stash")
    p = _series_at(r, "p50_ns", "prefetch")
    n = _series_at(r, "p50_ns", "neither")
    out: dict[str, float] = {}
    if sp and p:
        out["stash_gain_with_pf_ns"] = p - sp
    if s and n:
        out["stash_gain_without_pf_ns"] = n - s
    if sp and s:
        out["pf_effect_when_stashed_ns"] = abs(sp - s)
    return out


register(FigureSpec(
    name="abl_prefetch",
    title="Ablation: prefetcher x stashing (2x2), Indirect Put latency",
    x_label="configuration",
    points=_points_prefetch,
    point=_point_prefetch,
    metrics=_metrics_prefetch,
    directions={"p50_ns": "lower"},
    notes="with the prefetcher disabled, non-stashed large messages lose "
          "their latency mask and the stash advantage widens",
    # Half its factorial builds the same worlds as figs 9-12, so share
    # their group (reuse happens per world key, not per group).
    setup_key="stash-pair",
))


# ---------------------------------------------------------------------------
# abl_security: latency cost of the SS V reconfigurations
# ---------------------------------------------------------------------------

def _points_security(fast: bool) -> list[dict]:
    return [{"mode": m, "warmup": 8, "iters": 30}
            for m in ("baseline", "receiver_gotp", "split_wx")]


def _point_security(mode: str, warmup: int, iters: int) -> dict:
    cfg = RuntimeConfig()
    if mode == "receiver_gotp":
        cfg = RuntimeConfig(sender_sets_gotp=False)
    elif mode == "split_wx":
        cfg = RuntimeConfig(split_code_pages=True)
    world = shared_world(server_cfg=cfg)
    world.client.cfg.sender_sets_gotp = cfg.sender_sets_gotp
    p50 = am_pingpong(world, "jam_ss_sum", 64, warmup=warmup,
                      iters=iters).stats.p50
    return {"x": mode, "p50_ns": p50, "_counters": board_counters(world)}


def _metrics_security(r: FigureResult) -> dict:
    base = _series_at(r, "p50_ns", "baseline")
    gotp = _series_at(r, "p50_ns", "receiver_gotp")
    wx = _series_at(r, "p50_ns", "split_wx")
    out: dict[str, float] = {}
    if base and gotp:
        out["receiver_gotp_cost_pct"] = 100.0 * (gotp - base) / base
    if base and wx:
        out["split_wx_cost_pct"] = 100.0 * (wx - base) / base
    return out


register(FigureSpec(
    name="abl_security",
    title="Ablation: latency cost of the SS V security reconfigurations",
    x_label="security mode",
    points=_points_security,
    point=_point_security,
    metrics=_metrics_security,
    directions={"p50_ns": "lower"},
    notes="receiver-inserted GOTP is near-free (~one store); W^X staging "
          "pays an mprotect + copy per message",
))


# ---------------------------------------------------------------------------
# abl_tracejit: hot guest loop latency (the trace-JIT workload)
# ---------------------------------------------------------------------------

def _points_tracejit(fast: bool) -> list[dict]:
    sizes = (256, 1024, 4096) if fast else (256, 1024, 4096, 16384)
    return [{"payload_bytes": nb, "warmup": 6, "iters": 16}
            for nb in sizes]


def _point_tracejit(payload_bytes: int, warmup: int, iters: int) -> dict:
    world = shared_world()
    out = am_pingpong(world, "jam_ss_sum_naive", payload_bytes,
                      warmup=warmup, iters=iters)
    return {"x": payload_bytes, "p50_ns": out.stats.p50,
            "server_cycles_per_msg": out.server_cycles_per_iter,
            "_counters": board_counters(world)}


def _metrics_tracejit(r: FigureResult) -> dict:
    out: dict[str, float] = {}
    if len(r.x) >= 2:
        words = (r.x[-1] - r.x[0]) / 4
        p50 = r.series["p50_ns"]
        out["loop_ns_per_word"] = (p50[-1] - p50[0]) / words
    return out


register(FigureSpec(
    name="abl_tracejit",
    title="Ablation: loop-based Server-Side Sum latency vs payload size",
    x_label="payload bytes",
    points=_points_tracejit,
    point=_point_tracejit,
    metrics=_metrics_tracejit,
    directions={"p50_ns": "lower"},
    notes="jam_ss_sum_naive sums with a guest-code loop instead of the "
          "tc_sum32 intrinsic, so per-message latency scales with the "
          "payload word count and the summation loop goes hot — the "
          "workload the VM's cross-branch trace JIT compiles; simulated "
          "rows are byte-identical under --no-trace",
    setup_key="std",
))


# ---------------------------------------------------------------------------
# abl_got: the GOT rewrite pass, structurally
# ---------------------------------------------------------------------------

_STD_JAM_SOURCES = {s.name: s for s in
                    (JAM_SS_SUM, JAM_SS_SUM_NAIVE, JAM_INDIRECT_PUT,
                     JAM_TAG)}


def _points_got(fast: bool) -> list[dict]:
    return [{"jam": name} for name in _STD_JAM_SOURCES]


def _point_got(jam: str) -> dict:
    om = compile_amc(_STD_JAM_SOURCES[jam].source).module
    ldg_before, ldgi_before = count_got_accesses(om.text)
    patched = rewrite_got_accesses(om.text)
    ldg_after, ldgi_after = count_got_accesses(patched)
    if ldg_after != 0:
        raise ReproError(f"{jam}: {ldg_after} LDG left after rewrite")
    return {"x": jam,
            "code_bytes": len(om.text),
            "got_slots": len(om.externs),
            "ldg_before": ldg_before,
            "ldgi_after": ldgi_after,
            "size_delta": len(patched) - len(om.text)}


def _metrics_got(r: FigureResult) -> dict:
    return {"total_ldg_rewritten": sum(r.series["ldg_before"]),
            "max_size_delta": max(r.series["size_delta"])}


register(FigureSpec(
    name="abl_got",
    title="Ablation: GOT rewrite pass (LDG -> LDGI), per standard jam",
    x_label="jam",
    points=_points_got,
    point=_point_got,
    metrics=_metrics_got,
    directions={},
    notes="the rewrite is a same-size in-place patch: size_delta must be "
          "0 and no LDG may survive; functional necessity is asserted in "
          "benchmarks/bench_ablation_got_rewrite.py",
))
