"""Benchmark shapes (§VI-A): ping-pong and injection rate, AM and UCX-put.

Every measurement in this repo bottoms out here: a *shape* runs one
benchmark pattern (active-message ping-pong, active-message injection
rate, or their plain UCX-put controls) on the simulated testbed and
returns a structured outcome (:class:`PingPongOutcome` /
:class:`RateOutcome`) with per-iteration latencies, rates, wire sizes,
and server cycle counts.  Each driver takes a freshly built
:class:`~repro.core.stdworld.World` — per-point worlds keep cache state
independent across sweep points, like separate perftest invocations.
The registered sweep points in :mod:`repro.bench.figures` and
:mod:`repro.bench.ablations` (and ``twochains perf``) are the consumers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.runtime import PreparedJam, connect_runtimes
from ..core.stdworld import World
from ..errors import ReproError
from ..machine.noise import StressConfig, StressWorkload
from ..machine.pages import PROT_RW
from ..sim.engine import Delay
from .calibration import MEASURE_ITERS, WARMUP_ITERS
from .stats import LatencyStats, summarize


@dataclass
class PingPongOutcome:
    one_way_ns: list[float]
    stats: LatencyStats
    wire_size: int
    # cycle counters over the measured iterations
    cycles_total: int = 0        # client + server core 0
    cycles_wait: int = 0
    server_cycles: int = 0       # server core 0 only (the Fig 13/14 view)
    server_wait_cycles: int = 0
    iters: int = 0

    @property
    def cycles_per_iter(self) -> float:
        return self.cycles_total / max(self.iters, 1)

    @property
    def server_cycles_per_iter(self) -> float:
        return self.server_cycles / max(self.iters, 1)


@dataclass
class RateOutcome:
    messages: int
    elapsed_ns: float
    wire_size: int
    payload_bytes: int

    @property
    def rate_mps(self) -> float:
        """Messages per second."""
        return self.messages / (self.elapsed_ns * 1e-9)

    @property
    def wire_gbps(self) -> float:
        """Wire bytes per ns == GB/s."""
        return self.messages * self.wire_size / self.elapsed_ns

    @property
    def payload_gbps(self) -> float:
        return self.messages * self.payload_bytes / self.elapsed_ns


def _fill_payload(node, addr: int, nbytes: int, core: int = 0) -> None:
    node.mem.write(addr, bytes((7 * i + 1) & 0xFF for i in range(nbytes)))
    # Writing the payload is CPU work that leaves the buffer cache-warm,
    # like a perf tool's init loop.
    node.hier.stream_cost(0.0, core, addr, nbytes, "write")


def _start_stress(world: World, stress_cfg: StressConfig | None
                  ) -> list[StressWorkload]:
    cfg = stress_cfg or StressConfig()
    loads = [
        StressWorkload(world.engine, world.bed.node0, world.bed.rngs, cfg),
        StressWorkload(world.engine, world.bed.node1, world.bed.rngs, cfg),
    ]
    for s in loads:
        s.start()
    return loads


def _cycles(world: World) -> tuple[int, int, int, int]:
    """(both-node total, both-node wait, server total, server wait)
    cycle counters over core 0."""
    s_total = world.bed.node1.cpu_cycles(0)
    s_wait = world.bed.node1.board.count("core0.wait_cycles")
    total = world.bed.node0.cpu_cycles(0) + s_total
    wait = world.bed.node0.board.count("core0.wait_cycles") + s_wait
    return total, wait, s_total, s_wait


# ---------------------------------------------------------------------------
# Active-message ping-pong (Figs 5, 7, 9, 11, 12, 13, 14)
# ---------------------------------------------------------------------------

def am_pingpong(world: World, jam: str, payload_bytes: int, *,
                inject: bool = True, no_exec: bool = False,
                warmup: int = WARMUP_ITERS, iters: int = MEASURE_ITERS,
                stress: bool = False,
                stress_cfg: StressConfig | None = None) -> PingPongOutcome:
    """Half-round-trip active message latency (§VI-A1).

    Each host has one single-slot mailbox; the ping executes on the
    server, whose hook immediately sends the pong, which executes on the
    client.  One-way latency = RTT/2.
    """
    engine = world.engine
    fsize = world.frame_size_for(jam, payload_bytes, inject)
    server_mb = world.server.create_mailbox(1, 1, fsize)
    client_mb = world.client.create_mailbox(1, 1, fsize)
    c2s = connect_runtimes(world.client, world.server, server_mb)
    s2c = connect_runtimes(world.server, world.client, client_mb)
    pkg_c = world.client.packages[world.build.package_id]
    pkg_s = world.server.packages[world.build.package_id]

    ping_payload = world.bed.node0.map_region(max(payload_bytes, 64), PROT_RW)
    pong_payload = world.bed.node1.map_region(max(payload_bytes, 64), PROT_RW)
    _fill_payload(world.bed.node0, ping_payload, payload_bytes)
    _fill_payload(world.bed.node1, pong_payload, payload_bytes)

    ping = PreparedJam(c2s, pkg_c, jam, ping_payload, payload_bytes,
                       args=(11,), inject=inject, no_exec=no_exec)
    pong = PreparedJam(s2c, pkg_s, jam, pong_payload, payload_bytes,
                       args=(22,), inject=inject, no_exec=no_exec)

    pong_ev = engine.event("pong")

    def server_hook(view, slot_addr):
        yield from pong.send()

    def client_hook(view, slot_addr):
        pong_ev.fire()
        return None

    server_waiter = world.server.make_waiter(server_mb, on_frame=server_hook)
    client_waiter = world.client.make_waiter(client_mb, on_frame=client_hook)
    server_waiter.start()
    client_waiter.start()

    stress_loads = _start_stress(world, stress_cfg) if stress else []
    lat: list[float] = []
    marks = {}

    def main():
        for i in range(warmup + iters):
            if i == warmup:
                marks["cycles0"] = _cycles(world)
            t0 = engine.now
            yield from ping.send()
            yield pong_ev
            if i >= warmup:
                lat.append((engine.now - t0) / 2.0)
        marks["cycles1"] = _cycles(world)
        server_waiter.stop()
        client_waiter.stop()
        for s in stress_loads:
            s.stop()

    engine.run_process(main(), name="pingpong")
    (t0, w0, s0, sw0), (t1, w1, s1, sw1) = marks["cycles0"], marks["cycles1"]
    return PingPongOutcome(
        one_way_ns=lat,
        stats=summarize(lat),
        wire_size=fsize,
        cycles_total=t1 - t0,
        cycles_wait=w1 - w0,
        server_cycles=s1 - s0,
        server_wait_cycles=sw1 - sw0,
        iters=iters,
    )


# ---------------------------------------------------------------------------
# Active-message injection rate (Figs 6 [bw], 8, 10)
# ---------------------------------------------------------------------------

def am_injection_rate(world: World, jam: str, payload_bytes: int, *,
                      inject: bool = True, no_exec: bool = False,
                      messages: int = 1000, banks: int = 4, slots: int = 8
                      ) -> RateOutcome:
    """Streaming active messages through banked mailboxes (§VI-A2)."""
    engine = world.engine
    fsize = world.frame_size_for(jam, payload_bytes, inject)
    mb = world.server.create_mailbox(banks, slots, fsize)
    conn = connect_runtimes(world.client, world.server, mb,
                            flow_control=True)
    pkg = world.client.packages[world.build.package_id]
    payload = world.bed.node0.map_region(max(payload_bytes, 64), PROT_RW)
    _fill_payload(world.bed.node0, payload, payload_bytes)
    prepared = PreparedJam(conn, pkg, jam, payload, payload_bytes,
                           inject=inject, no_exec=no_exec)

    done = engine.event("rate.done")
    state = {"seen": 0, "t_end": 0.0}

    def on_frame(view, slot_addr):
        state["seen"] += 1
        if state["seen"] >= messages:
            state["t_end"] = engine.now
            done.fire()
        return None

    waiter = world.server.make_waiter(mb, on_frame=on_frame,
                                      flag_target=conn.flag_target())
    waiter.start()
    marks = {}

    def sender():
        marks["t0"] = engine.now
        for _ in range(messages):
            yield from prepared.send()
        yield done
        waiter.stop()

    engine.run_process(sender(), name="injector")
    elapsed = state["t_end"] - marks["t0"]
    if elapsed <= 0:
        raise ReproError("injection-rate run measured no elapsed time")
    return RateOutcome(messages=messages, elapsed_ns=elapsed,
                       wire_size=fsize, payload_bytes=payload_bytes)


# ---------------------------------------------------------------------------
# UCX put baselines (Figs 5-6)
# ---------------------------------------------------------------------------

def _poll_sig(world: World, node, core: int, addr: int, expected: int):
    """Spin (functionally: sleep on the monitor) until *addr == expected,
    then charge the demand read."""
    ev = node.monitor_event(addr)
    start = world.engine.now
    while node.mem.read_u8(addr) != expected:
        yield ev
    node.add_wait_cycles(core, int((world.engine.now - start) * 2.6))
    lat = node.hier.access(world.engine.now, core, addr, 1, "read")
    node.add_busy_ns(core, lat)
    yield Delay(lat)


def ucx_put_pingpong(world: World, payload_bytes: int, *,
                     warmup: int = WARMUP_ITERS, iters: int = MEASURE_ITERS
                     ) -> PingPongOutcome:
    """The baseline: plain ucp put latency through the standard UCX path
    (request tracking + CQ progress), remote arrival detected by polling
    the buffer's last byte like ucx_perftest's put_lat."""
    engine = world.engine
    node0, node1 = world.bed.node0, world.bed.node1
    size = max(payload_bytes, 8)
    c_src = node0.map_region(size, PROT_RW)
    c_dst = node0.map_region(size, PROT_RW)
    s_src = node1.map_region(size, PROT_RW)
    s_dst = node1.map_region(size, PROT_RW)
    mr_s = world.server.hca.register_memory(s_dst, size)
    mr_c = world.client.hca.register_memory(c_dst, size)
    _fill_payload(node0, c_src, size)
    _fill_payload(node1, s_src, size)
    ep_c = world.client.ep
    ep_s = world.server.ep
    lat: list[float] = []
    total = warmup + iters

    def server():
        for i in range(total):
            seq = (i % 255) + 1
            yield from _poll_sig(world, node1, 0, s_dst + size - 1, seq)
            node1.mem.write_u8(s_src + size - 1, seq)
            req = ep_s.put_nbi(engine.now, s_src, c_dst, size, mr_c.rkey)
            yield Delay(req.cpu_ns)
            # completion retire overlaps the wait for the next ping
            ep_s.reap_completed()

    def client():
        for i in range(total):
            seq = (i % 255) + 1
            t0 = engine.now
            node0.mem.write_u8(c_src + size - 1, seq)
            req = ep_c.put_nbi(engine.now, c_src, s_dst, size, mr_s.rkey)
            yield Delay(req.cpu_ns)
            yield from _poll_sig(world, node0, 0, c_dst + size - 1, seq)
            # completion was retired by progress during the spin
            ep_c.reap_completed()
            if i >= warmup:
                lat.append((engine.now - t0) / 2.0)

    engine.spawn(server(), name="ucx.server")
    engine.run_process(client(), name="ucx.client")
    return PingPongOutcome(one_way_ns=lat, stats=summarize(lat),
                           wire_size=size, iters=iters)


def ucx_put_stream(world: World, payload_bytes: int, *,
                   messages: int = 1000) -> RateOutcome:
    """The baseline bandwidth test: windowed ucp puts with per-op request
    tracking, completion polling, and the library's flow control — the
    overhead Fig 6 shows the reactive mailbox avoiding."""
    engine = world.engine
    node0, node1 = world.bed.node0, world.bed.node1
    size = max(payload_bytes, 8)
    ring = 16
    src = node0.map_region(size, PROT_RW)
    dst = node1.map_region(size * ring, PROT_RW)
    mr = world.server.hca.register_memory(dst, size * ring)
    _fill_payload(node0, src, size)
    ep = world.client.ep
    marks = {}

    def sender():
        marks["t0"] = engine.now
        last = None
        for i in range(messages):
            yield from ep.window_admit(size)
            last = ep.put_nbi(engine.now, src, dst + (i % ring) * size,
                              size, mr.rkey)
            yield Delay(last.cpu_ns)
        yield from ep.flush()
        marks["t1"] = last.completion.delivered_at

    engine.run_process(sender(), name="ucx.stream")
    elapsed = marks["t1"] - marks["t0"]
    return RateOutcome(messages=messages, elapsed_ns=elapsed,
                       wire_size=size, payload_bytes=payload_bytes)
