"""Single-message timeline: where do the nanoseconds of one AM go?

Runs one injected send end to end with the structured tracer attached
(:mod:`repro.obs`) and folds the captured spans into the classic
four-phase breakdown (pack/post software, wire+DMA flight, waiter
wake-up, parse+dispatch+execute).  This is the tool you reach for when a
figure moves and you want to know which phase did it; also exposed as
``twochains trace``.

The phase boundaries come straight from the instrumentation the models
emit (``am.send``, ``rdma.put``, ``mb.wait``, ``mb.dispatch``) rather
than hand-wired hooks, so the numbers here agree with ``trace export``
and the ``phase_breakdown`` block in benchmark results by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import RuntimeConfig, WaitMode
from ..core.runtime import PreparedJam, connect_runtimes
from ..core.stdworld import make_world
from ..machine.hierarchy import HierarchyConfig
from ..machine.pages import PROT_RW
from ..obs.attribution import last_span
from ..obs.tracer import TRACER, node_pid


@dataclass
class Phase:
    name: str
    start_ns: float
    end_ns: float
    #: tracer pid of the node the phase boundary was read from (sender
    #: for pack/flight, receiver for wake/dispatch); purely descriptive.
    pid: int | None = None

    @property
    def dur(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class MessageTimeline:
    wire_size: int
    phases: list[Phase] = field(default_factory=list)

    @property
    def total_ns(self) -> float:
        if not self.phases:
            return 0.0
        return (max(p.end_ns for p in self.phases)
                - min(p.start_ns for p in self.phases))

    def to_dict(self) -> dict:
        """JSON-friendly form (``twochains trace --json``)."""
        return {
            "wire_size": self.wire_size,
            "total_ns": round(self.total_ns, 3),
            "phases": [
                {"name": p.name, "start_ns": round(p.start_ns, 3),
                 "end_ns": round(p.end_ns, 3), "dur_ns": round(p.dur, 3)}
                for p in sorted(self.phases, key=lambda p: p.start_ns)
            ],
        }

    def render(self) -> str:
        total = self.total_ns
        width = 34
        lines = [f"one-way timeline, {self.wire_size} B frame "
                 f"({total:.0f} ns total)"]
        for ph in sorted(self.phases, key=lambda p: p.start_ns):
            frac = ph.dur / total if total > 0 else 0.0
            bar = "#" * max(1, round(frac * width)) if ph.dur > 0 else ""
            lines.append(f"  {ph.name:<22s} {ph.dur:8.1f} ns "
                         f"{100 * frac:5.1f}%  {bar}")
        return "\n".join(lines)


def trace_message(jam: str = "jam_indirect_put", payload_bytes: int = 64,
                  inject: bool = True, stash: bool = True,
                  wfe: bool = False, warmup: int = 12) -> MessageTimeline:
    """Run ``warmup`` messages to reach steady state, then trace one."""
    mode = WaitMode.WFE if wfe else WaitMode.POLL
    world = make_world(
        hier_cfg=HierarchyConfig(stash_enabled=stash),
        client_cfg=RuntimeConfig(wait_mode=mode),
        server_cfg=RuntimeConfig(wait_mode=mode))
    engine = world.engine
    fsize = world.frame_size_for(jam, payload_bytes, inject)
    mb = world.server.create_mailbox(1, 1, fsize)
    conn = connect_runtimes(world.client, world.server, mb)
    pkg = world.client.packages[world.build.package_id]
    payload = world.bed.node0.map_region(max(payload_bytes, 64), PROT_RW)
    prepared = PreparedJam(conn, pkg, jam, payload, payload_bytes,
                           inject=inject)
    done = engine.event("traced")

    def hook(view, slot_addr):
        done.fire()
        return None

    waiter = world.server.make_waiter(mb, on_frame=hook)
    waiter.start()

    was_enabled = TRACER.enabled
    if not was_enabled:
        TRACER.attach(clear=True)
    mark = [0]

    def driver():
        for _ in range(warmup):
            yield from prepared.send()
            yield done
        # the traced message: everything past `mark` belongs to it
        mark[0] = len(TRACER.events)
        yield from prepared.send()
        yield done

    try:
        engine.run_process(driver(), name="trace")
        waiter.stop()
        events = TRACER.events[mark[0]:]
    finally:
        if not was_enabled:
            TRACER.detach()

    tl = MessageTimeline(wire_size=fsize)
    tl.phases = phases_from_events(events, sender=0, receiver=1)
    return tl


def phases_from_events(events: list[tuple], sender: int,
                       receiver: int) -> list[Phase]:
    """Fold one message's spans into the four-phase breakdown.

    Span names repeat across nodes — a ping-pong emits ``am.send`` on
    both ends, and every node runs ``mb.wait``/``mb.dispatch`` — so each
    boundary is keyed by *(node, name)*: the send-side spans must come
    from ``sender``'s track, the delivery-side spans from ``receiver``'s.
    ``sender``/``receiver`` are node ids; failure to find a span is a
    model bug, not a usage error.
    """
    spid, rpid = node_pid(sender), node_pid(receiver)
    send = last_span(events, "am.send", pid=spid)
    put = last_span(events, "rdma.put", pid=spid)
    wait = last_span(events, "mb.wait", pid=rpid)
    disp = last_span(events, "mb.dispatch", pid=rpid)
    if None in (send, put, wait, disp):
        missing = [n for n, e in zip(("am.send", "rdma.put", "mb.wait",
                                      "mb.dispatch"),
                                     (send, put, wait, disp)) if e is None]
        raise RuntimeError(f"traced send produced no {missing} span(s)")
    send_start = send[4]
    posted = send[4] + send[5]
    delivered = put[4] + put[5]
    woke = wait[4] + wait[5]
    dispatch_done = disp[4] + disp[5]
    return [
        Phase("pack + post sw", send_start, posted, pid=spid),
        Phase("wire + DMA flight", posted, delivered, pid=spid),
        Phase("wake + signal read", delivered, woke, pid=rpid),
        Phase("parse + dispatch + exec", woke, dispatch_done, pid=rpid),
    ]
