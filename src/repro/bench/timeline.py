"""Single-message timeline: where do the nanoseconds of one AM go?

Instruments one injected send end to end and reports the phase breakdown
(pack/update, software post, wire+DMA flight, waiter wake-up, header
parse + dispatch, GOT/code/payload execution).  This is the tool you
reach for when a figure moves and you want to know which phase did it;
also exposed as ``twochains trace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import RuntimeConfig, WaitMode
from ..core.runtime import PreparedJam, connect_runtimes
from ..core.stdworld import make_world
from ..machine.hierarchy import HierarchyConfig
from ..machine.pages import PROT_RW


@dataclass
class Phase:
    name: str
    start_ns: float
    end_ns: float

    @property
    def dur(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class MessageTimeline:
    wire_size: int
    phases: list[Phase] = field(default_factory=list)

    @property
    def total_ns(self) -> float:
        return self.phases[-1].end_ns - self.phases[0].start_ns

    def render(self) -> str:
        total = self.total_ns
        width = 34
        lines = [f"one-way timeline, {self.wire_size} B frame "
                 f"({total:.0f} ns total)"]
        for ph in self.phases:
            frac = ph.dur / total if total else 0.0
            bar = "#" * max(1, round(frac * width)) if ph.dur > 0 else ""
            lines.append(f"  {ph.name:<22s} {ph.dur:8.1f} ns "
                         f"{100 * frac:5.1f}%  {bar}")
        return "\n".join(lines)


def trace_message(jam: str = "jam_indirect_put", payload_bytes: int = 64,
                  inject: bool = True, stash: bool = True,
                  wfe: bool = False, warmup: int = 12) -> MessageTimeline:
    """Run ``warmup`` messages to reach steady state, then trace one."""
    mode = WaitMode.WFE if wfe else WaitMode.POLL
    world = make_world(
        hier_cfg=HierarchyConfig(stash_enabled=stash),
        client_cfg=RuntimeConfig(wait_mode=mode),
        server_cfg=RuntimeConfig(wait_mode=mode))
    engine = world.engine
    fsize = world.frame_size_for(jam, payload_bytes, inject)
    mb = world.server.create_mailbox(1, 1, fsize)
    conn = connect_runtimes(world.client, world.server, mb)
    pkg = world.client.packages[world.build.package_id]
    payload = world.bed.node0.map_region(max(payload_bytes, 64), PROT_RW)
    prepared = PreparedJam(conn, pkg, jam, payload, payload_bytes,
                           inject=inject)
    marks: dict[str, float] = {}
    done = engine.event("traced")

    def hook(view, slot_addr):
        marks.setdefault("dispatch_done", engine.now)
        done.fire()
        return None

    waiter = world.server.make_waiter(mb, on_frame=hook)
    # instrument the waiter's wake by wrapping _wait_sig
    orig_wait = waiter._wait_sig

    def traced_wait(sig_addr, expected):
        ok = yield from orig_wait(sig_addr, expected)
        marks.setdefault("woke", engine.now)
        return ok

    waiter._wait_sig = traced_wait
    waiter.start()

    def driver():
        for _ in range(warmup):
            yield from prepared.send()
            yield done
            marks.clear()
        # the traced message
        marks["send_start"] = engine.now
        req = yield from prepared.send()
        marks["posted"] = engine.now
        marks["delivered_hint"] = req.completion  # resolved after run
        yield done

    engine.run_process(driver(), name="trace")
    waiter.stop()
    delivered = marks["delivered_hint"].delivered_at
    # The waiter records 'woke' for every message; after marks.clear() in
    # the warmup loop, the surviving entries belong to the traced one.
    tl = MessageTimeline(wire_size=fsize)
    tl.phases = [
        Phase("pack + post sw", marks["send_start"], marks["posted"]),
        Phase("wire + DMA flight", marks["posted"], delivered),
        Phase("wake + signal read", delivered, marks["woke"]),
        Phase("parse + dispatch + exec", marks["woke"],
              marks["dispatch_done"]),
    ]
    return tl
