"""Parallel benchmark orchestrator: run figure sweeps, cache, serialize.

One entry point (``twochains bench run``) discovers every registered
sweep (:func:`repro.bench.figures.full_registry`), fans the independent
sweep points out across a ``multiprocessing`` pool (each DES run is
single-threaded and embarrassingly parallel), and caches completed
points in a :class:`~.resultstore.ResultStore` so re-runs only pay for
what actually changed.  Every run writes one versioned
``BENCH_<figure>.json`` per figure (schema: docs/BENCHMARKS.md) and
``bench diff`` compares two result sets, flagging direction-aware
regressions beyond a noise threshold.

Scheduling is setup-aware (docs/ARCHITECTURE.md, "Performance
engineering"): uncached points are grouped by their spec's
``setup_key`` and each pool worker owns whole groups, so inside a group
every point after the first forks the warm worlds the first point built
(:mod:`repro.core.stdworld`'s setup cache) instead of repaying the
build+link prefix.  Groups are ordered longest-expected-first (LPT,
from the :class:`~.resultstore.TimingStore` history) so the slowest
group cannot start last and stretch the tail of a parallel run.

Results are deterministic: points are assembled in sweep order no matter
which worker finished first, forked worlds measure byte-identically to
fresh ones (enforced by the fork determinism tests), and everything
host- or time-dependent lives under the payload's ``meta`` key.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import platform
import sys
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

from ..core.stdworld import SETUP_CACHE
from ..obs.attribution import phase_breakdown, phase_durations
from ..obs.metrics import METRICS, merge_snapshots, metrics_block
from ..obs.slo import DEFAULT_HEALTH_THRESHOLD_PCT, health_diff_payloads
from ..obs.tracer import TRACER
from ..perf import COUNTERS, throughput
from ..sim import shard as _shard
from ..sim.rng import DEFAULT_SEED
from .figures import FigureResult, FigureSpec, assemble, full_registry
from .report import bench_payload, render_figure
from .resultstore import (
    ResultStore,
    TimingStore,
    canonical_json,
    code_version,
    git_sha,
)
from .stats import pct_diff


@dataclass
class PointRecord:
    """One sweep point: its params, measured row, and cache provenance."""

    params: dict
    row: dict
    cached: bool
    key: str | None
    elapsed_s: float = 0.0
    # SimCounters delta for the point's execution (None for cache hits,
    # which did no simulation work this run).
    sim: dict | None = None
    # span-name -> [dur_ns, ...] captured while the point ran (None
    # unless the run was traced; see run_figures(trace=True))
    phases: dict | None = None
    # world setup-cache activity while this point ran: forks of a warm
    # pooled world vs fresh builds (both 0 for result-cache hits and
    # fork-disabled runs)
    setup_hits: int = 0
    setup_misses: int = 0
    # stable-metrics snapshot captured while the point ran (or recalled
    # from the result cache — it is as deterministic as the row itself);
    # None when the run had metrics disabled
    metrics: dict | None = None


@dataclass
class FigureRun:
    """One figure's completed sweep plus orchestration bookkeeping."""

    spec: FigureSpec
    result: FigureResult
    points: list[PointRecord]
    # Sum of per-point execution times — the work actually done for this
    # figure this run.  Cached points contribute 0.
    wall_s: float
    # End-to-end wall clock of the whole ``run_figures`` invocation that
    # produced this run (shared by every figure of the invocation).
    # Distinct from ``wall_s``: a fully cached sweep has wall_s == 0 but
    # the invocation still took real time.
    sweep_wall_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    setup_hits: int = 0
    setup_misses: int = 0

    @property
    def sim_counters(self) -> dict:
        """Summed SimCounters deltas over the points actually executed."""
        total: dict = {}
        for rec in self.points:
            if rec.sim:
                for k, v in rec.sim.items():
                    total[k] = total.get(k, 0) + v
        return total

    @property
    def phase_durs(self) -> dict:
        """Per-phase span durations merged over the points, sweep order."""
        merged: dict = {}
        for rec in self.points:
            if rec.phases:
                for name, durs in rec.phases.items():
                    merged.setdefault(name, []).extend(durs)
        return merged

    @property
    def metrics_snapshot(self) -> dict | None:
        """Figure-level metrics snapshot: the per-point stable snapshots
        merged in sweep order (so parallel runs reproduce serial ones
        byte for byte), or None unless every point carried one."""
        if not self.points or any(rec.metrics is None
                                  for rec in self.points):
            return None
        return merge_snapshots([rec.metrics for rec in self.points])


def resolve_names(names: list[str] | None) -> list[str]:
    """Validate figure names against the registry (None = everything)."""
    registry = full_registry()
    if not names:
        return list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise ValueError(
            f"unknown figure(s) {', '.join(unknown)}; choices: "
            f"{', '.join(registry)}")
    return list(names)


def _exec_point(task: tuple[str, dict, bool, bool]
                ) -> tuple[dict, float, dict, dict | None, dict | None,
                           int, int]:
    """Run one sweep point in the current process.

    Returns (row, elapsed seconds, SimCounters delta, phase durations,
    metrics snapshot, setup-cache hits, setup-cache misses).  Counters
    are process-wide, so the delta — not the absolute value — is what
    ships back from pool workers; the parent sums deltas per figure.
    With ``trace`` set the point runs under the structured tracer and
    the span durations travel back as a plain name -> [dur_ns] dict
    (the Tracer itself never crosses the process boundary); likewise
    ``metrics`` captures the registry and ships back its plain-dict
    stable snapshot.
    """
    name, params, trace, metrics = task
    spec = full_registry()[name]
    before = COUNTERS.snapshot()
    hits0, misses0 = SETUP_CACHE.counts()
    SETUP_CACHE.begin_point()
    phases = None
    msnap = None
    t0 = time.perf_counter()
    if metrics:
        METRICS.attach()
    # Legacy shapes whose drivers read/stop foreign-node state mid-run
    # (cycle counters, cross-node stress teardown) cannot split across
    # DES shards; they force a single heap regardless of --shards.
    shard_ctx = (contextlib.nullcontext() if spec.shardable
                 else _shard.forced_single())
    with shard_ctx:
        if trace:
            with TRACER.capture():
                row = spec.point(**params)
                phases = phase_durations(TRACER.events)
        else:
            row = spec.point(**params)
    if metrics:
        METRICS.detach()
        msnap = METRICS.snapshot(stable_only=True)
        METRICS.clear()
    elapsed = time.perf_counter() - t0
    hits1, misses1 = SETUP_CACHE.counts()
    return (row, elapsed, COUNTERS.delta(before), phases, msnap,
            hits1 - hits0, misses1 - misses0)


def _exec_group(task: tuple[list[tuple[str, dict, bool, bool]],
                            bool, bool, bool, int | str, str, int]
                ) -> list[tuple[dict, float, dict, dict | None, dict | None,
                                int, int]]:
    """Pool worker: run one setup-key group of sweep points, in order.

    The whole group runs in this process with the world setup cache
    enabled (unless ``fork`` is off), so every point after the first
    forks the warm worlds its predecessors built instead of repaying
    the build+link prefix.  The cache is torn down afterwards — pool
    workers may process several groups and must not leak worlds between
    them.  ``fuse`` and ``trace_jit`` carry the VM compilation-tier
    switches into pool workers (process-global state does not travel
    with the task otherwise); ``active_jobs`` carries the pool width so
    ``--shards auto`` (and explicit process-backend shard counts) can
    cap worker-process × pool-job oversubscription.
    """
    group, fork, fuse, trace_jit, shards, shard_backend, active_jobs = task
    from ..isa import vm as _vm
    prev_fuse = _vm.fusion_enabled()
    prev_trace = _vm.trace_jit_enabled()
    prev_shards = _shard.get_policy()
    prev_jobs = _shard.get_active_jobs()
    _vm.set_fusion(fuse)
    _vm.set_trace_jit(trace_jit)
    _shard.set_policy(shards, shard_backend)
    _shard.set_active_jobs(active_jobs)
    if fork:
        SETUP_CACHE.enabled = True
        SETUP_CACHE.clear()
    try:
        return [_exec_point(t) for t in group]
    finally:
        SETUP_CACHE.enabled = False
        SETUP_CACHE.clear()
        _vm.set_fusion(prev_fuse)
        _vm.set_trace_jit(prev_trace)
        _shard.set_policy(*prev_shards)
        _shard.set_active_jobs(prev_jobs)


def resolve_jobs(jobs: int | str) -> int:
    """Resolve a ``--jobs`` value; ``"auto"`` means one per CPU."""
    if jobs == "auto":
        return max(1, os.cpu_count() or 1)
    n = int(jobs)
    if n < 1:
        raise ValueError(f"jobs must be >= 1, got {n}")
    return n


def _group_pending(pending: list[tuple[str, int]], plan_by_name: dict,
                   registry: dict, trace: bool, metrics: bool,
                   timings: TimingStore | None
                   ) -> list[list[tuple[str, dict, bool, bool]]]:
    """Bucket uncached points into setup-key groups, longest-first.

    Group membership follows each spec's ``setup_key_for``; ordering is
    LPT by the summed elapsed history of the group's points, with
    never-measured groups first (their duration is unknown, so starting
    them early bounds how badly they can stretch a parallel schedule —
    and running them fills in the history).  Points keep sweep order
    inside their group.
    """
    groups: dict[str, list[tuple[str, dict, bool, bool]]] = {}
    expected: dict[str, float] = {}
    unknown: dict[str, bool] = {}
    for name, i in pending:
        params = plan_by_name[name][i]
        gkey = canonical_json(registry[name].setup_key_for(params))
        groups.setdefault(gkey, []).append((name, params, trace, metrics))
        hist = timings.get(name, params) if timings else None
        if hist is None:
            unknown[gkey] = True
        else:
            expected[gkey] = expected.get(gkey, 0.0) + hist
    return [groups[k] for k in sorted(
        groups,
        key=lambda k: (0 if unknown.get(k) else 1, -expected.get(k, 0.0), k))]


def run_figures(names: list[str] | None = None, *, fast: bool = True,
                smoke: bool = False, jobs: int | str = 1,
                store: ResultStore | None = None,
                trace: bool = False, fork: bool = True,
                fuse: bool = True, trace_jit: bool = True,
                metrics: bool = True,
                shards: int | str = 1, shard_backend: str = "serial",
                log=None) -> list[FigureRun]:
    """Run the requested sweeps, reusing cached points, fanning out misses.

    ``smoke`` keeps only the first point of every sweep (the CI target).
    ``jobs`` > 1 (or ``"auto"``) runs uncached work in a process pool;
    assembly order is always the sweep order, so parallel runs are
    bit-identical to serial ones.  Work is dispatched as whole setup-key
    groups so same-setup points land on one worker and — with ``fork``
    on — reuse each other's built worlds through the setup cache;
    ``fork=False`` keeps the grouping but builds every world fresh.
    ``trace`` runs every point under the structured tracer and attaches
    the per-phase span durations to its record; traced runs skip cache
    *reads* (a cached row carries no spans) but still refresh the store,
    and tracing never changes the measured rows.
    ``fuse=False`` (``--no-fuse``) disables the VM's basic-block fusion
    JIT for the whole run — measured rows are identical either way (the
    fusion-identity tests pin this); only wall-clock differs.
    ``trace_jit=False`` (``--no-trace``) likewise disables the
    cross-branch trace tier layered on fusion; the trace-identity tests
    pin row equality, so only wall-clock differs.
    ``shards``/``shard_backend`` (``--shards``, ``--shard-backend``)
    select the conservative parallel-DES policy (sim/shard.py) for
    shard-safe specs (``FigureSpec.shardable``); other specs force
    ``--shards 1``.  Rows are byte-identical across shard counts — the
    policy only moves wall-clock, like ``jobs``.
    ``metrics`` (default on; ``--no-metrics`` clears it) captures the
    sim-time metrics registry around every executed point.  The stable
    snapshot is a deterministic pure function of the point, so — unlike
    tracing — it is cached next to the row, and cache entries that
    predate the metrics field simply count as misses and refresh.
    """
    names = resolve_names(names)
    registry = full_registry()
    jobs = resolve_jobs(jobs)
    t_start = time.perf_counter()

    plans: list[tuple[str, list[dict]]] = []
    records: dict[str, list[PointRecord | None]] = {}
    pending: list[tuple[str, int]] = []
    for name in names:
        points = registry[name].points(fast)
        if smoke:
            points = points[:1]
        plans.append((name, points))
        records[name] = [None] * len(points)
        for i, params in enumerate(points):
            key = store.key_for(name, params) if store else None
            entry = (store.get_entry(key, require_metrics=metrics)
                     if (store and not trace) else None)
            if entry is not None:
                records[name][i] = PointRecord(
                    params, entry["row"], True, key,
                    metrics=entry.get("metrics") if metrics else None)
            else:
                pending.append((name, i))

    plan_by_name = dict(plans)
    timings = TimingStore(store.root) if store else None
    group_tasks = _group_pending(pending, plan_by_name, registry, trace,
                                 metrics, timings)

    if log and pending:
        log(f"bench: {sum(len(p) for _, p in plans)} points, "
            f"{len(pending)} to run in {len(group_tasks)} setup group(s), "
            f"jobs={jobs}"
            + (", traced" if trace else "")
            + ("" if fork else ", fork disabled"))

    if group_tasks:
        # The effective pool width rides with every task: shard policy
        # resolution divides the CPU budget by it, so a wide pool with
        # --shards auto does not fork cpus-per-job × jobs workers.
        pool_jobs = (min(jobs, len(group_tasks))
                     if jobs > 1 and len(group_tasks) > 1 else 1)
        payload = [(g, fork, fuse, trace_jit, shards, shard_backend,
                    pool_jobs)
                   for g in group_tasks]
        if pool_jobs > 1:
            with multiprocessing.Pool(pool_jobs) as pool:
                group_outs = pool.map(_exec_group, payload, chunksize=1)
        else:
            group_outs = [_exec_group(t) for t in payload]
        # Flatten back to per-point results keyed by (figure, params):
        # groups reorder across figures, never within one sweep.
        out_by_task: dict[str, tuple] = {}
        for group, outs in zip(group_tasks, group_outs):
            for (name, params, _trace, _metrics), result in zip(group, outs):
                out_by_task[canonical_json([name, params])] = result
        for name, i in pending:
            params = plan_by_name[name][i]
            row, elapsed, sim, phases, msnap, shits, smisses = out_by_task[
                canonical_json([name, params])]
            key = store.key_for(name, params) if store else None
            if store:
                store.put(key, name, params, row, metrics=msnap)
            if timings is not None:
                timings.record(name, params, elapsed)
            records[name][i] = PointRecord(params, row, False, key,
                                           elapsed_s=elapsed, sim=sim,
                                           phases=phases, setup_hits=shits,
                                           setup_misses=smisses,
                                           metrics=msnap)
        if timings is not None:
            timings.save()

    runs: list[FigureRun] = []
    for name, points in plans:
        recs = records[name]
        result = assemble(registry[name], [r.row for r in recs])
        runs.append(FigureRun(
            spec=registry[name],
            result=result,
            points=recs,
            wall_s=sum(r.elapsed_s for r in recs),
            cache_hits=sum(1 for r in recs if r.cached),
            cache_misses=sum(1 for r in recs if not r.cached),
            setup_hits=sum(r.setup_hits for r in recs),
            setup_misses=sum(r.setup_misses for r in recs),
        ))
    total_wall = time.perf_counter() - t_start
    for run in runs:
        run.sweep_wall_s = total_wall
    if log:
        hits = sum(r.cache_hits for r in runs)
        misses = sum(r.cache_misses for r in runs)
        forks = sum(r.setup_hits for r in runs)
        log(f"bench: done in {total_wall:.1f}s "
            f"({hits} cached, {misses} run, {forks} world fork(s))")
    return runs


def build_meta(*, fast: bool, smoke: bool, jobs: int,
               trace: bool = False, fork: bool = True,
               fuse: bool = True, trace_jit: bool = True,
               metrics: bool = True,
               shards: int | str = 1, shard_backend: str = "serial") -> dict:
    """Host/run metadata shared by every figure payload of one run.

    Everything here is allowed to differ between two otherwise identical
    runs; nothing outside ``meta`` is.
    """
    return {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "host": platform.node(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "git_sha": git_sha(),
        "code_version": code_version(),
        "seed": DEFAULT_SEED,
        "fast": fast,
        "smoke": smoke,
        "jobs": jobs,
        "trace": trace,
        "fork": fork,
        "fuse": fuse,
        "trace_jit": trace_jit,
        "metrics_enabled": metrics,
        # Rows are shard-count invariant (the determinism tests pin it);
        # shards only move wall-clock, so they live in meta like jobs.
        "shards": {
            "requested": shards,
            "backend": shard_backend,
            # Container-aware: the scheduler affinity mask when the OS
            # exposes one, not the bare host core count.
            "cpus": _shard.available_cpus(),
        },
    }


def write_runs(runs: list[FigureRun], out_dir: str | Path,
               meta: dict) -> list[Path]:
    """Write one ``BENCH_<figure>.json`` per run into ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for run in runs:
        run_meta = dict(meta)
        run_meta["wall_clock_s"] = round(run.wall_s, 6)
        run_meta["sweep_wall_s"] = round(run.sweep_wall_s, 6)
        run_meta["cache_hits"] = run.cache_hits
        run_meta["cache_misses"] = run.cache_misses
        # World setup-cache activity: forked (warm) vs freshly built
        # worlds while this figure's points executed.
        run_meta["setup_cache"] = {"hits": run.setup_hits,
                                   "misses": run.setup_misses}
        # Simulator throughput for the points actually executed (empty
        # when everything came from cache).  Lives in meta: it tracks
        # the simulator's own speed, not the simulated system's.
        run_meta["sim_throughput"] = throughput(run.sim_counters, run.wall_s)
        # Per-phase latency attribution from a traced run (span name ->
        # p50/p95/mean/total over every span the sweep emitted).  Lives
        # in meta: spans describe where simulated time went, and their
        # counts vary with sweep depth, not with correctness.
        durs = run.phase_durs
        if durs:
            run_meta["phase_breakdown"] = phase_breakdown(durs)
        # The figure's merged stable-metrics block (docs/METRICS.md).
        # Lives in meta by the schema's rule of thumb — it is extra
        # diagnosis, not the measured series — but unlike the rest of
        # meta it IS deterministic (the determinism tests pin it across
        # --jobs and fork settings).
        msnap = run.metrics_snapshot
        if msnap is not None:
            run_meta["metrics"] = metrics_block(msnap)
        payload = bench_payload(run, run_meta)
        path = out / f"BENCH_{run.result.figure}.json"
        path.write_text(json.dumps(payload, indent=1) + "\n")
        paths.append(path)
    return paths


def render_runs_text(runs: list[FigureRun]) -> str:
    """The classic text report for a set of runs, one table per figure."""
    return "\n\n".join(render_figure(run.result) for run in runs)


# ---------------------------------------------------------------------------
# bench diff
# ---------------------------------------------------------------------------

@dataclass
class SeriesDiff:
    """Comparison of one series between a baseline and a new result set."""

    figure: str
    series: str
    direction: str          # "lower" | "higher" (better)
    base_mean: float
    new_mean: float
    mean_pct: float         # pct change of the mean, signed
    worst_point_pct: float  # largest per-point change in the bad direction
    regression: bool


def load_payload(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def diff_payloads(base: dict, new: dict,
                  threshold_pct: float = 5.0) -> list[SeriesDiff]:
    """Direction-aware comparison of two BENCH payloads for one figure.

    Only series named in the baseline's ``directions`` map are judged
    (the rest are raw data with no better/worse ordering).  A series
    regresses when the mean over aligned points moves beyond
    ``threshold_pct`` in its bad direction.
    """
    out: list[SeriesDiff] = []
    directions = base.get("directions", {})
    figure = base.get("figure", "?")
    for name, direction in directions.items():
        b = base.get("series", {}).get(name)
        n = new.get("series", {}).get(name)
        if not b or not n:
            continue
        m = min(len(b), len(n))
        b, n = b[:m], n[:m]
        base_mean = sum(b) / m
        new_mean = sum(n) / m
        mean_pct = pct_diff(new_mean, base_mean)
        point_pcts = [pct_diff(nv, bv) for nv, bv in zip(n, b) if bv]
        if direction == "lower":
            worst = max(point_pcts, default=0.0)
            regression = mean_pct > threshold_pct
        else:
            worst = min(point_pcts, default=0.0)
            regression = mean_pct < -threshold_pct
        out.append(SeriesDiff(figure=figure, series=name,
                              direction=direction, base_mean=base_mean,
                              new_mean=new_mean, mean_pct=mean_pct,
                              worst_point_pct=worst,
                              regression=regression))
    return out


def wall_clock_diff_payloads(base: dict, new: dict,
                             threshold_pct: float = 20.0
                             ) -> tuple[list[SeriesDiff], list[str]]:
    """Compare simulator *throughput* (not simulated results) of two runs.

    Judges ``meta.sim_throughput.sim_ns_per_wall_s`` — simulated
    nanoseconds produced per wall-clock second, direction "higher is
    better".  A drop beyond ``threshold_pct`` flags a host-performance
    regression of the simulator itself.  Payloads whose runs were fully
    cached (or that predate the field) carry no throughput and are
    skipped with a note.
    """
    figure = base.get("figure", "?")
    notes: list[str] = []
    bv = base.get("meta", {}).get("sim_throughput", {}).get("sim_ns_per_wall_s")
    nv = new.get("meta", {}).get("sim_throughput", {}).get("sim_ns_per_wall_s")
    if not bv:
        notes.append(f"{figure}: baseline has no sim_throughput (cached or "
                     "pre-schema run); skipped")
        return [], notes
    if not nv:
        notes.append(f"{figure}: new result has no sim_throughput (cached "
                     "run?); skipped")
        return [], notes
    mean_pct = pct_diff(nv, bv)
    return [SeriesDiff(figure=figure, series="sim_ns_per_wall_s",
                       direction="higher", base_mean=bv, new_mean=nv,
                       mean_pct=mean_pct, worst_point_pct=mean_pct,
                       regression=mean_pct < -threshold_pct)], notes


def diff_paths(base: str | Path, new: str | Path,
               threshold_pct: float | None = None, *,
               wall_clock: bool = False, health: bool = False
               ) -> tuple[list[SeriesDiff], list[str]]:
    """Diff two BENCH files, or two directories of BENCH_*.json files.

    ``wall_clock=True`` compares simulator throughput metadata instead
    of simulated series (see :func:`wall_clock_diff_payloads`);
    ``health=True`` compares the derived health indicators of
    ``meta.metrics`` (see :mod:`repro.obs.slo`).  When ``threshold_pct``
    is not given it defaults per mode: 5% for series diffs, 20% for the
    (noisier) wall-clock throughput comparison, 10% for the health gate
    — matching the three underlying diff functions.
    Returns (series diffs, notes about unmatched figures).
    """
    if threshold_pct is None:
        threshold_pct = (20.0 if wall_clock
                         else DEFAULT_HEALTH_THRESHOLD_PCT if health
                         else 5.0)
    base, new = Path(base), Path(new)
    notes: list[str] = []

    def one(bp: dict, np_: dict) -> list[SeriesDiff]:
        if wall_clock:
            diffs, wc_notes = wall_clock_diff_payloads(bp, np_, threshold_pct)
            notes.extend(wc_notes)
            return diffs
        if health:
            diffs, h_notes = health_diff_payloads(bp, np_, threshold_pct)
            notes.extend(h_notes)
            return diffs
        return diff_payloads(bp, np_, threshold_pct)

    if base.is_dir() or new.is_dir():
        base_files = {p.name: p for p in sorted(base.glob("BENCH_*.json"))}
        new_files = {p.name: p for p in sorted(new.glob("BENCH_*.json"))}
        diffs: list[SeriesDiff] = []
        for name in base_files:
            if name not in new_files:
                notes.append(f"{name}: only in baseline")
                continue
            diffs.extend(one(load_payload(base_files[name]),
                             load_payload(new_files[name])))
        for name in new_files:
            if name not in base_files:
                notes.append(f"{name}: only in new result set")
        return diffs, notes
    return one(load_payload(base), load_payload(new)), notes
