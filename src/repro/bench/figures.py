"""Per-figure reproduction drivers and the sweep-point registry.

Every figure in §VII (and every ablation, see :mod:`.ablations`) is
described by a :class:`FigureSpec`: an ordered list of *sweep points*
(plain JSON-serializable parameter dicts) plus a module-level point
function that measures one point and returns one row of series values.
Because points are independent — each builds its own fresh
:class:`~repro.core.stdworld.World` — the orchestrator
(:mod:`.orchestrator`) can fan them out across a process pool and cache
them individually (:mod:`.resultstore`).

The classic ``fig*`` callables are kept as thin wrappers that run their
spec's points serially and assemble a :class:`FigureResult`: labelled
series plus the derived headline metrics EXPERIMENTS.md tracks.
``fast=True`` shrinks sweeps/iterations for CI and pytest-benchmark; the
full sweeps are what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.config import RuntimeConfig, WaitMode
from ..core.stdworld import World, shared_world
from ..machine.hierarchy import HierarchyConfig
from ..machine.noise import StressConfig
from ..sim.trace import Scoreboard
from .calibration import (
    BYTE_SIZES,
    INT_COUNTS,
    MEASURE_ITERS,
    RATE_MESSAGES,
    TAIL_BYTE_SIZES,
    TAIL_INT_COUNTS,
    TAIL_ITERS,
    TARGETS,
    WARMUP_ITERS,
)
from .shapes import (
    am_injection_rate,
    am_pingpong,
    ucx_put_pingpong,
    ucx_put_stream,
)
from .stats import pct_diff


@dataclass
class FigureResult:
    figure: str
    title: str
    x_label: str
    x: list
    series: dict[str, list[float]] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    notes: str = ""
    # simulator Scoreboard counters summed over every world the sweep
    # built (sorted by name for stable serialization)
    counters: dict[str, int] = field(default_factory=dict)

    def as_rows(self) -> list[list]:
        rows = [[self.x_label, *self.series.keys()]]
        for i, xv in enumerate(self.x):
            rows.append([xv, *(self.series[k][i] for k in self.series)])
        return rows


@dataclass(frozen=True)
class FigureSpec:
    """One registered sweep: how to enumerate, run, and summarize it.

    ``points(fast)`` returns the ordered sweep-point parameter dicts
    (every value JSON-serializable — they are hashed into cache keys).
    ``point(**params)`` measures one point and returns a row: the ``"x"``
    value, one entry per series, and optionally ``"_counters"`` (a
    Scoreboard counter dict; keys starting with ``_`` never become
    series).  ``metrics(result)`` derives the headline metrics once all
    rows are assembled.  ``directions`` marks, per series, whether
    ``"lower"`` or ``"higher"`` values are better — ``bench diff`` only
    flags regressions on series listed here.

    ``setup_key`` names the world-setup profile the point function
    builds: a JSON-serializable constant, or a callable mapping one
    point's params to such a value.  Equal keys promise equal
    ``shared_world`` acquisition sequences, so the orchestrator keeps
    whole equal-key groups on one pool worker where later points fork
    the warm worlds the first point built.  Defaults to the spec name —
    always correct, but blind to cross-figure sharing.
    """

    name: str
    title: str
    x_label: str
    points: Callable[[bool], list[dict]]
    point: Callable[..., dict]
    metrics: Callable[[FigureResult], dict] | None = None
    directions: dict[str, str] = field(default_factory=dict)
    notes: str = ""
    setup_key: Callable[[dict], object] | str | None = None
    # Whether the point function tolerates a sharded DES (sim/shard.py):
    # all cross-node coupling flows through the fabric, and the driver
    # only touches foreign-node state at global quiescence (between
    # run_process calls).  Legacy shapes that read peer cycle counters
    # or stop cross-node stress mid-run stay False and force --shards 1.
    shardable: bool = False

    def setup_key_for(self, params: dict) -> object:
        """The setup-group key for one sweep point (JSON-serializable)."""
        if callable(self.setup_key):
            return self.setup_key(params)
        return self.setup_key if self.setup_key is not None else self.name


REGISTRY: dict[str, FigureSpec] = {}


def register(spec: FigureSpec) -> FigureSpec:
    if spec.name in REGISTRY:
        raise ValueError(f"duplicate figure spec {spec.name!r}")
    REGISTRY[spec.name] = spec
    return spec


def full_registry() -> dict[str, FigureSpec]:
    """The complete spec registry: §VII figures, the ablations, and the
    chain-KV figure family."""
    from . import ablations, chainfigs  # noqa: F401  (import: registers)

    return REGISTRY


def assemble(spec: FigureSpec, rows: list[dict]) -> FigureResult:
    """Build a FigureResult from ordered point rows."""
    if not rows:
        raise ValueError(f"{spec.name}: no sweep points")
    keys = [k for k in rows[0] if k != "x" and not k.startswith("_")]
    # Per-point counter dicts (shipped back from pool workers as plain
    # dicts) fold through a Scoreboard — same merge the workers' own
    # boards would use if they survived the process boundary.
    board = Scoreboard()
    for row in rows:
        board.merge(row.get("_counters", {}))
    counters = {name: int(value) for name, value in board.counters.items()}
    result = FigureResult(
        figure=spec.name,
        title=spec.title,
        x_label=spec.x_label,
        x=[row["x"] for row in rows],
        series={k: [row[k] for row in rows] for k in keys},
        notes=spec.notes,
        counters=dict(sorted(counters.items())),
    )
    if spec.metrics is not None:
        result.metrics = spec.metrics(result)
    return result


def run_spec(spec: FigureSpec | str, fast: bool = True,
             smoke: bool = False) -> FigureResult:
    """Run one spec's sweep serially (the orchestrator parallelizes)."""
    if isinstance(spec, str):
        spec = full_registry()[spec]
    points = spec.points(fast)
    if smoke:
        points = points[:1]
    return assemble(spec, [spec.point(**p) for p in points])


# ---------------------------------------------------------------------------
# sweep-axis helpers
# ---------------------------------------------------------------------------

def _sizes(fast: bool) -> tuple[int, ...]:
    return (64, 1024, 16384) if fast else BYTE_SIZES


def _ints(fast: bool) -> tuple[int, ...]:
    return (1, 16, 256, 1024) if fast else INT_COUNTS


def _iters(fast: bool) -> tuple[int, int]:
    return (8, 30) if fast else (WARMUP_ITERS, MEASURE_ITERS)


def _messages(fast: bool) -> int:
    return 400 if fast else RATE_MESSAGES


def board_counters(*worlds: World) -> dict[str, int]:
    """Sum every node's Scoreboard counters across the point's worlds.

    Goes through ``World.board_counters`` (not the node objects) so that
    worlds whose shards run in worker processes report the live boards
    over the world-RPC surface instead of stale fork-time mirrors.
    """
    out: dict[str, int] = {}
    for w in worlds:
        for name, value in w.board_counters().items():
            out[name] = out.get(name, 0) + int(value)
    return out


# ---------------------------------------------------------------------------
# Figs 5-6: Two-Chains AM put without execution vs UCX put
# ---------------------------------------------------------------------------

def _points_fig5(fast: bool) -> list[dict]:
    warmup, iters = _iters(fast)
    return [{"size": s, "warmup": warmup, "iters": iters}
            for s in _sizes(fast)]


def _point_fig5(size: int, warmup: int, iters: int) -> dict:
    w = shared_world()
    am = am_pingpong(w, "jam_ss_sum", size, inject=False, no_exec=True,
                     warmup=warmup, iters=iters)
    w2 = shared_world()
    ucx = ucx_put_pingpong(w2, am.wire_size, warmup=warmup, iters=iters)
    return {"x": am.wire_size,
            "am_ns": am.stats.p50,
            "ucx_put_ns": ucx.stats.p50,
            "overhead_pct": pct_diff(am.stats.p50, ucx.stats.p50),
            "_counters": board_counters(w, w2)}


def _metrics_fig5(r: FigureResult) -> dict:
    overhead = r.series["overhead_pct"]
    return {"max_overhead_pct": max(overhead),
            "paper_max_overhead_pct": TARGETS.fig5_max_latency_overhead_pct}


register(FigureSpec(
    name="fig5",
    title="Server-Side Sum: AM put without-execution latency overhead",
    x_label="message bytes",
    points=_points_fig5,
    point=_point_fig5,
    metrics=_metrics_fig5,
    directions={"am_ns": "lower", "ucx_put_ns": "lower",
                "overhead_pct": "lower"},
    notes="paper: <=1.5% worse at worst; ours lands at or below the "
          "UCX baseline",
    setup_key="std",
))


def _points_fig6(fast: bool) -> list[dict]:
    return [{"size": s, "messages": _messages(fast)} for s in _sizes(fast)]


def _point_fig6(size: int, messages: int) -> dict:
    w = shared_world()
    am = am_injection_rate(w, "jam_ss_sum", size, inject=False,
                           no_exec=True, messages=messages)
    w2 = shared_world()
    ucx = ucx_put_stream(w2, am.wire_size, messages=messages)
    return {"x": am.wire_size,
            "am_gbps": am.wire_gbps,
            "ucx_gbps": ucx.wire_gbps,
            "speedup": am.wire_gbps / ucx.wire_gbps,
            "_counters": board_counters(w, w2)}


def _metrics_fig6(r: FigureResult) -> dict:
    speedup = r.series["speedup"]
    return {"min_speedup": min(speedup), "max_speedup": max(speedup),
            "paper_speedup_lo": TARGETS.fig6_speedup_range[0],
            "paper_speedup_hi": TARGETS.fig6_speedup_range[1]}


register(FigureSpec(
    name="fig6",
    title="Server-Side Sum: AM put without-execution bandwidth overhead",
    x_label="message bytes",
    points=_points_fig6,
    point=_point_fig6,
    metrics=_metrics_fig6,
    directions={"am_gbps": "higher", "ucx_gbps": "higher",
                "speedup": "higher"},
    setup_key="std",
))


# ---------------------------------------------------------------------------
# Figs 7-8: Injected vs Local Function
# ---------------------------------------------------------------------------

def _points_fig7(fast: bool, jam: str) -> list[dict]:
    warmup, iters = _iters(fast)
    return [{"jam": jam, "ints": n, "warmup": warmup, "iters": iters}
            for n in _ints(fast)]


def _point_fig7(jam: str, ints: int, warmup: int, iters: int) -> dict:
    nb = ints * 4
    w = shared_world()
    inj = am_pingpong(w, jam, nb, inject=True, warmup=warmup, iters=iters)
    w2 = shared_world()
    loc = am_pingpong(w2, jam, nb, inject=False, warmup=warmup, iters=iters)
    return {"x": ints,
            "injected_ns": inj.stats.p50,
            "local_ns": loc.stats.p50,
            "loss_pct": pct_diff(inj.stats.p50, loc.stats.p50),
            "_counters": board_counters(w, w2)}


def _metrics_fig7(r: FigureResult) -> dict:
    loss = r.series["loss_pct"]
    return {"small_payload_loss_pct": loss[0],
            "largest_payload_loss_pct": loss[-1],
            "paper_small_loss_pct": TARGETS.fig7_small_payload_loss_pct}


_FIG7_NOTES = ("loss should start high (~40% in the paper) and converge "
               "toward 0 with payload size; protocol-threshold bumps appear "
               "where the injected frame crosses a UCX code-path boundary")

for _jam, _name in (("jam_indirect_put", "fig7"), ("jam_ss_sum", "fig7_sum")):
    register(FigureSpec(
        name=_name,
        title=f"{_jam}: latency, Injected vs Local Function",
        x_label="payload (4B integers)",
        points=(lambda fast, _j=_jam: _points_fig7(fast, _j)),
        point=_point_fig7,
        metrics=_metrics_fig7,
        directions={"injected_ns": "lower", "local_ns": "lower",
                    "loss_pct": "lower"},
        notes=_FIG7_NOTES,
        setup_key="std",
    ))


def _points_fig8(fast: bool) -> list[dict]:
    return [{"ints": n, "messages": _messages(fast)} for n in _ints(fast)]


def _point_fig8(ints: int, messages: int) -> dict:
    nb = ints * 4
    w = shared_world()
    inj = am_injection_rate(w, "jam_indirect_put", nb, inject=True,
                            messages=messages)
    w2 = shared_world()
    loc = am_injection_rate(w2, "jam_indirect_put", nb, inject=False,
                            messages=messages)
    return {"x": ints,
            "injected_mps": inj.rate_mps,
            "local_mps": loc.rate_mps,
            "rate_loss_pct": pct_diff(inj.rate_mps, loc.rate_mps),
            "_counters": board_counters(w, w2)}


def _metrics_fig8(r: FigureResult) -> dict:
    loss = r.series["rate_loss_pct"]
    return {"small_payload_rate_loss_pct": loss[0],
            "largest_payload_rate_loss_pct": loss[-1]}


register(FigureSpec(
    name="fig8",
    title="Indirect Put: message rate, Injected vs Local Function",
    x_label="payload (4B integers)",
    points=_points_fig8,
    point=_point_fig8,
    metrics=_metrics_fig8,
    directions={"injected_mps": "higher", "local_mps": "higher",
                "rate_loss_pct": "higher"},
    setup_key="std",
))


# ---------------------------------------------------------------------------
# Figs 9-10: LLC stashing
# ---------------------------------------------------------------------------

def _stash_worlds() -> tuple[World, World]:
    return (shared_world(hier_cfg=HierarchyConfig(stash_enabled=True)),
            shared_world(hier_cfg=HierarchyConfig(stash_enabled=False)))


def _points_fig9(fast: bool) -> list[dict]:
    warmup, iters = _iters(fast)
    return [{"ints": n, "warmup": warmup, "iters": iters}
            for n in _ints(fast)]


def _point_fig9(ints: int, warmup: int, iters: int) -> dict:
    nb = ints * 4
    ws, wn = _stash_worlds()
    st = am_pingpong(ws, "jam_indirect_put", nb, warmup=warmup, iters=iters)
    ns = am_pingpong(wn, "jam_indirect_put", nb, warmup=warmup, iters=iters)
    return {"x": ints,
            "stash_ns": st.stats.p50,
            "nonstash_ns": ns.stats.p50,
            "reduction_pct": -pct_diff(st.stats.p50, ns.stats.p50),
            "_counters": board_counters(ws, wn)}


def _metrics_fig9(r: FigureResult) -> dict:
    return {"max_reduction_pct": max(r.series["reduction_pct"]),
            "paper_max_reduction_pct": TARGETS.fig9_max_latency_gain_pct}


register(FigureSpec(
    name="fig9",
    title="Indirect Put: latency reduction with LLC stashing",
    x_label="payload (4B integers)",
    points=_points_fig9,
    point=_point_fig9,
    metrics=_metrics_fig9,
    directions={"stash_ns": "lower", "nonstash_ns": "lower",
                "reduction_pct": "higher"},
    setup_key="stash-pair",
))


def _points_fig10(fast: bool, jam: str) -> list[dict]:
    # Indirect Put sweeps put counts (4B integers); Server-Side Sum
    # sweeps byte sizes, like the corresponding paper plots.
    if jam == "jam_indirect_put":
        xs, to_bytes = _ints(fast), 4
    else:
        xs, to_bytes = _sizes(fast), 1
    return [{"jam": jam, "x": xv, "nbytes": xv * to_bytes,
             "messages": _messages(fast)} for xv in xs]


def _point_fig10(jam: str, x, nbytes: int, messages: int) -> dict:
    ws, wn = _stash_worlds()
    st = am_injection_rate(ws, jam, nbytes, messages=messages)
    ns = am_injection_rate(wn, jam, nbytes, messages=messages)
    return {"x": x,
            "stash_mps": st.rate_mps,
            "nonstash_mps": ns.rate_mps,
            "increase_pct": pct_diff(st.rate_mps, ns.rate_mps),
            "_counters": board_counters(ws, wn)}


def _metrics_fig10(r: FigureResult, target: float) -> dict:
    return {"max_increase_pct": max(r.series["increase_pct"]),
            "paper_max_increase_pct": target}


for _jam, _name, _xl in (
        ("jam_indirect_put", "fig10", "payload (4B integers)"),
        ("jam_ss_sum", "fig10_sum", "payload bytes")):
    _target = (TARGETS.fig10_max_rate_gain_pct if _jam == "jam_indirect_put"
               else TARGETS.fig10_sum_rate_gain_pct)
    register(FigureSpec(
        name=_name,
        title=f"{_jam}: message rate increase with LLC stashing",
        x_label=_xl,
        points=(lambda fast, _j=_jam: _points_fig10(fast, _j)),
        point=_point_fig10,
        metrics=(lambda r, _t=_target: _metrics_fig10(r, _t)),
        directions={"stash_mps": "higher", "nonstash_mps": "higher",
                    "increase_pct": "higher"},
        setup_key="stash-pair",
    ))


# ---------------------------------------------------------------------------
# Figs 11-12: tail latency on a fully loaded system
# ---------------------------------------------------------------------------

def _points_tail(fast: bool, jam: str) -> list[dict]:
    iters = 600 if fast else TAIL_ITERS
    if jam == "jam_indirect_put":
        xs, to_bytes = ((1, 64, 1024) if fast else TAIL_INT_COUNTS), 4
    else:
        xs, to_bytes = ((64, 2048, 32768) if fast else TAIL_BYTE_SIZES), 1
    return [{"jam": jam, "x": xv, "nbytes": xv * to_bytes, "iters": iters}
            for xv in xs]


def _tail_stats(world: World, jam: str, nb: int, iters: int,
                stress_cfg: StressConfig | None = None):
    out = am_pingpong(world, jam, nb, warmup=16, iters=iters, stress=True,
                      stress_cfg=stress_cfg)
    return out.stats


def _point_tail(jam: str, x, nbytes: int, iters: int) -> dict:
    ws, wn = _stash_worlds()
    st = _tail_stats(ws, jam, nbytes, iters)
    ns = _tail_stats(wn, jam, nbytes, iters)
    return {"x": x,
            "stash_p50": st.p50, "stash_p999": st.p999,
            "stash_spread_pct": st.tail_spread_pct,
            "nonstash_p50": ns.p50, "nonstash_p999": ns.p999,
            "nonstash_spread_pct": ns.tail_spread_pct,
            "tail_improvement": ns.p999 / st.p999,
            "_counters": board_counters(ws, wn)}


def _metrics_tail(r: FigureResult, paper_gain: float) -> dict:
    gain = r.series["tail_improvement"]
    return {"max_tail_improvement": max(gain),
            "paper_tail_improvement": paper_gain,
            "stash_spread_peak_pct": max(r.series["stash_spread_pct"]),
            "nonstash_spread_peak_pct": max(r.series["nonstash_spread_pct"])}


for _jam, _name, _xl, _gain in (
        ("jam_indirect_put", "fig11", "payload (4B integers)",
         TARGETS.fig11_tail_improvement_max),
        ("jam_ss_sum", "fig12", "payload bytes", 2.0)):
    register(FigureSpec(
        name=_name,
        title=f"{_jam}: tail latency on a fully loaded system",
        x_label=_xl,
        points=(lambda fast, _j=_jam: _points_tail(fast, _j)),
        point=_point_tail,
        metrics=(lambda r, _g=_gain: _metrics_tail(r, _g)),
        directions={"stash_p50": "lower", "stash_p999": "lower",
                    "stash_spread_pct": "lower",
                    "nonstash_p50": "lower", "nonstash_p999": "lower",
                    "tail_improvement": "higher"},
        setup_key="stash-pair",
    ))


# ---------------------------------------------------------------------------
# Figs 13-14: WFE vs polling
# ---------------------------------------------------------------------------

def _points_wfe(fast: bool, jam: str) -> list[dict]:
    warmup, iters = _iters(fast)
    if jam == "jam_indirect_put":
        xs, to_bytes = ((16, 256, 1024) if fast else INT_COUNTS), 4
    else:
        xs, to_bytes = ((512, 4096, 32768) if fast else BYTE_SIZES), 1
    return [{"jam": jam, "x": xv, "nbytes": xv * to_bytes,
             "warmup": warmup, "iters": iters} for xv in xs]


def _point_wfe(jam: str, x, nbytes: int, warmup: int, iters: int) -> dict:
    wp = shared_world(client_cfg=RuntimeConfig(wait_mode=WaitMode.POLL),
                      server_cfg=RuntimeConfig(wait_mode=WaitMode.POLL))
    pol = am_pingpong(wp, jam, nbytes, warmup=warmup, iters=iters)
    ww = shared_world(client_cfg=RuntimeConfig(wait_mode=WaitMode.WFE),
                      server_cfg=RuntimeConfig(wait_mode=WaitMode.WFE))
    wfe = am_pingpong(ww, jam, nbytes, warmup=warmup, iters=iters)
    return {"x": x,
            "poll_ns": pol.stats.p50,
            "wfe_ns": wfe.stats.p50,
            "latency_penalty_pct": pct_diff(wfe.stats.p50, pol.stats.p50),
            "poll_cycles_per_msg": pol.server_cycles_per_iter,
            "wfe_cycles_per_msg": wfe.server_cycles_per_iter,
            "cycle_reduction": (pol.server_cycles_per_iter
                                / max(wfe.server_cycles_per_iter, 1.0)),
            "_counters": board_counters(wp, ww)}


def _metrics_wfe(r: FigureResult) -> dict:
    return {"max_latency_penalty_pct": max(r.series["latency_penalty_pct"]),
            "min_cycle_reduction": min(r.series["cycle_reduction"]),
            "max_cycle_reduction": max(r.series["cycle_reduction"])}


for _jam, _name, _xl in (
        ("jam_indirect_put", "fig13", "payload (4B integers)"),
        ("jam_ss_sum", "fig14", "payload bytes")):
    register(FigureSpec(
        name=_name,
        title=f"{_jam}: effects of WFE on Two-Chains active messages",
        x_label=_xl,
        points=(lambda fast, _j=_jam: _points_wfe(fast, _j)),
        point=_point_wfe,
        metrics=_metrics_wfe,
        directions={"poll_ns": "lower", "wfe_ns": "lower",
                    "latency_penalty_pct": "lower",
                    "poll_cycles_per_msg": "lower",
                    "wfe_cycles_per_msg": "lower",
                    "cycle_reduction": "higher"},
        setup_key="wfe-pair",
    ))


# ---------------------------------------------------------------------------
# Legacy per-figure entry points (serial; used by tests and examples)
# ---------------------------------------------------------------------------

def fig5_put_latency_overhead(fast: bool = True) -> FigureResult:
    """Server-Side Sum AM put (without-execution) vs UCX put latency.

    Comparison is at equal bytes-on-the-wire: the AM frame for payload S
    vs a raw put of the same wire size."""
    return run_spec("fig5", fast=fast)


def fig6_put_bandwidth_overhead(fast: bool = True) -> FigureResult:
    """Server-Side Sum AM streaming vs UCX put streaming bandwidth."""
    return run_spec("fig6", fast=fast)


def fig7_injected_vs_local_latency(fast: bool = True, jam: str =
                                   "jam_indirect_put") -> FigureResult:
    return run_spec("fig7" if jam == "jam_indirect_put" else "fig7_sum",
                    fast=fast)


def fig8_injected_vs_local_rate(fast: bool = True) -> FigureResult:
    return run_spec("fig8", fast=fast)


def fig9_stash_latency(fast: bool = True) -> FigureResult:
    return run_spec("fig9", fast=fast)


def fig10_stash_rate(fast: bool = True, jam: str = "jam_indirect_put"
                     ) -> FigureResult:
    return run_spec("fig10" if jam == "jam_indirect_put" else "fig10_sum",
                    fast=fast)


def fig11_tail_indirect(fast: bool = True) -> FigureResult:
    return run_spec("fig11", fast=fast)


def fig12_tail_sum(fast: bool = True) -> FigureResult:
    return run_spec("fig12", fast=fast)


def fig13_wfe_indirect(fast: bool = True) -> FigureResult:
    return run_spec("fig13", fast=fast)


def fig14_wfe_sum(fast: bool = True) -> FigureResult:
    return run_spec("fig14", fast=fast)


ALL_FIGURES = {
    "fig5": fig5_put_latency_overhead,
    "fig6": fig6_put_bandwidth_overhead,
    "fig7": fig7_injected_vs_local_latency,
    "fig8": fig8_injected_vs_local_rate,
    "fig9": fig9_stash_latency,
    "fig10": fig10_stash_rate,
    "fig11": fig11_tail_indirect,
    "fig12": fig12_tail_sum,
    "fig13": fig13_wfe_indirect,
    "fig14": fig14_wfe_sum,
}
