"""Per-figure reproduction drivers for every figure in §VII.

Each ``fig*`` function runs the sweep the paper plots and returns a
:class:`FigureResult`: labelled series plus the derived headline metrics
EXPERIMENTS.md tracks.  ``fast=True`` shrinks sweeps/iterations for CI
and pytest-benchmark; the full sweeps are what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..core.config import RuntimeConfig, WaitMode
from ..core.stdworld import World, make_world
from ..machine.hierarchy import HierarchyConfig
from ..machine.noise import StressConfig
from .calibration import (
    BYTE_SIZES,
    INT_COUNTS,
    MEASURE_ITERS,
    RATE_MESSAGES,
    TAIL_ITERS,
    TARGETS,
    WARMUP_ITERS,
)
from .shapes import (
    am_injection_rate,
    am_pingpong,
    ucx_put_pingpong,
    ucx_put_stream,
)
from .stats import pct_diff


@dataclass
class FigureResult:
    figure: str
    title: str
    x_label: str
    x: list
    series: dict[str, list[float]] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def as_rows(self) -> list[list]:
        rows = [[self.x_label, *self.series.keys()]]
        for i, xv in enumerate(self.x):
            rows.append([xv, *(self.series[k][i] for k in self.series)])
        return rows


def _sizes(fast: bool) -> tuple[int, ...]:
    return (64, 1024, 16384) if fast else BYTE_SIZES


def _ints(fast: bool) -> tuple[int, ...]:
    return (1, 16, 256, 1024) if fast else INT_COUNTS


def _iters(fast: bool) -> tuple[int, int]:
    return (8, 30) if fast else (WARMUP_ITERS, MEASURE_ITERS)


def _messages(fast: bool) -> int:
    return 400 if fast else RATE_MESSAGES


# ---------------------------------------------------------------------------
# Figs 5-6: Two-Chains AM put without execution vs UCX put
# ---------------------------------------------------------------------------

def fig5_put_latency_overhead(fast: bool = True) -> FigureResult:
    """Server-Side Sum AM put (without-execution) vs UCX put latency.

    Comparison is at equal bytes-on-the-wire: the AM frame for payload S
    vs a raw put of the same wire size."""
    warmup, iters = _iters(fast)
    x, am_lat, ucx_lat, overhead = [], [], [], []
    for size in _sizes(fast):
        w = make_world()
        am = am_pingpong(w, "jam_ss_sum", size, inject=False, no_exec=True,
                         warmup=warmup, iters=iters)
        w2 = make_world()
        ucx = ucx_put_pingpong(w2, am.wire_size, warmup=warmup, iters=iters)
        x.append(am.wire_size)
        am_lat.append(am.stats.p50)
        ucx_lat.append(ucx.stats.p50)
        overhead.append(pct_diff(am.stats.p50, ucx.stats.p50))
    return FigureResult(
        figure="fig5",
        title="Server-Side Sum: AM put without-execution latency overhead",
        x_label="message bytes",
        x=x,
        series={"am_ns": am_lat, "ucx_put_ns": ucx_lat,
                "overhead_pct": overhead},
        metrics={"max_overhead_pct": max(overhead),
                 "paper_max_overhead_pct": TARGETS.fig5_max_latency_overhead_pct},
        notes="paper: <=1.5% worse at worst; ours lands at or below the "
              "UCX baseline",
    )


def fig6_put_bandwidth_overhead(fast: bool = True) -> FigureResult:
    """Server-Side Sum AM streaming vs UCX put streaming bandwidth."""
    msgs = _messages(fast)
    x, am_bw, ucx_bw, speedup = [], [], [], []
    for size in _sizes(fast):
        w = make_world()
        am = am_injection_rate(w, "jam_ss_sum", size, inject=False,
                               no_exec=True, messages=msgs)
        w2 = make_world()
        ucx = ucx_put_stream(w2, am.wire_size, messages=msgs)
        x.append(am.wire_size)
        am_bw.append(am.wire_gbps)
        ucx_bw.append(ucx.wire_gbps)
        speedup.append(am.wire_gbps / ucx.wire_gbps)
    return FigureResult(
        figure="fig6",
        title="Server-Side Sum: AM put without-execution bandwidth overhead",
        x_label="message bytes",
        x=x,
        series={"am_gbps": am_bw, "ucx_gbps": ucx_bw, "speedup": speedup},
        metrics={"min_speedup": min(speedup), "max_speedup": max(speedup),
                 "paper_speedup_lo": TARGETS.fig6_speedup_range[0],
                 "paper_speedup_hi": TARGETS.fig6_speedup_range[1]},
    )


# ---------------------------------------------------------------------------
# Figs 7-8: Injected vs Local Function
# ---------------------------------------------------------------------------

def fig7_injected_vs_local_latency(fast: bool = True, jam: str =
                                   "jam_indirect_put") -> FigureResult:
    warmup, iters = _iters(fast)
    x, inj_lat, loc_lat, loss = [], [], [], []
    for ints in _ints(fast):
        nb = ints * 4
        w = make_world()
        inj = am_pingpong(w, jam, nb, inject=True, warmup=warmup,
                          iters=iters)
        w2 = make_world()
        loc = am_pingpong(w2, jam, nb, inject=False, warmup=warmup,
                          iters=iters)
        x.append(ints)
        inj_lat.append(inj.stats.p50)
        loc_lat.append(loc.stats.p50)
        loss.append(pct_diff(inj.stats.p50, loc.stats.p50))
    return FigureResult(
        figure="fig7",
        title=f"{jam}: latency, Injected vs Local Function",
        x_label="payload (4B integers)",
        x=x,
        series={"injected_ns": inj_lat, "local_ns": loc_lat,
                "loss_pct": loss},
        metrics={"small_payload_loss_pct": loss[0],
                 "largest_payload_loss_pct": loss[-1],
                 "paper_small_loss_pct": TARGETS.fig7_small_payload_loss_pct},
        notes="loss should start high (~40% in the paper) and converge "
              "toward 0 with payload size; protocol-threshold bumps appear "
              "where the injected frame crosses a UCX code-path boundary",
    )


def fig8_injected_vs_local_rate(fast: bool = True) -> FigureResult:
    msgs = _messages(fast)
    x, inj_rate, loc_rate, loss = [], [], [], []
    for ints in _ints(fast):
        nb = ints * 4
        w = make_world()
        inj = am_injection_rate(w, "jam_indirect_put", nb, inject=True,
                                messages=msgs)
        w2 = make_world()
        loc = am_injection_rate(w2, "jam_indirect_put", nb, inject=False,
                                messages=msgs)
        x.append(ints)
        inj_rate.append(inj.rate_mps)
        loc_rate.append(loc.rate_mps)
        loss.append(pct_diff(inj.rate_mps, loc.rate_mps))
    return FigureResult(
        figure="fig8",
        title="Indirect Put: message rate, Injected vs Local Function",
        x_label="payload (4B integers)",
        x=x,
        series={"injected_mps": inj_rate, "local_mps": loc_rate,
                "rate_loss_pct": loss},
        metrics={"small_payload_rate_loss_pct": loss[0],
                 "largest_payload_rate_loss_pct": loss[-1]},
    )


# ---------------------------------------------------------------------------
# Figs 9-10: LLC stashing
# ---------------------------------------------------------------------------

def _stash_worlds() -> tuple[World, World]:
    return (make_world(hier_cfg=HierarchyConfig(stash_enabled=True)),
            make_world(hier_cfg=HierarchyConfig(stash_enabled=False)))


def fig9_stash_latency(fast: bool = True) -> FigureResult:
    warmup, iters = _iters(fast)
    x, st_lat, ns_lat, reduction = [], [], [], []
    for ints in _ints(fast):
        nb = ints * 4
        ws, wn = _stash_worlds()
        st = am_pingpong(ws, "jam_indirect_put", nb, warmup=warmup,
                         iters=iters)
        ns = am_pingpong(wn, "jam_indirect_put", nb, warmup=warmup,
                         iters=iters)
        x.append(ints)
        st_lat.append(st.stats.p50)
        ns_lat.append(ns.stats.p50)
        reduction.append(-pct_diff(st.stats.p50, ns.stats.p50))
    return FigureResult(
        figure="fig9",
        title="Indirect Put: latency reduction with LLC stashing",
        x_label="payload (4B integers)",
        x=x,
        series={"stash_ns": st_lat, "nonstash_ns": ns_lat,
                "reduction_pct": reduction},
        metrics={"max_reduction_pct": max(reduction),
                 "paper_max_reduction_pct": TARGETS.fig9_max_latency_gain_pct},
    )


def fig10_stash_rate(fast: bool = True, jam: str = "jam_indirect_put"
                     ) -> FigureResult:
    msgs = _messages(fast)
    # Indirect Put sweeps put counts (4B integers); Server-Side Sum
    # sweeps byte sizes, like the corresponding paper plots.
    if jam == "jam_indirect_put":
        xs, to_bytes, label = _ints(fast), 4, "payload (4B integers)"
    else:
        xs, to_bytes, label = _sizes(fast), 1, "payload bytes"
    x, st_rate, ns_rate, increase = [], [], [], []
    for xv in xs:
        nb = xv * to_bytes
        ws, wn = _stash_worlds()
        st = am_injection_rate(ws, jam, nb, messages=msgs)
        ns = am_injection_rate(wn, jam, nb, messages=msgs)
        x.append(xv)
        st_rate.append(st.rate_mps)
        ns_rate.append(ns.rate_mps)
        increase.append(pct_diff(st.rate_mps, ns.rate_mps))
    target = (TARGETS.fig10_max_rate_gain_pct if jam == "jam_indirect_put"
              else TARGETS.fig10_sum_rate_gain_pct)
    return FigureResult(
        figure="fig10",
        title=f"{jam}: message rate increase with LLC stashing",
        x_label=label,
        x=x,
        series={"stash_mps": st_rate, "nonstash_mps": ns_rate,
                "increase_pct": increase},
        metrics={"max_increase_pct": max(increase),
                 "paper_max_increase_pct": target},
    )


# ---------------------------------------------------------------------------
# Figs 11-12: tail latency on a fully loaded system
# ---------------------------------------------------------------------------

def _tail_point(world: World, jam: str, nb: int, iters: int,
                stress_cfg: StressConfig | None):
    out = am_pingpong(world, jam, nb, warmup=16,
                      iters=iters, stress=True, stress_cfg=stress_cfg)
    return out.stats


def fig11_tail_indirect(fast: bool = True) -> FigureResult:
    return _tail_figure("fig11", "jam_indirect_put",
                        TARGETS.fig11_tail_improvement_max, fast)


def fig12_tail_sum(fast: bool = True) -> FigureResult:
    return _tail_figure("fig12", "jam_ss_sum", 2.0, fast)


def _tail_figure(figure: str, jam: str, paper_gain: float, fast: bool
                 ) -> FigureResult:
    from .calibration import TAIL_BYTE_SIZES, TAIL_INT_COUNTS
    iters = 600 if fast else TAIL_ITERS
    if jam == "jam_indirect_put":
        xs = (1, 64, 1024) if fast else TAIL_INT_COUNTS
        to_bytes = 4
        label = "payload (4B integers)"
    else:
        xs = (64, 2048, 32768) if fast else TAIL_BYTE_SIZES
        to_bytes = 1
        label = "payload bytes"
    x = []
    st_p50, st_p999, st_spread = [], [], []
    ns_p50, ns_p999, ns_spread = [], [], []
    for xv in xs:
        nb = xv * to_bytes
        ws, wn = _stash_worlds()
        st = _tail_point(ws, jam, nb, iters, None)
        ns = _tail_point(wn, jam, nb, iters, None)
        x.append(xv)
        st_p50.append(st.p50)
        st_p999.append(st.p999)
        st_spread.append(st.tail_spread_pct)
        ns_p50.append(ns.p50)
        ns_p999.append(ns.p999)
        ns_spread.append(ns.tail_spread_pct)
    tail_gain = [n / s for n, s in zip(ns_p999, st_p999)]
    return FigureResult(
        figure=figure,
        title=f"{jam}: tail latency on a fully loaded system",
        x_label=label,
        x=x,
        series={"stash_p50": st_p50, "stash_p999": st_p999,
                "stash_spread_pct": st_spread,
                "nonstash_p50": ns_p50, "nonstash_p999": ns_p999,
                "nonstash_spread_pct": ns_spread,
                "tail_improvement": tail_gain},
        metrics={"max_tail_improvement": max(tail_gain),
                 "paper_tail_improvement": paper_gain,
                 "stash_spread_peak_pct": max(st_spread),
                 "nonstash_spread_peak_pct": max(ns_spread)},
    )


# ---------------------------------------------------------------------------
# Figs 13-14: WFE vs polling
# ---------------------------------------------------------------------------

def _wfe_figure(figure: str, jam: str, fast: bool, xs, to_bytes: int,
                label: str) -> FigureResult:
    warmup, iters = _iters(fast)
    x = []
    poll_lat, wfe_lat, penalty = [], [], []
    poll_cycles, wfe_cycles, reduction = [], [], []
    for xv in xs:
        nb = xv * to_bytes
        wp = make_world(
            client_cfg=RuntimeConfig(wait_mode=WaitMode.POLL),
            server_cfg=RuntimeConfig(wait_mode=WaitMode.POLL))
        pol = am_pingpong(wp, jam, nb, warmup=warmup, iters=iters)
        ww = make_world(
            client_cfg=RuntimeConfig(wait_mode=WaitMode.WFE),
            server_cfg=RuntimeConfig(wait_mode=WaitMode.WFE))
        wfe = am_pingpong(ww, jam, nb, warmup=warmup, iters=iters)
        x.append(xv)
        poll_lat.append(pol.stats.p50)
        wfe_lat.append(wfe.stats.p50)
        penalty.append(pct_diff(wfe.stats.p50, pol.stats.p50))
        poll_cycles.append(pol.server_cycles_per_iter)
        wfe_cycles.append(wfe.server_cycles_per_iter)
        reduction.append(pol.server_cycles_per_iter
                         / max(wfe.server_cycles_per_iter, 1.0))
    return FigureResult(
        figure=figure,
        title=f"{jam}: effects of WFE on Two-Chains active messages",
        x_label=label,
        x=x,
        series={"poll_ns": poll_lat, "wfe_ns": wfe_lat,
                "latency_penalty_pct": penalty,
                "poll_cycles_per_msg": poll_cycles,
                "wfe_cycles_per_msg": wfe_cycles,
                "cycle_reduction": reduction},
        metrics={"max_latency_penalty_pct": max(penalty),
                 "min_cycle_reduction": min(reduction),
                 "max_cycle_reduction": max(reduction)},
    )


def fig13_wfe_indirect(fast: bool = True) -> FigureResult:
    xs = (16, 256, 1024) if fast else INT_COUNTS
    return _wfe_figure("fig13", "jam_indirect_put", fast, xs, 4,
                       "payload (4B integers)")


def fig14_wfe_sum(fast: bool = True) -> FigureResult:
    xs = (512, 4096, 32768) if fast else BYTE_SIZES
    return _wfe_figure("fig14", "jam_ss_sum", fast, xs, 1, "payload bytes")


ALL_FIGURES = {
    "fig5": fig5_put_latency_overhead,
    "fig6": fig6_put_bandwidth_overhead,
    "fig7": fig7_injected_vs_local_latency,
    "fig8": fig8_injected_vs_local_rate,
    "fig9": fig9_stash_latency,
    "fig10": fig10_stash_rate,
    "fig11": fig11_tail_indirect,
    "fig12": fig12_tail_sum,
    "fig13": fig13_wfe_indirect,
    "fig14": fig14_wfe_sum,
}
