"""Benchmark harness: shapes, statistics, per-figure drivers, reporting."""

from .calibration import (
    BYTE_SIZES,
    INT_COUNTS,
    MEASURE_ITERS,
    RATE_MESSAGES,
    TAIL_ITERS,
    TARGETS,
    WARMUP_ITERS,
    within_band,
)
from .figures import ALL_FIGURES, FigureResult
from .report import print_figure, render_figure
from .shapes import (
    PingPongOutcome,
    RateOutcome,
    am_injection_rate,
    am_pingpong,
    ucx_put_pingpong,
    ucx_put_stream,
)
from .stats import LatencyStats, pct_diff, summarize

__all__ = [
    "ALL_FIGURES",
    "BYTE_SIZES",
    "FigureResult",
    "INT_COUNTS",
    "LatencyStats",
    "MEASURE_ITERS",
    "PingPongOutcome",
    "RATE_MESSAGES",
    "RateOutcome",
    "TAIL_ITERS",
    "TARGETS",
    "WARMUP_ITERS",
    "am_injection_rate",
    "am_pingpong",
    "pct_diff",
    "print_figure",
    "render_figure",
    "summarize",
    "ucx_put_pingpong",
    "ucx_put_stream",
    "within_band",
]
