"""Benchmark harness: shapes, statistics, per-figure drivers, the sweep
registry, the parallel orchestrator with its on-disk result cache, and
text/JSON reporting."""

from . import ablations  # noqa: F401  (registers the abl_* sweeps)
from .calibration import (
    BYTE_SIZES,
    INT_COUNTS,
    MEASURE_ITERS,
    RATE_MESSAGES,
    TAIL_ITERS,
    TARGETS,
    WARMUP_ITERS,
    within_band,
)
from .figures import (
    ALL_FIGURES,
    REGISTRY,
    FigureResult,
    FigureSpec,
    full_registry,
    run_spec,
)
from .orchestrator import (
    FigureRun,
    diff_paths,
    diff_payloads,
    run_figures,
    write_runs,
)
from .report import bench_payload, print_figure, render_diff, render_figure
from .resultstore import SCHEMA_VERSION, ResultStore, point_key
from .shapes import (
    PingPongOutcome,
    RateOutcome,
    am_injection_rate,
    am_pingpong,
    ucx_put_pingpong,
    ucx_put_stream,
)
from .stats import LatencyStats, pct_diff, summarize

__all__ = [
    "ALL_FIGURES",
    "BYTE_SIZES",
    "FigureResult",
    "FigureRun",
    "FigureSpec",
    "INT_COUNTS",
    "LatencyStats",
    "MEASURE_ITERS",
    "PingPongOutcome",
    "RATE_MESSAGES",
    "REGISTRY",
    "RateOutcome",
    "ResultStore",
    "SCHEMA_VERSION",
    "TAIL_ITERS",
    "TARGETS",
    "WARMUP_ITERS",
    "am_injection_rate",
    "am_pingpong",
    "bench_payload",
    "diff_paths",
    "diff_payloads",
    "full_registry",
    "pct_diff",
    "point_key",
    "print_figure",
    "render_diff",
    "render_figure",
    "run_figures",
    "run_spec",
    "summarize",
    "ucx_put_pingpong",
    "ucx_put_stream",
    "within_band",
    "write_runs",
]
