"""Process-wide simulator throughput counters.

Lightweight counters bumped from the three layers every benchmark
bottoms out in — the CHAIN VM (instructions retired), the cache
hierarchy (demand/stream line probes), and the DES kernel (events
executed, simulated nanoseconds advanced).  They exist to answer one
question cheaply: *how much simulated work did this process do per
wall-second?*  ``twochains profile`` prints them, and the benchmark
orchestrator records a per-figure ``sim_throughput`` block in every
``BENCH_<figure>.json`` meta so the perf trajectory of the simulator
itself is tracked across PRs (docs/BENCHMARKS.md).

Counting rules (kept deliberately coarse so the hot paths stay hot):

* ``instructions`` — retired CHAIN instructions, added once per
  completed ``Vm.call`` (intrinsic calls count as one, like
  ``CallResult.steps``).
* ``cache_probes`` — hierarchy line lookups: one per ``access_line``
  or ``_stream_line`` call, regardless of which level hit.
* ``des_events`` — callbacks executed by ``Engine.run`` (bare
  ``Engine.step`` calls outside ``run`` are not counted).
* ``sim_ns`` — simulated time advanced by ``Engine.run``.
* ``blocks_compiled`` — fused superblock closures materialized by the
  VM's basic-block fusion layer (one per generated closure, not per
  memo hit).
* ``fused_dispatches`` — hot-loop dispatches that entered a fused
  block (each retires 2+ instructions in one call).
* ``block_invalidations`` — fused blocks dropped because a write
  changed bytes under them (stores, DMA, GOT patches).

Counters are per-process; the orchestrator snapshots them around each
sweep point and ships the deltas back from pool workers.
"""

from __future__ import annotations

_FIELDS = ("instructions", "cache_probes", "des_events", "sim_ns",
           "blocks_compiled", "fused_dispatches", "block_invalidations")


class SimCounters:
    """Mutable counter block; one process-wide instance (:data:`COUNTERS`)."""

    __slots__ = _FIELDS

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.instructions = 0
        self.cache_probes = 0
        self.des_events = 0
        self.sim_ns = 0.0
        self.blocks_compiled = 0
        self.fused_dispatches = 0
        self.block_invalidations = 0

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in _FIELDS}

    def delta(self, before: dict) -> dict:
        """Counter deltas since a previous :meth:`snapshot`."""
        return {name: getattr(self, name) - before.get(name, 0)
                for name in _FIELDS}


COUNTERS = SimCounters()


def throughput(counters: dict, wall_s: float) -> dict:
    """The ``sim_throughput`` block: counters plus per-wall-second rates."""
    wall = max(wall_s, 1e-12)
    return {
        "instructions": int(counters.get("instructions", 0)),
        "cache_probes": int(counters.get("cache_probes", 0)),
        "des_events": int(counters.get("des_events", 0)),
        "sim_ns": round(float(counters.get("sim_ns", 0.0)), 3),
        "blocks_compiled": int(counters.get("blocks_compiled", 0)),
        "fused_dispatches": int(counters.get("fused_dispatches", 0)),
        "block_invalidations": int(counters.get("block_invalidations", 0)),
        "wall_s": round(wall_s, 6),
        "instructions_per_s": round(counters.get("instructions", 0) / wall, 1),
        "sim_ns_per_wall_s": round(counters.get("sim_ns", 0.0) / wall, 1),
    }
