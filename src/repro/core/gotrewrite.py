"""The static GOT-access rewrite (§III-B) — the heart of remote linking.

Position-independent CHAIN code reaches external symbols with
``LDG rd, slot`` whose immediate is a PC-relative offset to the object's
own GOT.  Code that ships inside a message has no accompanying GOT, so the
toolchain patches every ``LDG`` into ``LDGI``: the immediate now points
(PC-relative) at a single 8-byte pointer cell placed just before the code
in the message (the GOTP field), and the slot is applied to the table that
cell designates.  The patch is same-size and in-place, so no other offset
in the function moves — the constraint the paper engineers the fixed-width
encoding around.
"""

from __future__ import annotations

from ..errors import TwoChainsError
from ..isa.encoding import Instr, decode, encode_program
from ..isa.opcodes import INSTR_BYTES, Op
from ..obs.tracer import PID_SIM, TID_TOOL, TRACER as _T

# The GOTP cell sits immediately before the first code byte in the frame.
GOTP_REL_TO_CODE = -8


def rewrite_got_accesses(text: bytes, code_base_offset: int = 0) -> bytes:
    """Patch every LDG in ``text`` to LDGI-through-GOTP.

    ``code_base_offset``: offset of ``text``'s first byte from the point
    the GOTP cell is relative to (0 when the blob starts at the code).
    Returns the patched text (same length).
    """
    if len(text) % INSTR_BYTES:
        raise TwoChainsError("text length not instruction-aligned")
    out = []
    patched = 0
    for off in range(0, len(text), INSTR_BYTES):
        instr = decode(text, off)
        if instr.op is Op.LDG:
            # ptr_loc = pc + imm must equal code_start - 8.
            imm = GOTP_REL_TO_CODE - (code_base_offset + off)
            instr = Instr(Op.LDGI, rd=instr.rd, rs1=instr.rs1,
                          rs2=instr.rs2, imm=imm)
            patched += 1
        out.append(instr)
    if _T.enabled:
        # Toolchain work has no sim-time cost model; mark it as an instant
        # on the toolchain track at the tracer's last-seen sim time.
        _T.instant(PID_SIM, TID_TOOL, "got.rewrite", _T.ts_hint(),
                   {"instrs": len(out), "patched": patched})
    return encode_program(out)


def count_got_accesses(text: bytes) -> tuple[int, int]:
    """(ldg_count, ldgi_count) — used by tests and the package inspector."""
    ldg = ldgi = 0
    for off in range(0, len(text), INSTR_BYTES):
        op = text[off]
        if op == Op.LDG:
            ldg += 1
        elif op == Op.LDGI:
            ldgi += 1
    return ldg, ldgi
