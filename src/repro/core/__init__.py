"""Two-Chains: the paper's active-message framework (the core library).

Public surface:

* :func:`build_package` / :class:`JamSource` / :class:`RiedSource` — the
  build toolchain (§IV).
* :class:`TwoChainsRuntime` — per-process runtime: packages, mailboxes,
  waiters, VM.
* :func:`connect_runtimes` / :class:`Connection` — out-of-band setup and
  the sender-side jam injection API.
* :class:`RuntimeConfig` / :class:`WaitMode` — configuration incl. the §V
  security reconfigurations and WFE-vs-poll waiting.
* :mod:`repro.core.stdjams` — the paper's benchmark jams.
"""

from .adaptive import AdaptiveJamSender, AdaptiveStats
from .config import RuntimeConfig, WaitMode
from .gotrewrite import count_got_accesses, rewrite_got_accesses
from .install import (
    build_package_from_dir,
    collect_sources,
    install_package,
    load_installed_package,
)
from .mailbox import Mailbox, MailboxInfo, Waiter, WaiterStats
from .message import (
    F_GOTP_SENDER,
    F_INJECTED,
    F_NO_EXEC,
    Frame,
    FrameView,
    frame_wire_size,
    pack_frame,
    unpack_header,
)
from .package import LoadedElement, LoadedPackage, load_package
from .runtime import Connection, PreparedJam, TwoChainsRuntime, connect_runtimes
from .toolchain import (
    JamArtifact,
    JamSource,
    PackageBuild,
    RiedSource,
    build_package,
)

__all__ = [
    "AdaptiveJamSender",
    "AdaptiveStats",
    "Connection",
    "F_GOTP_SENDER",
    "F_INJECTED",
    "F_NO_EXEC",
    "Frame",
    "FrameView",
    "JamArtifact",
    "JamSource",
    "LoadedElement",
    "LoadedPackage",
    "Mailbox",
    "MailboxInfo",
    "PackageBuild",
    "PreparedJam",
    "RiedSource",
    "RuntimeConfig",
    "TwoChainsRuntime",
    "WaitMode",
    "Waiter",
    "WaiterStats",
    "build_package",
    "build_package_from_dir",
    "collect_sources",
    "install_package",
    "load_installed_package",
    "connect_runtimes",
    "count_got_accesses",
    "frame_wire_size",
    "load_package",
    "pack_frame",
    "rewrite_got_accesses",
    "unpack_header",
]
