"""Adaptive injection: the paper's §VIII future-work extension.

    "In future research we plan to extend Two-Chains function injection
    logic to detect reoccurring functions that have been injected and
    auto-switch to local function execution while reducing the size of
    the active message."

:class:`AdaptiveJamSender` implements exactly that on the sender side: it
counts injections per (package, element) on a connection, and once an
element has been injected ``threshold`` times it switches to Local
Function frames.  The receiver needs no change — local dispatch has been
a core capability all along (§IV-B); the receiver's package library
provably contains the function since the element GOT came from it.

Because the mailbox's frames stay sized for the injected form, compact
local sends use two ordered puts — the small frame, then its signal byte
at the slot's end — trading one extra post for not moving the code bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.pages import PROT_RW
from ..sim.engine import Delay
from .message import Frame, frame_wire_size, pack_frame
from .package import LoadedPackage
from .runtime import Connection, PreparedJam


@dataclass
class AdaptiveStats:
    injected_sends: int = 0
    local_sends: int = 0
    wire_bytes_saved: int = 0

    @property
    def switched(self) -> bool:
        return self.local_sends > 0


class AdaptiveJamSender:
    """Send one jam repeatedly; auto-switch to local after ``threshold``."""

    def __init__(self, conn: Connection, package: LoadedPackage,
                 element_name: str, payload_addr: int, payload_size: int,
                 args: tuple[int, ...] = (), threshold: int = 4):
        self.conn = conn
        self.threshold = threshold
        self.stats = AdaptiveStats()
        self._injected = PreparedJam(conn, package, element_name,
                                     payload_addr, payload_size,
                                     args=args, inject=True)
        # Pre-pack the compact local frame separately: it is put without
        # the trailing padding of the big slot.
        rt = conn.rt
        el = package.element(element_name)
        self._local_wire = frame_wire_size(0, payload_size)
        frame = Frame(package_id=package.package_id,
                      element_id=el.element_id, flags=0, seq=1,
                      args=tuple(list(args) + [0] * (2 - len(args))),
                      payload=rt.node.mem.read(payload_addr, payload_size)
                      if payload_size else b"")
        self._local_staging = rt.node.map_region(
            max(self._local_wire, 64), PROT_RW, label="adaptive.local")
        rt.node.mem.write(self._local_staging,
                          pack_frame(frame, self._local_wire))
        rt.node.hier.stream_cost(rt.engine.now, rt.core,
                                 self._local_staging, self._local_wire,
                                 "write")

    def send(self):
        """Process body: inject until the threshold, then go local."""
        if self.stats.injected_sends < self.threshold:
            self.stats.injected_sends += 1
            result = yield from self._injected.send()
            return result
        self.stats.local_sends += 1
        self.stats.wire_bytes_saved += (self.conn.info.frame_size
                                        - self._local_wire)
        result = yield from self._send_local()
        return result

    def _send_local(self):
        conn = self.conn
        rt = conn.rt
        bank, slot, seq = conn._next_slot()
        if conn.flow_control and slot == 0:
            yield from conn._wait_bank_free(bank)
        fsize = conn.info.frame_size
        slot_addr = (conn.info.addr
                     + (bank * conn.info.slots + slot) * fsize)
        # refresh tags; the compact frame's own last byte is NOT the
        # mailbox signal (that lives at the big slot's end)
        node = rt.node
        node.mem.write_u8(self._local_staging + 4, seq)
        node.mem.write_u8(self._local_staging + self._local_wire - 1, seq)
        node.add_busy_ns(rt.core, PreparedJam._UPDATE_NS)
        yield Delay(PreparedJam._UPDATE_NS)
        # data put (compact), then the slot-end signal byte; the fabric
        # delivers puts on a QP in order, so no fence is needed here.
        req = conn.ep.put_nbi(rt.engine.now, self._local_staging, slot_addr,
                              self._local_wire, conn.info.rkey, track=False)
        yield Delay(req.cpu_ns)
        sig = conn.ep.put_nbi(rt.engine.now,
                              self._local_staging + self._local_wire - 1,
                              slot_addr + fsize - 1, 1, conn.info.rkey,
                              track=False)
        yield Delay(sig.cpu_ns)
        conn.sends += 1
        return sig
