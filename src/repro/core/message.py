"""Two-Chains active-message frame format (§III-A, Figs 1-3).

Fixed-size frames (as in the paper's study configuration)::

    Injected:  HDR(40) | GOTP(8) | CODE | USR payload | pad | SIG(1)
    Local:     HDR(40) |                  USR payload | pad | SIG(1)

* HDR — magic, flags, sequence tag, package/element ids, section sizes,
  and two inline arguments.
* GOTP — pointer to the receiver-side GOT for this element; present only
  when code travels in the frame, sitting exactly 8 bytes before the code
  (the fixed PC-relative location the LDGI rewrite targets).
* CODE — the jam's machine code with its read-only data appended.
* USR — user payload bytes.
* SIG — the last byte of the frame: the arrival signal the reactive
  mailbox waits on.  A sequence tag (1..255, never 0) so slot reuse is
  detected.

Frames are sized to the nearest 64 B like the paper's: the 1-integer
Local message is 64 B, and with the 1408 B Indirect Put code the
1-integer Injected message is 1472 B (§VII-A).

Ordering on the testbed's fabric lets header+payload+signal travel in one
put; the signal byte being last in the frame means its visibility implies
the rest arrived.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import MailboxError

MAGIC = 0x5443  # "TC"
VERSION = 1

HDR_SIZE = 40
GOTP_SIZE = 8

# header flags
F_INJECTED = 0x01      # frame carries code; invoke it from the mailbox
F_GOTP_SENDER = 0x02   # GOTP filled by sender (default study config)
F_NO_EXEC = 0x04       # deliver + trigger, skip invocation (Figs 5-6)

_HDR = struct.Struct("<HBBB3xIIII2Q")
assert _HDR.size == HDR_SIZE


@dataclass
class Frame:
    package_id: int
    element_id: int
    flags: int = 0
    seq: int = 1
    args: tuple[int, int] = (0, 0)
    code: bytes = b""
    payload: bytes = b""
    gotp: int = 0

    @property
    def injected(self) -> bool:
        return bool(self.flags & F_INJECTED)


def frame_wire_size(code_size: int, payload_size: int) -> int:
    """Bytes on the wire for given sections, rounded up to 64 (the paper
    sizes messages to the nearest 64 B).  GOTP only ships with code."""
    gotp = GOTP_SIZE if code_size else 0
    raw = HDR_SIZE + gotp + code_size + payload_size + 1  # +SIG
    return (raw + 63) & ~63


def pack_frame(frame: Frame, frame_size: int) -> bytes:
    """Serialize into a fixed-size frame buffer, signal byte last."""
    need = frame_wire_size(len(frame.code), len(frame.payload))
    if frame_size < need:
        raise MailboxError(
            f"frame of {need} bytes does not fit slot of {frame_size}")
    if not (1 <= frame.seq <= 255):
        raise MailboxError(f"sequence tag must be 1..255, got {frame.seq}")
    if frame.code and not frame.injected:
        raise MailboxError("frame carries code but F_INJECTED is not set")
    buf = bytearray(frame_size)
    _HDR.pack_into(
        buf, 0, MAGIC, VERSION, frame.flags, frame.seq, frame.package_id,
        frame.element_id, len(frame.code), len(frame.payload), *frame.args)
    cursor = HDR_SIZE
    if frame.code:
        struct.pack_into("<Q", buf, cursor, frame.gotp)
        cursor += GOTP_SIZE
        buf[cursor: cursor + len(frame.code)] = frame.code
        cursor += len(frame.code)
    buf[cursor: cursor + len(frame.payload)] = frame.payload
    buf[frame_size - 1] = frame.seq
    return bytes(buf)


@dataclass
class FrameView:
    """Decoded header of a received frame plus section offsets (relative
    to the start of the mailbox slot the frame landed in)."""

    flags: int
    package_id: int
    element_id: int
    code_size: int
    payload_size: int
    seq: int
    args: tuple[int, int]
    gotp: int

    @property
    def injected(self) -> bool:
        return bool(self.flags & F_INJECTED)

    @property
    def no_exec(self) -> bool:
        return bool(self.flags & F_NO_EXEC)

    @property
    def gotp_off(self) -> int:
        return HDR_SIZE  # meaningful only when injected

    @property
    def code_off(self) -> int:
        return HDR_SIZE + (GOTP_SIZE if self.code_size else 0)

    @property
    def payload_off(self) -> int:
        return self.code_off + self.code_size


def unpack_header(blob: bytes | bytearray | memoryview, offset: int = 0
                  ) -> FrameView:
    (magic, version, flags, seq, pkg, elem, code_size, payload_size,
     a0, a1) = _HDR.unpack_from(blob, offset)
    if magic != MAGIC:
        raise MailboxError(f"bad frame magic {magic:#x}")
    if version != VERSION:
        raise MailboxError(f"unsupported frame version {version}")
    gotp = 0
    if code_size:
        gotp = struct.unpack_from("<Q", blob, offset + HDR_SIZE)[0]
    return FrameView(flags, pkg, elem, code_size, payload_size, seq,
                     (a0, a1), gotp)
