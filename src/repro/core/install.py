"""Directory-based package build and install (§IV).

The paper's build tools "take a list of jams and rieds with source files
located in a subdirectory tree … each element … defined in one canonically
named source file, e.g. ``jam_append.amc`` or ``ried_array.rdc``", and
"the build process generates a package header file and shared libraries in
the package install directory".  This module implements that file-level
contract:

* :func:`collect_sources` — scan a source tree for ``jam_*.amc`` and
  ``ried_*.rdc`` files (element name = file stem).
* :func:`build_package_from_dir` — collect + build.
* :func:`install_package` — write the package install directory: the
  shared library, the generated C header, one ``.jam`` blob per element,
  and a JSON manifest.
* :func:`load_installed_package` — reconstruct a :class:`PackageBuild`
  from an install directory (what a program links against at runtime).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import PackageError
from .toolchain import (
    JamArtifact,
    JamSource,
    PackageBuild,
    RiedSource,
    build_package,
)

MANIFEST_NAME = "package.json"
MANIFEST_VERSION = 1


def collect_sources(source_dir: str | Path
                    ) -> tuple[list[JamSource], list[RiedSource]]:
    """Scan a tree for canonical jam/ried sources.

    ``jam_<name>.amc`` files become jams whose entry function must be
    ``jam_<name>``; ``ried_<name>.rdc`` files become rieds.  Files are
    ordered by element name so ids are stable across builds and
    independent of directory layout.
    """
    root = Path(source_dir)
    if not root.is_dir():
        raise PackageError(f"source directory {root} does not exist")
    jams = []
    rieds = []
    for path in sorted(root.rglob("*.amc"), key=lambda p: p.stem):
        if not path.stem.startswith("jam_"):
            raise PackageError(
                f"{path.name}: jam sources must be named jam_<element>.amc")
        jams.append(JamSource(path.stem, path.read_text()))
    for path in sorted(root.rglob("*.rdc"), key=lambda p: p.stem):
        if not path.stem.startswith("ried_"):
            raise PackageError(
                f"{path.name}: ried sources must be named ried_<name>.rdc")
        rieds.append(RiedSource(path.stem, path.read_text()))
    if not jams:
        raise PackageError(f"no jam_*.amc sources under {root}")
    return jams, rieds


def build_package_from_dir(name: str, source_dir: str | Path
                           ) -> PackageBuild:
    """Build a package from a canonical source tree."""
    jams, rieds = collect_sources(source_dir)
    return build_package(name, jams, rieds)


def install_package(build: PackageBuild, install_dir: str | Path) -> Path:
    """Write the package install directory; returns its path."""
    out = Path(install_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / f"libtc_{build.name}.so").write_bytes(build.library_elf)
    if build.dispatch_elf:
        (out / f"libtc_{build.name}_dispatch.so").write_bytes(
            build.dispatch_elf)
    (out / f"{build.name}.h").write_text(build.header)
    elements = []
    for art in build.jams:
        blob_name = f"{art.name}.jam"
        (out / blob_name).write_bytes(art.blob)
        (out / f"{art.name}.lst").write_text(art.assembly)
        elements.append({
            "name": art.name,
            "element_id": art.element_id,
            "blob": blob_name,
            "entry_off": art.entry_off,
            "text_size": art.text_size,
            "rodata_size": art.rodata_size,
            "externs": art.externs,
        })
    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "name": build.name,
        "package_id": build.package_id,
        "library": f"libtc_{build.name}.so",
        "dispatch": (f"libtc_{build.name}_dispatch.so"
                     if build.dispatch_elf else ""),
        "header": f"{build.name}.h",
        "elements": elements,
    }
    (out / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return out


def load_installed_package(install_dir: str | Path) -> PackageBuild:
    """Reconstruct a PackageBuild from an install directory."""
    root = Path(install_dir)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.is_file():
        raise PackageError(f"{root} is not a package install directory "
                           f"(missing {MANIFEST_NAME})")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise PackageError(f"corrupt manifest in {root}: {exc}") from exc
    if manifest.get("manifest_version") != MANIFEST_VERSION:
        raise PackageError(
            f"unsupported manifest version {manifest.get('manifest_version')}")
    jams = []
    for el in manifest["elements"]:
        blob_path = root / el["blob"]
        if not blob_path.is_file():
            raise PackageError(f"missing jam blob {blob_path}")
        lst = root / f"{el['name']}.lst"
        jams.append(JamArtifact(
            name=el["name"],
            element_id=el["element_id"],
            blob=blob_path.read_bytes(),
            entry_off=el["entry_off"],
            text_size=el["text_size"],
            rodata_size=el["rodata_size"],
            externs=list(el["externs"]),
            assembly=lst.read_text() if lst.is_file() else "",
        ))
    library = (root / manifest["library"]).read_bytes()
    dispatch = b""
    if manifest.get("dispatch"):
        dpath = root / manifest["dispatch"]
        if dpath.is_file():
            dispatch = dpath.read_bytes()
    header_path = root / manifest["header"]
    return PackageBuild(
        name=manifest["name"],
        package_id=manifest["package_id"],
        jams=jams,
        library_elf=library,
        dispatch_elf=dispatch,
        header=header_path.read_text() if header_path.is_file() else "",
    )
