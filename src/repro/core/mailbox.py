"""Reactive mailboxes (§III-A, Fig 1) and the waiter thread.

A mailbox is pinned memory carved into ``banks x slots`` fixed-size
frames, registered for one-sided remote write.  A dedicated waiter thread
parks on the *signal byte* of the next expected frame — by spin-polling or
via the WFE monitor — and dispatches each arriving active message: parse
header, (optionally) patch the GOT pointer, and either call the local
function for the element or execute the code that arrived in the frame.

Flow control for the injection-rate shape (§VI-A2) is sender-owned flags:
one per bank, living in *sender* memory.  The receiver raises a bank's
flag with a small RDMA put once it has drained the bank; the sender never
reuses a bank before seeing its flag — keeping the reactive mailbox itself
free of protocol overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import MailboxError
from ..machine.pages import PROT_RW, PROT_RWX, PROT_RX
from ..obs.metrics import METRICS as _M
from ..obs.tracer import TRACER as _T, node_pid
from ..rdma.mr import Access
from ..sim.clock import CPU_CLOCK
from ..sim.engine import Delay
from .config import WaitMode
from .message import HDR_SIZE, FrameView, unpack_header

_MPROTECT_NS = 620.0  # per-message mprotect pair in split-code-page mode


@dataclass(frozen=True)
class MailboxInfo:
    """What a sender learns about a remote mailbox at setup time."""
    addr: int
    rkey: int
    banks: int
    slots: int
    frame_size: int


class Mailbox:
    """Receiver-side mailbox region."""

    def __init__(self, runtime, banks: int, slots: int, frame_size: int):
        if banks < 1 or slots < 1:
            raise MailboxError("mailbox needs at least 1 bank and 1 slot")
        if frame_size % 64:
            raise MailboxError("frame size must be a multiple of 64")
        self.runtime = runtime
        self.banks = banks
        self.slots = slots
        self.frame_size = frame_size
        size = banks * slots * frame_size
        # Compact study layout: code+data together on RWX pages.  With the
        # split-code security option the mailbox never needs X.
        prot = PROT_RW if runtime.cfg.split_code_pages else PROT_RWX
        self.addr = runtime.node.map_region(size, prot, align=4096,
                                            label="mailbox")
        self.mr = runtime.hca.register_memory(
            self.addr, size, Access.REMOTE_WRITE | Access.REMOTE_READ)

    def slot_addr(self, bank: int, slot: int) -> int:
        if not (0 <= bank < self.banks and 0 <= slot < self.slots):
            raise MailboxError(f"bad slot ({bank},{slot})")
        return self.addr + (bank * self.slots + slot) * self.frame_size

    def sig_addr(self, bank: int, slot: int) -> int:
        return self.slot_addr(bank, slot) + self.frame_size - 1

    def info(self) -> MailboxInfo:
        return MailboxInfo(self.addr, self.mr.rkey, self.banks, self.slots,
                           self.frame_size)


@dataclass
class WaiterStats:
    frames: int = 0
    injected_frames: int = 0
    rejected_frames: int = 0
    exec_ns_total: float = 0.0
    last_exec_ret: int = 0
    dispatch_times: list[float] = field(default_factory=list)


class Waiter:
    """The mailbox thread: wait -> parse -> (patch GOT) -> invoke -> next.

    ``on_frame(view, slot_addr)`` is an optional hook run after dispatch;
    if it returns a generator it is driven inside the waiter process (the
    ping-pong benchmark uses it to send the response message).
    """

    def __init__(self, runtime, mailbox: Mailbox,
                 on_frame: Optional[Callable] = None,
                 flag_target: Optional[tuple[int, int, int]] = None,
                 record_dispatch: bool = False,
                 core: Optional[int] = None):
        self.rt = runtime
        self.mailbox = mailbox
        self.on_frame = on_frame
        # The waiter thread may be pinned to any core of the node; a
        # non-default core gets its own execution context (VM).
        self.core = runtime.core if core is None else core
        if self.core == runtime.core:
            self.vm = runtime.vm
        else:
            from ..isa.vm import Vm
            self.vm = Vm(runtime.node, core=self.core,
                         intrinsics=runtime.intrinsics)
        # (sender node id, remote flag addr, rkey): where bank flags are
        # raised for flow control — addressed per peer on the fabric.
        self.flag_target = flag_target
        self.record_dispatch = record_dispatch
        self.stats = WaiterStats()
        self._stop = False
        self._proc = None
        # per-bank round counter -> expected sequence tag
        self._rounds = [0] * mailbox.banks
        # split-code-page scratch (lazy)
        self._code_scratch = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        if self._proc is None:
            self._proc = self.rt.engine.spawn(
                self._loop(), name=f"waiter.n{self.rt.node.node_id}")
        return self._proc

    def stop(self) -> None:
        self._stop = True

    # -- wait primitives --------------------------------------------------------

    def _wait_sig(self, sig_addr: int, expected: int):
        """Park until the signal byte reads ``expected``.

        Functionally both modes wake on the monitor event (the simulation
        has no reason to busy-loop); they differ in cycle accounting and
        in the small extra wake latency of WFE — exactly the distinction
        Figs 13-14 measure.
        """
        rt = self.rt
        node = rt.node
        core = self.core
        cfg = rt.cfg
        start = rt.engine.now
        ev = node.monitor_event(sig_addr)
        spins = 0
        while node.mem.read_u8(sig_addr) != expected:
            if self._stop:
                return False
            spins += 1
            yield ev
            if self._stop:
                return False
        waited = rt.engine.now - start
        if cfg.wait_mode is WaitMode.POLL:
            # The spin loop burned every cycle of the wait.
            node.add_wait_cycles(core, CPU_CLOCK.ns_to_cycles(waited))
        else:
            node.add_wait_cycles(
                core,
                cfg.wfe_wake_cycles
                + int(CPU_CLOCK.ns_to_cycles(waited) * cfg.wfe_housekeeping_duty))
            yield Delay(cfg.wfe_wake_ns)
        # Scheduler preemption (stress runs): the thread may have lost the
        # CPU; it cannot react until it is back on core.
        delay = node.runnable_delay(core, rt.engine.now)
        if delay > 0.0:
            yield Delay(delay)
        # Read the signal line through the hierarchy: arrival invalidated
        # it, so this is the first demand miss on the message (LLC hit
        # when stashed, DRAM when not).
        lat = node.hier.access(rt.engine.now, core, sig_addr, 1, "read")
        node.add_busy_ns(core, lat)
        yield Delay(lat)
        if _T.enabled:
            end = rt.engine.now
            pid = node_pid(node.node_id)
            _T.span(pid, core, "mb.wait", start, end,
                    {"mode": cfg.wait_mode.value})
            _T.span(pid, core, "mb.sig_read", end - lat, end)
        if _M.enabled:
            end = rt.engine.now
            nid = node.node_id
            _M.count(f"tc_mb_sig_poll_spins_total|node={nid}", end, spins)
            _M.observe(f"tc_mb_wait_ns|node={nid}", end - start)
        return True

    # -- dispatch -------------------------------------------------------------------

    def _dispatch(self, slot_addr: int):
        """Process one frame that is known to have arrived."""
        rt = self.rt
        node = rt.node
        core = self.core
        cfg = rt.cfg
        t0 = rt.engine.now
        # Parse the header: one read sweep over HDR+GOTP.
        lat = node.hier.access(rt.engine.now, core, slot_addr,
                               HDR_SIZE + 8, "read")
        cost = lat + cfg.dispatch_parse_ns
        node.add_busy_ns(core, cost)
        yield Delay(cost)
        view: FrameView = unpack_header(
            node.mem.data, slot_addr)
        self.stats.frames += 1
        if view.injected:
            self.stats.injected_frames += 1

        run_it = not (view.no_exec or cfg.without_execution)
        if view.injected and cfg.refuse_injected:
            self.stats.rejected_frames += 1
            run_it = False

        if _T.enabled:
            _T.span(node_pid(node.node_id), core, "mb.parse", t0, t0 + cost,
                    {"injected": bool(view.injected)})
        if run_it:
            yield from self._invoke(view, slot_addr)
        if _T.enabled:
            # Dispatch ends before the on_frame hook: the hook belongs
            # to the benchmark (e.g. the pong send), not the message.
            _T.span(node_pid(node.node_id), core, "mb.dispatch", t0,
                    rt.engine.now,
                    {"injected": bool(view.injected), "executed": run_it})
        if _M.enabled:
            # Dispatch latency: signal detected -> frame fully handled
            # (the sender-post timestamp is not carried in the frame, so
            # this is the receiver-side half of end-to-end latency).
            end = rt.engine.now
            nid = node.node_id
            _M.count(f"tc_mb_frames_total|node={nid}", end)
            _M.observe(f"tc_mb_dispatch_ns|node={nid}", end - t0)
            node.hier.sample_metrics(_M, end)
        if self.on_frame is not None:
            out = self.on_frame(view, slot_addr)
            if out is not None and hasattr(out, "__iter__"):
                yield from out
        return view

    def _invoke(self, view: FrameView, slot_addr: int):
        rt = self.rt
        node = rt.node
        cfg = rt.cfg
        pkg = rt.packages.get(view.package_id)
        if pkg is None:
            raise MailboxError(f"frame for unknown package "
                               f"{view.package_id:#x}")
        element = pkg.element_by_id(view.element_id)
        payload_addr = slot_addr + view.payload_off
        args = (payload_addr, view.payload_size, *view.args)

        if view.injected:
            entry = slot_addr + view.code_off
            if not cfg.sender_sets_gotp:
                # §V mitigation: receiver inserts the GOT pointer from its
                # own trusted per-element table, ignoring the wire value.
                node.mem.write_u64(slot_addr + view.gotp_off,
                                   element.got_addr)
                w = node.hier.access(rt.engine.now, self.core,
                                     slot_addr + view.gotp_off, 8, "write")
                node.add_busy_ns(self.core, w)
                if _T.enabled:
                    _T.span(node_pid(node.node_id), self.core, "got.patch",
                            rt.engine.now, rt.engine.now + w)
                yield Delay(w)
            if cfg.split_code_pages:
                entry = yield from self._stage_code(view, slot_addr)
        else:
            # Local Function dispatch: index the library's function-pointer
            # vector with the element id from the header (Fig 3).
            if pkg.dispatch_table:
                slot = pkg.dispatch_table + 8 * view.element_id
                lat = node.hier.access(rt.engine.now, self.core, slot, 8,
                                       "read")
                node.add_busy_ns(self.core, lat)
                yield Delay(lat)
                entry = node.mem.read_u64(slot)
            else:
                entry = element.local_fn

        t_inv = rt.engine.now
        res = self.vm.call(entry, args, now=rt.engine.now)
        self.stats.exec_ns_total += res.elapsed_ns
        self.stats.last_exec_ret = res.ret
        total = cfg.invoke_setup_ns + res.elapsed_ns
        if _T.enabled:
            _T.span(node_pid(node.node_id), self.core, "mb.invoke", t_inv,
                    t_inv + total, {"injected": bool(view.injected),
                                    "element": view.element_id})
        yield Delay(total)

    def _stage_code(self, view: FrameView, slot_addr: int):
        """W^X option: copy GOTP+code out of the mailbox to RX pages."""
        rt = self.rt
        node = rt.node
        size = 8 + view.code_size
        if not self._code_scratch:
            self._code_scratch = node.map_region(
                max(64 * 1024, (size + 4095) & ~4095), PROT_RW,
                align=4096, label="codestage")
        scratch = self._code_scratch
        node.pages.set_prot(scratch, size, PROT_RW)
        blob = node.mem.read(slot_addr + view.gotp_off, size)
        node.mem.write(scratch, blob)
        node.pages.set_prot(scratch, size, PROT_RX)
        cost = _MPROTECT_NS
        cost += node.hier.stream_cost(rt.engine.now, self.core,
                                      slot_addr + view.gotp_off, size, "read")
        cost += node.hier.stream_cost(rt.engine.now + cost, self.core,
                                      scratch, size, "write")
        node.add_busy_ns(self.core, cost)
        if _T.enabled:
            _T.span(node_pid(node.node_id), self.core, "mb.stage_code",
                    rt.engine.now, rt.engine.now + cost, {"size": size})
        yield Delay(cost)
        return scratch + 8  # entry: first code byte after the GOTP cell

    # -- main loop -----------------------------------------------------------------

    def _loop(self):
        rt = self.rt
        mb = self.mailbox
        while not self._stop:
            for bank in range(mb.banks):
                seq = (self._rounds[bank] % 255) + 1
                for slot in range(mb.slots):
                    ok = yield from self._wait_sig(mb.sig_addr(bank, slot),
                                                   seq)
                    if not ok:
                        return
                    t0 = rt.engine.now
                    yield from self._dispatch(mb.slot_addr(bank, slot))
                    if self.record_dispatch:
                        self.stats.dispatch_times.append(rt.engine.now - t0)
                    if _M.enabled:
                        # Slot occupancy: frames of this bank already
                        # landed (signal byte raised) but not dispatched.
                        occ = 0
                        for s in range(slot + 1, mb.slots):
                            if rt.node.mem.read_u8(
                                    mb.sig_addr(bank, s)) == seq:
                                occ += 1
                        _M.sample(
                            f"tc_mb_backlog|node={rt.node.node_id}",
                            rt.engine.now, occ)
                self._rounds[bank] += 1
                if self.flag_target is not None:
                    # Raise the sender's flag for this bank: small put,
                    # routed to the sending peer's node.
                    peer, flag_addr, rkey = self.flag_target
                    rt.node.mem.write_u64(rt.flag_scratch, 1)
                    req = rt.ep_to(peer).put_nbi(
                        rt.engine.now, rt.flag_scratch,
                        flag_addr + bank * 8, 8, rkey, track=False)
                    yield Delay(req.cpu_ns)
