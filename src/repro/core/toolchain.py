"""The Two-Chains build toolchain (§IV).

Takes canonical jam (``.amc``) and ried (``.rdc``) sources and produces a
package: one ordinary shared library containing every element compiled
*unmodified* (the Local Function library, also the source of receiver-side
GOTs), plus, per jam, an injectable blob — the jam's machine code with its
read-only data appended and every GOT access rewritten to indirect through
the message GOTP cell.

Mirrors the paper's flow: C sources -> PIC compilation (all externals via
GOT, as with ``-fpic -fno-plt``) -> static assembly modification -> package
install (header + shared libraries).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..amc import compile_amc
from ..elf import build_shared_object
from ..errors import PackageError
from ..isa.assembler import ObjectModule, RelocKind
from .gotrewrite import count_got_accesses, rewrite_got_accesses


@dataclass(frozen=True)
class JamSource:
    """One canonical jam source file (e.g. ``jam_append.amc``)."""
    name: str          # element name; also the entry function's symbol
    source: str        # AMC text
    # Pad the code section to this many bytes with NOPs (0 = natural
    # size).  Used to match the paper's reported shipped-code sizes when
    # reproducing the message-size crossover points.
    pad_code_to: int = 0


@dataclass(frozen=True)
class RiedSource:
    """One ried source: interface/data library loaded at setup time."""
    name: str
    source: str


@dataclass
class JamArtifact:
    name: str
    element_id: int
    blob: bytes            # rewritten code + read-only data, ships in frames
    entry_off: int         # entry point offset within blob
    text_size: int
    rodata_size: int
    externs: list[str]     # GOT slot order (matches receiver element GOT)
    assembly: str          # compiler listing, kept for inspection

    @property
    def code_size(self) -> int:
        return len(self.blob)


@dataclass
class PackageBuild:
    name: str
    package_id: int
    jams: list[JamArtifact]
    library_elf: bytes       # the Local Function / ried shared object
    # A second tiny shared object holding the Local Function dispatch
    # table: a vector of function pointers indexed by element id (§IV-B).
    # Its ABS64 entries resolve against the package library at load time.
    dispatch_elf: bytes = b""
    header: str = ""         # generated "package header" (doc artifact)

    def jam(self, name: str) -> JamArtifact:
        for j in self.jams:
            if j.name == name:
                return j
        raise PackageError(f"package {self.name!r} has no jam {name!r}")


def _package_id(name: str) -> int:
    return int.from_bytes(hashlib.sha256(name.encode()).digest()[:4],
                          "little")


def _build_jam_blob(jam: JamSource) -> JamArtifact:
    """Compile one jam translation unit into an injectable blob."""
    result = compile_amc(jam.source)
    om: ObjectModule = result.module
    entry = om.symbols.get(jam.name)
    if entry is None or entry.section != "text":
        raise PackageError(
            f"jam {jam.name!r} must define a function named {jam.name!r}")
    if om.bss_size:
        raise PackageError(
            f"jam {jam.name!r} has writable .bss state ({om.bss_size} B); "
            "mutable state belongs in a ried, not in mobile code")
    text = bytearray(om.text)
    pad = 0
    if jam.pad_code_to:
        if jam.pad_code_to < len(text):
            raise PackageError(
                f"jam {jam.name!r}: natural code size {len(text)} exceeds "
                f"pad_code_to={jam.pad_code_to}")
        pad = jam.pad_code_to - len(text)
        if pad % 8:
            raise PackageError("pad_code_to must be instruction-aligned")
    data = bytes(om.data)
    data_base = len(text) + pad  # rodata rides after the (padded) code

    for reloc in om.relocs:
        if reloc.kind is RelocKind.GOTPC32:
            continue  # rewritten wholesale below
        if reloc.kind is RelocKind.PCREL32 and reloc.section == "text":
            sym = om.symbols.get(reloc.symbol)
            if sym is None:
                raise PackageError(
                    f"jam {jam.name!r}: PCREL to unknown {reloc.symbol!r}")
            if sym.section == "bss":
                raise PackageError(
                    f"jam {jam.name!r} references .bss symbol {sym.name!r}")
            target = sym.offset if sym.section == "text" else data_base + sym.offset
            value = target - reloc.offset + reloc.addend
            text[reloc.offset + 4: reloc.offset + 8] = \
                (value & 0xFFFFFFFF).to_bytes(4, "little")
        elif reloc.kind is RelocKind.ABS64:
            raise PackageError(
                f"jam {jam.name!r} embeds an absolute pointer in data; "
                "injectable data must be position-independent")

    patched = rewrite_got_accesses(bytes(text))
    ldg_left, _ = count_got_accesses(patched)
    if ldg_left:
        raise PackageError("GOT rewrite left LDG instructions behind")
    patched += b"\0" * pad  # NOP padding (opcode 0)
    return JamArtifact(
        name=jam.name,
        element_id=-1,  # assigned by build_package
        blob=patched + data,
        entry_off=entry.offset,
        text_size=len(patched),
        rodata_size=len(data),
        externs=list(om.externs),
        assembly=result.assembly,
    )


def _merge_sources(jams: tuple[JamSource, ...], rieds: tuple[RiedSource, ...]
                   ) -> str:
    """The package library is one translation unit: rieds first (they
    define the shared data jams bind to), then every jam unmodified."""
    parts = [r.source for r in rieds] + [j.source for j in jams]
    return "\n".join(parts)


def _build_dispatch_table(name: str, jams: list[JamArtifact]) -> bytes:
    """Build the Local Function dispatch vector as its own shared object.

    The table is ``.quad jam_<a>, jam_<b>, ...`` in element-id order; each
    entry is an ABS64 relocation against the package library's exported
    function, resolved when the table is loaded (after the library).
    """
    from ..isa.assembler import assemble

    lines = [f".extern {art.name}" for art in jams]
    lines += [".data", ".align 8", f".global tc_dispatch_{name}",
              f"tc_dispatch_{name}:"]
    lines += [f"    .quad {art.name}" for art in jams]
    return build_shared_object(assemble("\n".join(lines) + "\n"),
                               soname=f"libtc_{name}_dispatch.so")


def _generate_header(name: str, package_id: int, jams: list[JamArtifact]
                     ) -> str:
    lines = [
        f"/* generated by the Two-Chains build tools — package {name!r} */",
        f"#define TC_PACKAGE_{name.upper()}_ID {package_id:#010x}",
    ]
    for jam in jams:
        lines.append(
            f"#define TC_ELEM_{name.upper()}_{jam.name.upper()} "
            f"{jam.element_id}  /* code {jam.code_size} B, "
            f"{len(jam.externs)} GOT slots */")
    return "\n".join(lines) + "\n"


def build_package(name: str, jams: list[JamSource] | tuple[JamSource, ...],
                  rieds: list[RiedSource] | tuple[RiedSource, ...] = ()
                  ) -> PackageBuild:
    """Build a Two-Chains package from jam and ried sources."""
    jams = tuple(jams)
    rieds = tuple(rieds)
    if not jams:
        raise PackageError("a package needs at least one jam")
    names = [j.name for j in jams]
    if len(set(names)) != len(names):
        raise PackageError(f"duplicate jam names in package {name!r}")

    artifacts = []
    for element_id, jam in enumerate(jams):
        art = _build_jam_blob(jam)
        art.element_id = element_id
        artifacts.append(art)

    lib_src = _merge_sources(jams, rieds)
    lib_om = compile_amc(lib_src).module
    library_elf = build_shared_object(lib_om, soname=f"libtc_{name}.so")

    pkg_id = _package_id(name)
    return PackageBuild(
        name=name,
        package_id=pkg_id,
        jams=artifacts,
        library_elf=library_elf,
        dispatch_elf=_build_dispatch_table(name, artifacts),
        header=_generate_header(name, pkg_id, artifacts),
    )
