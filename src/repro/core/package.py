"""Receiver-side package loading: libraries, element GOTs, dispatch table.

Loading a package on a process (§IV-A):

1. ``dlopen`` the package shared library — rieds auto-initialize their
   data/interfaces, and every jam's *local* compilation becomes callable.
2. Build one **element GOT** per jam: the jam's extern list (fixed at
   package build, identical on both sides by construction) resolved
   against *this process's* namespace.  This table is what an injected
   copy of the jam will indirect through when it arrives — remote linking
   without any name registry.
3. Assemble the Local Function dispatch vector: element id -> function
   address in the loaded library (Fig 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PackageError
from ..linker.loader import LoadedLibrary, Loader
from ..machine.node import Node
from ..machine.pages import PROT_RW
from .toolchain import PackageBuild


@dataclass
class LoadedElement:
    name: str
    element_id: int
    got_addr: int            # this process's GOT for the element
    got_slots: list[str]
    local_fn: int            # address of the unmodified function in the lib


@dataclass
class LoadedPackage:
    build: PackageBuild
    library: LoadedLibrary
    # Address of the Local Function dispatch vector (function pointers
    # indexed by element id), 0 when the build carries none.
    dispatch_table: int = 0
    elements: list[LoadedElement] = field(default_factory=list)

    @property
    def package_id(self) -> int:
        return self.build.package_id

    def element(self, name: str) -> LoadedElement:
        for el in self.elements:
            if el.name == name:
                return el
        raise PackageError(f"no element {name!r} in package "
                           f"{self.build.name!r}")

    def element_by_id(self, element_id: int) -> LoadedElement:
        if not 0 <= element_id < len(self.elements):
            raise PackageError(f"bad element id {element_id}")
        return self.elements[element_id]


def load_package(node: Node, loader: Loader, build: PackageBuild
                 ) -> LoadedPackage:
    """Load a package into one process (see module docstring)."""
    library = loader.load(build.library_elf, f"libtc_{build.name}.so")
    pkg = LoadedPackage(build=build, library=library)
    if build.dispatch_elf:
        dlib = loader.load(build.dispatch_elf,
                           f"libtc_{build.name}_dispatch.so")
        pkg.dispatch_table = dlib.symbol(f"tc_dispatch_{build.name}")
    ns = loader.namespace
    for art in build.jams:
        try:
            local_fn = library.symbol(art.name)
        except Exception as exc:
            raise PackageError(
                f"package library lacks jam symbol {art.name!r}") from exc
        got_addr = node.map_region(max(len(art.externs) * 8, 8), PROT_RW,
                                   align=64, label="elem.got")
        for slot, sym in enumerate(art.externs):
            node.mem.write_u64(got_addr + slot * 8, ns.resolve(sym))
        pkg.elements.append(LoadedElement(
            name=art.name,
            element_id=art.element_id,
            got_addr=got_addr,
            got_slots=list(art.externs),
            local_fn=local_fn,
        ))
    return pkg
