"""Convenience construction of the standard two-node Two-Chains world.

Used by tests, examples, and every benchmark driver: a back-to-back
testbed with one Two-Chains runtime per node and the standard package
(§VI-B jams) loaded on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.hierarchy import HierarchyConfig
from ..rdma.fabric import Testbed
from ..rdma.params import LinkParams, DEFAULT_LINK
from ..ucp.worker import UcpConfig
from .config import RuntimeConfig
from .message import frame_wire_size
from .runtime import TwoChainsRuntime
from .stdjams import build_std_package
from .toolchain import PackageBuild


@dataclass
class World:
    __test__ = False  # not a pytest class

    bed: Testbed
    client: TwoChainsRuntime   # node0
    server: TwoChainsRuntime   # node1
    build: PackageBuild

    @property
    def engine(self):
        return self.bed.engine

    def frame_size_for(self, jam_name: str, payload_bytes: int,
                       inject: bool) -> int:
        """Fixed frame size for a benchmark point (paper: messages sized
        to the nearest 64 B)."""
        code = len(self.build.jam(jam_name).blob) if inject else 0
        return frame_wire_size(code, payload_bytes)


def make_world(hier_cfg: HierarchyConfig | None = None,
               client_cfg: RuntimeConfig | None = None,
               server_cfg: RuntimeConfig | None = None,
               link: LinkParams = DEFAULT_LINK,
               ucp_cfg: UcpConfig | None = None,
               build: PackageBuild | None = None,
               seed: int | None = None) -> World:
    bed = Testbed.create(hier_cfg=hier_cfg, link=link, seed=seed)
    client = TwoChainsRuntime(bed.engine, bed.node0, bed.hca0, bed.qp01,
                              cfg=client_cfg, ucp_cfg=ucp_cfg)
    server = TwoChainsRuntime(bed.engine, bed.node1, bed.hca1, bed.qp10,
                              cfg=server_cfg, ucp_cfg=ucp_cfg)
    pkg_build = build if build is not None else build_std_package()
    client.load_package(pkg_build)
    server.load_package(pkg_build)
    return World(bed=bed, client=client, server=server, build=pkg_build)
