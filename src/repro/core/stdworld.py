"""Convenience construction of Two-Chains worlds: the standard two-node
testbed and arbitrary N-node fabrics.

Used by tests, examples, and every benchmark driver: a world is a
:class:`~repro.rdma.fabric.Fabric` (nodes + HCAs + QP mesh, described by
a :class:`~repro.rdma.fabric.Topology`) with one Two-Chains runtime per
node and a named package loaded on every side.  The default topology is
the paper's back-to-back pair (§VI-C); ``Topology.chain(k)`` and custom
topologies build the N-node worlds docs/TOPOLOGY.md describes.

Beyond plain construction (:func:`make_world`), this module is the home
of the **setup cache** (:class:`SetupCache` / :func:`shared_world`): a
world's build — AMC compile, ELF build, load, remote link — is identical
for every sweep point that shares a construction key, so the first
acquisition builds and checkpoints the world and later acquisitions
rewind the same instance via :meth:`World.restore` instead of paying the
build again (docs/ARCHITECTURE.md, "Performance engineering").
"""

from __future__ import annotations

import enum
import json
import time
from dataclasses import asdict, dataclass, is_dataclass

from ..errors import TwoChainsError
from ..machine.hierarchy import HierarchyConfig
from ..obs.tracer import PID_SIM, TID_TOOL, TRACER as _T
from ..rdma.fabric import Fabric, Topology
from ..rdma.params import LinkParams, DEFAULT_LINK
from ..ucp.worker import UcpConfig
from .config import RuntimeConfig
from .message import frame_wire_size
from .runtime import TwoChainsRuntime
from .stdjams import build_std_package
from .toolchain import PackageBuild

#: Named package builders: worlds constructed from a *named* package are
#: reproducible from their setup key alone (unlike ad-hoc ``build=``
#: packages), so they participate in the setup cache.  Workload modules
#: register their packages here on import (e.g. ``repro.workloads.chainkv``
#: registers ``"chainkv"``).
PACKAGE_BUILDERS = {"std": build_std_package}


@dataclass
class WorldCheckpoint:
    """Opaque state capture of one :class:`World` (see ``World.snapshot``)."""

    engine: tuple
    rngs: dict
    nodes: list            # per-node dicts, in node-id order
    hcas: list             # per-HCA tuples, in node-id order
    qps: dict              # (src, dst) -> QueuePair tuple
    runtimes: list         # per-runtime dicts, in node-id order


@dataclass
class World:
    __test__ = False  # not a pytest class

    bed: Fabric
    runtimes: list[TwoChainsRuntime]
    build: PackageBuild

    @property
    def engine(self):
        return self.bed.engine

    @property
    def topology(self) -> Topology:
        return self.bed.topology

    # node0/node1 keep their historical names on the two-node world; the
    # fabric surface addresses every node by id or role.
    @property
    def client(self) -> TwoChainsRuntime:
        return self.runtimes[0]

    @property
    def server(self) -> TwoChainsRuntime:
        return self.runtimes[1]

    def runtime(self, who) -> TwoChainsRuntime:
        """The runtime of one node, by node id or role name."""
        return self.runtimes[self.topology.resolve(who)]

    def node(self, who):
        """The machine node, by node id or role name."""
        return self.bed.nodes[self.topology.resolve(who)]

    def frame_size_for(self, jam_name: str, payload_bytes: int,
                       inject: bool) -> int:
        """Fixed frame size for a benchmark point (paper: messages sized
        to the nearest 64 B)."""
        code = len(self.build.jam(jam_name).blob) if inject else 0
        return frame_wire_size(code, payload_bytes)

    # -- shard-routable driver reads ---------------------------------------
    # Drivers use these instead of poking node internals so the same code
    # works when a node's state lives in a shard worker process: the
    # WorldProxy overrides them with RPC-routed versions, this class is
    # the direct single-process path.

    def read_u64(self, node_id: int, addr: int) -> int:
        return self.bed.nodes[node_id].mem.read_u64(addr)

    def read_mem(self, node_id: int, addr: int, size: int) -> bytes:
        return self.bed.nodes[node_id].mem.read(addr, size)

    def board_counters(self) -> dict[str, int]:
        """Every node's Scoreboard counters, summed in node-id order."""
        out: dict[str, int] = {}
        for node in self.bed.nodes:
            for name, value in node.board.counters.items():
                out[name] = out.get(name, 0) + int(value)
        return out

    # -- checkpoint / fork -------------------------------------------------

    def snapshot(self) -> WorldCheckpoint:
        """Checkpoint every mutable subsystem of this world.

        Requires quiescence — empty event queue, no parked WFE waiters,
        no in-flight UCX requests — which is exactly the state right
        after :func:`make_world` or after a completed benchmark shape.
        Violations raise instead of producing an approximate capture.
        """
        bed = self.bed
        return WorldCheckpoint(
            engine=bed.engine.snapshot(),
            rngs=bed.rngs.snapshot(),
            nodes=[node.snapshot() for node in bed.nodes],
            hcas=[hca.snapshot() for hca in bed.hcas],
            qps={pair: qp.snapshot() for pair, qp in bed.qps.items()},
            runtimes=[rt.snapshot() for rt in self.runtimes],
        )

    def restore(self, cp: WorldCheckpoint) -> None:
        """Rewind this world to a checkpoint, in place.

        After the rewind every observable — memory bytes, cache/LRU
        state, DRAM ledger, RNG streams, rkey sequence, scoreboard
        counters, simulated clock — matches the snapshot instant
        exactly, so a restored world measures byte-identically to a
        freshly built one (enforced by the fork determinism tests).
        """
        bed = self.bed
        bed.engine.restore(cp.engine)
        bed.rngs.restore(cp.rngs)
        for node, snap in zip(bed.nodes, cp.nodes):
            node.restore(snap)
        for hca, snap in zip(bed.hcas, cp.hcas):
            hca.restore(snap)
        for pair, snap in cp.qps.items():
            bed.qps[pair].restore(snap)
        for rt, snap in zip(self.runtimes, cp.runtimes):
            rt.restore(snap)


def make_world(hier_cfg: HierarchyConfig | None = None,
               client_cfg: RuntimeConfig | None = None,
               server_cfg: RuntimeConfig | None = None,
               link: LinkParams = DEFAULT_LINK,
               ucp_cfg: UcpConfig | None = None,
               build: PackageBuild | None = None,
               seed: int | None = None,
               topology: Topology | None = None,
               package: str = "std") -> World:
    """Build a world: a fabric, one runtime per node, the package loaded
    everywhere.

    ``topology`` defaults to the two-node pair over ``link``; pass
    ``Topology.chain(k)`` (or any custom Topology) for an N-node world.
    ``client_cfg`` configures node 0 (the initiator by convention),
    ``server_cfg`` every other node.  ``package`` names a registered
    builder in :data:`PACKAGE_BUILDERS`; an explicit ``build`` overrides
    it (and makes the world uncacheable — see :func:`world_setup_key`).
    """
    bed = Fabric.create(hier_cfg=hier_cfg, link=link, seed=seed,
                        topology=topology)
    runtimes = []
    for i, (node, hca) in enumerate(zip(bed.nodes, bed.hcas)):
        if i == 0:
            cfg = client_cfg
        elif i == 1 or server_cfg is None:
            cfg = server_cfg
        else:
            # Nodes beyond the pair get their own config instance: a
            # RuntimeConfig is mutable and must not alias across nodes.
            cfg = RuntimeConfig(**vars(server_cfg))
        # Each runtime schedules on its own node's engine: the shared
        # Engine on a single-heap world, the node's shard view when the
        # DES is sharded (sim/shard.py).
        runtimes.append(TwoChainsRuntime(node.engine, node, hca,
                                         bed.qps_from(i), cfg=cfg,
                                         ucp_cfg=ucp_cfg))
    if build is not None:
        pkg_build = build
    else:
        try:
            builder = PACKAGE_BUILDERS[package]
        except KeyError:
            raise TwoChainsError(
                f"unknown world package {package!r}; registered: "
                f"{sorted(PACKAGE_BUILDERS)}") from None
        pkg_build = builder()
    for rt in runtimes:
        rt.load_package(pkg_build)
    world = World(bed=bed, runtimes=runtimes, build=pkg_build)
    if getattr(bed.engine, "backend", None) == "process":
        # Process-backed shards: drivers hold a WorldProxy whose agent is
        # registered now, pre-fork, so every later worker inherits it.
        from .worldproxy import wrap_world
        return wrap_world(world)
    return world


# ---------------------------------------------------------------------------
# setup cache: fork warm worlds instead of rebuilding them per sweep point
# ---------------------------------------------------------------------------

def _jsonable(obj):
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def world_setup_key(hier_cfg: HierarchyConfig | None = None,
                    client_cfg: RuntimeConfig | None = None,
                    server_cfg: RuntimeConfig | None = None,
                    link: LinkParams = DEFAULT_LINK,
                    ucp_cfg: UcpConfig | None = None,
                    build: PackageBuild | None = None,
                    seed: int | None = None,
                    topology: Topology | None = None,
                    package: str = "std") -> str | None:
    """Canonical JSON key over everything :func:`make_world` consumes.

    Two calls with equal keys build byte-identical worlds, so their
    setups are interchangeable.  Returns None (uncacheable) for a custom
    ``build``: ad-hoc packages have no serializable identity.
    """
    if build is not None:
        return None
    from ..sim import shard as _shard
    requested, backend = _shard.get_policy()
    nshards = _shard.resolve_shards(requested,
                                    topology.nodes if topology else 2)
    doc = {
        # Worlds built under different effective shard counts are not
        # interchangeable setup-cache entries (their engines differ even
        # though measured rows are identical by the determinism contract).
        "shards": [nshards, backend if nshards > 1 else "serial"],
        "hier": _jsonable(asdict(hier_cfg)) if is_dataclass(hier_cfg) else None,
        "client": _jsonable(asdict(client_cfg)) if is_dataclass(client_cfg)
        else None,
        "server": _jsonable(asdict(server_cfg)) if is_dataclass(server_cfg)
        else None,
        "link": _jsonable(asdict(link)),
        "ucp": _jsonable(asdict(ucp_cfg)) if is_dataclass(ucp_cfg) else None,
        "seed": seed,
        "topology": topology.canonical() if topology is not None else None,
        "package": package,
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


class SetupCache:
    """Per-process pool of checkpointed worlds, keyed by construction args.

    Disabled by default: ``make_world`` callers outside the benchmark
    orchestrator always get a fresh world.  When enabled (pool workers of
    ``twochains bench run``, unless ``--no-fork``), :func:`shared_world`
    hands out pooled instances: the first acquisition under a key builds
    the world and checkpoints it; later acquisitions rewind that same
    instance via :meth:`World.restore` and skip the whole build+link
    prefix.  A sweep point may acquire several worlds (comparison points
    build two); :meth:`begin_point` resets the per-key cursors so every
    point sees the same instance sequence — point N's k-th world under a
    key is always pool slot k, freshly rewound.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._pools: dict[str, list[tuple[World, WorldCheckpoint]]] = {}
        self._cursor: dict[str, int] = {}
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        self._pools.clear()
        self._cursor.clear()
        self.hits = 0
        self.misses = 0

    def begin_point(self) -> None:
        """Reset acquisition cursors; call at every sweep-point boundary."""
        self._cursor.clear()

    def counts(self) -> tuple[int, int]:
        return self.hits, self.misses

    def acquire(self, key: str, **kwargs) -> World:
        pool = self._pools.setdefault(key, [])
        idx = self._cursor.get(key, 0)
        self._cursor[key] = idx + 1
        if idx < len(pool):
            world, cp = pool[idx]
            t0 = time.perf_counter()
            world.restore(cp)
            if _T.enabled:
                # Host-side cost of the fork, made visible on the trace
                # timeline (sim clock just rewound to cp time).
                wall_ns = (time.perf_counter() - t0) * 1e9
                now = world.engine.now
                _T.span(PID_SIM, TID_TOOL, "world.fork", now, now + wall_ns,
                        {"pool_slot": idx, "restore_wall_ns": round(wall_ns)})
            self.hits += 1
            return world
        world = make_world(**kwargs)
        pool.append((world, world.snapshot()))
        self.misses += 1
        return world


#: Process-wide setup cache; the bench orchestrator's pool workers enable
#: it around each task group and clear it afterwards.
SETUP_CACHE = SetupCache()


def shared_world(hier_cfg: HierarchyConfig | None = None,
                 client_cfg: RuntimeConfig | None = None,
                 server_cfg: RuntimeConfig | None = None,
                 link: LinkParams = DEFAULT_LINK,
                 ucp_cfg: UcpConfig | None = None,
                 build: PackageBuild | None = None,
                 seed: int | None = None,
                 topology: Topology | None = None,
                 package: str = "std") -> World:
    """Drop-in for :func:`make_world` that goes through the setup cache.

    With the cache disabled (the default) or an uncacheable request this
    IS ``make_world``; enabled, equal-keyed acquisitions after the first
    rewind a pooled world instead of rebuilding it.
    """
    kwargs = dict(hier_cfg=hier_cfg, client_cfg=client_cfg,
                  server_cfg=server_cfg, link=link, ucp_cfg=ucp_cfg,
                  build=build, seed=seed, topology=topology,
                  package=package)
    if not SETUP_CACHE.enabled:
        return make_world(**kwargs)
    key = world_setup_key(**kwargs)
    if key is None:
        return make_world(**kwargs)
    return SETUP_CACHE.acquire(key, **kwargs)
