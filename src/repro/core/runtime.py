"""The Two-Chains runtime: per-process state, connections, jam senders.

One :class:`TwoChainsRuntime` per process (one per node in the two-node
testbed).  It owns the process namespace, loader, VM, a mini-UCX worker
bound to the node's HCA, loaded packages, and mailboxes.  A
:class:`Connection` is the sender-side handle produced by the out-of-band
setup exchange (§III-B: "the GOT redirect ... is set by the sender after
an exchange with the receiver"): remote mailbox geometry + rkey, the
receiver's per-element GOT addresses, and the bank flow-control flags.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MailboxError, PackageError, TwoChainsError
from ..isa.intrinsics import IntrinsicTable
from ..isa.vm import Vm
from ..linker.loader import Loader
from ..linker.namespace import Namespace
from ..machine.node import Node
from ..machine.pages import PROT_RW
from ..obs.metrics import METRICS as _M
from ..obs.tracer import TRACER as _T, node_pid
from ..rdma.mr import Access
from ..rdma.verbs import Hca, QueuePair
from ..sim.engine import Delay, Engine
from ..ucp.worker import UcpConfig, UcpWorker
from .config import RuntimeConfig
from .mailbox import Mailbox, MailboxInfo, Waiter
from .message import (
    F_GOTP_SENDER,
    F_INJECTED,
    F_NO_EXEC,
    Frame,
    frame_wire_size,
    pack_frame,
)
from .package import LoadedPackage, load_package
from .toolchain import PackageBuild


class TwoChainsRuntime:
    """Per-process Two-Chains state.

    ``qp_out`` is either a single outbound :class:`QueuePair` (the
    original two-node surface) or a mapping/list of outbound QPs — one
    per peer — on an N-node fabric.  The worker opens one mini-UCX
    endpoint per peer; ``self.ep`` stays the endpoint to the first peer
    so two-node call sites keep working unchanged.
    """

    def __init__(self, engine: Engine, node: Node, hca: Hca,
                 qp_out, cfg: RuntimeConfig | None = None,
                 core: int = 0, ucp_cfg: UcpConfig | None = None):
        self.engine = engine
        self.node = node
        self.hca = hca
        self.cfg = cfg or RuntimeConfig()
        self.core = core
        self.intrinsics = IntrinsicTable()
        self.namespace = Namespace(self.intrinsics)
        self.loader = Loader(node, self.namespace)
        self.vm = Vm(node, core=core, intrinsics=self.intrinsics)
        self.worker = UcpWorker(engine, node, hca, ucp_cfg, core=core)
        if isinstance(qp_out, QueuePair):
            qps = [qp_out]
        elif isinstance(qp_out, dict):
            qps = [qp_out[k] for k in sorted(qp_out)]
        else:
            qps = list(qp_out)
        for qp in qps:  # ascending peer order: deterministic setup
            self.worker.create_ep(qp)
        self.ep = self.worker.ep_to(qps[0].dst.node.node_id) if qps else None
        self.packages: dict[int, LoadedPackage] = {}
        # 8-byte scratch cell used for flag puts back to senders.
        self.flag_scratch = node.map_region(64, PROT_RW, label="flagscratch")

    def ep_to(self, peer: int):
        """The mini-UCX endpoint addressing ``peer`` (a node id)."""
        return self.worker.ep_to(peer)

    # -- checkpointing ----------------------------------------------------

    def snapshot(self) -> dict:
        """Capture runtime-level mutable state.  Node/HCA/engine state is
        captured by their own snapshots (``World.snapshot`` composes
        them); here only what the runtime itself owns: the loaded-package
        set, the (mutable) RuntimeConfig fields, and the UCX worker and
        endpoint bookkeeping.  Namespace/loader mutations after the
        snapshot (``namespace.redefine`` + ``relink_package``) are NOT
        captured — the setup cache never replays across such calls, and
        the fork-vs-fresh determinism tests enforce that contract."""
        return {
            "packages": dict(self.packages),
            "cfg": dict(vars(self.cfg)),
            "worker": self.worker.snapshot(),
            "eps": {peer: ep.snapshot()
                    for peer, ep in self.worker.eps.items()},
        }

    def restore(self, snap: dict) -> None:
        self.packages = dict(snap["packages"])
        for name, value in snap["cfg"].items():
            setattr(self.cfg, name, value)
        self.worker.restore(snap["worker"])
        for peer, ep_snap in snap["eps"].items():
            self.worker.eps[peer].restore(ep_snap)

    # -- setup ------------------------------------------------------------

    def load_package(self, build: PackageBuild) -> LoadedPackage:
        pkg = load_package(self.node, self.loader, build)
        self.packages[pkg.package_id] = pkg
        # dlopen is a setup-time cost; charge it to the core outside any
        # measured loop (benchmarks load before timing starts).
        self.node.add_busy_ns(self.core, pkg.library.load_cost_ns)
        return pkg

    def relink_package(self, pkg: LoadedPackage) -> None:
        """Refresh the package's bindings against the current namespace:
        re-apply the library's relocations and rebuild every element GOT.
        Call after loading a replacement library (with
        ``namespace.redefine``) to change what already-installed jams and
        local functions call — without restarting the process (§III)."""
        self.loader.relink(pkg.library)
        slots = 0
        for el, art in zip(pkg.elements, pkg.build.jams):
            for slot, sym in enumerate(art.externs):
                self.node.mem.write_u64(el.got_addr + slot * 8,
                                        self.namespace.resolve(sym))
                slots += 1
        if _T.enabled:
            _T.instant(node_pid(self.node.node_id), self.core, "got.relink",
                       self.engine.now,
                       {"package": pkg.build.name, "slots": slots})

    def create_mailbox(self, banks: int = 1, slots: int = 1,
                       frame_size: int = 1024) -> Mailbox:
        return Mailbox(self, banks, slots, frame_size)

    def make_waiter(self, mailbox: Mailbox, on_frame=None,
                    flag_target=None, record_dispatch: bool = False,
                    core: int | None = None) -> Waiter:
        return Waiter(self, mailbox, on_frame=on_frame,
                      flag_target=flag_target,
                      record_dispatch=record_dispatch, core=core)


@dataclass
class _ElementRemote:
    got_addr: int          # receiver-side element GOT
    code_addr: int         # sender-side staged copy of the jam blob
    code_size: int
    entry_off: int


class Connection:
    """Sender-side handle to one remote mailbox (result of the exchange)."""

    def __init__(self, sender: TwoChainsRuntime, receiver: TwoChainsRuntime,
                 mailbox: Mailbox, flow_control: bool = False):
        self.rt = sender
        self.peer = receiver.node.node_id
        self.ep = sender.ep_to(self.peer)
        self.info: MailboxInfo = mailbox.info()
        self.flow_control = flow_control
        self._remote: dict[tuple[int, int], _ElementRemote] = {}
        # Stage every known jam blob into sender memory once (the package
        # install did this in the paper's flow).
        for pkg_id, pkg in receiver.packages.items():
            spkg = sender.packages.get(pkg_id)
            if spkg is None:
                continue  # sender has not loaded this package
            for r_el, art in zip(pkg.elements, pkg.build.jams):
                code_addr = sender.node.map_region(
                    max(len(art.blob), 64), PROT_RW, label="jamcode")
                sender.node.mem.write(code_addr, art.blob)
                self._remote[(pkg_id, art.element_id)] = _ElementRemote(
                    got_addr=r_el.got_addr,
                    code_addr=code_addr,
                    code_size=len(art.blob),
                    entry_off=art.entry_off,
                )
        # Frame staging buffer.
        self._staging = sender.node.map_region(
            max(self.info.frame_size, 64), PROT_RW, align=64,
            label="framestage")
        # Bank flow-control flags (sender memory, receiver raises them).
        self.flags_addr = sender.node.map_region(
            max(self.info.banks * 8, 64), PROT_RW, label="bankflags")
        for b in range(self.info.banks):
            sender.node.mem.write_u64(self.flags_addr + b * 8, 1)
        self.flags_mr = sender.hca.register_memory(
            self.flags_addr, max(self.info.banks * 8, 64),
            Access.REMOTE_WRITE)
        # cursor state
        self._bank = 0
        self._slot = 0
        self._rounds = [0] * self.info.banks
        self.sends = 0

    # -- info the receiver needs for flow control --------------------------

    def flag_target(self) -> tuple[int, int, int]:
        """(sender node id, flag base address, rkey): where the receiver's
        waiter raises bank flags, and on which peer."""
        return self.rt.node.node_id, self.flags_addr, self.flags_mr.rkey

    # -- sending -----------------------------------------------------------

    def _next_slot(self):
        bank, slot = self._bank, self._slot
        seq = (self._rounds[bank] % 255) + 1
        self._slot += 1
        if self._slot == self.info.slots:
            self._slot = 0
            self._rounds[bank] += 1
            self._bank = (bank + 1) % self.info.banks
        return bank, slot, seq

    def _wait_bank_free(self, bank: int):
        node = self.rt.node
        addr = self.flags_addr + bank * 8
        ev = node.monitor_event(addr)
        start = self.rt.engine.now
        while node.mem.read_u64(addr) == 0:
            yield ev
        # Sender-side flow control is also a spin on local memory; in the
        # streaming benchmarks it overlaps the receiver's drain.
        node.add_wait_cycles(self.rt.core, int((self.rt.engine.now - start)
                                               * 2.6))
        node.mem.write_u64(addr, 0)
        if _T.enabled:
            _T.span(node_pid(node.node_id), self.rt.core, "am.fc_wait",
                    start, self.rt.engine.now, {"bank": bank})
        if _M.enabled:
            end = self.rt.engine.now
            nid = node.node_id
            _M.count(f"tc_fc_waits_total|node={nid}", end)
            _M.count(f"tc_fc_stall_ns_total|node={nid}", end, end - start)
            _M.observe(f"tc_fc_wait_ns|node={nid}", end - start)

    def send_jam(self, package: LoadedPackage, element_name: str,
                 payload_addr: int, payload_size: int,
                 args: tuple[int, ...] = (), inject: bool = True,
                 no_exec: bool = False):
        """Process body: pack one active message and put it to the remote
        mailbox.  Returns the UcpRequest of the frame put."""
        rt = self.rt
        node = rt.node
        cfg = rt.cfg
        t_send = rt.engine.now
        el = package.element(element_name)
        key = (package.package_id, el.element_id)
        remote = self._remote.get(key)
        if remote is None:
            raise TwoChainsError(
                f"receiver has not loaded package {package.build.name!r}")
        bank, slot, seq = self._next_slot()
        if self.flow_control and slot == 0:
            yield from self._wait_bank_free(bank)

        flags = 0
        code = b""
        gotp = 0
        if inject:
            art = package.build.jam(element_name)
            if art.entry_off != 0:
                raise PackageError(
                    f"jam {element_name!r}: entry must be the first function "
                    "to be injectable")
            flags |= F_INJECTED
            code = node.mem.read(remote.code_addr, remote.code_size)
            if cfg.sender_sets_gotp:
                flags |= F_GOTP_SENDER
                gotp = remote.got_addr
        if no_exec:
            flags |= F_NO_EXEC

        payload = node.mem.read(payload_addr, payload_size) \
            if payload_size else b""
        wire = frame_wire_size(len(code), payload_size)
        if wire > self.info.frame_size:
            raise MailboxError(
                f"message needs {wire} B, remote frames are "
                f"{self.info.frame_size} B")
        if len(args) > 2:
            raise TwoChainsError("frames carry at most 2 inline arguments")
        frame = Frame(package_id=package.package_id,
                      element_id=el.element_id, flags=flags, seq=seq,
                      args=tuple(list(args) + [0] * (2 - len(args))),
                      code=code, payload=payload, gotp=gotp)
        blob = pack_frame(frame, self.info.frame_size)
        node.mem.write(self._staging, blob)

        # Pack cost: header build plus staging copies of code and payload.
        cost = cfg.pack_fixed_ns
        code_off = 48  # HDR + GOTP
        if code:
            cost += node.hier.stream_cost(rt.engine.now, rt.core,
                                          remote.code_addr, len(code), "read")
            cost += node.hier.stream_cost(rt.engine.now + cost, rt.core,
                                          self._staging + code_off, len(code),
                                          "write")
        if payload_size:
            cost += node.hier.stream_cost(rt.engine.now + cost, rt.core,
                                          payload_addr, payload_size, "read")
            cost += node.hier.stream_cost(rt.engine.now + cost, rt.core,
                                          self._staging + code_off + len(code),
                                          payload_size, "write")
        node.add_busy_ns(rt.core, cost)
        if _T.enabled:
            _T.span(node_pid(node.node_id), rt.core, "am.pack",
                    rt.engine.now, rt.engine.now + cost,
                    {"wire": wire, "inject": inject})
        yield Delay(cost)

        slot_addr = (self.info.addr
                     + (bank * self.info.slots + slot) * self.info.frame_size)
        req = self.ep.put_nbi(rt.engine.now, self._staging, slot_addr,
                              self.info.frame_size, self.info.rkey,
                              track=False)
        if _T.enabled:
            _T.span(node_pid(node.node_id), rt.core, "am.post",
                    rt.engine.now, rt.engine.now + req.cpu_ns)
        yield Delay(req.cpu_ns)
        self.sends += 1
        if _T.enabled:
            _T.span(node_pid(node.node_id), rt.core, "am.send",
                    t_send, rt.engine.now,
                    {"element": el.element_id, "inject": inject})
        if _M.enabled:
            end = rt.engine.now
            nid = node.node_id
            _M.count(f"tc_am_sends_total|node={nid}", end)
            _M.observe(f"tc_am_send_ns|node={nid}", end - t_send)
            node.hier.sample_metrics(_M, end)
        return req


class PreparedJam:
    """A pre-packed active message for repeated sending (perf-tool path).

    The frame (header, GOTP, code, payload) is staged once; each ``send``
    only refreshes the sequence tag and signal byte before the put — the
    same amount of per-message software work as a bare RDMA put, which is
    the design goal §VI states.
    """

    # per-send software cost of the tag/signal refresh
    _UPDATE_NS = 9.0

    def __init__(self, conn: Connection, package: LoadedPackage,
                 element_name: str, payload_addr: int, payload_size: int,
                 args: tuple[int, ...] = (), inject: bool = True,
                 no_exec: bool = False):
        rt = conn.rt
        node = rt.node
        el = package.element(element_name)
        remote = conn._remote.get((package.package_id, el.element_id))
        if remote is None:
            raise TwoChainsError(
                f"receiver has not loaded package {package.build.name!r}")
        flags = 0
        code = b""
        gotp = 0
        if inject:
            art = package.build.jam(element_name)
            if art.entry_off != 0:
                raise PackageError(
                    f"jam {element_name!r}: entry must be the first function")
            flags |= F_INJECTED
            code = node.mem.read(remote.code_addr, remote.code_size)
            if rt.cfg.sender_sets_gotp:
                flags |= F_GOTP_SENDER
                gotp = remote.got_addr
        if no_exec:
            flags |= F_NO_EXEC
        if len(args) > 2:
            raise TwoChainsError("frames carry at most 2 inline arguments")
        payload = node.mem.read(payload_addr, payload_size) \
            if payload_size else b""
        self.wire_size = frame_wire_size(len(code), payload_size)
        if self.wire_size > conn.info.frame_size:
            raise MailboxError(
                f"message needs {self.wire_size} B, remote frames are "
                f"{conn.info.frame_size} B")
        frame = Frame(package_id=package.package_id,
                      element_id=el.element_id, flags=flags, seq=1,
                      args=tuple(list(args) + [0] * (2 - len(args))),
                      code=code, payload=payload, gotp=gotp)
        self.conn = conn
        self.staging = node.map_region(conn.info.frame_size, PROT_RW,
                                       align=64, label="prepared")
        node.mem.write(self.staging, pack_frame(frame, conn.info.frame_size))
        # Building the frame is real CPU work; it also warms the sender's
        # caches so subsequent HCA reads of the staging buffer hit the LLC
        # (steady-state of a perf loop over a resident source buffer).
        build_cost = rt.cfg.pack_fixed_ns + node.hier.stream_cost(
            rt.engine.now, rt.core, self.staging, conn.info.frame_size,
            "write")
        node.add_busy_ns(rt.core, build_cost)

    def send(self):
        """Process body: refresh seq/signal, put the frame.  Returns the
        UcpRequest of the frame put (the signal put on unordered fabrics).

        On the paper's testbed inter-put ordering is enforced, so the
        whole frame — signal byte last — travels in ONE put.  On fabrics
        without that guarantee (``LinkParams.enforces_ordering=False``)
        the data put is followed by a fence and a separate 1-byte signal
        put (SS III-A), costing an extra post per message.
        """
        conn = self.conn
        rt = conn.rt
        t_send = rt.engine.now
        bank, slot, seq = conn._next_slot()
        if conn.flow_control and slot == 0:
            yield from conn._wait_bank_free(bank)
        fsize = conn.info.frame_size
        ordered = conn.ep.qp.link.enforces_ordering
        # seq lives at header byte 4; the signal byte is last.
        rt.node.mem.write_u8(self.staging + 4, seq)
        rt.node.mem.write_u8(self.staging + fsize - 1,
                             seq if ordered else 0)
        rt.node.add_busy_ns(rt.core, self._UPDATE_NS)
        if _T.enabled:
            pid = node_pid(rt.node.node_id)
            _T.span(pid, rt.core, "am.update", rt.engine.now,
                    rt.engine.now + self._UPDATE_NS)
        yield Delay(self._UPDATE_NS)
        slot_addr = (conn.info.addr
                     + (bank * conn.info.slots + slot) * fsize)
        req = conn.ep.put_nbi(rt.engine.now, self.staging, slot_addr,
                              fsize, conn.info.rkey, track=False)
        if _T.enabled:
            _T.span(node_pid(rt.node.node_id), rt.core, "am.post",
                    rt.engine.now, rt.engine.now + req.cpu_ns)
        yield Delay(req.cpu_ns)  # the post's software path is serial work
        if not ordered:
            # fence, then the signal byte in its own put
            conn.ep.qp.fence()
            rt.node.mem.write_u8(self.staging + fsize - 1, seq)
            req = conn.ep.put_nbi(rt.engine.now, self.staging + fsize - 1,
                                  slot_addr + fsize - 1, 1, conn.info.rkey,
                                  track=False)
            if _T.enabled:
                _T.span(node_pid(rt.node.node_id), rt.core, "am.post",
                        rt.engine.now, rt.engine.now + req.cpu_ns,
                        {"signal": True})
            yield Delay(req.cpu_ns)
        conn.sends += 1
        if _T.enabled:
            _T.span(node_pid(rt.node.node_id), rt.core, "am.send",
                    t_send, rt.engine.now, {"prepared": True})
        if _M.enabled:
            end = rt.engine.now
            nid = rt.node.node_id
            _M.count(f"tc_am_sends_total|node={nid}", end)
            _M.observe(f"tc_am_send_ns|node={nid}", end - t_send)
            rt.node.hier.sample_metrics(_M, end)
        return req


def connect_runtimes(sender: TwoChainsRuntime, receiver: TwoChainsRuntime,
                     mailbox: Mailbox, flow_control: bool = False
                     ) -> Connection:
    """The out-of-band setup exchange: sender learns mailbox geometry,
    rkey, and the receiver's element GOT addresses; the receiver (via
    ``Connection.flag_target``) learns where the sender's bank flags live."""
    return Connection(sender, receiver, mailbox, flow_control=flow_control)
