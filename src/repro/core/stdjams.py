"""The standard Two-Chains test package (§VI-B): the paper's benchmark jams.

* **Server-Side Sum** — sums the integer payload and stores the result at
  the next spot in a server-side array (owned by the ``ried_results``
  ried).
* **Indirect Put** (Fig 4) — probes a server-side hash table with a
  client-chosen key, picks/retrieves the offset bound to that key, and
  copies the payload into the server's data heap at that offset.  The
  client fully controls the lookup function: it travels in the message.

``pad_code_to`` matches the shipped-code sizes the paper reports (1408 B
for Indirect Put; Server-Side Sum is "smaller", we use 448 B) so the
message-size crossover points land where §VII-A places them.
"""

from __future__ import annotations

from .toolchain import JamSource, PackageBuild, RiedSource, build_package

# -- rieds -------------------------------------------------------------------

RIED_RESULTS = RiedSource("ried_results", r"""
// Server-side results array for Server-Side Sum.
long ss_results[1024];
long ss_cursor = 0;

long ss_store(long v) {
    long i = ss_cursor;
    ss_results[i % 1024] = v;
    ss_cursor = i + 1;
    return i;
}

long ss_count() { return ss_cursor; }

long ss_get(long i) { return ss_results[i % 1024]; }
""")

KV_SLOTS = 4096  # power of two; probe masks with KV_SLOTS-1

RIED_KV = RiedSource("ried_kv", r"""
// Server-side keyed heap for Indirect Put: open-addressed hash table
// mapping keys to offsets in a data heap.
extern long tc_hash64(long k);
long kv_keys[4096];
long kv_offsets[4096];
char kv_data[1048576];
long kv_cursor = 0;
long kv_inserts = 0;

// Server-local lookup used by applications/tests (not by the jam, which
// carries its own probe loop — the client controls the lookup function).
long kv_find(long key) {
    long idx = tc_hash64(key) & 4095;
    long probes = 0;
    while (probes < 4096) {
        long k = kv_keys[idx];
        if (k == 0) { return -1; }
        if (k == key + 1) { return kv_offsets[idx]; }
        idx = (idx + 1) & 4095;
        probes = probes + 1;
    }
    return -1;
}

long kv_insert_count() { return kv_inserts; }
""")

# -- jams --------------------------------------------------------------------

JAM_SS_SUM = JamSource("jam_ss_sum", r"""
extern long tc_sum32(int* p, long n);
extern long ss_store(long v);

long jam_ss_sum(int* payload, long nbytes, long a0, long a1) {
    long s = tc_sum32(payload, nbytes / 4);
    ss_store(s);
    return s;
}
""", pad_code_to=448)

# A loop-based variant used by correctness tests (no intrinsic shortcut).
JAM_SS_SUM_NAIVE = JamSource("jam_ss_sum_naive", r"""
extern long ss_store(long v);

long jam_ss_sum_naive(int* payload, long nbytes, long a0, long a1) {
    long n = nbytes / 4;
    long s = 0;
    for (long i = 0; i < n; i = i + 1) { s = s + payload[i]; }
    ss_store(s);
    return s;
}
""")

JAM_INDIRECT_PUT = JamSource("jam_indirect_put", r"""
extern long tc_hash64(long k);
extern long tc_memcpy(char* dst, char* src, long n);
extern long kv_keys[];
extern long kv_offsets[];
extern char kv_data[];
extern long kv_cursor;
extern long kv_inserts;

long jam_indirect_put(char* payload, long nbytes, long key, long a1) {
    // (1) probe the hash table with the client-chosen key
    long mask = 4095;
    long idx = tc_hash64(key) & mask;
    long probes = 0;
    while (probes < 4096) {
        long k = kv_keys[idx];
        if (k == 0 || k == key + 1) { break; }
        idx = (idx + 1) & mask;
        probes = probes + 1;
    }
    // (2) choose/recover the offset bound to this key
    long off;
    if (kv_keys[idx] == key + 1) {
        off = kv_offsets[idx];
    } else {
        kv_keys[idx] = key + 1;
        off = kv_cursor;
        kv_cursor = off + nbytes;
        kv_offsets[idx] = off;
        kv_inserts = kv_inserts + 1;
    }
    // (3) copy the payload into the heap at base + offset
    tc_memcpy(kv_data + off, payload, nbytes);
    return off;
}
""", pad_code_to=1408)

# A "function overloading" demo jam: same symbolic name can resolve to
# process-specific behaviour (§IV bullet 2); used by examples/tests.
JAM_TAG = JamSource("jam_tag", r"""
extern long process_tag();
extern long ss_store(long v);

long jam_tag(char* payload, long nbytes, long a0, long a1) {
    long t = process_tag();
    ss_store(t);
    return t;
}
""")


def build_std_package(include_tag: bool = False,
                      sum_pad: int = 448, iput_pad: int = 1408
                      ) -> PackageBuild:
    """Build the standard test package installed with the perf tester."""
    jams = [
        JamSource(JAM_SS_SUM.name, JAM_SS_SUM.source, pad_code_to=sum_pad),
        JamSource(JAM_INDIRECT_PUT.name, JAM_INDIRECT_PUT.source,
                  pad_code_to=iput_pad),
        JAM_SS_SUM_NAIVE,
    ]
    rieds = [RIED_RESULTS, RIED_KV]
    if include_tag:
        jams.append(JAM_TAG)
    return build_package("tcstd", jams, rieds)
