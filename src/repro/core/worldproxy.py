"""The world-RPC surface for process-backed DES shards.

Under ``--shard-backend process`` (sim/procshard.py) every non-zero
shard's state — node memories, scoreboards, RNG streams, runtime/HCA/QP
bookkeeping — lives in a forked worker process; the bench drivers,
which execute in the coordinating interpreter and read/poke world state
*between* runs, would otherwise observe stale fork-time mirrors.  This
module closes that gap with two pieces:

* :class:`ShardStateAgent` — a per-world endpoint registered (pre-fork)
  with the sharded engine, so one agent instance exists in **every**
  process after the fork, each bound to that process's copy of the
  world.  It serves the narrow driver API (scoreboard counters, memory
  reads) and keeps **worker-resident snapshots**: ``snap_shard`` caches
  a shard's full mutable state inside the owning process under a token,
  and ``restore_shard`` rewinds from that cache — the state never
  crosses the process boundary.

* :class:`WorldProxy` — a transparent wrapper returned by
  ``make_world`` for process-backed worlds.  Attribute access passes
  straight through to the wrapped :class:`~repro.core.stdworld.World`
  (zero new indirection for serial/thread worlds, which are never
  wrapped); only the few members that must route by shard are
  overridden: ``board_counters``/``read_u64`` fan out over the engine's
  ``rpc`` surface, and ``snapshot``/``restore`` pick between the plain
  coordinator-side checkpoint (no live workers: the setup-cache path,
  whose snapshots are taken pre-fork) and a :class:`ProcWorldCheckpoint`
  of worker-resident per-shard snaps (live workers: mid-point forks).

A plain-checkpoint restore retires the workers (their post-fork
timeline is being discarded), after which the world is ordinary
coordinator-resident state again; the next run forks fresh workers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import SimulationError
from ..rdma.fabric import shard_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .stdworld import World, WorldCheckpoint

#: RNG streams are owned by the shard of the node they belong to;
#: every per-node stream in the tree encodes its node as ``…n<id>``
#: (machine/noise.py: ``stress.n{node_id}``).  Unmatched streams are
#: coordinator-owned.
_RNG_NODE = re.compile(r"\.n(\d+)$")

AGENT_KEY = "world.agent"


@dataclass
class ProcWorldCheckpoint:
    """Token naming per-shard snaps resident in the worker processes
    (plus the coordinator's shard-0 snap).  Only meaningful while the
    workers that recorded it are alive."""

    token: int
    nshards: int


class ShardStateAgent:
    """Per-process world-state endpoint (one forked copy per shard)."""

    def __init__(self, world: "World"):
        self._world = world
        self._snaps: dict[tuple[int, int], dict] = {}

    # -- helpers ----------------------------------------------------------

    def _nodes_of(self, shard: int) -> list[int]:
        bed = self._world.bed
        n = bed.topology.nodes
        k = bed.engine.nshards
        return [i for i in range(n) if shard_of(i, n, k) == shard]

    def _rng_owner(self, name: str, nodes: int, nshards: int) -> int:
        m = _RNG_NODE.search(name)
        if m is None:
            return 0
        return shard_of(int(m.group(1)), nodes, nshards)

    # -- driver reads -----------------------------------------------------

    def counters(self, shard: int) -> dict[int, dict[str, int]]:
        """Scoreboard counters of every node on ``shard``, by node id."""
        bed = self._world.bed
        return {i: {name: int(v)
                    for name, v in bed.nodes[i].board.counters.items()}
                for i in self._nodes_of(shard)}

    def read_u64(self, node_id: int, addr: int) -> int:
        return self._world.bed.nodes[node_id].mem.read_u64(addr)

    def read_mem(self, node_id: int, addr: int, size: int) -> bytes:
        return self._world.bed.nodes[node_id].mem.read(addr, size)

    # -- worker-resident snapshots ----------------------------------------

    def snap_shard(self, shard: int, token: int) -> None:
        """Capture this process's shard state under ``token`` (kept
        in-process; repeated restores from one token are allowed)."""
        w = self._world
        bed = w.bed
        coord = bed.engine
        nodes = self._nodes_of(shard)
        nodeset = set(nodes)
        n, k = bed.topology.nodes, coord.nshards
        rngs = {name: state for name, state in bed.rngs.snapshot().items()
                if self._rng_owner(name, n, k) == shard}
        self._snaps[(shard, token)] = {
            "engine": coord.shards[shard].snapshot(),
            "chan_seq": {key: seq for key, seq in coord._chan_seq.items()
                         if key[0] == shard},
            "nodes": {i: bed.nodes[i].snapshot() for i in nodes},
            "hcas": {i: bed.hcas[i].snapshot() for i in nodes},
            # A queue pair schedules on (and is mutated by) its source
            # node's shard.
            "qps": {pair: qp.snapshot() for pair, qp in bed.qps.items()
                    if pair[0] in nodeset},
            "runtimes": {i: w.runtimes[i].snapshot() for i in nodes},
            "rngs": rngs,
        }

    def restore_shard(self, shard: int, token: int) -> float:
        try:
            snap = self._snaps[(shard, token)]
        except KeyError:
            raise SimulationError(
                f"shard {shard} has no resident snapshot for token "
                f"{token}; worker-resident checkpoints die with their "
                f"workers") from None
        w = self._world
        bed = w.bed
        coord = bed.engine
        n, k = bed.topology.nodes, coord.nshards
        coord.shards[shard].restore(snap["engine"])
        coord._chan_seq.update(snap["chan_seq"])
        for i, s in snap["nodes"].items():
            bed.nodes[i].restore(s)
        for i, s in snap["hcas"].items():
            bed.hcas[i].restore(s)
        for pair, s in snap["qps"].items():
            bed.qps[pair].restore(s)
        for i, s in snap["runtimes"].items():
            w.runtimes[i].restore(s)
        issued = bed.rngs._issued
        for name in [nm for nm in issued
                     if self._rng_owner(nm, n, k) == shard
                     and nm not in snap["rngs"]]:
            del issued[name]
        for name, state in snap["rngs"].items():
            import copy as _copy
            bed.rngs.child(name).bit_generator.state = _copy.deepcopy(state)
        # The restored clock travels back so the coordinator can rewind
        # its mirror of this shard's engine (the worker's own copy just
        # rewound in-process).
        return coord.shards[shard].now


class WorldProxy:
    """Driver-facing wrapper over a process-backed :class:`World`.

    Everything not listed below forwards to the wrapped world — the
    coordinator owns the build, the topology, shard 0 (the client
    node), and all engine control (``run`` goes through the sharded
    engine's own round protocol, not through here).
    """

    __test__ = False  # not a pytest class

    def __init__(self, world: "World", agent: ShardStateAgent):
        self._world = world
        self._agent = agent
        self._snap_tok = 0

    def __getattr__(self, name: str) -> Any:
        return getattr(self._world, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WorldProxy({self._world!r})"

    # -- routed driver reads ----------------------------------------------

    def _engine(self):
        return self._world.bed.engine

    def _shard_of_node(self, node_id: int) -> int:
        bed = self._world.bed
        return shard_of(node_id, bed.topology.nodes, bed.engine.nshards)

    def read_u64(self, node_id: int, addr: int) -> int:
        eng = self._engine()
        shard = self._shard_of_node(node_id)
        return eng.rpc(shard, AGENT_KEY, "read_u64", (node_id, addr))

    def read_mem(self, node_id: int, addr: int, size: int) -> bytes:
        eng = self._engine()
        shard = self._shard_of_node(node_id)
        return eng.rpc(shard, AGENT_KEY, "read_mem", (node_id, addr, size))

    def board_counters(self) -> dict[str, int]:
        eng = self._engine()
        out: dict[str, int] = {}
        for shard in range(eng.nshards):
            per_node = eng.rpc(shard, AGENT_KEY, "counters", (shard,))
            for node_id in sorted(per_node):
                for name, value in per_node[node_id].items():
                    out[name] = out.get(name, 0) + value
        return out

    # -- checkpoint / fork -------------------------------------------------

    def snapshot(self):
        eng = self._engine()
        if not eng._workers:
            # Pre-fork (the setup-cache path: worlds are checkpointed
            # right after construction, before any run): every shard is
            # coordinator-resident and the plain capture is exact.
            return self._world.snapshot()
        self._snap_tok += 1
        tok = self._snap_tok
        for shard in range(eng.nshards):
            eng.rpc(shard, AGENT_KEY, "snap_shard", (shard, tok))
        return ProcWorldCheckpoint(token=tok, nshards=eng.nshards)

    def restore(self, cp) -> None:
        eng = self._engine()
        if isinstance(cp, ProcWorldCheckpoint):
            if not eng._workers:
                raise SimulationError(
                    "worker-resident world checkpoint outlived its shard "
                    "workers (they retire at plain-checkpoint restores); "
                    "snapshot again after the next run forks fresh ones")
            for shard in range(cp.nshards):
                now = eng.rpc(shard, AGENT_KEY, "restore_shard",
                              (shard, cp.token))
                eng.shards[shard].now = now
            return
        # Plain checkpoint: World.restore rewinds coordinator-resident
        # state; the engine restore inside it retires live workers and
        # drops their stale mirrors (ProcShardedEngine.restore).
        self._world.restore(cp)


def wrap_world(world: "World") -> WorldProxy:
    """Attach a :class:`ShardStateAgent` (pre-fork, so every worker
    inherits it) and hand back the proxy the drivers will hold."""
    agent = ShardStateAgent(world)
    world.bed.engine.register_endpoint(AGENT_KEY, agent)
    return WorldProxy(world, agent)
