"""Two-Chains runtime configuration, including the §V security options."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class WaitMode(enum.Enum):
    POLL = "poll"   # busy spin on the signal byte
    WFE = "wfe"     # arm a monitor, sleep until the line is written


@dataclass
class RuntimeConfig:
    # -- wait loop -------------------------------------------------------
    wait_mode: WaitMode = WaitMode.POLL
    # WFE wake path: monitor arm + event signal + pipeline restart.  The
    # paper sees <=1.5% latency penalty, i.e. tens of ns on a ~1.5us path.
    wfe_wake_ns: float = 15.0
    wfe_wake_cycles: int = 46       # cycles the core is awake per wake-up
    # While parked in WFE the thread still wakes occasionally (spurious
    # SEV broadcasts, kernel ticks, runtime housekeeping); it burns this
    # fraction of the cycles a spin loop would have burned.
    wfe_housekeeping_duty: float = 0.15

    # -- invocation ------------------------------------------------------
    # Figs 5-6 run "without execution": deliver + trigger, skip the call.
    without_execution: bool = False

    # -- §V security reconfigurations --------------------------------------
    # Default study config: sender writes the receiver GOT pointer into
    # the message.  False = receiver inserts it on arrival from its own
    # trusted table (mitigation #2).
    sender_sets_gotp: bool = True
    # Mitigation #1: copy arriving code out of the RWX mailbox onto
    # execute-only pages before running it (W^X).
    split_code_pages: bool = False
    # Mitigation: reject frames that carry code at all.
    refuse_injected: bool = False

    # -- software-path cost constants (calibrated, see bench.calibration) ---
    pack_fixed_ns: float = 30.0       # header build + element lookup
    dispatch_parse_ns: float = 16.0   # header decode + dispatch branch
    invoke_setup_ns: float = 14.0     # argument marshalling into registers
