"""Per-process symbol namespace.

Two-Chains deliberately avoids any central name registry (§II): each
process resolves symbols with ordinary ELF loading, and remote linking
works because cooperating processes load package libraries that define the
same canonical names.  A :class:`Namespace` is that per-process resolution
scope: native intrinsics (the "libc"), plus the exports of every library
loaded so far, first definition wins.
"""

from __future__ import annotations

from typing import Optional

from ..errors import UnresolvedSymbolError
from ..isa.intrinsics import IntrinsicTable
from ..isa.vm import native_address


class Namespace:
    def __init__(self, intrinsics: Optional[IntrinsicTable] = None):
        self.intrinsics = intrinsics if intrinsics is not None else IntrinsicTable()
        self._bindings: dict[str, int] = {}
        self._origin: dict[str, str] = {}

    def define(self, name: str, addr: int, origin: str = "<manual>") -> None:
        """Bind ``name`` if not already bound (first definition wins)."""
        if name not in self._bindings:
            self._bindings[name] = addr
            self._origin[name] = origin

    def redefine(self, name: str, addr: int, origin: str = "<update>") -> None:
        """Replace a binding — the library-replacement path (§III):
        loading an updated library and redefining its names alters the
        behaviour of subsequently (re)linked active messages."""
        self._bindings[name] = addr
        self._origin[name] = origin

    def resolve(self, name: str) -> int:
        addr = self.try_resolve(name)
        if addr is None:
            raise UnresolvedSymbolError(name)
        return addr

    def try_resolve(self, name: str) -> int | None:
        addr = self._bindings.get(name)
        if addr is not None:
            return addr
        idx = self.intrinsics.index_of(name)
        if idx is not None:
            return native_address(idx)
        return None

    def origin_of(self, name: str) -> str | None:
        if name in self._bindings:
            return self._origin[name]
        if self.intrinsics.index_of(name) is not None:
            return "<native>"
        return None

    def names(self) -> list[str]:
        return sorted(set(self._bindings) | set(self.intrinsics.names()))
