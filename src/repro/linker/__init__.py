"""Runtime dynamic linking: namespaces and the dlopen-style loader."""

from .loader import LoadedLibrary, Loader
from .namespace import Namespace

__all__ = ["LoadedLibrary", "Loader", "Namespace"]
