"""Runtime loader: dlopen/dlsym for CHAIN shared objects.

Maps PT_LOAD segments into node memory at a fresh load bias, sets page
permissions from segment flags, applies the dynamic relocations the
builder left (GOT fills, rebases), and exports defined globals into the
process namespace — the standard POSIX dynamic-linking contract the paper
builds its remote-linking story on (§III).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..elf import consts as C
from ..elf.reader import ElfImage, read_elf
from ..errors import LinkError, UnresolvedSymbolError
from ..machine.node import Node
from ..machine.pages import PROT_R, PROT_RW, PROT_RX
from .namespace import Namespace

# dlopen cost model: parsing + mapping overhead plus a copy at ~DRAM
# bandwidth.  Library loads happen at setup time (rieds are the paper's
# "heavyweight" objects), never inside measured message loops.
_DLOPEN_FIXED_NS = 4000.0
_COPY_NS_PER_BYTE = 1.0 / 21.3


@dataclass
class LoadedLibrary:
    name: str
    image: ElfImage
    bias: int
    symbols: dict[str, int] = field(default_factory=dict)
    got_addr: int | None = None
    got_slots: list[str] = field(default_factory=list)
    load_cost_ns: float = 0.0

    def symbol(self, name: str) -> int:
        """dlsym: absolute address of an exported symbol."""
        addr = self.symbols.get(name)
        if addr is None:
            raise UnresolvedSymbolError(name)
        return addr


def _prot_of_flags(flags: int) -> int:
    if flags & C.PF_X:
        return PROT_RX if not (flags & C.PF_W) else PROT_RW | PROT_RX
    if flags & C.PF_W:
        return PROT_RW
    return PROT_R


class Loader:
    """Loads shared objects into one node's address space."""

    def __init__(self, node: Node, namespace: Namespace):
        self.node = node
        self.namespace = namespace
        self.loaded: dict[str, LoadedLibrary] = {}

    def load(self, blob: bytes, name: str, export: bool = True
             ) -> LoadedLibrary:
        """dlopen: map, relocate, and (optionally) export globals."""
        if name in self.loaded:
            return self.loaded[name]
        image = read_elf(blob)
        lo, hi = image.load_span()
        span = hi - lo
        base = self.node.alloc.alloc(span, align=C.PAGE)
        bias = base - lo

        for ph in image.phdrs:
            if ph.p_type != C.PT_LOAD:
                continue
            seg = blob[ph.p_offset: ph.p_offset + ph.p_filesz]
            self.node.mem.write(bias + ph.p_vaddr, seg)
            if ph.p_memsz > ph.p_filesz:  # .bss
                self.node.mem.fill(bias + ph.p_vaddr + ph.p_filesz,
                                   ph.p_memsz - ph.p_filesz, 0)
            self.node.pages.set_prot(bias + ph.p_vaddr, ph.p_memsz,
                                     _prot_of_flags(ph.p_flags))

        self._apply_relocations(image, bias)

        lib = LoadedLibrary(name=name, image=image, bias=bias)
        if image.has_section(".got") and image.section(".got").sh_size:
            lib.got_addr = bias + image.section(".got").sh_addr
            lib.got_slots = [
                s.name for s in image.symbols[1:]
                if not s.defined and s.name
            ][: image.section(".got").sh_size // 8]
        for sym in image.defined_symbols():
            addr = bias + sym.st_value
            lib.symbols[sym.name] = addr
            if export and sym.bind == C.STB_GLOBAL:
                self.namespace.define(sym.name, addr, origin=name)
        lib.load_cost_ns = _DLOPEN_FIXED_NS + span * _COPY_NS_PER_BYTE
        self.loaded[name] = lib
        return lib

    def relink(self, lib: LoadedLibrary) -> None:
        """Re-apply a loaded library's dynamic relocations against the
        *current* namespace.  This is what makes replacing a library
        change the resolution of fixed symbolic names for code that is
        already loaded — the paper's remote-linking update story (§III).
        """
        self._apply_relocations(lib.image, lib.bias)

    def _apply_relocations(self, image: ElfImage, bias: int) -> None:
        mem = self.node.mem
        for rela in image.relocations:
            site = bias + rela.r_offset
            rtype = rela.type
            if rtype == C.R_CHAIN_GLOB_DAT:
                sym = image.symbols[rela.sym]
                target = self.namespace.try_resolve(sym.name)
                if target is None:
                    if sym.defined:  # defined in this object itself
                        target = bias + sym.st_value
                    else:
                        raise UnresolvedSymbolError(sym.name)
                mem.write_u64(site, target + rela.r_addend)
            elif rtype == C.R_CHAIN_RELATIVE:
                mem.write_u64(site, bias + rela.r_addend)
            elif rtype == C.R_CHAIN_ABS64:
                sym = image.symbols[rela.sym]
                target = self.namespace.try_resolve(sym.name)
                if target is None:
                    raise UnresolvedSymbolError(sym.name)
                mem.write_u64(site, target + rela.r_addend)
            elif rtype == C.R_CHAIN_NONE:
                continue
            else:
                raise LinkError(f"unknown relocation type {rtype}")
