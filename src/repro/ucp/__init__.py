"""mini-UCX communication layer (workers, endpoints, protocol ladder)."""

from .protocols import DEFAULT_PROTOCOLS, Protocol, protocol_cost_ns, select_protocol
from .worker import UcpConfig, UcpEndpoint, UcpRequest, UcpWorker

__all__ = [
    "DEFAULT_PROTOCOLS",
    "Protocol",
    "UcpConfig",
    "UcpEndpoint",
    "UcpRequest",
    "UcpWorker",
    "protocol_cost_ns",
    "select_protocol",
]
