"""mini-UCX: contexts, workers, endpoints, non-blocking puts.

This layer adds what the raw verbs model lacks and what UCX really does:
protocol selection by size (see :mod:`.protocols`), request tracking, and
completion detection by CQ polling.  The paper's §VII baseline ("UCX put")
runs through this path including its flow-control/completion overheads;
the Two-Chains runtime sends its mailbox frames through the same
endpoints but manages flow control itself, which is exactly why its
streaming bandwidth comes out ahead (Fig 6).

Cost accounting contract: ``put_nbi`` returns a request carrying
``cpu_ns`` — the sender-side software cost of the post.  Callers running
inside a DES process must advance their clock by it (``yield
Delay(req.cpu_ns)``); this is what makes software overhead limit message
rate.  Completion handling costs are charged by ``drain_to``/``flush``
(the serial bandwidth-test path); ``reap_completed`` retires finished
requests for free — modelling progress calls that overlapped a wait, as
in a latency test where the CPU spins anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import UcpError
from ..machine.node import Node
from ..machine.pages import PROT_RW
from ..obs.metrics import METRICS as _M
from ..rdma.mr import Access, MemoryRegion
from ..rdma.verbs import Completion, Hca, QueuePair
from ..sim.engine import Engine
from .protocols import (
    DEFAULT_PROTOCOLS,
    Protocol,
    record_selection,
    select_protocol,
)


@dataclass(frozen=True)
class UcpConfig:
    protocols: tuple[Protocol, ...] = DEFAULT_PROTOCOLS
    # CPU cost of one ucp_worker_progress() poll of the CQ.
    progress_poll_ns: float = 52.0
    # Request bookkeeping per non-blocking op (alloc + state machine).
    request_track_ns: float = 48.0
    # CQE processing + request completion callback + release.
    completion_process_ns: float = 140.0
    # Flow-control credit accounting per tracked op (the "library
    # overhead for flow control" of §VII).
    fc_account_ns: float = 150.0
    # Byte-based flow-control window: outstanding tracked puts are
    # limited to ~fc_window_bytes of in-flight data (at least 1 op).
    fc_window_bytes: int = 49152
    max_window: int = 32
    # Bounce-buffer pool for bcopy sends.
    bounce_bytes: int = 64 * 1024


@dataclass
class UcpRequest:
    size: int
    protocol: str
    completion: Completion
    cpu_ns: float = 0.0
    issued_at: float = 0.0

    @property
    def done_event(self):
        return self.completion.event

    @property
    def done(self) -> bool:
        return self.completion.event.fire_count > 0

    @property
    def ok(self) -> bool:
        return self.completion.ok


class UcpWorker:
    """Per-process communication context + progress engine."""

    def __init__(self, engine: Engine, node: Node, hca: Hca,
                 cfg: UcpConfig | None = None, core: int = 0):
        self.engine = engine
        self.node = node
        self.hca = hca
        self.cfg = cfg or UcpConfig()
        self.core = core
        self.bounce = node.map_region(self.cfg.bounce_bytes, PROT_RW,
                                      label="ucp.bounce")
        # One endpoint per peer node, keyed by destination node id (the
        # N-node fabric: a worker is connected to every reachable peer).
        self.eps: dict[int, UcpEndpoint] = {}
        self.progress_calls = 0
        self.requests_issued = 0

    def register(self, addr: int, length: int,
                 access: Access = Access.REMOTE_READ | Access.REMOTE_WRITE
                 ) -> MemoryRegion:
        """ucp_mem_map + rkey pack, in one step."""
        return self.hca.register_memory(addr, length, access)

    def create_ep(self, qp: QueuePair) -> "UcpEndpoint":
        if qp.src is not self.hca:
            raise UcpError("endpoint must use a QP rooted at this worker's HCA")
        ep = UcpEndpoint(self, qp)
        self.eps[qp.dst.node.node_id] = ep
        return ep

    def ep_to(self, peer: int) -> "UcpEndpoint":
        """The endpoint addressing ``peer`` (a node id)."""
        try:
            return self.eps[peer]
        except KeyError:
            raise UcpError(
                f"worker on node {self.node.node_id} has no endpoint to "
                f"node {peer}; peers: {sorted(self.eps)}") from None

    def snapshot(self) -> tuple:
        return self.progress_calls, self.requests_issued

    def restore(self, snap: tuple) -> None:
        self.progress_calls, self.requests_issued = snap

    def progress_cost(self) -> float:
        """CPU time of one progress poll (callers advance the clock)."""
        self.progress_calls += 1
        self.node.add_busy_ns(self.core, self.cfg.progress_poll_ns)
        return self.cfg.progress_poll_ns


class UcpEndpoint:
    """One-sided operations to one peer."""

    def __init__(self, worker: UcpWorker, qp: QueuePair):
        self.worker = worker
        self.qp = qp
        self.inflight: list[UcpRequest] = []

    def snapshot(self) -> int:
        """Checkpoints must be quiescent: an in-flight tracked request
        references a live Completion that cannot survive a rewind."""
        if self.inflight:
            raise UcpError(
                f"endpoint checkpoint with {len(self.inflight)} request(s) "
                "in flight")
        return 0

    def restore(self, snap: int) -> None:
        self.inflight.clear()

    def _software_path(self, now: float, src_addr: int, size: int,
                       zcopy_only: bool = False) -> tuple[float, int]:
        """Protocol selection + staging.  Returns (cpu_ns, effective_src).

        ``zcopy_only``: the source is pre-registered (Two-Chains mailbox
        frames), so the eager-bcopy staging copy is skipped — the lane
        switch and its fixed cost still apply, only the memcpy does not.
        """
        cfg = self.worker.cfg
        node = self.worker.node
        proto = select_protocol(size, cfg.protocols)
        cost = proto.fixed_ns + (0.004 if zcopy_only and proto.bcopy
                                 else proto.per_byte_ns) * size
        src = src_addr
        if proto.bcopy and size and not zcopy_only:
            if size > cfg.bounce_bytes:
                raise UcpError(f"bcopy of {size} exceeds bounce pool")
            # Stage through the bounce buffer: a real memcpy through the
            # sender's cache hierarchy.
            node.mem.write(self.worker.bounce, node.mem.read(src_addr, size))
            cost += node.hier.stream_cost(now, self.worker.core, src_addr,
                                          size, "read")
            cost += node.hier.stream_cost(now, self.worker.core,
                                          self.worker.bounce, size, "write")
            src = self.worker.bounce
        return cost, src

    def put_nbi(self, now: float, src_addr: int, remote_addr: int, size: int,
                rkey: int, track: bool = True) -> UcpRequest:
        """Non-blocking one-sided put.

        ``track=True`` is the standard UCX path: request allocation,
        flow-control accounting, and CQ tracking apply (drain with
        ``flush``/``window_admit``).  The Two-Chains runtime passes
        ``track=False``: its mailbox protocol owns flow control, so only
        the transport software path applies (§VI-A).

        The returned request's ``cpu_ns`` is the sender-side software
        cost; process callers must ``yield Delay(req.cpu_ns)``.
        """
        now = max(now, self.engine_now())
        cpu, eff_src = self._software_path(now, src_addr, size,
                                           zcopy_only=not track)
        # The doorbell/WQE write is CPU work on every path.
        cpu += self.qp.link.post_overhead_ns
        if track:
            cpu += self.worker.cfg.request_track_ns
        self.worker.node.add_busy_ns(self.worker.core, cpu)
        proto = select_protocol(size, self.worker.cfg.protocols)
        comp = self.qp.post_put(now + cpu, eff_src, remote_addr, size, rkey)
        req = UcpRequest(size=size, protocol=proto.name, completion=comp,
                         cpu_ns=cpu, issued_at=now)
        self.worker.requests_issued += 1
        if _M.enabled:
            record_selection(_M, now, self.worker.node.node_id, proto, size)
        if track:
            self.inflight.append(req)
        return req

    def engine_now(self) -> float:
        return self.worker.engine.now

    # -- completion draining (generator helpers for DES processes) ----------

    def window_for(self, size: int) -> int:
        cfg = self.worker.cfg
        return max(1, min(cfg.max_window, cfg.fc_window_bytes // max(size, 1)))

    def drain_to(self, limit: int):
        """Process body: progress until at most ``limit`` requests are in
        flight, paying the CQ poll + completion processing serially (the
        bandwidth-test path — nothing else overlaps the work)."""
        cfg = self.worker.cfg
        while len(self.inflight) > limit:
            oldest = self.inflight[0]
            yield self.worker.progress_cost()
            if not oldest.done:
                t0 = self.engine_now()
                yield oldest.completion.event
                if _M.enabled:
                    end = self.engine_now()
                    nid = self.worker.node.node_id
                    _M.count(f"tc_ucp_window_stalls_total|node={nid}", end)
                    _M.count(f"tc_ucp_window_stall_ns_total|node={nid}",
                             end, end - t0)
            self.inflight.pop(0)
            retire = cfg.completion_process_ns + cfg.fc_account_ns
            self.worker.node.add_busy_ns(self.worker.core, retire)
            yield retire

    def flush(self):
        """Process body: wait for all in-flight puts to complete."""
        yield from self.drain_to(0)

    def window_admit(self, size: int = 1):
        """Process body enforcing the byte-based flow-control window
        before a new tracked put of ``size`` bytes."""
        yield from self.drain_to(self.window_for(size) - 1)

    def reap_completed(self) -> int:
        """Retire already-completed requests at no cost: models progress
        polls that ran while the CPU was spin-waiting on something else
        (the latency-test path).  Returns the number reaped."""
        reaped = 0
        while self.inflight and self.inflight[0].done:
            self.inflight.pop(0)
            reaped += 1
        return reaped
