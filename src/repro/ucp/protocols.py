"""UCX-style size-dependent protocol selection.

UCX changes the code path used to send a message based on its size
(inline/short, eager bcopy, eager zcopy, fragmenting zcopy).  Each path
trades fixed software cost against per-byte cost, so the *just over a
threshold* sizes are locally pessimal — the artifact the paper calls out
in §VII-A for the 8- and 256-integer Injected Function points.

Thresholds are chosen so that the Indirect Put injected message (1472 B at
one integer of payload, see the message-format module) crosses SHORT->BCOPY
exactly between the 1- and 8-integer sweeps and BCOPY->ZCOPY between 128
and 256 integers, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import UcpError


@dataclass(frozen=True)
class Protocol:
    name: str
    max_size: int          # inclusive upper bound for this path
    fixed_ns: float        # software cost per operation
    per_byte_ns: float     # software cost per byte (copies, segmentation)
    bcopy: bool            # stages through a bounce buffer


# The ladder: fixed cost rises, per-byte cost falls.
DEFAULT_PROTOCOLS: tuple[Protocol, ...] = (
    Protocol("short", 64, 38.0, 0.000, bcopy=False),
    Protocol("eager-bcopy", 1472, 96.0, 0.050, bcopy=True),
    Protocol("eager-zcopy", 2432, 185.0, 0.003, bcopy=False),
    Protocol("multi-zcopy", 1 << 62, 235.0, 0.002, bcopy=False),
)


def select_protocol(size: int,
                    table: tuple[Protocol, ...] = DEFAULT_PROTOCOLS
                    ) -> Protocol:
    if size < 0:
        raise UcpError("negative message size")
    for proto in table:
        if size <= proto.max_size:
            return proto
    raise UcpError(f"no protocol admits size {size}")  # pragma: no cover


def record_selection(registry, now: float, node_id: int, proto: Protocol,
                     size: int) -> None:
    """Per-lane send metrics (ops + bytes) for one selected protocol.

    Lives next to the ladder so the lane naming has one owner; callers
    gate on ``registry.enabled`` (docs/METRICS.md).
    """
    key = f"node={node_id}|proto={proto.name}"
    registry.count(f"tc_ucp_proto_ops_total|{key}", now)
    registry.count(f"tc_ucp_proto_bytes_total|{key}", now, size)


def protocol_cost_ns(size: int,
                     table: tuple[Protocol, ...] = DEFAULT_PROTOCOLS
                     ) -> float:
    """Software-path cost of sending ``size`` bytes (excl. copy staging,
    which callers charge through the cache model when bcopy is chosen)."""
    proto = select_protocol(size, table)
    return proto.fixed_ns + proto.per_byte_ns * size
