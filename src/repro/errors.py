"""Exception hierarchy for the Two-Chains reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Discrete-event simulation kernel misuse (e.g. time going backwards)."""


class MachineError(ReproError):
    """Hardware-model errors: bad addresses, config mismatches."""


class MemoryFault(MachineError):
    """Access to unmapped memory or a permission violation (R/W/X)."""

    def __init__(self, message: str, addr: int | None = None, kind: str = "access"):
        super().__init__(message)
        self.addr = addr
        self.kind = kind


class IsaError(ReproError):
    """CHAIN ISA errors: bad encodings, assembler failures."""


class AssemblerError(IsaError):
    """Source-level assembly error, carries line information."""

    def __init__(self, message: str, line: int | None = None):
        super().__init__(f"line {line}: {message}" if line is not None else message)
        self.line = line


class VmFault(IsaError):
    """Runtime fault raised by the CHAIN interpreter (illegal instruction,
    memory fault while executing, call-depth overflow...)."""

    def __init__(self, message: str, pc: int | None = None):
        super().__init__(f"pc={pc:#x}: {message}" if pc is not None else message)
        self.pc = pc


class CompileError(ReproError):
    """AMC mini-C compilation error."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        loc = "" if line is None else f"{line}:{col if col is not None else 0}: "
        super().__init__(loc + message)
        self.line = line
        self.col = col


class ElfError(ReproError):
    """Malformed ELF image or unsupported feature."""


class LinkError(ReproError):
    """Loader/linker failures: unresolved symbols, bad relocations."""


class UnresolvedSymbolError(LinkError):
    def __init__(self, name: str):
        super().__init__(f"unresolved symbol: {name!r}")
        self.name = name


class RdmaError(ReproError):
    """RDMA verbs-model errors."""


class RkeyViolation(RdmaError):
    """Remote access rejected at the (simulated) hardware level: bad rkey,
    out-of-bounds access, or insufficient permissions."""


class UcpError(ReproError):
    """mini-UCX layer errors."""


class TwoChainsError(ReproError):
    """Two-Chains runtime errors."""


class PackageError(TwoChainsError):
    """Jam/ried package build or load failure."""


class MailboxError(TwoChainsError):
    """Reactive-mailbox protocol violation (overrun, bad frame...)."""
