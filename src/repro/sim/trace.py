"""Lightweight counters and sample recorders shared by the models.

Components mutate a :class:`Scoreboard` rather than printing or logging;
benchmarks read it afterwards.  Everything is plain dicts/lists so the hot
path stays cheap.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

import numpy as np


class Scoreboard:
    """Named integer counters plus named sample series."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = defaultdict(int)
        self.samples: dict[str, list[float]] = defaultdict(list)

    # counters -----------------------------------------------------------
    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    # samples ------------------------------------------------------------
    def record(self, name: str, value: float) -> None:
        self.samples[name].append(value)

    def record_many(self, name: str, values: Iterable[float]) -> None:
        self.samples[name].extend(values)

    def series(self, name: str) -> np.ndarray:
        return np.asarray(self.samples.get(name, ()), dtype=np.float64)

    def reset(self) -> None:
        self.counters.clear()
        self.samples.clear()

    # merging --------------------------------------------------------------
    def merge(self, other: "Scoreboard | dict") -> "Scoreboard":
        """Fold another scoreboard (or a bare counter dict) into this one.

        Counters add; sample series concatenate in call order.  This is
        how the bench orchestrator combines per-point boards shipped
        back from pool workers — a worker's Scoreboard object dies with
        its process, but its counters travel in the point row and are
        re-aggregated here.  Returns ``self`` for chaining.
        """
        if isinstance(other, Scoreboard):
            counters = other.counters
            for name, values in other.samples.items():
                self.samples[name].extend(values)
        else:
            counters = other
        for name, value in counters.items():
            self.counters[name] += value
        return self

    def snapshot(self) -> dict[str, int]:
        """Copy of the counters; used for interval deltas."""
        return dict(self.counters)

    def checkpoint(self) -> tuple:
        """Full state capture (counters AND samples) for :meth:`restore`;
        unlike :meth:`snapshot` (counters only, for deltas) this supports
        rewinding the board to an earlier point in time."""
        return dict(self.counters), {k: v[:] for k, v in self.samples.items()}

    def restore(self, state: tuple) -> None:
        counters, samples = state
        self.counters.clear()
        self.counters.update(counters)
        self.samples.clear()
        for name, values in samples.items():
            self.samples[name] = values[:]

    def delta_since(self, snap: dict[str, int]) -> dict[str, int]:
        out = {}
        for name, value in self.counters.items():
            d = value - snap.get(name, 0)
            if d:
                out[name] = d
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Scoreboard(counters={len(self.counters)}, "
            f"series={len(self.samples)})"
        )
