"""Process shard backend: one forked worker process per DES shard.

``serial``/``thread`` (sim/shard.py) validate the conservative CMB
protocol but stay behind the GIL; this backend cashes in the multi-core
win.  Shard 0 stays in the coordinating interpreter (it holds the
client/driver node), every other shard's ``Engine`` heap runs in a
worker forked from the fully wired world, and each conservative sync
window becomes one message round over an OS channel.

**Channels** (:class:`_Channel`).  Each worker gets a duplex channel
built pre-fork from two pipes plus two anonymous shared-memory scratch
buffers (one per direction).  A message is pickled once; the pipe
carries a fixed 9-byte header ``<flag:u8, length:u64>`` and the payload
rides the shm scratch when it fits (flag=1) or inline on the pipe when
it does not (flag=0).  The protocol is strict request/response
alternation per channel, so a single scratch per direction needs no
further synchronization: the blocking header read on the pipe orders
the reader after the writer's scratch fill.

**Round protocol** (one exchange per window).  ``run`` broadcasts the
run parameters; workers answer with their initial horizons.  Each round
the coordinator sends every worker ``("step", gate, batch)`` — its CMB
gate plus the envelope batch addressed to it from the previous round —
then drains shard 0 in parallel and collects ``("res", executed,
outbound, horizon, now)`` replies.  Envelopes are routed star-wise
through the coordinator; horizons are corrected coordinator-side with
the minimum timestamp still in flight (``pending``), which is exactly
the post-absorb horizon the in-process backends compute, so the CMB
safety argument is unchanged.  ``("fin", end, leftovers)`` closes a run:
the worker parks not-yet-due envelopes (``t > until``) in its heap,
syncs its clock, and ships back its run stats, perf-counter deltas,
touched metric instruments, and trace-event segment for the coordinator
to merge (rows, ``meta.metrics``, ``twochains profile --shards``, and
Perfetto export all stay byte-identical to the single-heap run).

**Envelope encoding**.  Cross-shard callables are bound methods of
*registered endpoints* (``ShardedEngine.register_endpoint`` — the
fabric registers every queue pair pre-fork), wire-encoded as
``(endpoint_key, method_name)``; since workers are forks of the wired
world, ``id(obj)`` is stable across all processes and the pre-fork
registry resolves in every worker.  Arguments pass scalars/bytes raw,
engine views as shard tags, and anything else as an opaque one-shot
token that only its owning process may open (:class:`_Handle`) — in
practice the ``Completion`` riding a put/get round trip, which foreign
shards pass through untouched.  Response envelopes keep their expect
token and are rebuilt dst-side with :func:`~repro.sim.shard.
make_resolved`, preserving the exact channel sequence numbers — and
therefore the exact heap order — of the in-process backends.

**Lifecycle**.  Workers fork lazily at the first ``run()`` after the
(coordinator-side) world wiring and persist across runs within a sweep
point; a plain checkpoint restore retires them (their heaps die with
them; the coordinator clears its stale mirrors) and the next point's
first run forks fresh ones.  Driver code touching a foreign shard while
workers are live is a hard error (:class:`ProcEngineView`): that state
lives in another process, and the supported paths are the
``core/worldproxy.py`` RPC surface or a snapshot/restore boundary.
"""

from __future__ import annotations

import heapq
import mmap
import os
import pickle
import signal
import struct
import sys
import time
import traceback
import weakref
from typing import Any, Callable

from ..errors import SimulationError
from ..obs.metrics import METRICS as _M
from ..obs.tracer import TRACER as _T
from ..perf import COUNTERS as _C, _FIELDS as _C_FIELDS
from .shard import _INF, EngineView, ShardedEngine, make_resolved

#: Pipe framing: flag (1 = payload in shm scratch, 0 = inline) + length.
_HDR = struct.Struct("<BQ")

#: Per-direction shared-memory scratch; messages larger than this fall
#: back to the pipe (rare: envelope batches are small, bulk put payloads
#: occasionally are not).
_SCRATCH_BYTES = 1 << 20


class _PeerGone(Exception):
    """The other end of a channel closed (worker death / coordinator exit)."""


class _Channel:
    """One end of a duplex pickle-message channel (pipes + shm scratch)."""

    __slots__ = ("_rfd", "_wfd", "_shm_in", "_shm_out", "_closed")

    def __init__(self, rfd: int, wfd: int, shm_in: mmap.mmap,
                 shm_out: mmap.mmap):
        self._rfd = rfd
        self._wfd = wfd
        self._shm_in = shm_in
        self._shm_out = shm_out
        self._closed = False

    @classmethod
    def pair(cls) -> tuple["_Channel", "_Channel"]:
        """(parent_end, child_end), to be split across a fork."""
        p2c_r, p2c_w = os.pipe()
        c2p_r, c2p_w = os.pipe()
        shm_p2c = mmap.mmap(-1, _SCRATCH_BYTES)
        shm_c2p = mmap.mmap(-1, _SCRATCH_BYTES)
        parent = cls(c2p_r, p2c_w, shm_c2p, shm_p2c)
        child = cls(p2c_r, c2p_w, shm_p2c, shm_c2p)
        return parent, child

    def send(self, msg: Any) -> None:
        payload = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        n = len(payload)
        if n <= _SCRATCH_BYTES:
            self._shm_out[:n] = payload
            os.write(self._wfd, _HDR.pack(1, n))
            return
        os.write(self._wfd, _HDR.pack(0, n))
        view = memoryview(payload)
        while view:
            written = os.write(self._wfd, view)
            view = view[written:]

    def _read_exact(self, n: int) -> bytes:
        chunks = []
        while n:
            chunk = os.read(self._rfd, n)
            if not chunk:
                raise _PeerGone("channel EOF")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> Any:
        flag, n = _HDR.unpack(self._read_exact(_HDR.size))
        if flag:
            return pickle.loads(self._shm_in[:n])
        return pickle.loads(self._read_exact(n))

    def close_fds(self) -> None:
        """Discard this end post-fork (the *other* process keeps it):
        close only the pipe fds.  The mmap objects are the same Python
        objects as the kept end's — unmapping here would tear the
        mapping out from under the sibling channel in this process."""
        if self._closed:
            return
        self._closed = True
        for fd in (self._rfd, self._wfd):
            try:
                os.close(fd)
            except OSError:
                pass

    def close(self) -> None:
        shm_in, shm_out = self._shm_in, self._shm_out
        self.close_fds()
        for shm in (shm_in, shm_out):
            try:
                shm.close()
            except (BufferError, ValueError):
                pass


# ---------------------------------------------------------------------------
# envelope wire format
# ---------------------------------------------------------------------------

class _View:
    """Wire form of an :class:`EngineView` argument: just the shard tag."""

    __slots__ = ("shard",)

    def __init__(self, shard: int):
        self.shard = shard

    def __getstate__(self):
        return self.shard

    def __setstate__(self, state):
        self.shard = state


class _Handle:
    """Opaque token for a live object parked in its owner process.

    Foreign shards pass it through verbatim (the put/get ``Completion``
    crosses and comes straight back); only the owner may open it, and
    opening pops it — every handle is a one-shot round trip.
    """

    __slots__ = ("owner", "tok")

    def __init__(self, owner: int, tok: int):
        self.owner = owner
        self.tok = tok

    def __getstate__(self):
        return (self.owner, self.tok)

    def __setstate__(self, state):
        self.owner, self.tok = state


class _Tup:
    """Wire form of a nested tuple argument (kept distinct from the
    entry framing, which also uses tuples)."""

    __slots__ = ("items",)

    def __init__(self, items: tuple):
        self.items = items

    def __getstate__(self):
        return self.items

    def __setstate__(self, state):
        self.items = state


#: Exact types that cross the wire as themselves.
_PLAIN = (int, float, bool, str, bytes, type(None))


def _resolve_mark(*_args: Any) -> None:  # pragma: no cover - sentinel
    raise SimulationError(
        "resolve-envelope sentinel executed in-process; process-backend "
        "envelopes must be encoded before delivery")


# ---------------------------------------------------------------------------
# metrics merge support (see docs/METRICS.md, "Per-worker registries")
# ---------------------------------------------------------------------------

def _metric_fingerprints() -> dict[tuple[str, str], tuple]:
    """Cheap per-instrument change detectors.  Every emission mutates at
    least one captured scalar (counts are monotone, sample lists only
    grow), so comparing fingerprints finds exactly the instruments a
    worker touched since its fork."""
    out: dict[tuple[str, str], tuple] = {}
    for name, c in _M.counters.items():
        out[("counters", name)] = (c.value, len(c.samples))
    for name, g in _M.gauges.items():
        out[("gauges", name)] = (g.value, g.t_last, g.integral,
                                 len(g.samples))
    for name, h in _M.hists.items():
        out[("hists", name)] = (h.count, h.sum)
    return out


def _touched_since(base: dict[tuple[str, str], tuple]) -> set:
    cur = _metric_fingerprints()
    return {key for key, fp in cur.items() if base.get(key) != fp}


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

def _worker_main(coord: "ProcShardedEngine", shard: int,
                 ch: _Channel) -> None:
    """Entry point of a forked shard worker; never returns (``os._exit``)."""
    try:
        coord._become_worker(shard)
        m_base = _metric_fingerprints()
        c_base = _C.snapshot()
        while True:
            msg = ch.recv()
            tag = msg[0]
            if tag == "run":
                _worker_run(coord, shard, ch, msg, m_base, c_base)
                c_base = _C.snapshot()
            elif tag == "rpc":
                _, key, method, args = msg
                try:
                    obj = coord._endpoints[key]
                    ch.send(("ok", getattr(obj, method)(*args)))
                except BaseException as exc:
                    ch.send(("err", type(exc).__name__, str(exc),
                             traceback.format_exc()))
            elif tag == "exit":
                break
    except (_PeerGone, KeyboardInterrupt):
        pass
    except BaseException:
        # Never let a worker traceback hit the inherited stderr mid-run;
        # the coordinator surfaces failures through the channel.
        os._exit(1)
    os._exit(0)


def _worker_run(coord: "ProcShardedEngine", shard: int, ch: _Channel,
                run_msg: tuple, m_base: dict, c_base: dict) -> None:
    """One ``run()``'s worth of step rounds, worker side."""
    _, until, budget, mgen, m_on, t_on = run_msg
    _M.enabled = m_on
    if _M.gen != mgen:
        # The coordinator cleared the registry after we forked: our copy
        # is a different generation and must not merge back.
        _M.clear()
        _M.gen = mgen
        m_base.clear()
    _T.enabled = t_on
    t_base = len(_T.events)
    eng = coord.shards[shard]
    coord._events[shard] = 0
    busy = stall = 0.0
    nulls = 0
    perf = time.perf_counter
    ch.send(("ready", coord._horizon(shard)))
    while True:
        msg = ch.recv()
        tag = msg[0]
        if tag == "exit":
            os._exit(0)
        if tag == "fin":
            _, end, leftovers = msg
            try:
                coord._absorb_batch(shard, leftovers)
                eng.now = end
                stats = (coord._events[shard], busy, stall, nulls)
                cdelta = {f: v - c_base.get(f, 0)
                          for f, v in _C.snapshot().items()}
                mdump = _M.dump(keys=_touched_since(m_base))
                tev = _T.events[t_base:] if t_on else []
                ch.send(("fini", stats, cdelta, mdump, tev))
            except BaseException as exc:
                ch.send(("err", type(exc).__name__, str(exc),
                         traceback.format_exc()))
            return
        # ("step", gate, batch)
        _, gate, batch = msg
        try:
            coord._absorb_batch(shard, batch)
            t0 = perf()
            ex = coord._drain(shard, gate, until, budget)
            dt = (perf() - t0) * 1e9
            if ex:
                busy += dt
            elif coord._horizon(shard) != _INF:
                nulls += 1
                stall += dt
            ch.send(("res", ex, coord._collect_outbound(shard),
                     coord._horizon(shard), eng.now))
        except BaseException as exc:
            ch.send(("err", type(exc).__name__, str(exc),
                     traceback.format_exc()))
            return


def _reap_workers(chans: dict[int, _Channel], pids: dict[int, int]) -> None:
    """Retire worker processes: polite exit, then SIGKILL stragglers."""
    for ch in chans.values():
        try:
            ch.send(("exit",))
        except OSError:
            pass
    for ch in chans.values():
        ch.close()
    for pid in pids.values():
        reaped = False
        for _ in range(400):  # ~2 s grace
            try:
                done, _status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                reaped = True
                break
            if done:
                reaped = True
                break
            time.sleep(0.005)
        if not reaped:
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (OSError, ChildProcessError):
                pass


# ---------------------------------------------------------------------------
# the facade and the coordinator
# ---------------------------------------------------------------------------

class ProcEngineView(EngineView):
    """Shard facade that guards driver-side scheduling onto live workers.

    Inside runs (and in workers) this is exactly :class:`EngineView`;
    the extra check only fires in driver context (no shard executing)
    while worker processes hold the target shard's heap — a schedule
    landing on the coordinator's stale mirror would be silently lost.
    """

    __slots__ = ()

    def call_at(self, t: float, fn: Callable, *args: Any) -> None:
        coord = self._coord
        if (coord._workers and self.shard != coord._home
                and coord.current_shard is None):
            raise SimulationError(
                f"driver-side schedule onto shard {self.shard}, whose heap "
                f"lives in worker pid "
                f"{coord._worker_pids.get(self.shard, '?')} "
                f"(--shard-backend process): direct foreign-node access is "
                f"only valid before the first run or after a checkpoint "
                f"restore retires the workers; between runs, go through "
                f"the WorldProxy RPC surface (core/worldproxy.py)")
        EngineView.call_at(self, t, fn, *args)


class ProcShardedEngine(ShardedEngine):
    """:class:`ShardedEngine` whose non-zero shards execute in forked
    worker processes (see module docstring for protocol and lifecycle)."""

    VIEW_CLS = ProcEngineView

    def __init__(self, nshards: int, backend: str = "process"):
        super().__init__(nshards, backend)
        #: shard -> coordinator end of the worker's channel (empty both
        #: before the first post-wiring run and inside the workers).
        self._workers: dict[int, _Channel] = {}
        self._worker_pids: dict[int, int] = {}
        self._finalizer = None
        #: True once a fork happened since the last restore: the
        #: coordinator's mirrors of foreign heaps are stale.
        self._stale = False
        #: The shard this process executes (0 = coordinator).
        self._home = 0
        #: Endpoint registry for envelope encoding, built pre-fork.
        self._endpoints: dict[str, Any] = {}
        self._ep_by_id: dict[int, str] = {}
        #: Parked handle-crossing objects, per process (see _Handle).
        self._live: dict[int, Any] = {}
        self._tok = 0

    # -- wiring ----------------------------------------------------------

    def register_endpoint(self, key: str, obj: Any) -> None:
        if self._workers:
            raise SimulationError(
                f"endpoint {key!r} registered with live shard workers; "
                f"endpoints must exist before the fork so every process "
                f"shares the id registry")
        self._endpoints[key] = obj
        self._ep_by_id[id(obj)] = key

    def shard_pid(self, shard: int) -> int:
        return self._worker_pids.get(shard, os.getpid())

    # -- worker lifecycle ------------------------------------------------

    def _become_worker(self, shard: int) -> None:
        """Post-fork, child side: this process now owns ``shard``."""
        self._home = shard
        self._workers = {}
        self._worker_pids = {}
        self._finalizer = None
        self._live = {}

    def fork_workers(self) -> None:
        if self._workers or self.nshards == 1:
            return
        sys.stdout.flush()
        sys.stderr.flush()
        chans: dict[int, _Channel] = {}
        pids: dict[int, int] = {}
        for s in range(1, self.nshards):
            parent_ch, child_ch = _Channel.pair()
            pid = os.fork()
            if pid == 0:
                parent_ch.close_fds()
                for prior in chans.values():
                    prior.close_fds()
                _worker_main(self, s, child_ch)
                os._exit(0)  # pragma: no cover - _worker_main never returns
            child_ch.close_fds()
            chans[s] = parent_ch
            pids[s] = pid
        self._workers = chans
        self._worker_pids = pids
        self._stale = True
        self._finalizer = weakref.finalize(self, _reap_workers, chans, pids)

    def kill_workers(self) -> None:
        if not self._workers:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _reap_workers(self._workers, self._worker_pids)
        self._workers = {}
        self._worker_pids = {}

    # -- world RPC (core/worldproxy.py) ----------------------------------

    def rpc(self, shard: int, key: str, method: str,
            args: tuple = ()) -> Any:
        """Invoke ``endpoint.method(*args)`` in the process owning
        ``shard``; plain-data args and result only."""
        if shard == self._home or shard not in self._workers:
            return getattr(self._endpoints[key], method)(*args)
        ch = self._workers[shard]
        ch.send(("rpc", key, method, args))
        msg = self._expect(shard, "ok")
        return msg[1]

    # -- envelope codec ---------------------------------------------------

    def send_resolve(self, src: int, dst: int, token: float, fn: Callable,
                     args: tuple) -> None:
        # Keep the response as (token, fn, args) behind a sentinel so the
        # collector can wire-encode it; the closure is rebuilt dst-side.
        self.send(src, dst, token, _resolve_mark, (token, fn, args),
                  checked=False)

    def _enc_fn(self, fn: Callable) -> tuple[str, str]:
        owner = getattr(fn, "__self__", None)
        key = self._ep_by_id.get(id(owner)) if owner is not None else None
        if key is None:
            raise SimulationError(
                f"cross-shard callable {fn!r} is not a bound method of a "
                f"registered endpoint; only fabric endpoints "
                f"(ShardedEngine.register_endpoint) may ride process-backend "
                f"envelopes")
        return (key, fn.__name__)

    def _enc_arg(self, a: Any) -> Any:
        if type(a) in _PLAIN:
            return a
        if isinstance(a, EngineView):
            return _View(a.shard)
        if isinstance(a, _Handle):
            return a  # foreign object passing through, untouched
        if isinstance(a, tuple):
            return _Tup(tuple(self._enc_arg(x) for x in a))
        tok = self._tok = self._tok + 1
        self._live[tok] = a
        return _Handle(self._home, tok)

    def _dec_arg(self, a: Any) -> Any:
        t = type(a)
        if t is _View:
            return self.views[a.shard]
        if t is _Handle:
            if a.owner == self._home:
                return self._live.pop(a.tok)
            return a
        if t is _Tup:
            return tuple(self._dec_arg(x) for x in a.items)
        return a

    def _enc_entry(self, entry: tuple) -> tuple:
        t, seq, fn, args = entry
        if fn is _resolve_mark:
            token, rfn, rargs = args
            return (t, seq, token, self._enc_fn(rfn),
                    tuple(self._enc_arg(a) for a in rargs))
        return (t, seq, None, self._enc_fn(fn),
                tuple(self._enc_arg(a) for a in args))

    def _dec_entry(self, dst: int, entry: tuple) -> tuple:
        t, seq, token, (key, method), eargs = entry
        fn = getattr(self._endpoints[key], method)
        args = tuple(self._dec_arg(a) for a in eargs)
        if token is not None:
            return (t, seq, make_resolved(self, dst, token, fn, args), ())
        return (t, seq, fn, args)

    def _collect_outbound(self, home: int) -> list:
        """Encode and drain every outbound channel of ``home``:
        ``[(dst, src, [encoded entries]), ...]``."""
        out = []
        for (src, dst), chan in self._channels.items():
            if src != home or not chan:
                continue
            out.append((dst, src, [self._enc_entry(e) for e in chan]))
            chan.clear()
        return out

    def _absorb_batch(self, dst: int, batch: list) -> None:
        """Decode routed envelope batches straight into ``dst``'s heap
        (heap order is decided by the carried (t, seq) keys, exactly as
        the in-process ``_absorb``)."""
        heap = self.shards[dst]._heap
        for _src, entries in batch:
            for e in entries:
                heapq.heappush(heap, self._dec_entry(dst, e))

    # -- the run protocol, coordinator side -------------------------------

    def _expect(self, shard: int, *tags: str) -> tuple:
        ch = self._workers[shard]
        pid = self._worker_pids.get(shard, "?")
        try:
            msg = ch.recv()
        except _PeerGone:
            raise SimulationError(
                f"shard {shard} worker (pid {pid}) died unexpectedly "
                f"(channel EOF)") from None
        if msg[0] == "err":
            _tag, etype, emsg, tb = msg
            raise SimulationError(
                f"shard {shard} worker (pid {pid}) raised {etype}: {emsg}\n"
                f"--- worker traceback (pid {pid}) ---\n{tb}")
        if msg[0] not in tags:
            raise SimulationError(
                f"shard {shard} worker protocol error: got {msg[0]!r}, "
                f"expected one of {tags}")
        return msg

    def _dispatch(self, backend: str, until: float | None,
                  max_events: int) -> None:
        if backend != "process":  # pragma: no cover - defensive
            super()._dispatch(backend, until, max_events)
            return
        if not self._workers:
            self.fork_workers()
        if not self._workers:  # single shard: plain windowed pass
            self._run_serial(until, max_events)
            return
        try:
            self._run_process(until, max_events)
        except BaseException:
            # The round protocol is positional; an error mid-run leaves
            # workers desynchronized, so retire them (a fresh fork at the
            # next run is cheap, and crash propagation must never hang).
            self.kill_workers()
            raise

    def _run_process(self, until: float | None, max_events: int) -> None:
        n = self.nshards
        workers = self._workers
        budget = max_events
        perf = time.perf_counter
        for ch in workers.values():
            ch.send(("run", until, budget, _M.gen, _M.enabled, _T.enabled))
        horizons = [_INF] * n
        self._absorb(0)
        horizons[0] = self._horizon(0)
        for s in workers:
            horizons[s] = self._expect(s, "ready")[1]
        # Star routing state: envelopes collected this round, delivered
        # with the next round's step (pend_min keeps horizons honest).
        pending: list[list] = [[] for _ in range(n)]
        pend_min = [_INF] * n
        total = 0

        def route(outbound: list) -> None:
            for dst, src, entries in outbound:
                pending[dst].append((src, entries))
                for e in entries:
                    if e[0] < pend_min[dst]:
                        pend_min[dst] = e[0]

        while True:
            floor = min(horizons)
            if floor == _INF or (until is not None and floor > until):
                break
            # Dispatch worker windows first: they execute concurrently
            # with the coordinator's own shard-0 drain below.
            for s, ch in workers.items():
                ch.send(("step", self._gate(s, horizons), pending[s]))
                pending[s] = []
                pend_min[s] = _INF
            progress = 0
            if horizons[0] != _INF:
                t0 = perf()
                ex0 = self._drain(0, self._gate(0, horizons), until, budget)
                self._busy_wall[0] += (perf() - t0) * 1e9
                if ex0:
                    progress += ex0
                    total += ex0
                else:
                    self._null_msgs[0] += 1
            route(self._collect_outbound(0))
            for s in workers:
                msg = self._expect(s, "res")
                _tag, ex, outbound, h, now_s = msg
                self.shards[s].now = now_s  # clock mirror
                route(outbound)
                horizons[s] = h
                if ex:
                    progress += ex
                    total += ex
            # Deliver shard 0's inbound now; workers get theirs with the
            # next step.  Horizons then account for everything in flight.
            if pending[0]:
                self._absorb_batch(0, pending[0])
                pending[0] = []
                pend_min[0] = _INF
            horizons[0] = self._horizon(0)
            for s in workers:
                if pend_min[s] < horizons[s]:
                    horizons[s] = pend_min[s]
            if total > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; model is likely spinning")
            if not progress and not any(pending):
                self._raise_deadlock(horizons, until)
        # Close the run: sync clocks, park overdue envelopes, merge the
        # per-worker observability state back into this process.
        end = max(e.now for e in self.shards)
        if until is not None and until > end:
            end = until
        for s, ch in workers.items():
            ch.send(("fin", end, pending[s]))
            pending[s] = []
        if pending[0]:
            self._absorb_batch(0, pending[0])
        for s in workers:
            _tag, stats, cdelta, mdump, tev = self._expect(s, "fini")
            ev, busy, stall, nulls = stats
            self._events[s] = ev
            self._busy_wall[s] = busy
            self._stall_wall[s] = stall
            self._null_msgs[s] = nulls
            self.shards[s].now = end
            for f in _C_FIELDS:
                d = cdelta.get(f, 0)
                if d:
                    setattr(_C, f, getattr(_C, f) + d)
            if mdump:
                _M.absorb_dump(mdump)
            if tev:
                _T.events.extend(tev)

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> tuple:
        if self._workers:
            raise SimulationError(
                "process-backend engine state lives in worker processes; "
                "snapshot through the WorldProxy (core/worldproxy.py), "
                "which keeps per-shard snaps resident in the workers")
        return super().snapshot()

    def restore(self, snap: tuple) -> None:
        self.kill_workers()
        if self._stale:
            # Since the fork, foreign shards executed in the (now retired)
            # workers; the coordinator's mirrors hold the dead timeline's
            # never-executed wiring.  Drop them — the restore target state
            # is the pre-fork checkpoint.
            for s in range(self.nshards):
                if s != self._home:
                    self.shards[s]._heap.clear()
            for exps in self._expects:
                del exps[:]
            for chan in self._channels.values():
                chan.clear()
            self._live.clear()
            self._stale = False
        super().restore(snap)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ProcShardedEngine(shards={self.nshards}, "
                f"workers={sorted(self._worker_pids.values())}, "
                f"now={self.now})")
