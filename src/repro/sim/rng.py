"""Deterministic random-number plumbing.

One master seed per experiment; every stochastic component asks for a child
generator derived from (master seed, component name).  Child streams are
independent of spawn order, so adding a new noise source never perturbs the
draws of existing ones — a property the tail-latency benchmarks rely on for
reproducibility.
"""

from __future__ import annotations

import copy
import hashlib

import numpy as np

DEFAULT_SEED = 20210901  # CLUSTER 2021 camera-ready month, arbitrary but fixed.


class RngPool:
    """Factory of named, independent ``numpy.random.Generator`` streams."""

    def __init__(self, master_seed: int = DEFAULT_SEED):
        self.master_seed = int(master_seed)
        self._issued: dict[str, np.random.Generator] = {}

    def child(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use).

        The same (seed, name) pair always yields an identical stream.
        """
        gen = self._issued.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()
            ).digest()
            seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(seed)
            self._issued[name] = gen
        return gen

    def issued_names(self) -> list[str]:
        return sorted(self._issued)

    def snapshot(self) -> dict[str, object]:
        """Capture every issued stream's bit-generator state."""
        return {name: copy.deepcopy(gen.bit_generator.state)
                for name, gen in self._issued.items()}

    def restore(self, snap: dict[str, object]) -> None:
        """Rewind streams to a snapshot.  Streams issued after the
        snapshot are dropped entirely, so a restored pool re-derives them
        from (seed, name) exactly as a fresh pool would."""
        for name in [n for n in self._issued if n not in snap]:
            del self._issued[name]
        for name, state in snap.items():
            self.child(name).bit_generator.state = copy.deepcopy(state)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngPool(seed={self.master_seed}, issued={len(self._issued)})"
