"""Discrete-event simulation kernel.

A deliberately small generator-based DES: processes are Python generators
that ``yield`` either a :class:`Delay`, an absolute :class:`At` time, or an
:class:`Event` to wait on.  The engine owns a single priority queue of
scheduled callbacks; ties are broken by insertion order so runs are fully
deterministic.

This kernel is in the hot path of every benchmark, so it avoids abstraction
layers: one heap, plain tuples, no per-event allocation beyond the tuple.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulationError
from ..obs.tracer import PID_SIM, TID_DES, TRACER as _T
from ..perf import COUNTERS as _C

# Type of a simulation process body.
ProcessBody = Generator[Any, Any, Any]


class Delay:
    """Yielded by a process to sleep for ``dt`` nanoseconds."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise SimulationError(f"negative delay: {dt}")
        self.dt = dt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay({self.dt!r})"


class At:
    """Yielded by a process to sleep until absolute time ``t``."""

    __slots__ = ("t",)

    def __init__(self, t: float):
        self.t = t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"At({self.t!r})"


class Event:
    """A one-shot or reusable wake-up point.

    Processes yield an Event to block on it.  ``fire(payload)`` wakes every
    waiter at the current simulation time; the payload becomes the value of
    the ``yield`` expression inside the waiting process.  After ``fire`` the
    event automatically resets, so the same object can be reused for
    repeated signalling (mailbox-style).
    """

    __slots__ = ("engine", "name", "_waiters", "fire_count")

    def __init__(self, engine: "Engine", name: str = "event"):
        self.engine = engine
        self.name = name
        self._waiters: list[Process] = []
        self.fire_count = 0

    def fire(self, payload: Any = None) -> int:
        """Wake all current waiters; returns the number woken."""
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.engine.call_at(self.engine.now, proc._resume, payload)
        return len(waiters)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Event({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """A running simulation process wrapping a generator body."""

    __slots__ = ("engine", "name", "body", "finished", "result", "_done_event")

    def __init__(self, engine: "Engine", body: ProcessBody, name: str):
        self.engine = engine
        self.name = name
        self.body = body
        self.finished = False
        self.result: Any = None
        self._done_event: Optional[Event] = None

    @property
    def done_event(self) -> Event:
        """Event fired when this process terminates (lazily created)."""
        if self._done_event is None:
            self._done_event = Event(self.engine, f"done:{self.name}")
            if self.finished:
                self._done_event.fire(self.result)
        return self._done_event

    def _resume(self, value: Any = None) -> None:
        if self.finished:
            return
        engine = self.engine
        try:
            yielded = self.body.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            if self._done_event is not None:
                self._done_event.fire(self.result)
            return
        if isinstance(yielded, Delay):
            engine.call_at(engine.now + yielded.dt, self._resume, None)
        elif isinstance(yielded, At):
            if yielded.t < engine.now:
                raise SimulationError(
                    f"process {self.name}: At({yielded.t}) is in the past "
                    f"(now={engine.now})"
                )
            engine.call_at(yielded.t, self._resume, None)
        elif isinstance(yielded, Event):
            yielded._waiters.append(self)
        elif isinstance(yielded, (int, float)):
            # Bare number == Delay(number); convenient in tight model code.
            engine.call_at(engine.now + float(yielded), self._resume, None)
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported {yielded!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Process({self.name!r}, finished={self.finished})"


class Engine:
    """The event loop.  All model state shares one Engine per experiment."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self._running = False

    # -- scheduling ------------------------------------------------------

    def call_at(self, t: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``t``."""
        if t < self.now:
            raise SimulationError(f"call_at({t}) before now={self.now}")
        self._seq += 1
        heapq.heappush(self._heap, (t, self._seq, fn, args))

    def call_after(self, dt: float, fn: Callable, *args: Any) -> None:
        self.call_at(self.now + dt, fn, *args)

    def event(self, name: str = "event") -> Event:
        return Event(self, name)

    def spawn(self, body: ProcessBody, name: str = "proc") -> Process:
        """Start a process; its first step runs at the current time."""
        proc = Process(self, body, name)
        self.call_at(self.now, proc._resume, None)
        return proc

    # -- running ---------------------------------------------------------

    def step(self) -> bool:
        """Run one scheduled callback.  Returns False if the queue is empty."""
        if not self._heap:
            return False
        t, _seq, fn, args = heapq.heappop(self._heap)
        self.now = t
        if _T.enabled:
            # Name the dispatch after its target: a Process carries its
            # name, an Event.fire its event name, else the qualname.
            owner = getattr(fn, "__self__", None)
            label = getattr(owner, "name", None)
            if not isinstance(label, str):
                label = getattr(fn, "__qualname__", "callback")
            _T.instant(PID_SIM, TID_DES, label, t)
        fn(*args)
        return True

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> None:
        """Run until the queue drains or simulated time passes ``until``.

        ``max_events`` is a runaway guard: exceeding it raises, which in
        practice means a model is spinning without advancing time.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        t_start = self.now
        executed = 0
        # The pop/dispatch below is step() inlined: the noise-heavy figures
        # execute tens of millions of events per run, so the per-event
        # attribute lookups (self._heap, heapq.heappop, _T.enabled) are
        # hoisted out of the loop.  step() stays for external callers.
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                t = heap[0][0]
                if until is not None and t > until:
                    self.now = until
                    return
                t, _seq, fn, args = pop(heap)
                self.now = t
                if _T.enabled:
                    owner = getattr(fn, "__self__", None)
                    label = getattr(owner, "name", None)
                    if not isinstance(label, str):
                        label = getattr(fn, "__qualname__", "callback")
                    _T.instant(PID_SIM, TID_DES, label, t)
                fn(*args)
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; model is likely spinning"
                    )
        finally:
            self._running = False
            _C.des_events += executed
            _C.sim_ns += self.now - t_start

    # -- checkpointing ----------------------------------------------------

    @property
    def quiescent(self) -> bool:
        """True when nothing is scheduled and the loop is not running —
        the only state a world checkpoint is allowed in."""
        return not self._heap and not self._running

    def snapshot(self) -> tuple[float, int]:
        """Capture (now, seq).  Checkpoints must be quiescent: a pending
        callback cannot be serialized (it closes over live model objects),
        so a non-empty queue is a hard error, not a silent approximation."""
        if not self.quiescent:
            raise SimulationError(
                f"engine checkpoint requires quiescence: "
                f"{len(self._heap)} pending callback(s), "
                f"running={self._running}")
        return self.now, self._seq

    def restore(self, snap: tuple[float, int]) -> None:
        """Rewind the clock to a snapshot; same quiescence bar as
        :meth:`snapshot` (restoring under pending work would strand it
        in a future that no longer exists)."""
        if not self.quiescent:
            raise SimulationError(
                f"engine restore requires quiescence: "
                f"{len(self._heap)} pending callback(s), "
                f"running={self._running}")
        self.now, self._seq = snap

    def run_process(self, body: ProcessBody, name: str = "main",
                    until: float | None = None) -> Any:
        """Spawn ``body`` and run the loop until it finishes; returns its
        return value."""
        proc = self.spawn(body, name)
        self.run(until=until)
        if not proc.finished:
            raise SimulationError(
                f"process {name} did not finish (now={self.now}); deadlock?"
            )
        return proc.result

    # -- composite waits --------------------------------------------------

    def all_of(self, procs: Iterable[Process]) -> ProcessBody:
        """Process body that waits for all of ``procs`` to finish."""
        for p in procs:
            if not p.finished:
                yield p.done_event

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Engine(now={self.now}, pending={len(self._heap)})"
