"""Discrete-event simulation kernel (engine, clocks, RNG pool, tracing)."""

from .clock import CPU_CLOCK, NOC_CLOCK, ClockDomain
from .engine import At, Delay, Engine, Event, Process
from .rng import DEFAULT_SEED, RngPool
from .trace import Scoreboard

__all__ = [
    "At",
    "CPU_CLOCK",
    "ClockDomain",
    "DEFAULT_SEED",
    "Delay",
    "Engine",
    "Event",
    "NOC_CLOCK",
    "Process",
    "RngPool",
    "Scoreboard",
]
