"""Conservative parallel DES shards (Chandy-Misra-Bryant style).

The single-heap :class:`~repro.sim.engine.Engine` serializes every node's
events through one priority queue; an N-node fabric therefore runs on one
core no matter how wide the world is.  This module shards the DES **by
node**: each shard owns a private ``Engine`` heap holding one or more
nodes (plus their HCAs, caches, DRAM, noise workers, and VM), and the
RDMA fabric is the *only* cross-shard edge.

Synchronization is conservative.  Every directed cross-shard channel
``(src, dst)`` carries a static **lookahead** ``L`` — the minimum
simulated latency any fabric message can take on that link (software
post + 2x HCA + 2x PCIe + wire propagation + zero-byte serialization).
A shard may execute events strictly below its **gate**::

    gate(s) = min over inbound channels (p -> s) of  horizon(p) + L(p, s)

where ``horizon(p)`` is a lower bound on any timestamp shard ``p`` can
still produce (its heap head, or its earliest outstanding *expect*, see
below).  Unsolicited cross-shard messages (put deliveries, get requests)
are validated against the lookahead at send time; scheduling onto a
foreign shard below the channel lookahead is a hard
:class:`~repro.errors.SimulationError` — that rule is why figures whose
drivers poke foreign-node state mid-run force ``--shards 1``
(``FigureSpec.shardable``).

**Responses** (put retire/ACK status, get response data) arrive at a
time the source computed at post time from source-local state alone, so
they cannot honour a lookahead.  They ride an **expect barrier**
instead: the source registers ``expect(T)`` when posting; it may keep
executing local events with ``t < T`` (and inbound envelopes with
``t <= T``) but blocks at ``T`` until the response — an *unchecked*
envelope arriving at exactly ``T`` — resolves the barrier.  Expects
count toward the published horizon, so peers never outrun a response.

Determinism.  Heap keys are ``(t, seq)``; local events use the shard's
positive insertion sequence and envelopes use a negative band derived
from ``(src_shard, per-channel seq)``, so at equal timestamps inbound
fabric messages order before local events and among themselves by a
globally consistent key.  Cross-shard state isolation (shards only
communicate through timestamped envelopes whose values are computed
identically to the single-heap run) makes committed benchmark rows
byte-identical under ``--shards N`` vs ``--shards 1``; the registry-wide
identity tests enforce it.

Backends: ``serial`` (default) runs the windowed protocol on one OS
thread — deterministic, debuggable, and what the identity tests pin.
``thread`` runs one OS thread per shard with barrier-synchronized
rounds; under CPython's GIL it validates the protocol rather than
buying wall-clock.  ``process`` (sim/procshard.py) runs every non-zero
shard's heap in a forked worker process with envelope batches over
pipe/shared-memory channels — the multi-core backend; drivers talk to
such worlds through the RPC surface in ``core/worldproxy.py``.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterable

from ..errors import SimulationError
from ..obs.metrics import METRICS as _M
from ..obs.tracer import PID_SIM, TID_DES, TRACER as _T
from ..perf import COUNTERS as _C
from .engine import Engine, Event, Process, ProcessBody

_INF = float("inf")

# Envelope sequence band: negative, so envelopes sort before local events
# (positive engine seqs) at equal timestamps; ordered among themselves by
# (src_shard, per-channel seq) for a globally consistent tie-break.
_ENV_BASE = -(1 << 62)
_ENV_STRIDE = 1 << 40

BACKENDS = ("serial", "thread", "process")


# ---------------------------------------------------------------------------
# process-global shard policy (mirrors isa.vm.set_fusion / set_trace_jit)
# ---------------------------------------------------------------------------

_POLICY: tuple[int | str, str] = (1, "serial")

#: How many orchestrator pool workers are concurrently active in this
#: process tree (``bench run --jobs``).  ``resolve_shards`` divides the
#: CPU budget by it so shards x jobs never oversubscribes the machine.
_ACTIVE_JOBS = 1


def set_policy(shards: int | str, backend: str = "serial") -> None:
    """Set the process-global shard request: a count or ``"auto"``."""
    global _POLICY
    if backend not in BACKENDS:
        raise SimulationError(f"unknown shard backend {backend!r}; "
                              f"known: {BACKENDS}")
    if shards != "auto":
        shards = int(shards)
        if shards < 1:
            raise SimulationError(f"shards must be >= 1, got {shards}")
    _POLICY = (shards, backend)


def get_policy() -> tuple[int | str, str]:
    return _POLICY


def set_active_jobs(jobs: int) -> None:
    """Record the orchestrator's concurrent pool width (>= 1)."""
    global _ACTIVE_JOBS
    _ACTIVE_JOBS = max(1, int(jobs))


def get_active_jobs() -> int:
    return _ACTIVE_JOBS


def available_cpus() -> int:
    """CPUs this process may actually run on.

    Container-aware: a cgroup cpuset (docker --cpuset-cpus, CI runners,
    taskset) shrinks ``sched_getaffinity`` but not ``os.cpu_count``, so
    prefer the affinity mask where the platform has one.
    """
    getaff = getattr(os, "sched_getaffinity", None)
    if getaff is not None:
        try:
            return max(1, len(getaff(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def resolve_shards(requested: int | str, nodes: int) -> int:
    """Effective shard count for a world of ``nodes`` nodes.

    ``"auto"`` resolves to the CPU budget *per orchestrator job*
    (affinity-aware CPUs divided by :func:`set_active_jobs`), so a
    ``--jobs N --shards auto`` bench run never oversubscribes.  An
    explicit count is honoured as-is except under the ``process``
    backend with multiple active jobs, where it is capped to the same
    per-job budget — worker processes multiply with pool fan-out where
    threads (GIL) do not.  Rows are shard-count invariant either way;
    only wall-clock moves.
    """
    cap = max(1, available_cpus() // _ACTIVE_JOBS)
    if requested == "auto":
        requested = cap
    elif _POLICY[1] == "process" and _ACTIVE_JOBS > 1:
        requested = min(int(requested), cap)
    return max(1, min(int(requested), nodes))


@contextmanager
def forced_single():
    """Run a block with sharding off (legacy figures whose drivers touch
    foreign-node state mid-run; see ``FigureSpec.shardable``)."""
    global _POLICY
    saved = _POLICY
    _POLICY = (1, saved[1])
    try:
        yield
    finally:
        _POLICY = saved


@contextmanager
def scoped_policy(shards: int | str, backend: str = "serial"):
    global _POLICY
    saved = _POLICY
    set_policy(shards, backend)
    try:
        yield
    finally:
        _POLICY = saved


# ---------------------------------------------------------------------------
# per-run utilization stats (twochains profile; unstable shard metrics)
# ---------------------------------------------------------------------------

class RunStats:
    """Accumulated per-shard utilization across ShardedEngine runs in
    this process: busy wall, sync-stall wall, null messages, events."""

    def __init__(self) -> None:
        self.per_shard: dict[int, dict[str, float]] = {}
        self.runs = 0

    def reset(self) -> None:
        self.per_shard.clear()
        self.runs = 0

    def fold(self, coord: "ShardedEngine") -> None:
        self.runs += 1
        for s in range(coord.nshards):
            d = self.per_shard.setdefault(
                s, {"events": 0, "busy_wall_ns": 0.0,
                    "stall_wall_ns": 0.0, "null_msgs": 0})
            d["events"] += coord._events[s]
            d["busy_wall_ns"] += coord._busy_wall[s]
            d["stall_wall_ns"] += coord._stall_wall[s]
            d["null_msgs"] += coord._null_msgs[s]
            # Which OS process executed the shard: the coordinator for
            # serial/thread backends, a forked worker for process (the
            # profile report labels rows with it).
            d["pid"] = coord.shard_pid(s)

    def snapshot(self) -> dict:
        out = {}
        for s in sorted(self.per_shard):
            d = self.per_shard[s]
            wall = d["busy_wall_ns"] + d["stall_wall_ns"]
            out[s] = dict(d, busy_frac=(d["busy_wall_ns"] / wall)
                          if wall else 0.0)
        return out


#: Process-wide aggregate, reset/read by ``twochains profile``.
RUN_STATS = RunStats()


# ---------------------------------------------------------------------------
# the per-shard engine facade
# ---------------------------------------------------------------------------

class EngineView:
    """A shard-bound facade quacking like :class:`Engine`.

    Every model object (Node, HCA, runtime, worker, waiter) holds the
    view of its home shard; scheduling through a view routes locally
    when the caller executes on (or outside) that shard and becomes a
    lookahead-checked envelope when another shard is executing.
    """

    __slots__ = ("_coord", "shard", "_eng")

    def __init__(self, coord: "ShardedEngine", shard: int):
        self._coord = coord
        self.shard = shard
        self._eng = coord.shards[shard]

    @property
    def now(self) -> float:
        return self._eng.now

    # -- scheduling ------------------------------------------------------

    def call_at(self, t: float, fn: Callable, *args: Any) -> None:
        cur = self._coord.current_shard
        if cur is None or cur == self.shard:
            self._eng.call_at(t, fn, *args)
        else:
            self._coord.send(cur, self.shard, t, fn, args)

    def call_after(self, dt: float, fn: Callable, *args: Any) -> None:
        self.call_at(self._eng.now + dt, fn, *args)

    def event(self, name: str = "event") -> Event:
        return Event(self, name)  # type: ignore[arg-type]

    def spawn(self, body: ProcessBody, name: str = "proc") -> Process:
        proc = Process(self, body, name)  # type: ignore[arg-type]
        self.call_at(self._eng.now, proc._resume, None)
        return proc

    # -- response barriers (see module docstring) ------------------------

    def expect(self, t: float) -> float:
        """Register a response barrier at ``t``; returns the token to
        pass to :meth:`resolve`."""
        heapq.heappush(self._coord._expects[self.shard], t)
        return t

    def resolve(self, token: float, fn: Callable, *args: Any) -> None:
        """Deliver the response for an earlier ``expect(token)``: an
        unchecked envelope executing on this view's shard at exactly
        ``token``, clearing the barrier before running ``fn``."""
        coord = self._coord
        cur = coord.current_shard
        shard = self.shard
        if cur is None or cur == shard:
            # Same-shard response (e.g. serial fallback): clear inline.
            self._eng.call_at(token, make_resolved(coord, shard, token,
                                                   fn, args))
        else:
            coord.send_resolve(cur, shard, token, fn, args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EngineView(shard={self.shard}, now={self._eng.now})"


def make_resolved(coord: "ShardedEngine", shard: int, token: float,
                  fn: Callable, args: tuple) -> Callable:
    """The barrier-clearing callback of one expect/resolve exchange:
    asserts the response matches the shard's earliest outstanding
    expect, pops it, then runs the response body.  Built on the shard
    that registered the expect — under the process backend that means
    on the *receiving* side of a resolve envelope (sim/procshard.py),
    since a closure cannot cross a process boundary."""
    def _resolved() -> None:
        exps = coord._expects[shard]
        if not exps or exps[0] != token:
            raise SimulationError(
                f"shard {shard}: response at t={token} does not match "
                f"earliest expect "
                f"({exps[0] if exps else 'none'})")
        heapq.heappop(exps)
        fn(*args)
    return _resolved


def shard_route(src_engine, dst_engine):
    """``(src_view, dst_view)`` when the two engines are distinct shards
    of one ShardedEngine, else None (same shard / plain Engine)."""
    if src_engine is dst_engine:
        return None
    if (isinstance(src_engine, EngineView)
            and isinstance(dst_engine, EngineView)
            and src_engine._coord is dst_engine._coord
            and src_engine.shard != dst_engine.shard):
        return src_engine, dst_engine
    return None


# ---------------------------------------------------------------------------
# the coordinator
# ---------------------------------------------------------------------------

class ShardedEngine:
    """N per-shard heaps advanced under conservative lookahead windows.

    Presents the :class:`Engine` surface the world/bench layers consume
    (``now``, ``spawn``, ``event``, ``run``, ``run_process``,
    ``snapshot``/``restore``); model objects talk to their shard's
    :class:`EngineView` instead.
    """

    #: Facade class handed to model objects; the process backend swaps
    #: in a subclass that guards driver-side foreign scheduling.
    VIEW_CLS = EngineView

    def __init__(self, nshards: int, backend: str = "serial"):
        if nshards < 1:
            raise SimulationError(f"need >= 1 shard, got {nshards}")
        if backend not in BACKENDS:
            raise SimulationError(f"unknown shard backend {backend!r}")
        self.nshards = nshards
        self.backend = backend
        self.shards = [Engine() for _ in range(nshards)]
        view_cls = type(self).VIEW_CLS
        self.views = [view_cls(self, s) for s in range(nshards)]
        # Directed channels: (src, dst) -> FIFO of heap entries.
        self._channels: dict[tuple[int, int], Any] = {}
        self._chan_seq: dict[tuple[int, int], int] = {}
        self._lookahead: dict[tuple[int, int], float] = {}
        # Per-dst inbound lists, precomputed at register_link time.
        self._inbound: list[list[tuple[int, Any]]] = [[] for _ in range(nshards)]
        self._in_la: list[list[tuple[int, float]]] = [[] for _ in range(nshards)]
        self._expects: list[list[float]] = [[] for _ in range(nshards)]
        self._tls = threading.local()
        self._running = False
        # per-run stats (reset each run(), folded into RUN_STATS)
        self._events = [0] * nshards
        self._busy_wall = [0.0] * nshards
        self._stall_wall = [0.0] * nshards
        self._null_msgs = [0] * nshards

    # -- topology wiring -------------------------------------------------

    def view(self, shard: int) -> EngineView:
        return self.views[shard]

    def register_link(self, src: int, dst: int, lookahead_ns: float) -> None:
        """Declare a fabric edge between shards with its minimum message
        latency; the channel lookahead is the min over registered QPs."""
        if src == dst:
            return
        if lookahead_ns <= 0:
            raise SimulationError(
                f"cross-shard link {src}->{dst} needs positive lookahead, "
                f"got {lookahead_ns}")
        key = (src, dst)
        if key not in self._channels:
            from collections import deque
            self._channels[key] = deque()
            self._chan_seq[key] = 0
            self._lookahead[key] = lookahead_ns
            self._inbound[dst].append((src, self._channels[key]))
            self._in_la[dst].append((src, lookahead_ns))
        else:
            la = min(self._lookahead[key], lookahead_ns)
            self._lookahead[key] = la
            self._in_la[dst] = [(s, la if s == src else v)
                                for s, v in self._in_la[dst]]

    def register_endpoint(self, key: str, obj: Any) -> None:
        """Name a model object whose bound methods may ride cross-shard
        envelopes.  The in-process backends pass callables by reference,
        so this is a no-op here; the process backend (sim/procshard.py)
        overrides it to build the wire-encoding registry."""

    def shard_pid(self, shard: int) -> int:
        """OS pid executing ``shard``'s heap (this process for the
        in-process backends)."""
        return os.getpid()

    # -- engine-compatible surface --------------------------------------

    @property
    def current_shard(self) -> int | None:
        return getattr(self._tls, "shard", None)

    def _active_view(self) -> EngineView:
        cur = self.current_shard
        return self.views[cur if cur is not None else 0]

    @property
    def now(self) -> float:
        cur = self.current_shard
        if cur is not None:
            return self.shards[cur].now
        return max(e.now for e in self.shards)

    def call_at(self, t: float, fn: Callable, *args: Any) -> None:
        self._active_view().call_at(t, fn, *args)

    def call_after(self, dt: float, fn: Callable, *args: Any) -> None:
        view = self._active_view()
        view.call_at(view.now + dt, fn, *args)

    def event(self, name: str = "event") -> Event:
        return self._active_view().event(name)

    def spawn(self, body: ProcessBody, name: str = "proc") -> Process:
        return self._active_view().spawn(body, name)

    def all_of(self, procs: Iterable[Process]) -> ProcessBody:
        for p in procs:
            if not p.finished:
                yield p.done_event

    def run_process(self, body: ProcessBody, name: str = "main",
                    until: float | None = None) -> Any:
        proc = self.spawn(body, name)
        self.run(until=until)
        if not proc.finished:
            raise SimulationError(
                f"process {name} did not finish (now={self.now}); deadlock?")
        return proc.result

    # -- cross-shard envelopes -------------------------------------------

    def send(self, src: int, dst: int, t: float, fn: Callable,
             args: tuple, checked: bool = True) -> None:
        key = (src, dst)
        la = self._lookahead.get(key)
        if la is None:
            raise SimulationError(
                f"no fabric edge between shard {src} and shard {dst}: only "
                f"RDMA links may cross shards (run with --shards 1 for "
                f"drivers that touch foreign-node state directly)")
        if checked:
            now_src = self.shards[src].now
            if t < now_src + la - 1e-6:
                raise SimulationError(
                    f"cross-shard schedule below lookahead: shard {src} at "
                    f"t={now_src} scheduled t={t} on shard {dst} "
                    f"(lookahead {la} ns); only fabric-latency edges may "
                    f"cross shards")
        seq = self._chan_seq[key]
        self._chan_seq[key] = seq + 1
        self._channels[key].append(
            (t, _ENV_BASE + src * _ENV_STRIDE + seq, fn, args))

    def send_resolve(self, src: int, dst: int, token: float, fn: Callable,
                     args: tuple) -> None:
        """Route a response envelope (see :meth:`EngineView.resolve`).
        In-process, the barrier-clearing closure travels directly; the
        process backend overrides this with a wire-encodable form."""
        self.send(src, dst, token, make_resolved(self, dst, token, fn, args),
                  (), checked=False)

    def _absorb(self, s: int) -> None:
        heap = self.shards[s]._heap
        for _src, chan in self._inbound[s]:
            while chan:
                heapq.heappush(heap, chan.popleft())

    # -- the conservative window protocol --------------------------------

    def _horizon(self, s: int) -> float:
        """Lower bound on any timestamp shard ``s`` can still produce;
        call only with the shard's inbound channels drained."""
        eng = self.shards[s]
        h = eng._heap[0][0] if eng._heap else _INF
        exps = self._expects[s]
        if exps and exps[0] < h:
            h = exps[0]
        return h

    def _gate(self, s: int, horizons: list[float]) -> float:
        gate = _INF
        for p, la in self._in_la[s]:
            g = horizons[p] + la
            if g < gate:
                gate = g
        return gate

    def _drain(self, s: int, gate: float, until: float | None,
               budget: int) -> int:
        """Execute shard ``s`` events with ``t < gate`` (and ``t <=
        until``), honouring expect barriers.  Returns events executed."""
        eng = self.shards[s]
        heap = eng._heap
        expects = self._expects[s]
        pop = heapq.heappop
        executed = 0
        self._tls.shard = s
        try:
            while heap:
                t = heap[0][0]
                if t >= gate:
                    break
                if until is not None and t > until:
                    break
                if expects:
                    te = expects[0]
                    # Band-0 envelopes at exactly the barrier time are the
                    # response (or ties ordered before it); locals at or
                    # past the barrier wait for the resolve.
                    if t > te or (t == te and heap[0][1] >= 0):
                        break
                t, _seq, fn, args = pop(heap)
                eng.now = t
                if _T.enabled:
                    owner = getattr(fn, "__self__", None)
                    label = getattr(owner, "name", None)
                    if not isinstance(label, str):
                        label = getattr(fn, "__qualname__", "callback")
                    _T.instant(PID_SIM, TID_DES, label, t)
                fn(*args)
                executed += 1
                if executed > budget:
                    raise SimulationError(
                        f"shard {s} exceeded event budget; model is likely "
                        f"spinning")
        finally:
            self._tls.shard = None
        self._events[s] += executed
        return executed

    def run(self, until: float | None = None,
            max_events: int = 50_000_000) -> None:
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._events = [0] * self.nshards
        self._busy_wall = [0.0] * self.nshards
        self._stall_wall = [0.0] * self.nshards
        self._null_msgs = [0] * self.nshards
        t_start = max(e.now for e in self.shards)
        backend = self.backend
        if backend == "thread" and (_T.enabled or self.nshards == 1):
            # The tracer's event list is append-only but unordered under
            # concurrency; keep traced runs on the deterministic path.
            backend = "serial"
        try:
            self._dispatch(backend, until, max_events)
        finally:
            self._running = False
            end = max(e.now for e in self.shards)
            if until is not None and until > end:
                end = until
            # The single-heap clock ends at the last executed event
            # globally; sync every shard so idle reads and subsequent
            # posts see the same clock a single heap would.
            for eng in self.shards:
                eng.now = end
            _C.des_events += sum(self._events)
            _C.sim_ns += end - t_start
            RUN_STATS.fold(self)
            if _M.enabled:
                for s in range(self.nshards):
                    if self._null_msgs[s]:
                        _M.count(f"tc_shard_null_msgs_total|shard={s}",
                                 end, self._null_msgs[s], stable=False)
                    if self._stall_wall[s]:
                        _M.count(f"tc_shard_sync_stall_ns_total|shard={s}",
                                 end, self._stall_wall[s], stable=False)

    def _dispatch(self, backend: str, until: float | None,
                  max_events: int) -> None:
        """Run one window protocol pass under ``backend`` (the process
        subclass overrides this to drive its worker pool)."""
        if backend == "thread":
            self._run_threaded(until, max_events)
        else:
            self._run_serial(until, max_events)

    def _run_serial(self, until: float | None, max_events: int) -> None:
        n = self.nshards
        budget = max_events
        total = 0
        perf = time.perf_counter
        while True:
            for s in range(n):
                self._absorb(s)
            horizons = [self._horizon(s) for s in range(n)]
            floor = min(horizons)
            if floor is _INF or floor == _INF:
                return  # fully drained (no events, no expects)
            if until is not None and floor > until:
                return  # Engine.run(until) semantics: clock syncs in run()
            progress = 0
            for s in range(n):
                if horizons[s] is _INF:
                    continue
                t0 = perf()
                ex = self._drain(s, self._gate(s, horizons), until, budget)
                self._busy_wall[s] += (perf() - t0) * 1e9
                if ex:
                    progress += ex
                    total += ex
                else:
                    # Pending work but the window excluded it: in message
                    # terms this pass re-published the horizon with no
                    # event traffic — a null-message heartbeat.
                    self._null_msgs[s] += 1
                    if _T.enabled:
                        _T.instant(PID_SIM, TID_DES, "shard.sync",
                                   self.shards[s].now,
                                   {"shard": s, "horizon": horizons[s]})
            if total > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; model is likely spinning")
            if not progress:
                self._raise_deadlock(horizons, until)

    def _run_threaded(self, until: float | None, max_events: int) -> None:
        n = self.nshards
        barrier = threading.Barrier(n)
        horizons = [0.0] * n
        state = {"done": False, "progress": 0, "total": 0, "error": None}
        lock = threading.Lock()
        perf = time.perf_counter

        def loop(s: int) -> None:
            try:
                while True:
                    barrier.wait()
                    # Phase 1: drain inbound channels, publish an exact
                    # horizon.  Nobody sends during this phase, so the
                    # round's horizons form a consistent snapshot.
                    self._absorb(s)
                    horizons[s] = self._horizon(s)
                    if s == 0:
                        state["progress"] = 0
                    barrier.wait()
                    if state["error"] is not None:
                        return
                    floor = min(horizons)
                    if floor == _INF or (until is not None and floor > until):
                        return
                    # Phase 2: every shard executes its window concurrently.
                    t0 = perf()
                    ex = self._drain(s, self._gate(s, horizons), until,
                                     max_events)
                    t1 = perf()
                    if ex:
                        self._busy_wall[s] += (t1 - t0) * 1e9
                        with lock:
                            state["progress"] += ex
                            state["total"] += ex
                    elif horizons[s] != _INF:
                        self._null_msgs[s] += 1
                        self._stall_wall[s] += (t1 - t0) * 1e9
                    barrier.wait()
                    if state["total"] > max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events; model is "
                            f"likely spinning")
                    if state["progress"] == 0:
                        self._raise_deadlock(horizons, until)
            except BaseException as exc:  # propagate to the caller
                with lock:
                    if state["error"] is None:
                        state["error"] = exc
                barrier.abort()

        threads = [threading.Thread(target=loop, args=(s,),
                                    name=f"shard-{s}", daemon=True)
                   for s in range(1, n)]
        for th in threads:
            th.start()
        try:
            loop(0)
        finally:
            for th in threads:
                th.join()
        if state["error"] is not None:
            err = state["error"]
            if not isinstance(err, threading.BrokenBarrierError):
                raise err

    def _raise_deadlock(self, horizons: list[float],
                        until: float | None) -> None:
        detail = ", ".join(
            f"shard {s}: head={horizons[s]}"
            f"{' expect=' + str(self._expects[s][0]) if self._expects[s] else ''}"
            for s in range(self.nshards) if horizons[s] != _INF)
        raise SimulationError(
            f"shard window made no progress (conservative deadlock): "
            f"{detail}; an expect barrier is missing its response or a "
            f"cross-shard edge was not registered")

    # -- checkpointing ----------------------------------------------------

    @property
    def quiescent(self) -> bool:
        if self._running:
            return False
        if any(e._heap for e in self.shards):
            return False
        if any(self._expects):
            return False
        return not any(self._channels.values())

    def snapshot(self) -> tuple:
        if not self.quiescent:
            raise SimulationError(
                "sharded engine checkpoint requires quiescence: "
                f"pending={[len(e._heap) for e in self.shards]}, "
                f"expects={[len(x) for x in self._expects]}, "
                f"running={self._running}")
        return (tuple(e.snapshot() for e in self.shards),
                dict(self._chan_seq))

    def restore(self, snap: tuple) -> None:
        if not self.quiescent:
            raise SimulationError(
                "sharded engine restore requires quiescence")
        engines, chan_seq = snap
        for eng, es in zip(self.shards, engines):
            eng.restore(es)
        self._chan_seq.update(chan_seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ShardedEngine(shards={self.nshards}, "
                f"backend={self.backend!r}, now={self.now})")


def make_coordinator(nshards: int, backend: str = "serial") -> ShardedEngine:
    """Build the coordinator for a sharded world.  ``serial``/``thread``
    share one in-process class; ``process`` swaps in the worker-backed
    subclass (imported lazily so the hot single-process path never pays
    for it)."""
    if backend == "process":
        from .procshard import ProcShardedEngine
        return ProcShardedEngine(nshards, backend)
    return ShardedEngine(nshards, backend)
