"""Clock-domain helpers.

The simulation keeps global time in float nanoseconds.  Hardware components
(CPU cores, the on-chip interconnect) run in their own clock domains and
account work in integer cycles; these helpers convert between the two.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockDomain:
    """A fixed-frequency clock domain.

    Parameters
    ----------
    name:
        Human-readable label used in traces.
    freq_ghz:
        Frequency in GHz; one cycle lasts ``1 / freq_ghz`` nanoseconds.
    """

    name: str
    freq_ghz: float

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ValueError(f"{self.name}: frequency must be positive")

    @property
    def period_ns(self) -> float:
        return 1.0 / self.freq_ghz

    def cycles_to_ns(self, cycles: float) -> float:
        """Duration in nanoseconds of ``cycles`` cycles."""
        return cycles / self.freq_ghz

    def ns_to_cycles(self, ns: float) -> int:
        """Whole cycles elapsed in ``ns`` nanoseconds (rounded to nearest)."""
        return int(round(ns * self.freq_ghz))


# Clock domains of the paper's testbed (§VI-C): 2.6 GHz cores, 1.6 GHz
# on-chip interconnect.
CPU_CLOCK = ClockDomain("cpu", 2.6)
NOC_CLOCK = ClockDomain("noc", 1.6)
