"""ELF64 image reader (the loader's parsing half)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ElfError
from . import consts as C
from .structs import Ehdr, ElfRela, ElfSym, Phdr, Shdr, StrTab


@dataclass
class ElfImage:
    """Parsed view over a shared-object byte image."""

    blob: bytes
    ehdr: Ehdr
    phdrs: list[Phdr]
    sections: list[Shdr]
    symbols: list[ElfSym]
    relocations: list[ElfRela]
    _by_name: dict[str, Shdr] = field(default_factory=dict)

    def section(self, name: str) -> Shdr:
        sh = self._by_name.get(name)
        if sh is None:
            raise ElfError(f"no section {name!r}")
        return sh

    def has_section(self, name: str) -> bool:
        return name in self._by_name

    def section_bytes(self, name: str) -> bytes:
        sh = self.section(name)
        if sh.sh_type == C.SHT_NOBITS:
            return b"\0" * sh.sh_size
        return self.blob[sh.sh_offset: sh.sh_offset + sh.sh_size]

    def symbol(self, name: str) -> ElfSym:
        for sym in self.symbols:
            if sym.name == name:
                return sym
        raise ElfError(f"no symbol {name!r}")

    def defined_symbols(self) -> list[ElfSym]:
        return [s for s in self.symbols if s.name and s.defined]

    def load_span(self) -> tuple[int, int]:
        """(min vaddr, max vaddr+memsz) over PT_LOAD segments."""
        loads = [p for p in self.phdrs if p.p_type == C.PT_LOAD]
        if not loads:
            raise ElfError("no loadable segments")
        lo = min(p.p_vaddr for p in loads)
        hi = max(p.p_vaddr + p.p_memsz for p in loads)
        return lo, hi


def read_elf(blob: bytes) -> ElfImage:
    """Parse and validate a CHAIN ELF64 shared object."""
    ehdr = Ehdr.decode(blob)
    if ehdr.e_machine != C.EM_CHAIN:
        raise ElfError(f"wrong machine {ehdr.e_machine:#x} (want EM_CHAIN)")
    if ehdr.e_type != C.ET_DYN:
        raise ElfError("only ET_DYN shared objects are supported")

    phdrs = [Phdr.decode(blob, ehdr.e_phoff + i * C.PHDR_SIZE)
             for i in range(ehdr.e_phnum)]
    sections = [Shdr.decode(blob, ehdr.e_shoff + i * C.SHDR_SIZE)
                for i in range(ehdr.e_shnum)]
    if ehdr.e_shstrndx >= len(sections):
        raise ElfError("bad e_shstrndx")
    shstr = sections[ehdr.e_shstrndx]
    for sh in sections:
        sh.name = StrTab.read(blob, shstr.sh_offset + sh.sh_name)

    by_name = {sh.name: sh for sh in sections if sh.name}

    symbols: list[ElfSym] = []
    if ".dynsym" in by_name:
        dynsym = by_name[".dynsym"]
        dynstr = by_name.get(".dynstr")
        if dynstr is None:
            raise ElfError(".dynsym without .dynstr")
        count = dynsym.sh_size // C.SYM_SIZE
        for i in range(count):
            sym = ElfSym.decode(blob, dynsym.sh_offset + i * C.SYM_SIZE)
            sym.name = StrTab.read(blob, dynstr.sh_offset + sym.st_name)
            symbols.append(sym)

    relocations: list[ElfRela] = []
    if ".rela.dyn" in by_name:
        rela = by_name[".rela.dyn"]
        for i in range(rela.sh_size // C.RELA_SIZE):
            relocations.append(
                ElfRela.decode(blob, rela.sh_offset + i * C.RELA_SIZE))

    img = ElfImage(blob=blob, ehdr=ehdr, phdrs=phdrs, sections=sections,
                   symbols=symbols, relocations=relocations)
    img._by_name = by_name
    return img
