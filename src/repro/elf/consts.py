"""ELF64 constants (the subset this toolchain emits and consumes).

The images we build are genuine ELF64 little-endian shared objects; the
only non-standard element is the machine number (there is no official one
for the CHAIN ISA) and the CHAIN relocation types.
"""

from __future__ import annotations

ELF_MAGIC = b"\x7fELF"
ELFCLASS64 = 2
ELFDATA2LSB = 1
EV_CURRENT = 1

ET_DYN = 3

# Unofficial machine number for the CHAIN ISA ("ch" little-endian).
EM_CHAIN = 0x6368

EHDR_SIZE = 64
PHDR_SIZE = 56
SHDR_SIZE = 64
SYM_SIZE = 24
RELA_SIZE = 24

# program header types / flags
PT_LOAD = 1
PF_X = 1
PF_W = 2
PF_R = 4

# section header types
SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_RELA = 4
SHT_NOBITS = 8
SHT_DYNSYM = 11

# section flags
SHF_WRITE = 0x1
SHF_ALLOC = 0x2
SHF_EXECINSTR = 0x4

# symbol binding / type
STB_LOCAL = 0
STB_GLOBAL = 1
STT_NOTYPE = 0
STT_OBJECT = 1
STT_FUNC = 2
SHN_UNDEF = 0
SHN_ABS = 0xFFF1


def st_info(bind: int, typ: int) -> int:
    return (bind << 4) | (typ & 0xF)


def st_bind(info: int) -> int:
    return info >> 4


def st_type(info: int) -> int:
    return info & 0xF


# CHAIN relocation types (r_info = sym_index << 32 | type)
R_CHAIN_NONE = 0
R_CHAIN_GLOB_DAT = 1   # GOT slot <- address of symbol
R_CHAIN_RELATIVE = 2   # *site <- load_bias + addend
R_CHAIN_ABS64 = 3      # *site <- address of symbol + addend


def r_info(sym: int, typ: int) -> int:
    return (sym << 32) | typ


def r_sym(info: int) -> int:
    return info >> 32


def r_type(info: int) -> int:
    return info & 0xFFFFFFFF


PAGE = 4096
