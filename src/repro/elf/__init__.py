"""From-scratch ELF64: constants, structs, shared-object builder, reader."""

from . import consts
from .builder import build_shared_object
from .reader import ElfImage, read_elf
from .structs import Ehdr, ElfRela, ElfSym, Phdr, Shdr, StrTab

__all__ = [
    "Ehdr",
    "ElfImage",
    "ElfRela",
    "ElfSym",
    "Phdr",
    "Shdr",
    "StrTab",
    "build_shared_object",
    "consts",
    "read_elf",
]
