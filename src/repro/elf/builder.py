"""Shared-object builder: ObjectModule -> ELF64 image bytes.

Layout (offset == vaddr, conventional for an ET_DYN first mapping)::

    0x0000  ehdr + 2 phdrs
    page    .text                       (PT_LOAD  R+X)
    page    .got | .data | .bss        (PT_LOAD  R+W; .bss is memsz-only)
    ...     .dynsym .dynstr .rela.dyn .shstrtab shdrs   (not loaded)

Build-time relocation resolution: GOTPC32 and PCREL32 sites are patched
directly into instruction immediates because the GOT/data live at fixed
offsets from .text within the same object — exactly the situation
``-fpic -fno-plt`` code is in after static linking.  What remains for the
loader: GLOB_DAT (fill GOT slots with resolved symbol addresses) and
RELATIVE (rebase data pointers).
"""

from __future__ import annotations

from ..errors import ElfError
from ..isa.assembler import ObjectModule, RelocKind
from . import consts as C
from .structs import Ehdr, ElfRela, ElfSym, Phdr, Shdr, StrTab


def _align(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


def build_shared_object(om: ObjectModule, soname: str = "lib.so") -> bytes:
    """Assemble an ELF64 shared object from an object module."""
    header_size = C.EHDR_SIZE + 2 * C.PHDR_SIZE

    text_off = _align(header_size, C.PAGE)
    text_size = len(om.text)

    rw_off = _align(text_off + max(text_size, 1), C.PAGE)
    got_off = rw_off
    got_size = om.got_size
    data_off = got_off + got_size
    data_size = len(om.data)
    bss_off = _align(data_off + data_size, 8)
    bss_size = om.bss_size
    rw_filesz = bss_off - rw_off
    rw_memsz = rw_filesz + bss_size

    # ---- symbol table ----------------------------------------------------
    dynstr = StrTab()
    syms: list[ElfSym] = [ElfSym(0, 0, C.SHN_UNDEF, 0, 0)]  # null symbol
    sym_index: dict[str, int] = {}

    def section_vaddr(section: str, offset: int) -> int:
        if section == "text":
            return text_off + offset
        if section == "data":
            return data_off + offset
        if section == "bss":
            return bss_off + offset
        raise ElfError(f"unknown section {section!r}")

    # UND symbols for externs first, in GOT slot order, so that
    # rela.dyn slot entries line up trivially.
    for name in om.externs:
        sym_index[name] = len(syms)
        syms.append(ElfSym(dynstr.add(name),
                           C.st_info(C.STB_GLOBAL, C.STT_NOTYPE),
                           C.SHN_UNDEF, 0, 0, name=name))
    # Defined symbols (locals included: useful for introspection).
    shndx = {"text": 1, "got": 2, "data": 3, "bss": 4}
    for name, sym in om.symbols.items():
        if name in sym_index:
            raise ElfError(f"symbol {name!r} both defined and extern")
        bind = C.STB_GLOBAL if sym.is_global else C.STB_LOCAL
        typ = C.STT_FUNC if sym.is_func else C.STT_OBJECT
        sym_index[name] = len(syms)
        syms.append(ElfSym(dynstr.add(name), C.st_info(bind, typ),
                           shndx[sym.section],
                           section_vaddr(sym.section, sym.offset), 0,
                           name=name))

    # ---- relocations -----------------------------------------------------
    text = bytearray(om.text)
    data = bytearray(om.data)
    relas: list[ElfRela] = []

    # One GLOB_DAT per GOT slot.
    for slot, name in enumerate(om.externs):
        relas.append(ElfRela(got_off + slot * 8,
                             C.r_info(sym_index[name], C.R_CHAIN_GLOB_DAT), 0))

    for reloc in om.relocs:
        if reloc.kind is RelocKind.GOTPC32:
            site = text_off + reloc.offset
            value = got_off - site + reloc.addend
            text[reloc.offset + 4: reloc.offset + 8] = \
                (value & 0xFFFFFFFF).to_bytes(4, "little")
        elif reloc.kind is RelocKind.PCREL32:
            sym = om.symbols.get(reloc.symbol)
            if sym is None:
                raise ElfError(f"PCREL32 against undefined {reloc.symbol!r}")
            site = section_vaddr(reloc.section, reloc.offset)
            value = section_vaddr(sym.section, sym.offset) - site + reloc.addend
            buf = text if reloc.section == "text" else data
            buf[reloc.offset + 4: reloc.offset + 8] = \
                (value & 0xFFFFFFFF).to_bytes(4, "little")
        elif reloc.kind is RelocKind.ABS64:
            sym = om.symbols.get(reloc.symbol)
            if reloc.section != "data":
                raise ElfError("ABS64 relocation outside .data")
            if sym is not None:
                target = section_vaddr(sym.section, sym.offset) + reloc.addend
                relas.append(ElfRela(data_off + reloc.offset,
                                     C.r_info(0, C.R_CHAIN_RELATIVE), target))
            elif reloc.symbol in sym_index:  # extern: absolute at load time
                relas.append(ElfRela(data_off + reloc.offset,
                                     C.r_info(sym_index[reloc.symbol],
                                              C.R_CHAIN_ABS64), reloc.addend))
            else:
                raise ElfError(f"ABS64 against unknown {reloc.symbol!r}")
        else:  # pragma: no cover - exhaustive over RelocKind
            raise ElfError(f"unhandled relocation kind {reloc.kind}")

    # ---- non-loaded metadata ----------------------------------------------
    dynsym_off = _align(rw_off + rw_filesz, 8)
    dynsym_blob = b"".join(s.encode() for s in syms)
    dynstr_off = dynsym_off + len(dynsym_blob)
    dynstr_blob = bytes(dynstr.blob)
    rela_off = _align(dynstr_off + len(dynstr_blob), 8)
    rela_blob = b"".join(r.encode() for r in relas)

    shstr = StrTab()
    sections = [
        Shdr(0, C.SHT_NULL, 0, 0, 0, 0),
        Shdr(shstr.add(".text"), C.SHT_PROGBITS,
             C.SHF_ALLOC | C.SHF_EXECINSTR, text_off, text_off, text_size),
        Shdr(shstr.add(".got"), C.SHT_PROGBITS, C.SHF_ALLOC | C.SHF_WRITE,
             got_off, got_off, got_size, sh_entsize=8),
        Shdr(shstr.add(".data"), C.SHT_PROGBITS, C.SHF_ALLOC | C.SHF_WRITE,
             data_off, data_off, data_size),
        Shdr(shstr.add(".bss"), C.SHT_NOBITS, C.SHF_ALLOC | C.SHF_WRITE,
             bss_off, bss_off, bss_size),
        Shdr(shstr.add(".dynsym"), C.SHT_DYNSYM, 0, 0, dynsym_off,
             len(dynsym_blob), sh_link=6, sh_info=1, sh_entsize=C.SYM_SIZE),
        Shdr(shstr.add(".dynstr"), C.SHT_STRTAB, 0, 0, dynstr_off,
             len(dynstr_blob)),
        Shdr(shstr.add(".rela.dyn"), C.SHT_RELA, 0, 0, rela_off,
             len(rela_blob), sh_link=5, sh_entsize=C.RELA_SIZE),
    ]
    shstrndx = len(sections)
    shstrtab_off = rela_off + len(rela_blob)
    sections.append(Shdr(shstr.add(".shstrtab"), C.SHT_STRTAB, 0, 0,
                         shstrtab_off, 0))
    shstr_blob = bytes(shstr.blob)
    sections[shstrndx].sh_size = len(shstr_blob)
    shoff = _align(shstrtab_off + len(shstr_blob), 8)

    ehdr = Ehdr(e_phoff=C.EHDR_SIZE, e_shoff=shoff, e_phnum=2,
                e_shnum=len(sections), e_shstrndx=shstrndx)
    phdrs = [
        Phdr(C.PT_LOAD, C.PF_R | C.PF_X, text_off, text_off,
             text_size, text_size),
        Phdr(C.PT_LOAD, C.PF_R | C.PF_W, rw_off, rw_off,
             rw_filesz, rw_memsz),
    ]

    # ---- serialize ---------------------------------------------------------
    image = bytearray(shoff + len(sections) * C.SHDR_SIZE)
    image[0:C.EHDR_SIZE] = ehdr.encode()
    cursor = C.EHDR_SIZE
    for ph in phdrs:
        image[cursor:cursor + C.PHDR_SIZE] = ph.encode()
        cursor += C.PHDR_SIZE
    image[text_off:text_off + text_size] = bytes(text)
    # got is all zeros in the file (filled by the loader)
    image[data_off:data_off + data_size] = bytes(data)
    image[dynsym_off:dynsym_off + len(dynsym_blob)] = dynsym_blob
    image[dynstr_off:dynstr_off + len(dynstr_blob)] = dynstr_blob
    image[rela_off:rela_off + len(rela_blob)] = rela_blob
    image[shstrtab_off:shstrtab_off + len(shstr_blob)] = shstr_blob
    cursor = shoff
    for sh in sections:
        image[cursor:cursor + C.SHDR_SIZE] = sh.encode()
        cursor += C.SHDR_SIZE
    return bytes(image)
