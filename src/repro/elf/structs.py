"""ELF64 header structures: encode/decode against the binary format."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import ElfError
from . import consts as C

_EHDR = struct.Struct("<4sBBBBB7xHHIQQQIHHHHHH")
_PHDR = struct.Struct("<IIQQQQQQ")
_SHDR = struct.Struct("<IIQQQQIIQQ")
_SYM = struct.Struct("<IBBHQQ")
_RELA = struct.Struct("<QQq")


@dataclass
class Ehdr:
    e_type: int = C.ET_DYN
    e_machine: int = C.EM_CHAIN
    e_entry: int = 0
    e_phoff: int = 0
    e_shoff: int = 0
    e_flags: int = 0
    e_phnum: int = 0
    e_shnum: int = 0
    e_shstrndx: int = 0

    def encode(self) -> bytes:
        return _EHDR.pack(
            C.ELF_MAGIC, C.ELFCLASS64, C.ELFDATA2LSB, C.EV_CURRENT, 0, 0,
            self.e_type, self.e_machine, C.EV_CURRENT,
            self.e_entry, self.e_phoff, self.e_shoff, self.e_flags,
            C.EHDR_SIZE, C.PHDR_SIZE, self.e_phnum,
            C.SHDR_SIZE, self.e_shnum, self.e_shstrndx,
        )

    @classmethod
    def decode(cls, blob: bytes) -> "Ehdr":
        if len(blob) < C.EHDR_SIZE:
            raise ElfError("truncated ELF header")
        (magic, eclass, edata, _ver, _abi, _abiver, e_type, e_machine,
         _version, e_entry, e_phoff, e_shoff, e_flags, _ehsize, _phentsize,
         e_phnum, _shentsize, e_shnum, e_shstrndx) = _EHDR.unpack_from(blob)
        if magic != C.ELF_MAGIC:
            raise ElfError("bad ELF magic")
        if eclass != C.ELFCLASS64 or edata != C.ELFDATA2LSB:
            raise ElfError("only ELF64 little-endian is supported")
        return cls(e_type, e_machine, e_entry, e_phoff, e_shoff, e_flags,
                   e_phnum, e_shnum, e_shstrndx)


@dataclass
class Phdr:
    p_type: int
    p_flags: int
    p_offset: int
    p_vaddr: int
    p_filesz: int
    p_memsz: int
    p_align: int = C.PAGE

    def encode(self) -> bytes:
        return _PHDR.pack(self.p_type, self.p_flags, self.p_offset,
                          self.p_vaddr, self.p_vaddr, self.p_filesz,
                          self.p_memsz, self.p_align)

    @classmethod
    def decode(cls, blob: bytes, offset: int) -> "Phdr":
        (p_type, p_flags, p_offset, p_vaddr, _paddr, p_filesz, p_memsz,
         p_align) = _PHDR.unpack_from(blob, offset)
        return cls(p_type, p_flags, p_offset, p_vaddr, p_filesz, p_memsz,
                   p_align)


@dataclass
class Shdr:
    sh_name: int
    sh_type: int
    sh_flags: int
    sh_addr: int
    sh_offset: int
    sh_size: int
    sh_link: int = 0
    sh_info: int = 0
    sh_addralign: int = 8
    sh_entsize: int = 0
    name: str = ""  # resolved by the reader

    def encode(self) -> bytes:
        return _SHDR.pack(self.sh_name, self.sh_type, self.sh_flags,
                          self.sh_addr, self.sh_offset, self.sh_size,
                          self.sh_link, self.sh_info, self.sh_addralign,
                          self.sh_entsize)

    @classmethod
    def decode(cls, blob: bytes, offset: int) -> "Shdr":
        return cls(*_SHDR.unpack_from(blob, offset))


@dataclass
class ElfSym:
    st_name: int
    st_info: int
    st_shndx: int
    st_value: int
    st_size: int
    name: str = ""

    def encode(self) -> bytes:
        return _SYM.pack(self.st_name, self.st_info, 0, self.st_shndx,
                         self.st_value, self.st_size)

    @classmethod
    def decode(cls, blob: bytes, offset: int) -> "ElfSym":
        st_name, st_info, _other, st_shndx, st_value, st_size = \
            _SYM.unpack_from(blob, offset)
        return cls(st_name, st_info, st_shndx, st_value, st_size)

    @property
    def bind(self) -> int:
        return C.st_bind(self.st_info)

    @property
    def type(self) -> int:
        return C.st_type(self.st_info)

    @property
    def defined(self) -> bool:
        return self.st_shndx != C.SHN_UNDEF


@dataclass
class ElfRela:
    r_offset: int
    r_info: int
    r_addend: int

    def encode(self) -> bytes:
        return _RELA.pack(self.r_offset, self.r_info, self.r_addend)

    @classmethod
    def decode(cls, blob: bytes, offset: int) -> "ElfRela":
        return cls(*_RELA.unpack_from(blob, offset))

    @property
    def sym(self) -> int:
        return C.r_sym(self.r_info)

    @property
    def type(self) -> int:
        return C.r_type(self.r_info)


@dataclass
class StrTab:
    """Builder for a string table section."""
    blob: bytearray = field(default_factory=lambda: bytearray(b"\0"))
    _index: dict[str, int] = field(default_factory=dict)

    def add(self, text: str) -> int:
        if not text:
            return 0
        off = self._index.get(text)
        if off is None:
            off = len(self.blob)
            self.blob += text.encode() + b"\0"
            self._index[text] = off
        return off

    @staticmethod
    def read(blob: bytes, offset: int) -> str:
        end = blob.index(b"\0", offset)
        return blob[offset:end].decode()
