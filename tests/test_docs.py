"""Docs stay true: every ``python`` snippet in docs/TOPOLOGY.md and
docs/METRICS.md runs verbatim (in order, one shared namespace per file),
and no markdown file links to a path that does not exist.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

SNIPPET_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def snippets(path: Path) -> list[str]:
    return SNIPPET_RE.findall(path.read_text())


def test_topology_doc_has_snippets():
    assert len(snippets(DOCS / "TOPOLOGY.md")) >= 4


def test_metrics_doc_has_snippets():
    assert len(snippets(DOCS / "METRICS.md")) >= 5


@pytest.mark.parametrize("name", ["TOPOLOGY.md", "METRICS.md"])
def test_doc_snippets_run(name):
    """The worked examples are executable as written: the blocks of one
    file share a namespace and run top to bottom, asserts and all,
    exactly like a reader pasting them into a REPL."""
    ns: dict = {}
    for i, block in enumerate(snippets(DOCS / name)):
        try:
            exec(compile(block, f"docs/{name}[snippet {i}]", "exec"), ns)
        except Exception as exc:   # pragma: no cover - failure reporting
            pytest.fail(f"docs/{name} snippet {i} failed: "
                        f"{type(exc).__name__}: {exc}\n---\n{block}")


def _md_files() -> list[Path]:
    return sorted(DOCS.glob("*.md")) + [REPO / "README.md"]


@pytest.mark.parametrize("md", _md_files(), ids=lambda p: p.name)
def test_no_dead_relative_links(md: Path):
    """Every relative markdown link in docs/*.md and README.md resolves
    to a file that exists (external URLs and pure anchors are skipped)."""
    dead = []
    for target in LINK_RE.findall(md.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if not (md.parent / rel).exists():
            dead.append(target)
    assert not dead, f"{md.name}: dead links {dead}"
