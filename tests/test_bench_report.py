"""Tests for figure-result structure and text rendering."""

from repro.bench.figures import FigureResult
from repro.bench.report import render_figure


def make_result():
    return FigureResult(
        figure="figX",
        title="demo figure",
        x_label="size",
        x=[64, 128],
        series={"a_ns": [1.0, 2.5], "b_ns": [3.0, 4.0]},
        metrics={"max_gain": 1.5},
        notes="a note",
    )


class TestFigureResult:
    def test_as_rows_aligns_series(self):
        rows = make_result().as_rows()
        assert rows[0] == ["size", "a_ns", "b_ns"]
        assert rows[1] == [64, 1.0, 3.0]
        assert rows[2] == [128, 2.5, 4.0]


class TestRender:
    def test_render_contains_everything(self):
        text = render_figure(make_result())
        assert "figX" in text and "demo figure" in text
        assert "size" in text and "a_ns" in text
        assert "max_gain" in text
        assert "a note" in text

    def test_render_large_numbers_compact(self):
        result = make_result()
        result.series["a_ns"] = [4.2e6, 8.1e6]
        text = render_figure(result)
        assert "4.2e+06" in text

    def test_columns_aligned(self):
        text = render_figure(make_result())
        lines = [l for l in text.splitlines()
                 if l and not l.startswith(("==", "metrics", "  ", "note"))]
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # header, rule, and rows share one width
