"""ELF build/read roundtrips and loader/namespace behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amc import compile_amc
from repro.elf import build_shared_object, consts as C, read_elf
from repro.errors import ElfError, UnresolvedSymbolError
from repro.isa import Vm, assemble
from repro.linker import Loader, Namespace
from tests.util import fresh_node

SIMPLE = """
    .global f
    f:
        movi a0, 7
        ret
"""

WITH_DATA = """
    .global get
    .extern tc_hash64
    get:
        adr t0, seed
        ld a0, 0(t0)
        ret
    .data
    .align 8
    seed: .quad 12345
    table: .quad get
    .bss
    scratch: .zero 64
"""


def build(source: str) -> bytes:
    return build_shared_object(assemble(source))


class TestElfFormat:
    def test_header_magic_and_machine(self):
        blob = build(SIMPLE)
        assert blob[:4] == b"\x7fELF"
        img = read_elf(blob)
        assert img.ehdr.e_machine == C.EM_CHAIN
        assert img.ehdr.e_type == C.ET_DYN

    def test_sections_present(self):
        img = read_elf(build(WITH_DATA))
        for name in (".text", ".got", ".data", ".bss", ".dynsym", ".dynstr",
                     ".rela.dyn", ".shstrtab"):
            assert img.has_section(name), name

    def test_text_bytes_roundtrip(self):
        om = assemble(SIMPLE)
        img = read_elf(build_shared_object(om))
        # GOTPC patching may alter LDG imms, but SIMPLE has none.
        assert img.section_bytes(".text") == om.text

    def test_symbols_carry_type_and_binding(self):
        img = read_elf(build(WITH_DATA))
        get = img.symbol("get")
        assert get.bind == C.STB_GLOBAL and get.type == C.STT_FUNC
        seed = img.symbol("seed")
        assert seed.type == C.STT_OBJECT and seed.bind == C.STB_LOCAL
        und = img.symbol("tc_hash64")
        assert not und.defined

    def test_got_sized_by_externs(self):
        img = read_elf(build(WITH_DATA))
        assert img.section(".got").sh_size == 8
        glob_dats = [r for r in img.relocations
                     if r.type == C.R_CHAIN_GLOB_DAT]
        assert len(glob_dats) == 1

    def test_load_segments_page_aligned_and_separated(self):
        img = read_elf(build(WITH_DATA))
        loads = [p for p in img.phdrs if p.p_type == C.PT_LOAD]
        assert len(loads) == 2
        rx, rw = loads
        assert rx.p_flags == (C.PF_R | C.PF_X)
        assert rw.p_flags == (C.PF_R | C.PF_W)
        assert rx.p_vaddr % 4096 == 0 and rw.p_vaddr % 4096 == 0
        assert rw.p_vaddr >= rx.p_vaddr + rx.p_filesz

    def test_bss_is_memsz_only(self):
        img = read_elf(build(WITH_DATA))
        rw = [p for p in img.phdrs if p.p_type == C.PT_LOAD][1]
        assert rw.p_memsz > rw.p_filesz

    def test_bad_magic_rejected(self):
        with pytest.raises(ElfError, match="magic"):
            read_elf(b"\x7fELV" + b"\0" * 100)

    def test_wrong_machine_rejected(self):
        blob = bytearray(build(SIMPLE))
        blob[18] = 0x3E  # x86-64
        with pytest.raises(ElfError, match="machine"):
            read_elf(bytes(blob))

    def test_truncated_rejected(self):
        with pytest.raises(ElfError):
            read_elf(b"\x7fELF\x02\x01")

    @settings(max_examples=20, deadline=None)
    @given(ret=st.integers(-1000, 1000))
    def test_property_build_read_roundtrip(self, ret):
        src = f".global f\nf:\n movi a0, {ret}\n ret"
        img = read_elf(build(src))
        assert img.symbol("f").defined


class TestLoader:
    def test_load_and_execute(self):
        _, node = fresh_node()
        ns = Namespace()
        lib = Loader(node, ns).load(build(SIMPLE), "libsimple.so")
        res = Vm(node, intrinsics=ns.intrinsics).call(lib.symbol("f"))
        assert res.ret == 7

    def test_text_pages_rx_data_pages_rw(self):
        _, node = fresh_node()
        ns = Namespace()
        lib = Loader(node, ns).load(build(WITH_DATA), "libdata.so")
        f = lib.symbol("get")
        node.pages.check_exec(f, 8)
        with pytest.raises(Exception):
            node.pages.check_write(f, 8)
        seed = lib.symbol("seed")
        node.pages.check_write(seed, 8)

    def test_data_and_bss_initialized(self):
        _, node = fresh_node()
        ns = Namespace()
        lib = Loader(node, ns).load(build(WITH_DATA), "libdata.so")
        assert node.mem.read_i64(lib.symbol("seed")) == 12345
        assert node.mem.read(lib.symbol("scratch"), 64) == b"\0" * 64

    def test_abs64_table_rebased(self):
        _, node = fresh_node()
        ns = Namespace()
        lib = Loader(node, ns).load(build(WITH_DATA), "libdata.so")
        assert node.mem.read_u64(lib.symbol("table")) == lib.symbol("get")

    def test_got_filled_with_native_intrinsic(self):
        _, node = fresh_node()
        ns = Namespace()
        lib = Loader(node, ns).load(build(WITH_DATA), "libdata.so")
        from repro.isa import native_address
        idx = ns.intrinsics.index_of("tc_hash64")
        assert node.mem.read_u64(lib.got_addr) == native_address(idx)
        assert lib.got_slots == ["tc_hash64"]

    def test_execution_reads_relocated_data(self):
        _, node = fresh_node()
        ns = Namespace()
        lib = Loader(node, ns).load(build(WITH_DATA), "libdata.so")
        res = Vm(node, intrinsics=ns.intrinsics).call(lib.symbol("get"))
        assert res.ret == 12345

    def test_unresolved_extern_raises(self):
        _, node = fresh_node()
        src = ".extern no_such_symbol\nf:\n ldg t0, no_such_symbol\n ret"
        with pytest.raises(UnresolvedSymbolError):
            Loader(node, Namespace()).load(build(src), "libbad.so")

    def test_cross_library_linking(self):
        """Library B calls a function exported by library A (remote-linking
        building block: same-name resolution through the namespace)."""
        _, node = fresh_node()
        ns = Namespace()
        loader = Loader(node, ns)
        liba = """
            .global provide
            provide:
                movi a0, 1000
                ret
        """
        libb = """
            .global consume
            .extern provide
            consume:
                addi sp, sp, -16
                st lr, 0(sp)
                ldg t0, provide
                callr t0
                addi a0, a0, 1
                ld lr, 0(sp)
                addi sp, sp, 16
                ret
        """
        loader.load(build(liba), "liba.so")
        libB = loader.load(build(libb), "libb.so")
        res = Vm(node, intrinsics=ns.intrinsics).call(libB.symbol("consume"))
        assert res.ret == 1001

    def test_first_definition_wins(self):
        _, node = fresh_node()
        ns = Namespace()
        loader = Loader(node, ns)
        v1 = ".global dup\ndup:\n movi a0, 1\n ret"
        v2 = ".global dup\ndup:\n movi a0, 2\n ret"
        l1 = loader.load(build(v1), "l1.so")
        loader.load(build(v2), "l2.so")
        assert ns.resolve("dup") == l1.symbol("dup")

    def test_same_name_library_cached(self):
        _, node = fresh_node()
        loader = Loader(node, Namespace())
        l1 = loader.load(build(SIMPLE), "lib.so")
        l2 = loader.load(build(SIMPLE), "lib.so")
        assert l1 is l2

    def test_dlsym_missing_raises(self):
        _, node = fresh_node()
        lib = Loader(node, Namespace()).load(build(SIMPLE), "lib.so")
        with pytest.raises(UnresolvedSymbolError):
            lib.symbol("ghost")

    def test_load_cost_positive_and_grows(self):
        _, node = fresh_node()
        loader = Loader(node, Namespace())
        small = loader.load(build(SIMPLE), "small.so")
        big_src = ".global f\nf:\n ret\n.bss\nbuf: .zero 100000"
        big = loader.load(build(big_src), "big.so")
        assert 0 < small.load_cost_ns < big.load_cost_ns


class TestAmcThroughElf:
    """The full static path: AMC source -> object -> ELF -> load -> run."""

    def test_compiled_jam_runs_from_loaded_library(self):
        _, node = fresh_node()
        ns = Namespace()
        result = compile_amc("""
            extern long tc_hash64(long x);
            long mix(long a, long b) { return tc_hash64(a) ^ tc_hash64(b); }
        """)
        blob = build_shared_object(result.module)
        lib = Loader(node, ns).load(blob, "libmix.so")
        vm = Vm(node, intrinsics=ns.intrinsics)
        r1 = vm.call(lib.symbol("mix"), (1, 2))
        r2 = vm.call(lib.symbol("mix"), (1, 2))
        r3 = vm.call(lib.symbol("mix"), (2, 1))
        assert r1.ret == r2.ret == r3.ret  # commutative via xor
        assert r1.ret != 0

    def test_global_state_persists_across_calls(self):
        _, node = fresh_node()
        ns = Namespace()
        result = compile_amc("""
            long counter = 0;
            long bump() { counter = counter + 1; return counter; }
        """)
        lib = Loader(node, ns).load(build_shared_object(result.module),
                                    "libctr.so")
        vm = Vm(node, intrinsics=ns.intrinsics)
        assert vm.call(lib.symbol("bump")).ret == 1
        assert vm.call(lib.symbol("bump")).ret == 2
        assert vm.call(lib.symbol("bump")).ret == 3
