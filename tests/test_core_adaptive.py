"""Tests for the adaptive-injection extension (§VIII future work) and the
unordered-fabric signalling path (§III-A)."""


from repro.core import AdaptiveJamSender, connect_runtimes
from repro.core.runtime import PreparedJam
from repro.core.stdworld import make_world
from repro.machine import PROT_RW
from repro.rdma import LinkParams


def build(world, jam="jam_ss_sum", ints=8, banks=1, slots=1,
          flow_control=False):
    nb = ints * 4
    fsize = world.frame_size_for(jam, nb, True)
    mb = world.server.create_mailbox(banks, slots, fsize)
    conn = connect_runtimes(world.client, world.server, mb,
                            flow_control=flow_control)
    waiter = world.server.make_waiter(
        mb, flag_target=conn.flag_target() if flow_control else None)
    payload = world.bed.node0.map_region(max(nb, 64), PROT_RW)
    for i in range(ints):
        world.bed.node0.mem.write_u32(payload + 4 * i, i + 1)
    pkg = world.client.packages[world.build.package_id]
    return mb, conn, waiter, pkg, payload, nb


class TestAdaptiveSender:
    def test_switches_after_threshold_and_stays_correct(self):
        world = make_world()
        mb, conn, waiter, pkg, payload, nb = build(world, banks=2, slots=4,
                                                   flow_control=True)
        sender = AdaptiveJamSender(conn, pkg, "jam_ss_sum", payload, nb,
                                   threshold=3)
        waiter.start()

        def driver():
            for _ in range(10):
                yield from sender.send()

        world.engine.spawn(driver())
        world.engine.run()
        waiter.stop()
        assert sender.stats.injected_sends == 3
        assert sender.stats.local_sends == 7
        assert sender.stats.wire_bytes_saved > 0
        assert waiter.stats.frames == 10
        assert waiter.stats.injected_frames == 3
        # every message executed and produced the same sum
        lib = world.server.packages[world.build.package_id].library
        assert world.bed.node1.mem.read_i64(lib.symbol("ss_cursor")) == 10
        assert waiter.stats.last_exec_ret == sum(range(1, 9))

    def test_local_frames_shrink_the_wire(self):
        world = make_world()
        mb, conn, waiter, pkg, payload, nb = build(world)
        sender = AdaptiveJamSender(conn, pkg, "jam_ss_sum", payload, nb,
                                   threshold=1)
        # injected frame is code-sized; compact local frame is tiny
        assert sender._local_wire < conn.info.frame_size // 4

    def test_zero_threshold_goes_local_immediately(self):
        world = make_world()
        mb, conn, waiter, pkg, payload, nb = build(world)
        sender = AdaptiveJamSender(conn, pkg, "jam_ss_sum", payload, nb,
                                   threshold=0)
        waiter.start()

        def driver():
            yield from sender.send()

        world.engine.spawn(driver())
        world.engine.run()
        waiter.stop()
        assert sender.stats.injected_sends == 0
        assert waiter.stats.injected_frames == 0
        assert waiter.stats.frames == 1


class TestUnorderedFabric:
    def test_separate_signal_put_still_delivers_and_executes(self):
        world = make_world(link=LinkParams(enforces_ordering=False))
        mb, conn, waiter, pkg, payload, nb = build(world, banks=1, slots=2,
                                                   flow_control=True)
        ping = PreparedJam(conn, pkg, "jam_ss_sum", payload, nb)
        waiter.start()

        def driver():
            for _ in range(4):
                yield from ping.send()

        world.engine.spawn(driver())
        world.engine.run()
        waiter.stop()
        assert waiter.stats.frames == 4
        assert waiter.stats.last_exec_ret == sum(range(1, 9))

    def test_unordered_costs_more_latency(self):
        from repro.bench.shapes import am_pingpong
        ordered = am_pingpong(make_world(), "jam_ss_sum", 64,
                              warmup=6, iters=15)
        unordered = am_pingpong(
            make_world(link=LinkParams(enforces_ordering=False)),
            "jam_ss_sum", 64, warmup=6, iters=15)
        assert unordered.stats.p50 > ordered.stats.p50 + 50.0
