"""Tests for the parallel benchmark orchestrator and its result store.

Covers the tentpole contract of ``twochains bench``: registry
completeness (every benchmarks/bench_*.py script drives a registered
sweep), cache hit/miss/tamper behaviour, the BENCH_<figure>.json schema
round-trip, and direction-aware regression detection in ``bench diff``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.bench.figures import full_registry, run_spec
from repro.bench.orchestrator import (
    build_meta,
    diff_paths,
    diff_payloads,
    resolve_names,
    run_figures,
    write_runs,
)
from repro.bench.report import render_diff
from repro.bench.resultstore import (
    SCHEMA_VERSION,
    ResultStore,
    config_fingerprint,
    point_key,
)
from repro.cli import main as cli_main

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

# The cheapest registered sweep: structural GOT-rewrite counts, no DES.
CHEAP = "abl_got"


# ---------------------------------------------------------------------------
# registry completeness
# ---------------------------------------------------------------------------

def _referenced_sweeps(path: Path) -> set[str]:
    """Sweep names a benchmark script requests from the registry."""
    text = path.read_text()
    return set(re.findall(r'(?:figure|run_spec)\(\s*"([^"]+)"', text))


def test_every_bench_script_uses_a_registered_sweep():
    registry = full_registry()
    scripts = sorted(BENCH_DIR.glob("bench_*.py"))
    assert scripts, "no benchmark scripts found"
    for script in scripts:
        names = _referenced_sweeps(script)
        assert names, f"{script.name} does not drive any registered sweep"
        missing = names - registry.keys()
        assert not missing, f"{script.name} references unregistered {missing}"


def test_registry_covers_all_paper_figures():
    registry = full_registry()
    expected = {"fig5", "fig6", "fig7", "fig7_sum", "fig8", "fig9",
                "fig10", "fig10_sum", "fig11", "fig12", "fig13", "fig14",
                "abl_adaptive", "abl_mailbox", "abl_multicore",
                "abl_prefetch", "abl_security", "abl_got"}
    assert expected <= registry.keys()


def test_specs_have_serializable_unique_points():
    for name, spec in full_registry().items():
        for fast in (True, False):
            points = spec.points(fast)
            assert points, f"{name}: empty sweep (fast={fast})"
            blobs = [json.dumps(p, sort_keys=True) for p in points]
            assert len(set(blobs)) == len(blobs), f"{name}: duplicate points"
        for direction in spec.directions.values():
            assert direction in ("lower", "higher"), (name, direction)


def test_resolve_names_rejects_unknown():
    assert resolve_names(None) == list(full_registry())
    assert resolve_names([CHEAP]) == [CHEAP]
    with pytest.raises(ValueError, match="nosuchfig"):
        resolve_names(["nosuchfig"])


# ---------------------------------------------------------------------------
# result store
# ---------------------------------------------------------------------------

def test_resultstore_miss_put_hit(tmp_path):
    store = ResultStore(tmp_path, fingerprint={"f": 1}, version="v1")
    key = store.key_for("figX", {"a": 1})
    assert store.get(key) is None
    store.put(key, "figX", {"a": 1}, {"x": 1, "lat": 2.5})
    assert store.get(key) == {"x": 1, "lat": 2.5}
    assert (store.hits, store.misses) == (1, 1)


def test_resultstore_key_depends_on_everything():
    base = point_key("figX", {"a": 1}, fingerprint={"f": 1}, version="v1")
    assert point_key("figY", {"a": 1}, fingerprint={"f": 1},
                     version="v1") != base
    assert point_key("figX", {"a": 2}, fingerprint={"f": 1},
                     version="v1") != base
    assert point_key("figX", {"a": 1}, fingerprint={"f": 2},
                     version="v1") != base
    assert point_key("figX", {"a": 1}, fingerprint={"f": 1},
                     version="v2") != base
    # param order does not matter: canonical JSON sorts keys
    assert point_key("figX", {"a": 1, "b": 2}, fingerprint={"f": 1},
                     version="v1") == point_key(
        "figX", {"b": 2, "a": 1}, fingerprint={"f": 1}, version="v1")


def test_resultstore_tampered_entry_is_a_miss(tmp_path):
    store = ResultStore(tmp_path, fingerprint={"f": 1}, version="v1")
    key = store.key_for("figX", {"a": 1})
    store.put(key, "figX", {"a": 1}, {"x": 1})
    path = store._path(key)
    entry = json.loads(path.read_text())
    entry["params"] = {"a": 99}  # stored params no longer hash to the key
    path.write_text(json.dumps(entry))
    assert store.get(key) is None


def test_resultstore_stale_after_code_change(tmp_path):
    old = ResultStore(tmp_path, fingerprint={"f": 1}, version="v1")
    key = old.key_for("figX", {"a": 1})
    old.put(key, "figX", {"a": 1}, {"x": 1})
    new = ResultStore(tmp_path, fingerprint={"f": 1}, version="v2")
    assert new.key_for("figX", {"a": 1}) != key
    assert new.get(new.key_for("figX", {"a": 1})) is None


# ---------------------------------------------------------------------------
# orchestrator + cache
# ---------------------------------------------------------------------------

def test_run_figures_populates_and_reuses_cache(tmp_path):
    store = ResultStore(tmp_path)
    first = run_figures([CHEAP], jobs=1, store=store)[0]
    assert first.cache_hits == 0
    assert first.cache_misses == len(first.points)

    second = run_figures([CHEAP], jobs=1, store=ResultStore(tmp_path))[0]
    assert second.cache_misses == 0
    assert second.cache_hits == len(second.points)
    assert second.result.series == first.result.series
    assert second.result.metrics == first.result.metrics


def test_smoke_runs_first_point_only():
    run = run_figures([CHEAP], smoke=True, jobs=1)[0]
    assert len(run.points) == 1
    full = full_registry()[CHEAP].points(True)
    assert run.points[0].params == full[0]


# ---------------------------------------------------------------------------
# BENCH_<figure>.json schema
# ---------------------------------------------------------------------------

TOP_LEVEL_KEYS = {
    "schema_version", "figure", "title", "x_label", "meta", "config",
    "points", "x", "series", "summary", "metrics", "counters",
    "directions", "notes",
}

META_KEYS = {
    "generated_at", "host", "platform", "python", "git_sha",
    "code_version", "seed", "fast", "smoke", "jobs", "trace", "fork", "fuse",
    "trace_jit", "metrics_enabled", "shards", "wall_clock_s",
    "sweep_wall_s", "cache_hits", "cache_misses", "setup_cache",
    "sim_throughput", "metrics",
}

SIM_THROUGHPUT_KEYS = {
    "instructions", "cache_probes", "des_events", "sim_ns", "wall_s",
    "instructions_per_s", "sim_ns_per_wall_s",
    "blocks_compiled", "fused_dispatches", "fused_instructions",
    "block_invalidations",
    "traces_compiled", "trace_dispatches", "trace_instructions",
    "guard_bails", "trace_invalidations",
}


def test_bench_json_schema_roundtrip(tmp_path):
    runs = run_figures([CHEAP], jobs=1)
    paths = write_runs(runs, tmp_path, build_meta(fast=True, smoke=False,
                                                  jobs=1))
    assert [p.name for p in paths] == [f"BENCH_{CHEAP}.json"]
    payload = json.loads(paths[0].read_text())

    assert set(payload) == TOP_LEVEL_KEYS
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["figure"] == CHEAP
    assert set(payload["meta"]) == META_KEYS
    assert set(payload["meta"]["sim_throughput"]) == SIM_THROUGHPUT_KEYS
    assert payload["config"] == config_fingerprint()

    npts = len(payload["points"])
    assert len(payload["x"]) == npts
    for point in payload["points"]:
        assert set(point) == {"params", "cached", "x", "values", "counters"}
    assert [p["x"] for p in payload["points"]] == payload["x"]
    for name, values in payload["series"].items():
        assert len(values) == npts
        assert payload["summary"][name]["n"] == npts
        assert {"n", "mean", "p50", "min", "max"} == set(
            payload["summary"][name])
    for name in payload["directions"]:
        assert name in payload["series"]

    # the document survives a JSON round-trip unchanged
    assert json.loads(json.dumps(payload)) == payload

    # and it matches what run_spec computes directly
    direct = run_spec(CHEAP, fast=True)
    assert payload["series"] == direct.series
    assert payload["x"] == direct.x


# ---------------------------------------------------------------------------
# bench diff
# ---------------------------------------------------------------------------

def _payload(series, directions):
    return {"figure": "figX", "series": series, "directions": directions}


def test_diff_flags_regressions_in_both_directions():
    base = _payload({"lat_ns": [100.0, 200.0], "rate": [10.0, 20.0]},
                    {"lat_ns": "lower", "rate": "higher"})
    worse = _payload({"lat_ns": [120.0, 240.0], "rate": [8.0, 16.0]},
                     {"lat_ns": "lower", "rate": "higher"})
    diffs = diff_payloads(base, worse, threshold_pct=5.0)
    assert len(diffs) == 2
    assert all(d.regression for d in diffs)
    lat = next(d for d in diffs if d.series == "lat_ns")
    assert lat.mean_pct == pytest.approx(20.0)
    assert lat.worst_point_pct == pytest.approx(20.0)


def test_diff_improvements_and_noise_are_ok():
    base = _payload({"lat_ns": [100.0], "rate": [10.0]},
                    {"lat_ns": "lower", "rate": "higher"})
    better = _payload({"lat_ns": [80.0], "rate": [12.0]},
                      {"lat_ns": "lower", "rate": "higher"})
    assert not any(d.regression for d in diff_payloads(base, better))
    noisy = _payload({"lat_ns": [103.0], "rate": [9.8]},
                     {"lat_ns": "lower", "rate": "higher"})
    assert not any(d.regression
                   for d in diff_payloads(base, noisy, threshold_pct=5.0))
    # tighter threshold turns the same delta into a regression
    assert all(d.regression
               for d in diff_payloads(base, noisy, threshold_pct=1.0))


def test_diff_skips_undirected_series():
    base = _payload({"lat_ns": [100.0], "wire_b": [1536.0]},
                    {"lat_ns": "lower"})
    new = _payload({"lat_ns": [100.0], "wire_b": [9999.0]},
                   {"lat_ns": "lower"})
    diffs = diff_payloads(base, new)
    assert [d.series for d in diffs] == ["lat_ns"]


def test_diff_paths_over_directories(tmp_path):
    base_dir, new_dir = tmp_path / "base", tmp_path / "new"
    base_dir.mkdir(), new_dir.mkdir()
    base = _payload({"lat_ns": [100.0]}, {"lat_ns": "lower"})
    worse = _payload({"lat_ns": [150.0]}, {"lat_ns": "lower"})
    (base_dir / "BENCH_figX.json").write_text(json.dumps(base))
    (base_dir / "BENCH_only_base.json").write_text(json.dumps(base))
    (new_dir / "BENCH_figX.json").write_text(json.dumps(worse))
    (new_dir / "BENCH_only_new.json").write_text(json.dumps(worse))
    diffs, notes = diff_paths(base_dir, new_dir)
    assert len(diffs) == 1 and diffs[0].regression
    assert any("only in baseline" in n for n in notes)
    assert any("only in new" in n for n in notes)
    text = render_diff(diffs, notes)
    assert "REGRESSION" in text and "only in baseline" in text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_bench_run_and_diff(tmp_path, capsys):
    out = tmp_path / "bench"
    argv = ["bench", "run", CHEAP, "--smoke", "--jobs", "1",
            "--out", str(out), "--quiet"]
    assert cli_main(argv) == 0
    bench_file = out / f"BENCH_{CHEAP}.json"
    assert bench_file.is_file()
    payload = json.loads(bench_file.read_text())
    assert payload["schema_version"] == SCHEMA_VERSION
    capsys.readouterr()

    # second run is served from <out>/.cache
    assert cli_main(argv) == 0
    assert json.loads(bench_file.read_text())["meta"]["cache_hits"] == 1
    capsys.readouterr()

    # a result set does not regress against itself (abl_got has no
    # directed series, so there is nothing to compare — rc is still 0)
    assert cli_main(["bench", "diff", str(out), str(out)]) == 0
    assert "bench diff" in capsys.readouterr().out

    assert cli_main(["bench", "run", "nosuchfig", "--quiet",
                     "--out", str(out)]) == 2
    assert cli_main(["bench", "diff", str(out / "nope.json"),
                     str(bench_file)]) == 2


def test_cli_bench_list(capsys):
    assert cli_main(["bench", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig5", "fig14", "abl_got"):
        assert name in out


# ---------------------------------------------------------------------------
# wall-clock diff mode and sweep timing
# ---------------------------------------------------------------------------

def _wc_payload(sim_ns_per_wall_s):
    return {"figure": "figX",
            "meta": {"sim_throughput": {"sim_ns_per_wall_s":
                                        sim_ns_per_wall_s}}}


def test_diff_paths_wall_clock_threshold_defaults_to_20pct(tmp_path):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(_wc_payload(100.0)))

    # 15% throughput drop: within the 20% default -> no regression
    ok = tmp_path / "ok.json"
    ok.write_text(json.dumps(_wc_payload(85.0)))
    diffs, _ = diff_paths(base, ok, wall_clock=True)
    assert len(diffs) == 1 and not diffs[0].regression

    # 30% drop: beyond the default -> regression
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(_wc_payload(70.0)))
    diffs, _ = diff_paths(base, bad, wall_clock=True)
    assert len(diffs) == 1 and diffs[0].regression

    # an explicit threshold still wins in either mode
    diffs, _ = diff_paths(base, ok, threshold_pct=10.0, wall_clock=True)
    assert diffs[0].regression


def test_diff_paths_wall_clock_skips_cached_runs(tmp_path):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(_wc_payload(100.0)))
    cached = tmp_path / "cached.json"
    cached.write_text(json.dumps({"figure": "figX", "meta": {}}))
    diffs, notes = diff_paths(base, cached, wall_clock=True)
    assert not diffs
    assert any("sim_throughput" in n for n in notes)


def test_wall_s_and_sweep_wall_s_are_distinct(tmp_path):
    store = ResultStore(tmp_path)
    run = run_figures([CHEAP], jobs=1, store=store)[0]
    assert run.wall_s > 0.0
    assert run.sweep_wall_s >= run.wall_s  # invocation covers the points

    # fully cached rerun: no point work, but the invocation still took time
    cached = run_figures([CHEAP], jobs=1, store=ResultStore(tmp_path))[0]
    assert cached.wall_s == 0.0
    assert cached.sweep_wall_s > 0.0


def test_meta_records_setup_cache_and_sweep_wall(tmp_path):
    runs = run_figures(["fig7"], smoke=True, jobs=1, fork=True)
    paths = write_runs(runs, tmp_path,
                       build_meta(fast=True, smoke=True, jobs=1, fork=True))
    meta = json.loads(paths[0].read_text())["meta"]
    assert meta["fork"] is True
    assert meta["trace"] is False
    assert meta["sweep_wall_s"] == pytest.approx(runs[0].sweep_wall_s,
                                                abs=1e-6)
    sc = meta["setup_cache"]
    assert set(sc) == {"hits", "misses"}
    # fig7's single smoke point builds both of its worlds: misses only
    assert sc["misses"] >= 1 and sc["hits"] == 0


def test_no_fork_produces_identical_rows():
    forked = run_figures(["fig7"], smoke=True, jobs=1, fork=True)[0]
    fresh = run_figures(["fig7"], smoke=True, jobs=1, fork=False)[0]
    assert [p.row for p in forked.points] == [p.row for p in fresh.points]
    assert fresh.setup_hits == 0 and fresh.setup_misses == 0


def test_timing_store_roundtrip(tmp_path):
    from repro.bench.resultstore import TimingStore, timing_key

    ts = TimingStore(tmp_path)
    assert ts.get("figX", {"a": 1}) is None
    ts.record("figX", {"a": 1}, 1.25)
    ts.save()
    # a fresh store sees the persisted history (LPT ordering input)
    again = TimingStore(tmp_path)
    assert again.get("figX", {"a": 1}) == pytest.approx(1.25)
    assert timing_key("figX", {"a": 1}) != timing_key("figX", {"a": 2})
