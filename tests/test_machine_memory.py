"""Unit tests for physical memory, allocator, and page permissions."""

import pytest

from repro.errors import MachineError, MemoryFault
from repro.machine import (
    PAGE_SIZE,
    PROT_NONE,
    PROT_RW,
    PROT_RWX,
    PROT_RX,
    BumpAllocator,
    PageTable,
    PhysicalMemory,
    align_up,
    prot_str,
)


class TestPhysicalMemory:
    def test_roundtrip_bytes(self):
        mem = PhysicalMemory(1 << 20)
        mem.write(100, b"hello world")
        assert mem.read(100, 11) == b"hello world"

    def test_scalar_roundtrips_little_endian(self):
        mem = PhysicalMemory(1 << 20)
        mem.write_u64(64, 0x1122334455667788)
        assert mem.read_u64(64) == 0x1122334455667788
        assert mem.read(64, 8) == bytes.fromhex("8877665544332211")
        mem.write_u32(80, 0xDEADBEEF)
        assert mem.read_u32(80) == 0xDEADBEEF
        mem.write_u8(90, 0x7F)
        assert mem.read_u8(90) == 0x7F

    def test_signed_64(self):
        mem = PhysicalMemory(1 << 20)
        mem.write_i64(0, -5)
        assert mem.read_i64(0) == -5
        assert mem.read_u64(0) == (1 << 64) - 5

    def test_out_of_range_faults(self):
        mem = PhysicalMemory(1 << 20)
        with pytest.raises(MemoryFault):
            mem.read((1 << 20) - 4, 8)
        with pytest.raises(MemoryFault):
            mem.write_u64(-8, 1)

    def test_fill(self):
        mem = PhysicalMemory(1 << 20)
        mem.fill(10, 5, 0xAB)
        assert mem.read(10, 5) == b"\xab" * 5

    def test_view_i64_requires_alignment(self):
        mem = PhysicalMemory(1 << 20)
        mem.write_i64(8, 42)
        assert mem.view_i64(8, 1)[0] == 42
        with pytest.raises(MemoryFault):
            mem.view_i64(4, 1)

    def test_size_must_be_line_multiple(self):
        with pytest.raises(MachineError):
            PhysicalMemory(100)


class TestBumpAllocator:
    def test_alignment_honored(self):
        alloc = BumpAllocator(64, 1 << 16)
        a = alloc.alloc(10, align=64)
        b = alloc.alloc(10, align=256)
        assert a % 64 == 0
        assert b % 256 == 0
        assert b >= a + 10

    def test_exhaustion(self):
        alloc = BumpAllocator(64, 256)
        alloc.alloc(128)
        with pytest.raises(MachineError):
            alloc.alloc(256)

    def test_reset(self):
        alloc = BumpAllocator(64, 1 << 16)
        alloc.alloc(100)
        used = alloc.used
        alloc.reset()
        assert used > 0 and alloc.used == 0

    def test_align_up(self):
        assert align_up(65, 64) == 128
        assert align_up(64, 64) == 64
        with pytest.raises(MachineError):
            align_up(1, 3)


class TestPageTable:
    def test_default_no_access(self):
        pt = PageTable(16 * PAGE_SIZE)
        with pytest.raises(MemoryFault):
            pt.check_read(0)

    def test_rwx_split(self):
        pt = PageTable(16 * PAGE_SIZE)
        pt.set_prot(0, PAGE_SIZE, PROT_RX)
        pt.set_prot(PAGE_SIZE, PAGE_SIZE, PROT_RW)
        pt.check_read(10)
        pt.check_exec(10)
        with pytest.raises(MemoryFault):
            pt.check_write(10)
        pt.check_write(PAGE_SIZE + 10)
        with pytest.raises(MemoryFault):
            pt.check_exec(PAGE_SIZE + 10)

    def test_range_spanning_pages_requires_all(self):
        pt = PageTable(16 * PAGE_SIZE)
        pt.set_prot(0, PAGE_SIZE, PROT_RW)
        # second page stays PROT_NONE
        with pytest.raises(MemoryFault):
            pt.check_read(PAGE_SIZE - 8, 16)

    def test_rwx_pages_allow_everything(self):
        pt = PageTable(16 * PAGE_SIZE)
        pt.set_prot(0, 2 * PAGE_SIZE, PROT_RWX)
        pt.check_read(0, 2 * PAGE_SIZE)
        pt.check_write(100, 64)
        pt.check_exec(PAGE_SIZE, 8)

    def test_prot_str(self):
        assert prot_str(PROT_RWX) == "RWX"
        assert prot_str(PROT_RX) == "RX"
        assert prot_str(PROT_NONE) == "-"
