"""Tests for the standard package build (§VI-B jams) and the toolchain."""

import pytest

from repro.core import count_got_accesses
from repro.core.stdjams import build_std_package
from repro.core.toolchain import JamSource, build_package
from repro.errors import PackageError
from repro.isa import Op, decode_program


@pytest.fixture(scope="module")
def std():
    return build_std_package()


class TestStdPackage:
    def test_paper_code_sizes(self, std):
        """The Indirect Put jam ships 1408 B of code, like the paper."""
        assert len(std.jam("jam_indirect_put").blob) == 1408
        assert len(std.jam("jam_ss_sum").blob) == 448

    def test_element_ids_are_stable(self, std):
        assert std.jam("jam_ss_sum").element_id == 0
        assert std.jam("jam_indirect_put").element_id == 1

    def test_entries_at_offset_zero(self, std):
        for art in std.jams:
            assert art.entry_off == 0

    def test_blobs_fully_rewritten(self, std):
        for art in std.jams:
            ldg, ldgi = count_got_accesses(art.blob[:art.text_size])
            assert ldg == 0
            assert ldgi == len(
                [i for i in decode_program(art.blob[:art.text_size])
                 if i.op is Op.LDGI])
            assert ldgi >= 1  # every std jam uses at least one extern

    def test_ldgi_points_before_code(self, std):
        """Every rewritten GOT access must target the GOTP cell at
        code_start - 8, regardless of where the instruction sits."""
        for art in std.jams:
            for off, instr in enumerate(
                    decode_program(art.blob[:art.text_size])):
                if instr.op is Op.LDGI:
                    assert instr.imm == -8 - off * 8

    def test_got_slots_match_externs(self, std):
        iput = std.jam("jam_indirect_put")
        assert iput.externs[0] == "tc_hash64"
        assert "kv_data" in iput.externs
        slots = {i.rs2 for i in decode_program(iput.blob[:iput.text_size])
                 if i.op is Op.LDGI}
        assert slots <= set(range(len(iput.externs)))

    def test_library_elf_parses_and_exports(self, std):
        from repro.elf import read_elf
        img = read_elf(std.library_elf)
        names = {s.name for s in img.defined_symbols()}
        for expected in ("jam_ss_sum", "jam_indirect_put", "kv_find",
                         "ss_store", "kv_keys", "ss_results"):
            assert expected in names

    def test_header_lists_every_element(self, std):
        for art in std.jams:
            assert art.name.upper() in std.header

    def test_padding_is_nops(self, std):
        sum_blob = std.jam("jam_ss_sum").blob
        # padded region decodes as NOPs
        tail = decode_program(sum_blob[-64:])
        assert all(i.op is Op.NOP for i in tail)


class TestToolchainValidation:
    def test_pad_smaller_than_code_rejected(self):
        with pytest.raises(PackageError, match="exceeds"):
            build_package("x", [JamSource("jam_big", """
                long jam_big(long* p, long n, long a, long b) {
                    return p[0] + p[1] + p[2] + p[3] + p[4];
                }
            """, pad_code_to=8)])

    def test_unaligned_pad_rejected(self):
        with pytest.raises(PackageError, match="aligned"):
            build_package("x", [JamSource("jam_x", """
                long jam_x(long* p, long n, long a, long b) { return 0; }
            """, pad_code_to=1001)])

    def test_missing_entry_function_rejected(self):
        with pytest.raises(PackageError, match="must define"):
            build_package("x", [JamSource("jam_missing", """
                long other(long* p, long n, long a, long b) { return 0; }
            """)])

    def test_duplicate_jam_names_rejected(self):
        src = "long jam_d(long* p, long n, long a, long b) { return 0; }"
        with pytest.raises(PackageError, match="duplicate"):
            build_package("x", [JamSource("jam_d", src),
                                JamSource("jam_d", src)])

    def test_empty_package_rejected(self):
        with pytest.raises(PackageError, match="at least one"):
            build_package("x", [])

    def test_jam_rodata_travels_with_code(self):
        build = build_package("strings", [JamSource("jam_hello", """
            extern long tc_puts(char* s);
            long jam_hello(long* p, long n, long a, long b) {
                return tc_puts("in-message rodata");
            }
        """)])
        art = build.jam("jam_hello")
        assert art.rodata_size >= len("in-message rodata") + 1
        assert b"in-message rodata" in art.blob
