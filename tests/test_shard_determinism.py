"""Row identity of the conservative parallel-DES shards (sim/shard.py).

The whole point of sharding the DES is wall-clock; the rows must not
move.  Three contracts are pinned here:

* **Shard count is invisible** — shardable figures produce byte-identical
  rows under any shard count and either backend (serial's windowed pass
  loop and thread's barrier rounds schedule differently but must commit
  the same event order).
* **Forcing is sound** — non-shardable legacy figures silently run
  single-heap under any requested policy, so a registry-wide sweep at
  ``--shards 4`` equals the single-heap sweep for *every* figure.
* **Fork==fresh survives sharding** — a rewound sharded world (per-shard
  clocks, channel sequence counters) measures identically to a freshly
  built one, exactly like the single-heap contract in
  test_world_checkpoint.py.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.figures import full_registry
from repro.bench.orchestrator import run_figures
from repro.core.stdworld import SETUP_CACHE
from repro.sim import shard as _shard

CHAIN_FIGS = ["figchain", "figchain_mcast"]


@pytest.fixture(autouse=True)
def _isolated_policy_and_cache():
    SETUP_CACHE.enabled = False
    SETUP_CACHE.clear()
    saved = _shard.get_policy()
    yield
    _shard.set_policy(*saved)
    SETUP_CACHE.enabled = False
    SETUP_CACHE.clear()


def _rows(names, **kw):
    runs = run_figures(names, smoke=True, jobs=1, store=None, **kw)
    return {r.spec.name: json.dumps([p.row for p in r.points],
                                    sort_keys=True)
            for r in runs}


def _chain_rows(shards, backend="serial"):
    """Full fast sweep (k up to 4 -> 5-node worlds) so requested shard
    counts below, at, and above the node count all actually occur."""
    runs = run_figures(CHAIN_FIGS, fast=True, smoke=False, jobs=1,
                      store=None, shards=shards, shard_backend=backend)
    return {r.spec.name: json.dumps([p.row for p in r.points],
                                    sort_keys=True)
            for r in runs}


def test_chain_rows_identical_across_shard_counts():
    base = _chain_rows(shards=1)
    assert _chain_rows(shards=2) == base
    assert _chain_rows(shards=5) == base          # one node per shard
    assert _chain_rows(shards=64) == base         # capped at node count


def test_chain_rows_identical_under_thread_backend():
    base = _chain_rows(shards=1)
    assert _chain_rows(shards=3, backend="thread") == base


def test_full_registry_smoke_identical_under_shard_policy():
    # Non-shardable specs force --shards 1 (FigureSpec.shardable); the
    # chain specs actually shard.  Either way, rows must not move.
    base = _rows(None, shards=1)
    sharded = _rows(None, shards=4, shard_backend="serial")
    assert sorted(sharded) == sorted(base)
    assert sharded == base


def _point_row(spec, params):
    SETUP_CACHE.begin_point()
    return json.dumps(spec.point(**params), sort_keys=True)


@pytest.mark.parametrize("name", CHAIN_FIGS)
def test_forked_sharded_world_rows_match_fresh(name):
    spec = full_registry()[name]
    params = spec.points(True)[1]  # k=2 -> 3-node world, 3 shards
    with _shard.scoped_policy(3, "serial"):
        fresh = _point_row(spec, params)
        SETUP_CACHE.enabled = True
        SETUP_CACHE.clear()
        first = _point_row(spec, params)   # builds + checkpoints
        forked = _point_row(spec, params)  # rewinds the same instances
        hits, misses = SETUP_CACHE.counts()
    assert first == fresh
    assert forked == fresh
    assert hits == misses  # second run forked every world
