"""Row identity of the conservative parallel-DES shards (sim/shard.py).

The whole point of sharding the DES is wall-clock; the rows must not
move.  Three contracts are pinned here:

* **Shard count is invisible** — shardable figures produce byte-identical
  rows under any shard count and either backend (serial's windowed pass
  loop and thread's barrier rounds schedule differently but must commit
  the same event order).
* **Forcing is sound** — non-shardable legacy figures silently run
  single-heap under any requested policy, so a registry-wide sweep at
  ``--shards 4`` equals the single-heap sweep for *every* figure.
* **Fork==fresh survives sharding** — a rewound sharded world (per-shard
  clocks, channel sequence counters) measures identically to a freshly
  built one, exactly like the single-heap contract in
  test_world_checkpoint.py.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.figures import full_registry
from repro.bench.orchestrator import run_figures
from repro.core.stdworld import SETUP_CACHE, make_world
from repro.core.worldproxy import ProcWorldCheckpoint, WorldProxy
from repro.errors import SimulationError
from repro.machine import PROT_RW
from repro.rdma import Access
from repro.sim import shard as _shard

CHAIN_FIGS = ["figchain", "figchain_mcast"]


@pytest.fixture(autouse=True)
def _isolated_policy_and_cache():
    SETUP_CACHE.enabled = False
    SETUP_CACHE.clear()
    saved = _shard.get_policy()
    saved_jobs = _shard.get_active_jobs()
    yield
    _shard.set_policy(*saved)
    _shard.set_active_jobs(saved_jobs)
    SETUP_CACHE.enabled = False
    SETUP_CACHE.clear()


def _rows(names, **kw):
    runs = run_figures(names, smoke=True, jobs=1, store=None, **kw)
    return {r.spec.name: json.dumps([p.row for p in r.points],
                                    sort_keys=True)
            for r in runs}


def _chain_rows(shards, backend="serial"):
    """Full fast sweep (k up to 4 -> 5-node worlds) so requested shard
    counts below, at, and above the node count all actually occur."""
    runs = run_figures(CHAIN_FIGS, fast=True, smoke=False, jobs=1,
                      store=None, shards=shards, shard_backend=backend)
    return {r.spec.name: json.dumps([p.row for p in r.points],
                                    sort_keys=True)
            for r in runs}


def test_chain_rows_identical_across_shard_counts():
    base = _chain_rows(shards=1)
    assert _chain_rows(shards=2) == base
    assert _chain_rows(shards=5) == base          # one node per shard
    assert _chain_rows(shards=64) == base         # capped at node count


def test_chain_rows_identical_under_thread_backend():
    base = _chain_rows(shards=1)
    assert _chain_rows(shards=3, backend="thread") == base


def _chain_rows_and_metrics(shards, backend="serial"):
    """Rows plus the per-figure stable-metrics snapshot: the process
    backend merges worker-local registries back at round end and both
    must be byte-identical to the single-heap run."""
    runs = run_figures(CHAIN_FIGS, fast=True, smoke=False, jobs=1,
                       store=None, shards=shards, shard_backend=backend,
                       metrics=True)
    rows = {r.spec.name: json.dumps([p.row for p in r.points],
                                    sort_keys=True)
            for r in runs}
    mets = {r.spec.name: json.dumps(r.metrics_snapshot, sort_keys=True)
            for r in runs}
    return rows, mets


def test_chain_rows_and_metrics_identical_under_process_backend():
    base = _chain_rows_and_metrics(shards=1)
    assert base[1] and all(json.loads(m) for m in base[1].values())
    assert _chain_rows_and_metrics(2, backend="process") == base
    assert _chain_rows_and_metrics(4, backend="process") == base


def test_full_registry_smoke_identical_under_shard_policy():
    # Non-shardable specs force --shards 1 (FigureSpec.shardable); the
    # chain specs actually shard.  Either way, rows must not move.
    base = _rows(None, shards=1)
    sharded = _rows(None, shards=4, shard_backend="serial")
    assert sorted(sharded) == sorted(base)
    assert sharded == base
    procd = _rows(None, shards=4, shard_backend="process")
    assert procd == base


def _point_row(spec, params):
    SETUP_CACHE.begin_point()
    return json.dumps(spec.point(**params), sort_keys=True)


@pytest.mark.parametrize("backend", ["serial", "process"])
@pytest.mark.parametrize("name", CHAIN_FIGS)
def test_forked_sharded_world_rows_match_fresh(name, backend):
    spec = full_registry()[name]
    params = spec.points(True)[1]  # k=2 -> 3-node world, 3 shards
    with _shard.scoped_policy(3, backend):
        fresh = _point_row(spec, params)
        SETUP_CACHE.enabled = True
        SETUP_CACHE.clear()
        first = _point_row(spec, params)   # builds + checkpoints
        forked = _point_row(spec, params)  # rewinds the same instances
        hits, misses = SETUP_CACHE.counts()
    assert first == fresh
    assert forked == fresh
    assert hits == misses  # second run forked every world


# ---------------------------------------------------------------------------
# process backend: lifecycle, RPC surface, crash propagation, policy
# ---------------------------------------------------------------------------

def _proc_world():
    """A two-node world on two process shards, plus a put driver that
    posts inside a run (cross-shard work originates in-run, where it
    rides the envelope codec — the supported pattern)."""
    w = make_world()
    bed = w.bed
    src = bed.node0.map_region(64, PROT_RW)
    dst = bed.node1.map_region(64, PROT_RW)
    mr = bed.hca1.register_memory(dst, 64,
                                  Access.REMOTE_READ | Access.REMOTE_WRITE)

    def put_once(payload: bytes) -> None:
        bed.node0.mem.write(src, payload)

        def proc():
            comp = bed.qp01.post_put(bed.engine.now, src, dst, 64, mr.rkey)
            yield comp.event

        bed.engine.run_process(proc(), name="put")

    return w, dst, put_once


def test_worker_resident_snapshot_restores_and_replays():
    with _shard.scoped_policy(2, "process"):
        w, dst, put_once = _proc_world()
        assert isinstance(w, WorldProxy)
        eng = w.bed.engine
        put_once(b"A" * 64)                  # first run forks the workers
        assert eng._workers
        assert w.read_mem(1, dst, 64) == b"A" * 64
        cp = w.snapshot()                    # workers live: resident snaps
        assert isinstance(cp, ProcWorldCheckpoint)
        t_mark = eng.now
        put_once(b"B" * 64)
        t_replay = eng.now - t_mark
        assert w.read_mem(1, dst, 64) == b"B" * 64
        w.restore(cp)
        assert w.read_mem(1, dst, 64) == b"A" * 64
        assert eng.now == t_mark
        put_once(b"B" * 64)                  # replay measures identically
        assert eng.now - t_mark == t_replay
        assert w.read_mem(1, dst, 64) == b"B" * 64
        eng.kill_workers()


def test_worker_resident_snapshot_dies_with_workers():
    with _shard.scoped_policy(2, "process"):
        w, dst, put_once = _proc_world()
        eng = w.bed.engine
        plain = w.snapshot()                 # pre-fork: plain checkpoint
        assert not isinstance(plain, ProcWorldCheckpoint)
        put_once(b"A" * 64)
        cp = w.snapshot()
        assert isinstance(cp, ProcWorldCheckpoint)
        w.restore(plain)                     # retires the workers
        assert not eng._workers
        with pytest.raises(SimulationError, match="outlived"):
            w.restore(cp)


def test_worker_crash_propagates_original_traceback():
    with _shard.scoped_policy(2, "process"):
        w, dst, put_once = _proc_world()
        eng = w.bed.engine

        def boom():
            raise SimulationError("injected worker fault xyzzy")

        # Pre-fork schedule onto the worker shard: the fault fires
        # inside the worker process mid-run.
        w.bed.node1.engine.call_at(10.0, boom)
        with pytest.raises(SimulationError) as ei:
            eng.run()
        msg = str(ei.value)
        assert "injected worker fault xyzzy" in msg
        assert "worker traceback" in msg
        assert "in boom" in msg            # the worker's own stack, verbatim
        assert not eng._workers            # retired, not wedged


def test_driver_side_foreign_schedule_is_guarded_with_live_workers():
    with _shard.scoped_policy(2, "process"):
        w, dst, put_once = _proc_world()
        eng = w.bed.engine
        put_once(b"A" * 64)
        assert eng._workers
        with pytest.raises(SimulationError, match="WorldProxy RPC surface"):
            w.bed.node1.engine.call_at(eng.now + 1.0, lambda: None)
        eng.kill_workers()


def test_run_stats_label_process_shard_rows_by_worker_pid():
    _shard.RUN_STATS.reset()
    with _shard.scoped_policy(2, "process"):
        w, dst, put_once = _proc_world()
        eng = w.bed.engine
        put_once(b"A" * 64)
        worker_pid = eng._worker_pids[1]
        eng.kill_workers()
    stats = _shard.RUN_STATS.snapshot()
    assert stats[0]["pid"] == os.getpid()
    assert stats[1]["pid"] == worker_pid != os.getpid()


def test_shards_auto_policy_is_container_and_jobs_aware(monkeypatch):
    monkeypatch.setattr(_shard, "available_cpus", lambda: 8)
    _shard.set_policy("auto", "process")
    _shard.set_active_jobs(1)
    assert _shard.resolve_shards("auto", 64) == 8
    assert _shard.resolve_shards("auto", 3) == 3     # node-count cap
    _shard.set_active_jobs(4)
    assert _shard.resolve_shards("auto", 64) == 2    # 8 cpus / 4 jobs
    # Explicit counts: capped only where oversubscription multiplies
    # (process workers under a wide pool); thread/serial are GIL-bound.
    assert _shard.resolve_shards(8, 64) == 2
    _shard.set_policy(8, "thread")
    assert _shard.resolve_shards(8, 64) == 8
    _shard.set_active_jobs(16)
    _shard.set_policy("auto", "process")
    assert _shard.resolve_shards("auto", 64) == 1    # floor of 1
