"""mini-UCX tests: protocol ladder, put path, windowed flow control."""

import pytest

from repro.errors import UcpError
from repro.machine import PROT_RW
from repro.rdma import Testbed
from repro.ucp import (
    DEFAULT_PROTOCOLS,
    UcpConfig,
    UcpWorker,
    protocol_cost_ns,
    select_protocol,
)


def make_pair(cfg=None):
    bed = Testbed.create()
    w0 = UcpWorker(bed.engine, bed.node0, bed.hca0, cfg)
    w1 = UcpWorker(bed.engine, bed.node1, bed.hca1, cfg)
    ep01 = w0.create_ep(bed.qp01)
    return bed, w0, w1, ep01


class TestProtocolLadder:
    def test_selection_by_size(self):
        assert select_protocol(1).name == "short"
        assert select_protocol(64).name == "short"
        assert select_protocol(65).name == "eager-bcopy"
        assert select_protocol(1472).name == "eager-bcopy"
        assert select_protocol(1473).name == "eager-zcopy"
        assert select_protocol(2432).name == "eager-zcopy"
        assert select_protocol(2433).name == "multi-zcopy"
        assert select_protocol(1 << 20).name == "multi-zcopy"

    def test_negative_size_rejected(self):
        with pytest.raises(UcpError):
            select_protocol(-1)

    def test_just_over_threshold_is_locally_pessimal(self):
        """Crossing into a new protocol momentarily raises software cost —
        the Fig 7 artifact."""
        for proto, nxt in zip(DEFAULT_PROTOCOLS, DEFAULT_PROTOCOLS[1:]):
            at_max = protocol_cost_ns(proto.max_size)
            just_over = protocol_cost_ns(proto.max_size + 1)
            assert just_over > at_max, (proto.name, nxt.name)

    def test_cost_monotone_within_protocol(self):
        assert protocol_cost_ns(2000) <= protocol_cost_ns(2432)


class TestPutPath:
    def test_put_delivers_payload(self):
        bed, w0, w1, ep = make_pair()
        src = bed.node0.map_region(256, PROT_RW)
        dst = bed.node1.map_region(256, PROT_RW)
        bed.node0.mem.write(src, b"x" * 200)
        mr = w1.register(dst, 256)
        req = ep.put_nbi(0.0, src, dst, 200, mr.rkey)
        bed.engine.run()
        assert req.ok
        assert bed.node1.mem.read(dst, 200) == b"x" * 200
        assert req.protocol == "eager-bcopy"

    def test_bcopy_stages_through_bounce(self):
        bed, w0, w1, ep = make_pair()
        src = bed.node0.map_region(256, PROT_RW)
        dst = bed.node1.map_region(256, PROT_RW)
        bed.node0.mem.write(src, b"y" * 100)
        mr = w1.register(dst, 256)
        ep.put_nbi(0.0, src, dst, 100, mr.rkey)
        assert bed.node0.mem.read(w0.bounce, 100) == b"y" * 100

    def test_zcopy_does_not_touch_bounce(self):
        bed, w0, w1, ep = make_pair()
        size = 2000
        src = bed.node0.map_region(size, PROT_RW)
        dst = bed.node1.map_region(size, PROT_RW)
        bed.node0.mem.write(src, b"z" * size)
        mr = w1.register(dst, size)
        req = ep.put_nbi(0.0, src, dst, size, mr.rkey)
        assert req.protocol == "eager-zcopy"
        assert bed.node0.mem.read(w0.bounce, 8) == b"\0" * 8

    def test_bcopy_larger_than_pool_rejected(self):
        cfg = UcpConfig(bounce_bytes=4096)
        bed, w0, w1, ep = make_pair(cfg)
        src = bed.node0.map_region(8192, PROT_RW)
        # force a bcopy-sized config by raising the bcopy threshold
        from repro.ucp.protocols import Protocol
        big_bcopy = (Protocol("short", 64, 38.0, 0.0, False),
                     Protocol("eager-bcopy", 1 << 20, 96.0, 0.05, True))
        w0.cfg = UcpConfig(protocols=big_bcopy, bounce_bytes=4096)
        with pytest.raises(UcpError, match="bounce"):
            ep.put_nbi(0.0, src, src, 8192, 1)

    def test_untracked_put_skips_request_tracking(self):
        bed, w0, w1, ep = make_pair()
        src = bed.node0.map_region(64, PROT_RW)
        dst = bed.node1.map_region(64, PROT_RW)
        mr = w1.register(dst, 64)
        ep.put_nbi(0.0, src, dst, 8, mr.rkey, track=False)
        assert ep.inflight == []
        ep.put_nbi(0.0, src, dst, 8, mr.rkey, track=True)
        assert len(ep.inflight) == 1

    def test_endpoint_requires_matching_hca(self):
        bed, w0, w1, _ = make_pair()
        with pytest.raises(UcpError):
            w0.create_ep(bed.qp10)  # qp10 is rooted at hca1


class TestFlowControl:
    def test_flush_waits_for_all(self):
        bed, w0, w1, ep = make_pair()
        src = bed.node0.map_region(4096, PROT_RW)
        dst = bed.node1.map_region(4096 * 8, PROT_RW)
        mr = w1.register(dst, 4096 * 8)

        result = {}

        def sender():
            reqs = [ep.put_nbi(bed.engine.now, src, dst + i * 4096, 4096,
                               mr.rkey) for i in range(8)]
            yield from ep.flush()
            result["flushed_at"] = bed.engine.now
            result["all_ok"] = all(r.ok for r in reqs)
            result["max_completed"] = max(r.completion.completed_at
                                          for r in reqs)

        bed.engine.run_process(sender())
        assert result["all_ok"]
        assert result["flushed_at"] >= result["max_completed"]
        assert ep.inflight == []

    def test_window_admit_blocks_at_byte_window(self):
        cfg = UcpConfig(fc_window_bytes=128)  # window of 2 for 64B puts
        bed, w0, w1, ep = make_pair(cfg)
        src = bed.node0.map_region(64, PROT_RW)
        dst = bed.node1.map_region(64 * 16, PROT_RW)
        mr = w1.register(dst, 64 * 16)
        high_water = {"max": 0}

        def sender():
            for i in range(10):
                yield from ep.window_admit(64)
                ep.put_nbi(bed.engine.now, src, dst + 64 * i, 64, mr.rkey)
                high_water["max"] = max(high_water["max"], len(ep.inflight))
            yield from ep.flush()

        bed.engine.run_process(sender())
        assert high_water["max"] <= 2

    def test_window_scales_inversely_with_size(self):
        bed, w0, w1, ep = make_pair()
        assert ep.window_for(64) > ep.window_for(4096) >= ep.window_for(65536)
        assert ep.window_for(1 << 30) == 1

    def test_reap_completed_is_free_and_pops(self):
        bed, w0, w1, ep = make_pair()
        src = bed.node0.map_region(64, PROT_RW)
        dst = bed.node1.map_region(64, PROT_RW)
        mr = w1.register(dst, 64)
        req = ep.put_nbi(0.0, src, dst, 8, mr.rkey)
        assert ep.reap_completed() == 0  # not yet delivered
        bed.engine.run()
        assert ep.reap_completed() == 1
        assert ep.inflight == []

    def test_progress_cost_accrues_cpu(self):
        bed, w0, w1, ep = make_pair()
        before = bed.node0.cpu_cycles(0)
        w0.progress_cost()
        assert bed.node0.cpu_cycles(0) > before
        assert w0.progress_calls == 1
