"""Tests for benchmark statistics and calibration helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import TARGETS, pct_diff, summarize, within_band
from repro.ucp import protocol_cost_ns


class TestSummarize:
    def test_basic_percentiles(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.n == 5
        assert stats.p50 == 3.0
        assert stats.minimum == 1.0 and stats.maximum == 5.0
        assert stats.mean == 3.0

    def test_p999_tracks_tail(self):
        samples = [100.0] * 999 + [10_000.0]
        stats = summarize(samples)
        assert stats.p50 == 100.0
        assert stats.p999 > 5000.0

    def test_tail_spread_formula(self):
        """Equation (1) of the paper."""
        samples = [100.0] * 999 + [400.0]
        stats = summarize(samples)
        expected = 100.0 * (stats.p999 - stats.p50) / stats.p50
        assert stats.tail_spread_pct == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(1.0, 1e6), min_size=2, max_size=500))
    def test_property_ordering_invariants(self, samples):
        stats = summarize(samples)
        assert stats.minimum <= stats.p50 <= stats.p999 <= stats.maximum
        # mean is within [min, max] up to float summation rounding
        eps = 1e-9 * max(abs(stats.minimum), abs(stats.maximum), 1.0)
        assert stats.minimum - eps <= stats.mean <= stats.maximum + eps


class TestPctDiff:
    def test_positive_when_larger(self):
        assert pct_diff(110.0, 100.0) == pytest.approx(10.0)

    def test_negative_when_smaller(self):
        assert pct_diff(90.0, 100.0) == pytest.approx(-10.0)

    def test_zero_baseline(self):
        assert pct_diff(1.0, 0.0) == float("inf")


class TestCalibration:
    def test_within_band(self):
        assert within_band(30.0, 31.0)
        assert within_band(20.0, 31.0)
        assert not within_band(5.0, 31.0)

    def test_paper_targets_sane(self):
        assert TARGETS.fig6_speedup_range[0] < TARGETS.fig6_speedup_range[1]
        assert 0 < TARGETS.fig5_max_latency_overhead_pct < 10
        assert TARGETS.fig13_cycle_reduction_range == (2.5, 3.8)

    def test_protocol_thresholds_match_injected_frame_crossings(self):
        """The paper's Fig 7 artifact points: the injected Indirect Put
        frame (1408 B code) crosses a protocol boundary between the 1- and
        8-integer payloads and again around 256 integers."""
        from repro.core import frame_wire_size
        from repro.ucp import select_protocol
        one = select_protocol(frame_wire_size(1408, 4)).name
        eight = select_protocol(frame_wire_size(1408, 32)).name
        assert one != eight
        p128 = select_protocol(frame_wire_size(1408, 512)).name
        p256 = select_protocol(frame_wire_size(1408, 1024)).name
        assert p128 != p256

    def test_ladder_cost_crossover_is_bounded(self):
        # The just-over-threshold penalty is slight (paper: "slight
        # performance degradation"), not a cliff.
        for a, b in ((1472, 1473), (2432, 2433)):
            jump = protocol_cost_ns(b) - protocol_cost_ns(a)
            assert 0 < jump < 120.0
