"""Failure-injection tests: corrupted frames, bad code, protocol misuse."""

import pytest

from repro.core import connect_runtimes, unpack_header
from repro.core.stdworld import make_world
from repro.errors import MailboxError, VmFault
from repro.machine import PROT_RW


def setup_world():
    world = make_world()
    fsize = world.frame_size_for("jam_ss_sum", 32, True)
    mb = world.server.create_mailbox(1, 1, fsize)
    conn = connect_runtimes(world.client, world.server, mb)
    waiter = world.server.make_waiter(mb)
    pkg = world.client.packages[world.build.package_id]
    payload = world.bed.node0.map_region(64, PROT_RW)
    return world, mb, conn, waiter, pkg, payload


class TestCorruptedFrames:
    def test_bad_magic_raises_at_dispatch(self):
        world, mb, conn, waiter, pkg, payload = setup_world()
        waiter.start()

        def sender():
            req = yield from conn.send_jam(pkg, "jam_ss_sum", payload, 32)
            return req

        # Corrupt the magic after delivery but before dispatch can't be
        # interleaved deterministically from outside, so instead corrupt
        # the staged frame pre-send.
        world.bed.node0.mem.write_u8(conn._staging, 0)  # will be repacked
        proc = world.engine.spawn(sender())
        # sabotage: after the frame lands, flip magic then signal again
        slot = mb.slot_addr(0, 0)

        def saboteur():
            yield world.bed.node1.monitor_event(slot + mb.frame_size - 1)
            world.bed.node1.mem.write_u8(slot, 0xFF)

        world.engine.spawn(saboteur())
        with pytest.raises(MailboxError, match="magic"):
            world.engine.run()

    def test_unknown_package_id_rejected_by_waiter(self):
        world, mb, conn, waiter, pkg, payload = setup_world()
        waiter.start()

        def sender():
            yield from conn.send_jam(pkg, "jam_ss_sum", payload, 32)

        slot = mb.slot_addr(0, 0)

        def saboteur():
            yield world.bed.node1.monitor_event(slot + mb.frame_size - 1)
            # overwrite package id (header bytes 8..12)
            world.bed.node1.mem.write_u32(slot + 8, 0xDEAD)

        world.engine.spawn(saboteur())
        world.engine.spawn(sender())
        with pytest.raises(MailboxError, match="unknown package"):
            world.engine.run()

    def test_corrupted_code_faults_the_vm(self):
        world, mb, conn, waiter, pkg, payload = setup_world()
        waiter.start()

        def sender():
            yield from conn.send_jam(pkg, "jam_ss_sum", payload, 32)

        slot = mb.slot_addr(0, 0)

        def saboteur():
            yield world.bed.node1.monitor_event(slot + mb.frame_size - 1)
            view = unpack_header(world.bed.node1.mem.data, slot)
            # stomp the entry instruction with an illegal opcode
            world.bed.node1.mem.write(slot + view.code_off, b"\xee" * 8)

        world.engine.spawn(saboteur())
        world.engine.spawn(sender())
        with pytest.raises(VmFault, match="illegal opcode"):
            world.engine.run()


class TestProtocolMisuse:
    def test_stale_sequence_is_not_dispatched(self):
        """A frame with yesterday's sequence tag must not wake the slot."""
        world, mb, conn, waiter, pkg, payload = setup_world()
        waiter.start()

        def sender():
            yield from conn.send_jam(pkg, "jam_ss_sum", payload, 32)

        world.engine.spawn(sender())
        world.engine.run()
        assert waiter.stats.frames == 1
        # Replay the exact same frame bytes (same seq=1): the waiter now
        # expects seq=2, so nothing should execute.
        blob = world.bed.node1.mem.read(mb.slot_addr(0, 0), mb.frame_size)
        req = world.bed.qp01.post_put(world.engine.now, 0,
                                      mb.slot_addr(0, 0), mb.frame_size,
                                      mb.mr.rkey, payload=blob)
        world.engine.run(until=world.engine.now + 50_000)
        assert waiter.stats.frames == 1
        waiter.stop()

    def test_mailbox_geometry_validation(self):
        world = make_world()
        with pytest.raises(MailboxError):
            world.server.create_mailbox(0, 1, 64)
        with pytest.raises(MailboxError):
            world.server.create_mailbox(1, 1, 100)  # not 64-aligned
        mb = world.server.create_mailbox(2, 2, 128)
        with pytest.raises(MailboxError):
            mb.slot_addr(2, 0)

    def test_jam_runaway_loop_hits_step_limit(self):
        """An injected infinite loop is contained by the VM step limit,
        not by the simulation hanging."""
        from repro.core import JamSource, build_package
        from repro.core.stdworld import make_world as mw
        bad = build_package("runaway", [JamSource("jam_spin", """
            long jam_spin(long* p, long n, long a0, long a1) {
                long x = 1;
                while (x) { x = x + 1; if (x == 0) { x = 1; } }
                return x;
            }
        """)])
        world = mw(build=bad)
        mb = world.server.create_mailbox(1, 1, 1024)
        conn = connect_runtimes(world.client, world.server, mb)
        waiter = world.server.make_waiter(mb)
        waiter.start()
        payload = world.bed.node0.map_region(64, PROT_RW)
        pkg = world.client.packages[bad.package_id]

        def sender():
            yield from conn.send_jam(pkg, "jam_spin", payload, 8)

        world.engine.spawn(sender())
        with pytest.raises(VmFault, match="step limit"):
            world.engine.run()
