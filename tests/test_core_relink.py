"""Library replacement / relinking (§III): change message behaviour by
loading an updated library — no process restart, no message change."""

from repro.core import JamSource, RiedSource, build_package, connect_runtimes
from repro.core.stdworld import make_world
from repro.elf import build_shared_object
from repro.isa import assemble
from repro.machine import PROT_RW

RIED = RiedSource("ried_o", "long last = 0;")
JAM = JamSource("jam_apply2", """
    extern long transform(long x);
    extern long last;
    long jam_apply2(long* p, long n, long a, long b) {
        last = transform(p[0]);
        return last;
    }
""")

V1 = ".global transform\ntransform:\n add a0, a0, a0\n ret"        # double
V2 = ".global transform\ntransform:\n muli a0, a0, 10\n ret"       # x10


class TestRelink:
    def _world(self):
        build = build_package("relinkpkg", [JAM], [RIED])
        world = make_world(build=None) if False else None
        from repro.core import TwoChainsRuntime
        from repro.rdma import Testbed
        bed = Testbed.create()
        client = TwoChainsRuntime(bed.engine, bed.node0, bed.hca0, bed.qp01)
        server = TwoChainsRuntime(bed.engine, bed.node1, bed.hca1, bed.qp10)
        for rt in (client, server):
            rt.loader.load(build_shared_object(assemble(V1)), "libv1.so")
        client.load_package(build)
        server.load_package(build)
        return bed, client, server, build

    def _send_once(self, bed, conn, pkg, payload):
        def send():
            yield from conn.send_jam(pkg, "jam_apply2", payload, 8,
                                     inject=True)
        bed.engine.spawn(send())
        bed.engine.run()

    def test_redefine_plus_relink_changes_injected_behaviour(self):
        bed, client, server, build = self._world()
        mb = server.create_mailbox(1, 1, 1024)
        conn = connect_runtimes(client, server, mb)
        waiter = server.make_waiter(mb)
        waiter.start()
        payload = bed.node0.map_region(64, PROT_RW)
        bed.node0.mem.write_i64(payload, 7)
        pkg = client.packages[build.package_id]

        self._send_once(bed, conn, pkg, payload)
        assert waiter.stats.last_exec_ret == 14  # v1: double

        # Hot update on the SERVER only: load v2, redefine, relink.
        v2 = server.loader.load(build_shared_object(assemble(V2)),
                                "libv2.so", export=False)
        server.namespace.redefine("transform", v2.symbol("transform"),
                                  origin="libv2.so")
        server.relink_package(server.packages[build.package_id])

        self._send_once(bed, conn, pkg, payload)
        assert waiter.stats.last_exec_ret == 70  # v2: x10
        waiter.stop()

    def test_relink_also_updates_local_invocation(self):
        bed, client, server, build = self._world()
        mb = server.create_mailbox(1, 1, 1024)
        conn = connect_runtimes(client, server, mb)
        waiter = server.make_waiter(mb)
        waiter.start()
        payload = bed.node0.map_region(64, PROT_RW)
        bed.node0.mem.write_i64(payload, 3)
        pkg = client.packages[build.package_id]

        def send_local():
            yield from conn.send_jam(pkg, "jam_apply2", payload, 8,
                                     inject=False)

        bed.engine.spawn(send_local())
        bed.engine.run()
        assert waiter.stats.last_exec_ret == 6

        v2 = server.loader.load(build_shared_object(assemble(V2)),
                                "libv2.so", export=False)
        server.namespace.redefine("transform", v2.symbol("transform"))
        server.relink_package(server.packages[build.package_id])

        bed.engine.spawn(send_local())
        bed.engine.run()
        assert waiter.stats.last_exec_ret == 30
        waiter.stop()

    def test_client_unaffected_by_server_update(self):
        """Namespaces are per-process: the server's update does not leak
        into the client's bindings."""
        bed, client, server, build = self._world()
        v2 = server.loader.load(build_shared_object(assemble(V2)),
                                "libv2.so", export=False)
        server.namespace.redefine("transform", v2.symbol("transform"))
        server.relink_package(server.packages[build.package_id])
        lib_c = client.packages[build.package_id].library
        res = client.vm.call(client.namespace.resolve("transform"), (5,))
        assert res.ret == 10  # still v1 (double) on the client
