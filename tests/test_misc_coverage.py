"""Coverage for smaller units: scoreboard, extern data relocs, ELF edges."""

import pytest

from repro.elf import build_shared_object, consts as C, read_elf
from repro.errors import ElfError
from repro.isa import Vm, assemble
from repro.linker import Loader, Namespace
from repro.sim import Scoreboard
from tests.util import fresh_node


class TestScoreboard:
    def test_counters_accumulate(self):
        board = Scoreboard()
        board.bump("x")
        board.bump("x", 4)
        assert board.count("x") == 5
        assert board.count("missing") == 0

    def test_samples_and_series(self):
        board = Scoreboard()
        board.record("lat", 1.0)
        board.record_many("lat", [2.0, 3.0])
        assert board.series("lat").tolist() == [1.0, 2.0, 3.0]
        assert board.series("none").size == 0

    def test_snapshot_delta(self):
        board = Scoreboard()
        board.bump("a", 10)
        snap = board.snapshot()
        board.bump("a", 5)
        board.bump("b", 1)
        assert board.delta_since(snap) == {"a": 5, "b": 1}

    def test_reset(self):
        board = Scoreboard()
        board.bump("a")
        board.record("s", 1.0)
        board.reset()
        assert board.count("a") == 0
        assert board.series("s").size == 0


class TestExternDataReloc:
    def test_abs64_against_extern_symbol(self):
        """`.quad extern_sym` resolves through the namespace at load."""
        provider = """
            .global shared_cell
            .data
            shared_cell: .quad 777
        """
        consumer = """
            .extern shared_cell
            .global read_it
            read_it:
                adr t0, ptr
                ld t0, 0(t0)       ; t0 = &shared_cell
                ld a0, 0(t0)
                ret
            .data
            .align 8
            ptr: .quad shared_cell
        """
        _, node = fresh_node()
        ns = Namespace()
        loader = Loader(node, ns)
        loader.load(build_shared_object(assemble(provider)), "libp.so")
        lib = loader.load(build_shared_object(assemble(consumer)), "libc.so")
        res = Vm(node, intrinsics=ns.intrinsics).call(lib.symbol("read_it"))
        assert res.ret == 777


class TestElfEdges:
    def test_section_bytes_nobits_is_zero(self):
        blob = build_shared_object(assemble(
            ".global f\nf:\n ret\n.bss\nbuf: .zero 32"))
        img = read_elf(blob)
        assert img.section_bytes(".bss") == b"\0" * 32

    def test_missing_section_raises(self):
        img = read_elf(build_shared_object(assemble("f:\n ret")))
        with pytest.raises(ElfError, match="no section"):
            img.section(".nonexistent")

    def test_missing_symbol_raises(self):
        img = read_elf(build_shared_object(assemble("f:\n ret")))
        with pytest.raises(ElfError, match="no symbol"):
            img.symbol("ghost")

    def test_load_span_covers_all_segments(self):
        img = read_elf(build_shared_object(assemble(
            "f:\n ret\n.data\nd: .quad 1")))
        lo, hi = img.load_span()
        for ph in img.phdrs:
            if ph.p_type == C.PT_LOAD:
                assert lo <= ph.p_vaddr
                assert ph.p_vaddr + ph.p_memsz <= hi

    def test_exec_from_bss_is_denied(self):
        _, node = fresh_node()
        ns = Namespace()
        lib = Loader(node, ns).load(
            build_shared_object(assemble("f:\n ret\n.bss\nb: .zero 64")),
            "lib.so")
        vm = Vm(node, intrinsics=ns.intrinsics)
        with pytest.raises(Exception, match="exec"):
            vm.call(lib.symbol("b"))


class TestNamespaceEdges:
    def test_origin_tracking(self):
        ns = Namespace()
        ns.define("foo", 0x1000, origin="libx.so")
        assert ns.origin_of("foo") == "libx.so"
        assert ns.origin_of("tc_memcpy") == "<native>"
        assert ns.origin_of("ghost") is None

    def test_names_include_natives_and_bindings(self):
        ns = Namespace()
        ns.define("custom", 0x2000)
        names = ns.names()
        assert "custom" in names and "tc_sum64" in names
