"""Encoding/decoding and disassembler tests, incl. hypothesis roundtrips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa import (
    INSTR_BYTES,
    Instr,
    Op,
    decode,
    decode_program,
    disassemble,
    encode_program,
    format_instr,
)

ops = st.sampled_from(list(Op))
regs = st.integers(0, 31)
imms = st.integers(-(1 << 31), (1 << 31) - 1)


class TestEncoding:
    def test_instr_is_8_bytes(self):
        assert len(Instr(Op.NOP).encode()) == INSTR_BYTES

    def test_simple_roundtrip(self):
        i = Instr(Op.ADDI, rd=1, rs1=2, imm=-42)
        assert decode(i.encode()) == i

    @given(op=ops, rd=regs, rs1=regs, rs2=regs, imm=imms)
    @settings(max_examples=200, deadline=None)
    def test_property_roundtrip(self, op, rd, rs1, rs2, imm):
        i = Instr(op, rd, rs1, rs2, imm)
        assert decode(i.encode()) == i

    def test_imm_out_of_range_rejected(self):
        with pytest.raises(IsaError):
            Instr(Op.MOVI, rd=0, imm=1 << 32).encode()

    def test_illegal_opcode_rejected(self):
        with pytest.raises(IsaError):
            decode(b"\xff" + b"\x00" * 7)

    def test_program_roundtrip(self):
        prog = [Instr(Op.MOVI, rd=0, imm=5), Instr(Op.RET)]
        blob = encode_program(prog)
        assert decode_program(blob) == prog

    def test_ragged_program_rejected(self):
        with pytest.raises(IsaError):
            decode_program(b"\x00" * 12)


class TestDisassembler:
    def test_formats_cover_common_shapes(self):
        cases = {
            Instr(Op.NOP): "nop",
            Instr(Op.RET): "ret",
            Instr(Op.MOVI, rd=0, imm=7): "movi a0, 7",
            Instr(Op.ADD, rd=0, rs1=1, rs2=2): "add a0, a1, a2",
            Instr(Op.ADDI, rd=31, rs1=31, imm=-16): "addi sp, sp, -16",
            Instr(Op.LD, rd=30, rs1=31, imm=0): "ld lr, 0(sp)",
            Instr(Op.ST, rd=30, rs1=31, imm=8): "st lr, 8(sp)",
            Instr(Op.CALLR, rs1=8): "callr t0",
            Instr(Op.MOV, rd=0, rs1=29): "mov a0, zr",
        }
        for instr, expected in cases.items():
            assert format_instr(instr) == expected

    def test_branch_target_annotated_with_addr(self):
        text = format_instr(Instr(Op.B, imm=-16), addr=0x100)
        assert "0xf0" in text

    def test_got_forms_distinguishable(self):
        ldg = format_instr(Instr(Op.LDG, rd=8, rs2=3, imm=100))
        ldgi = format_instr(Instr(Op.LDGI, rd=8, rs2=3, imm=-8))
        assert "ldg" in ldg and "got[3]" in ldg
        assert "ldgi" in ldgi and "via" in ldgi

    def test_disassemble_listing(self):
        blob = encode_program([Instr(Op.MOVI, rd=0, imm=1), Instr(Op.RET)])
        lines = disassemble(blob, base=0x1000)
        assert len(lines) == 2
        assert lines[0].startswith("0x00001000:")
        assert "ret" in lines[1]

    @given(op=ops, rd=regs, rs1=regs, rs2=regs, imm=imms)
    @settings(max_examples=100, deadline=None)
    def test_property_format_never_crashes(self, op, rd, rs1, rs2, imm):
        assert isinstance(format_instr(Instr(op, rd, rs1, rs2, imm), 0x40), str)
