"""The structured tracing subsystem: tracer, export, attribution.

Covers :mod:`repro.obs` (span/instant recording, the track model,
Perfetto export, phase attribution), the instrumentation threaded
through the model layers (span nesting across one injected send), the
``--trace`` path of the bench orchestrator, and the zero-cost-when-
disabled contract.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import pytest

from repro.bench.figures import full_registry
from repro.bench.orchestrator import build_meta, run_figures, write_runs
from repro.cli import main as cli_main
from repro.obs.attribution import (
    last_span,
    phase_breakdown,
    phase_durations,
    span_children,
)
from repro.obs.perfetto import (
    export_figure_trace,
    to_trace_document,
    to_trace_events,
)
from repro.obs.tracer import (
    PID_SIM,
    TID_DES,
    TID_HCA,
    TID_TOOL,
    TRACER,
    Tracer,
    node_pid,
)
from repro.sim.trace import Scoreboard

FIG = "fig7"
BASELINE = Path(__file__).resolve().parent.parent / "results" / "bench"


def _fig7_events() -> list[tuple]:
    """One traced fig7 smoke point (cached per test session)."""
    global _EVENTS
    if _EVENTS is None:
        spec = full_registry()[FIG]
        params = spec.points(True)[0]
        with TRACER.capture():
            spec.point(**params)
            _EVENTS = list(TRACER.events)
    return _EVENTS


_EVENTS: list[tuple] | None = None


# ---------------------------------------------------------------------------
# Tracer API
# ---------------------------------------------------------------------------

class TestTracer:
    def test_disabled_by_default_and_capture_lifecycle(self):
        t = Tracer()
        assert not t.enabled and len(t) == 0
        with t.capture():
            assert t.enabled
            t.span(0, 0, "a", 10.0, 20.0)
        assert not t.enabled
        assert len(t) == 1  # events stay readable after detach

    def test_attach_clears_by_default(self):
        t = Tracer()
        t.attach()
        t.instant(0, 0, "x", 5.0)
        t.detach()
        t.attach(clear=False)
        assert len(t) == 1
        t.attach()  # clear=True
        assert len(t) == 0

    def test_span_and_instant_tuple_shape(self):
        t = Tracer()
        t.attach()
        t.span(2, 64, "rdma.put", 100.0, 250.0, {"size": 64})
        t.instant(0, 1, "got.rewrite", 90.0)
        span, inst = t.events
        assert span == ("X", 2, 64, "rdma.put", 100.0, 150.0, {"size": 64})
        assert inst == ("i", 0, 1, "got.rewrite", 90.0, 0.0, None)
        assert t.tracks() == {(2, 64), (0, 1)}
        assert t.spans("rdma.put") == [span]
        assert t.instants() == [inst]

    def test_negative_duration_clamps_to_zero(self):
        t = Tracer()
        t.attach()
        t.span(0, 0, "bad", 100.0, 90.0)
        assert t.events[0][5] == 0.0

    def test_ts_hint_tracks_largest_timestamp(self):
        t = Tracer()
        t.attach()
        assert t.ts_hint() == 0.0
        t.span(0, 0, "a", 10.0, 50.0)
        t.instant(0, 0, "b", 30.0)
        assert t.ts_hint() == 50.0

    def test_track_model_constants(self):
        assert PID_SIM == 0 and TID_DES == 0 and TID_TOOL == 1
        assert TID_HCA == 64
        assert node_pid(0) == 1 and node_pid(1) == 2


# ---------------------------------------------------------------------------
# Scoreboard.merge (orchestrator fan-in)
# ---------------------------------------------------------------------------

class TestScoreboardMerge:
    def test_merge_scoreboard_sums_counters_and_extends_samples(self):
        a, b = Scoreboard(), Scoreboard()
        a.bump("hits", 3)
        a.record("lat", 1.0)
        b.bump("hits", 2)
        b.bump("misses", 7)
        b.record("lat", 2.0)
        b.record("bw", 9.0)
        out = a.merge(b)
        assert out is a  # chains
        assert a.count("hits") == 5 and a.count("misses") == 7
        assert a.samples["lat"] == [1.0, 2.0] and a.samples["bw"] == [9.0]
        # the source board is untouched
        assert b.count("hits") == 2 and b.samples["lat"] == [2.0]

    def test_merge_bare_dict_like_pool_workers_ship(self):
        a = Scoreboard()
        a.bump("x")
        a.merge({"x": 4, "y": 1}).merge({"y": 2})
        assert a.count("x") == 5 and a.count("y") == 3


# ---------------------------------------------------------------------------
# Instrumented model layers: one traced fig7 point
# ---------------------------------------------------------------------------

class TestInstrumentation:
    def test_at_least_five_tracks_and_all_layers_present(self):
        events = _fig7_events()
        tracks = {(e[1], e[2]) for e in events}
        assert len(tracks) >= 5
        # DES loop, both HCAs, both waiter/client cores
        assert (PID_SIM, TID_DES) in tracks
        assert (node_pid(0), TID_HCA) in tracks
        assert (node_pid(1), TID_HCA) in tracks
        assert (node_pid(0), 0) in tracks and (node_pid(1), 0) in tracks
        names = {e[3] for e in events if e[0] == "X"}
        assert {"am.send", "am.post", "rdma.put", "rdma.flight",
                "rdma.dma_write", "mb.wait", "mb.sig_read", "mb.parse",
                "mb.dispatch", "mb.invoke", "vm.call"} <= names
        # toolchain GOT rewrites and cache misses arrive as instants
        inames = {e[3] for e in events if e[0] == "i"}
        assert "got.rewrite" in inames
        assert any(n.startswith("cache.miss.") for n in inames)

    def test_span_nesting_across_one_injected_send(self):
        events = _fig7_events()
        # sender core: am.send contains the update and the post
        send = last_span(events, "am.send")
        kids = {e[3] for e in span_children(events, send)}
        assert {"am.update", "am.post"} <= kids
        # sender HCA: rdma.put contains post + flight
        put = last_span(events, "rdma.put")
        kids = {e[3] for e in span_children(events, put)}
        assert {"rdma.post", "rdma.flight"} <= kids
        # waiter core: dispatch contains parse + invoke, invoke holds the VM
        disp = last_span(events, "mb.dispatch")
        kids = {e[3] for e in span_children(events, disp)}
        assert {"mb.parse", "mb.invoke"} <= kids
        inv = last_span(events, "mb.invoke")
        assert "vm.call" in {e[3] for e in span_children(events, inv)}
        # wake: mb.wait contains the signal read
        wait = last_span(events, "mb.wait")
        assert "mb.sig_read" in {e[3] for e in span_children(events, wait)}

    def test_instrumentation_is_silent_when_disabled(self):
        assert not TRACER.enabled
        before = len(TRACER.events)
        spec = full_registry()[FIG]
        spec.point(**spec.points(True)[0])
        assert len(TRACER.events) == before

    def test_trace_is_deterministic_across_identical_runs(self):
        spec = full_registry()[FIG]
        params = spec.points(True)[0]
        runs = []
        for _ in range(2):
            with TRACER.capture():
                spec.point(**params)
                runs.append(list(TRACER.events))
        assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# Perfetto export
# ---------------------------------------------------------------------------

class TestPerfettoExport:
    def test_trace_event_schema(self):
        events = _fig7_events()
        out = to_trace_events(events)
        meta = [e for e in out if e["ph"] == "M"]
        rest = [e for e in out if e["ph"] != "M"]
        # metadata first: one process_name per pid, one thread_name per track
        assert out[: len(meta)] == meta
        assert {m["name"] for m in meta} == {"process_name", "thread_name"}
        tracks = {(e[1], e[2]) for e in events}
        assert sum(m["name"] == "thread_name" for m in meta) == len(tracks)
        for ev in rest:
            assert {"ph", "name", "cat", "pid", "tid", "ts"} <= ev.keys()
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0
            else:
                assert ev["ph"] == "i" and ev["s"] == "t"
        # ts/dur are microseconds
        span = next(e for e in events if e[0] == "X")
        exported = next(e for e in rest if e["ph"] == "X")
        assert exported["ts"] == pytest.approx(span[4] / 1000.0)
        doc = to_trace_document(events)
        assert doc["displayTimeUnit"] == "ns"
        json.dumps(doc)  # serializable as claimed

    def test_export_figure_trace_writes_loadable_json(self, tmp_path):
        out = tmp_path / "trace.json"
        summary = export_figure_trace(FIG, out)
        doc = json.loads(out.read_text())
        assert summary["figure"] == FIG
        assert summary["tracks"] >= 5
        n_meta = sum(e["ph"] == "M" for e in doc["traceEvents"])
        assert len(doc["traceEvents"]) == summary["events"] + n_meta
        assert sum(e["ph"] == "X"
                   for e in doc["traceEvents"]) == summary["spans"]
        assert "vm.call" in summary["span_names"]

    def test_export_rejects_unknown_figure_and_point(self, tmp_path):
        with pytest.raises(ValueError, match="unknown figure"):
            export_figure_trace("nosuchfig", tmp_path / "x.json")
        with pytest.raises(ValueError, match="out of range"):
            export_figure_trace(FIG, tmp_path / "x.json", point_index=99)

    def test_export_is_byte_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        export_figure_trace(FIG, a)
        export_figure_trace(FIG, b)
        assert a.read_bytes() == b.read_bytes()

    def test_cli_trace_export(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert cli_main(["trace", "export", "--figure", FIG,
                         "-o", str(out)]) == 0
        assert "tracks" in capsys.readouterr().out
        assert json.loads(out.read_text())["traceEvents"]
        assert cli_main(["trace", "export", "--figure", "nope",
                         "-o", str(out)]) == 2


# ---------------------------------------------------------------------------
# Phase attribution + bench --trace
# ---------------------------------------------------------------------------

class TestPhaseBreakdown:
    def test_phase_durations_groups_by_name(self):
        events = [("X", 0, 0, "a", 0.0, 5.0, None),
                  ("i", 0, 0, "b", 1.0, 0.0, None),
                  ("X", 0, 0, "a", 10.0, 7.0, None)]
        durs = phase_durations(events)
        assert durs == {"a": [5.0, 7.0]}
        # accumulates in place across points
        phase_durations([("X", 0, 0, "c", 0.0, 1.0, None)], durs)
        assert set(durs) == {"a", "c"}

    def test_phase_breakdown_summary_fields(self):
        pb = phase_breakdown({"a": [1.0, 3.0], "b": [2.0], "empty": []})
        assert list(pb) == ["a", "b"]  # sorted, empties dropped
        assert pb["a"] == {"count": 2, "p50_ns": 2.0, "p95_ns": 2.9,
                           "mean_ns": 2.0, "total_ns": 4.0}

    def test_traced_run_attaches_phases_and_rows_match_untraced(self):
        plain = run_figures([FIG], smoke=True, jobs=1)[0]
        traced = run_figures([FIG], smoke=True, jobs=1, trace=True)[0]
        # tracing must not change the simulated numbers
        assert [r.row for r in traced.points] == [r.row for r in plain.points]
        assert all(r.phases for r in traced.points)
        assert all(r.phases is None for r in plain.points)
        durs = traced.phase_durs
        assert "am.send" in durs and "vm.call" in durs

    def test_write_runs_embeds_phase_breakdown_meta(self, tmp_path):
        runs = run_figures([FIG], smoke=True, jobs=1, trace=True)
        meta = build_meta(fast=True, smoke=True, jobs=1)
        paths = write_runs(runs, tmp_path, meta)
        payload = json.loads(paths[0].read_text())
        pb = payload["meta"]["phase_breakdown"]
        assert list(pb) == sorted(pb)
        for block in pb.values():
            assert set(block) == {"count", "p50_ns", "p95_ns", "mean_ns",
                                  "total_ns"}
        # untraced runs carry no block
        runs = run_figures([FIG], smoke=True, jobs=1)
        payload = json.loads(write_runs(runs, tmp_path, meta)[0].read_text())
        assert "phase_breakdown" not in payload["meta"]

    def test_cli_bench_run_trace(self, tmp_path, capsys):
        assert cli_main(["bench", "run", FIG, "--smoke", "--trace",
                         "--no-cache", "--quiet",
                         "--out", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / f"BENCH_{FIG}.json").read_text())
        assert payload["meta"]["phase_breakdown"]


# ---------------------------------------------------------------------------
# Tracer-off overhead
# ---------------------------------------------------------------------------

class TestOverhead:
    def test_untraced_throughput_near_committed_baseline(self):
        """The disabled-tracer predicate must not slow the simulator.

        Compares sim_ns_per_wall_s of a fresh untraced fig7 smoke run
        against the committed baseline, which was regenerated on the
        same host as this instrumentation.  Wall-clock on a shared
        machine is noisy, so the band is generous (40% of baseline);
        a real always-on tracing bug costs integer factors, not tens of
        percent.  Skipped off the baseline host, where absolute
        throughput is meaningless to compare.
        """
        path = BASELINE / f"BENCH_{FIG}.json"
        if not path.exists():
            pytest.skip("no committed baseline")
        payload = json.loads(path.read_text())
        base = payload["meta"].get("sim_throughput", {}).get(
            "sim_ns_per_wall_s")
        if not base:
            pytest.skip("baseline is fully cached (no throughput)")
        if payload["meta"].get("host") != platform.node():
            pytest.skip("different host than baseline")
        run = run_figures([FIG], smoke=True, jobs=1)[0]
        tp = run.sim_counters["sim_ns"] / max(run.wall_s, 1e-9)
        assert tp > 0.4 * base, (
            f"untraced throughput {tp:.0f} sim-ns/s fell below 40% of "
            f"the committed baseline {base:.0f}")

    def test_metrics_off_throughput_near_committed_baseline(self):
        """`--no-metrics` walls must be unchanged: with the registry
        disabled the instrumentation is a single attribute check, so a
        metrics-off run must hold the same generous band against the
        committed (metrics-on) baseline as the untraced guard above.
        Same skips: wall-clock comparisons only mean something on the
        host that produced the baseline."""
        path = BASELINE / f"BENCH_{FIG}.json"
        if not path.exists():
            pytest.skip("no committed baseline")
        payload = json.loads(path.read_text())
        base = payload["meta"].get("sim_throughput", {}).get(
            "sim_ns_per_wall_s")
        if not base:
            pytest.skip("baseline is fully cached (no throughput)")
        if payload["meta"].get("host") != platform.node():
            pytest.skip("different host than baseline")
        run = run_figures([FIG], smoke=True, jobs=1, metrics=False)[0]
        assert run.metrics_snapshot is None
        tp = run.sim_counters["sim_ns"] / max(run.wall_s, 1e-9)
        assert tp > 0.4 * base, (
            f"metrics-off throughput {tp:.0f} sim-ns/s fell below 40% "
            f"of the committed baseline {base:.0f}")
