"""Tests for the N-node world fabric: Topology value objects, Fabric
construction/routing, and N-node world construction through stdworld
(docs/TOPOLOGY.md).
"""

from __future__ import annotations

import json

import pytest

from repro.core.stdworld import make_world, world_setup_key
from repro.errors import RdmaError, TwoChainsError
from repro.rdma.fabric import Fabric, Testbed, Topology
from repro.rdma.params import DEFAULT_LINK, LinkParams
from repro.workloads.chainkv import chain_topology  # registers "chainkv"


# ---------------------------------------------------------------------------
# Topology: validation and lookups
# ---------------------------------------------------------------------------

class TestTopology:
    def test_pair_is_the_papers_testbed(self):
        t = Topology.pair()
        assert t.nodes == 2
        assert t.roles == {"client": 0, "server": 1}
        assert t.link_for(0, 1) is DEFAULT_LINK
        assert t.link_for(1, 0) is DEFAULT_LINK

    def test_chain_roles(self):
        t = Topology.chain(4)
        assert t.nodes == 5
        assert t.role_id("client") == 0
        assert t.role_id("head") == 1
        assert t.role_id("tail") == 4

    def test_chain_of_one_replica_head_is_tail(self):
        t = Topology.chain(1)
        assert t.nodes == 2
        assert t.role_id("head") == t.role_id("tail") == 1

    def test_chain_needs_a_replica(self):
        with pytest.raises(RdmaError):
            Topology.chain(0)

    def test_needs_at_least_one_node(self):
        with pytest.raises(RdmaError):
            Topology(nodes=0)

    def test_role_must_name_a_real_node(self):
        with pytest.raises(RdmaError):
            Topology(nodes=2, roles={"oops": 2})

    def test_link_override_must_be_a_valid_directed_pair(self):
        slow = LinkParams(wire_prop_ns=500.0)
        with pytest.raises(RdmaError):
            Topology(nodes=2, links={(0, 0): slow})
        with pytest.raises(RdmaError):
            Topology(nodes=2, links={(0, 2): slow})

    def test_link_for_honors_per_direction_overrides(self):
        slow = LinkParams(wire_prop_ns=500.0)
        t = Topology(nodes=3, links={(0, 2): slow})
        assert t.link_for(0, 2) is slow
        assert t.link_for(2, 0) is DEFAULT_LINK   # other direction untouched
        assert t.link_for(0, 1) is DEFAULT_LINK

    def test_resolve_accepts_ids_and_roles(self):
        t = Topology.chain(3)
        assert t.resolve("tail") == 3
        assert t.resolve(2) == 2
        with pytest.raises(RdmaError, match="no role"):
            t.resolve("nope")

    def test_pairs_are_canonical(self):
        assert Topology(nodes=3).pairs() == [(0, 1), (0, 2), (1, 2)]

    def test_canonical_is_json_stable(self):
        slow = LinkParams(wire_prop_ns=500.0)
        a = Topology(nodes=3, roles={"b": 1, "a": 0}, links={(1, 2): slow})
        b = Topology(nodes=3, roles={"a": 0, "b": 1}, links={(1, 2): slow})
        assert json.dumps(a.canonical(), sort_keys=True) == \
            json.dumps(b.canonical(), sort_keys=True)
        doc = a.canonical()
        assert doc["nodes"] == 3
        assert doc["links"] == [[1, 2, {**doc["links"][0][2]}]]


# ---------------------------------------------------------------------------
# Fabric: N nodes, full QP mesh, per-pair links
# ---------------------------------------------------------------------------

class TestFabric:
    def test_mesh_shape(self):
        bed = Fabric.create(topology=Topology(nodes=4))
        assert len(bed.nodes) == 4 and len(bed.hcas) == 4
        # full mesh: one QP per directed pair
        assert len(bed.qps) == 4 * 3
        assert bed.peers_of(2) == [0, 1, 3]
        assert set(bed.qps_from(0)) == {1, 2, 3}
        for dst, qp in bed.qps_from(0).items():
            assert qp.src is bed.hca(0) and qp.dst is bed.hca(dst)

    def test_missing_qp_raises(self):
        bed = Fabric.create()
        with pytest.raises(RdmaError, match="no queue pair"):
            bed.qp(0, 5)

    def test_per_pair_link_rides_on_the_qp(self):
        slow = LinkParams(wire_prop_ns=9000.0)
        topo = Topology(nodes=3, links={(1, 2): slow})
        bed = Fabric.create(topology=topo)
        assert bed.qp(1, 2).link is slow
        assert bed.qp(2, 1).link is DEFAULT_LINK
        assert bed.qp(0, 1).link is DEFAULT_LINK

    def test_legacy_two_node_surface(self):
        bed = Testbed.create()
        assert bed.node0 is bed.nodes[0] and bed.node1 is bed.nodes[1]
        assert bed.hca0 is bed.hcas[0] and bed.hca1 is bed.hcas[1]
        assert bed.qp01 is bed.qps[(0, 1)] and bed.qp10 is bed.qps[(1, 0)]
        assert bed.qp_from(0) is bed.qp01 and bed.qp_from(1) is bed.qp10

    def test_default_topology_is_the_pair(self):
        bed = Fabric.create()
        assert bed.topology.nodes == 2
        assert bed.topology.role_id("server") == 1


# ---------------------------------------------------------------------------
# stdworld: N-node worlds and named packages
# ---------------------------------------------------------------------------

class TestNNodeWorld:
    def test_chain_world_has_one_runtime_per_node(self):
        w = make_world(topology=chain_topology(2), package="chainkv")
        assert len(w.runtimes) == 3
        assert w.runtime("client") is w.runtimes[0]
        assert w.runtime("tail") is w.runtimes[2]
        assert w.node("head") is w.bed.nodes[1]
        # every runtime holds an endpoint to every peer
        for i, rt in enumerate(w.runtimes):
            peers = {p for p in range(3) if p != i}
            assert {c for c in rt.worker.eps} == peers

    def test_unknown_package_raises_with_registry(self):
        with pytest.raises(TwoChainsError, match="chainkv"):
            make_world(package="not-a-package")

    def test_setup_key_varies_with_topology_and_package(self):
        base = world_setup_key()
        chain = world_setup_key(topology=chain_topology(2),
                                package="chainkv")
        chain3 = world_setup_key(topology=chain_topology(3),
                                 package="chainkv")
        assert len({base, chain, chain3}) == 3
        # equal-valued topologies key identically (value-object contract)
        assert world_setup_key(topology=chain_topology(2),
                               package="chainkv") == chain

    def test_default_world_unchanged(self):
        """The default world is still the paper's two-node testbed with
        the std package — the byte-identity anchor for every committed
        baseline."""
        w = make_world()
        assert w.topology.nodes == 2
        assert w.client is w.runtimes[0] and w.server is w.runtimes[1]
        assert w.build.jam("jam_ss_sum")
