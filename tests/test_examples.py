"""The examples are executable documentation: run each end to end.

Each example asserts its own correctness internally and finishes with
'OK'; these tests just drive them (with stdout captured by pytest)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"),
                                                  path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


def test_quickstart():
    run_example("quickstart.py")


def test_indirect_put_kvstore():
    run_example("indirect_put_kvstore.py")


def test_graph_analytics():
    pytest.importorskip("networkx")
    run_example("graph_analytics.py")


def test_function_overloading():
    run_example("function_overloading.py")


def test_security_modes():
    run_example("security_modes.py")
