"""Tests for the sim-time metrics registry and the SLO health gate.

Covers the HDR histogram's percentile accuracy against exact numpy
percentiles on several distributions, the gauge/counter semantics, the
snapshot algebra, both export surfaces (Prometheus text and Perfetto
counter tracks), the determinism contract of ``meta.metrics`` across
scheduling modes, and the direction-aware ``bench diff --health`` gate.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.bench.orchestrator import build_meta, diff_paths, run_figures
from repro.bench.report import render_diff
from repro.cli import main as cli_main
from repro.obs.metrics import (
    METRICS,
    MetricsRegistry,
    bucket_index,
    bucket_mid,
    bucket_upper,
    counter_track_events,
    merge_snapshots,
    metrics_block,
    parse_prometheus,
    split_key,
    to_prometheus,
)
from repro.obs.slo import (
    DEFAULT_HEALTH_THRESHOLD_PCT,
    HealthDiff,
    direction_for,
    floor_for,
    health_diff_payloads,
    health_indicators,
)


class TestBuckets:
    def test_value_lands_inside_its_bucket(self):
        for v in (1e-6, 0.5, 1.0, 3.7, 117.0, 1e9, 2.0**40):
            idx = bucket_index(v)
            assert bucket_mid(idx) == pytest.approx(v, rel=1 / 64)
            assert v <= bucket_upper(idx) * (1 + 1e-12)

    def test_nonpositive_values_share_the_zero_bucket(self):
        from repro.obs.metrics import ZERO_BUCKET

        assert bucket_index(0.0) == bucket_index(-5.0) == ZERO_BUCKET
        assert bucket_mid(ZERO_BUCKET) == 0.0
        assert bucket_upper(ZERO_BUCKET) == 0.0
        # the sentinel is unreachable from, and sorts below, any real value
        assert bucket_index(5e-324) > ZERO_BUCKET

    def test_subunit_values_get_real_buckets(self):
        # frexp exponents go negative below 1.0; those indices must not
        # collapse into the zero bucket.
        for v in (1e-6, 0.25, 0.4999, 0.75):
            idx = bucket_index(v)
            assert bucket_mid(idx) == pytest.approx(v, rel=1 / 64)

    def test_edges_are_monotonic(self):
        idxs = [bucket_index(v) for v in np.geomspace(1e-3, 1e6, 500)]
        assert idxs == sorted(idxs)
        uppers = [bucket_upper(i) for i in sorted(set(idxs))]
        assert uppers == sorted(uppers)


class TestHistogramPercentiles:
    """Satellite contract: HDR percentiles track exact numpy percentiles.

    The bucket midpoint is within 1/64 (~1.6%) of any sample, so every
    reported percentile must be within that relative error of numpy's
    ``interpolation='lower'`` answer (matching the rank-walk).
    """

    @pytest.mark.parametrize("name,values", [
        ("uniform", np.random.RandomState(7).uniform(10.0, 5000.0, 20_000)),
        ("exponential", np.random.RandomState(8).exponential(900.0, 20_000)
         + 1.0),
        ("bimodal", np.concatenate([
            np.random.RandomState(9).normal(120.0, 4.0, 15_000),
            np.random.RandomState(10).normal(9_000.0, 300.0, 5_000)])),
    ])
    def test_vs_numpy(self, name, values):
        reg = MetricsRegistry()
        reg.attach()
        for v in values:
            reg.observe("h", float(v))
        h = reg.hists["h"]
        assert h.count == len(values)
        assert h.sum == pytest.approx(values.sum())
        for q in (50.0, 90.0, 99.0, 99.9):
            exact = float(np.percentile(values, q, method="lower"))
            assert h.percentile(q) == pytest.approx(exact, rel=1 / 60), \
                f"{name} p{q}"

    def test_single_sample_reports_exactly(self):
        reg = MetricsRegistry()
        reg.attach()
        reg.observe("h", 117.25)
        h = reg.hists["h"]
        for q in (50.0, 99.0, 99.9):
            assert h.percentile(q) == 117.25
        assert h.vmin == h.vmax == 117.25

    def test_empty_histogram_has_no_percentiles(self):
        reg = MetricsRegistry()
        reg.attach()
        reg.observe("other", 1.0)
        from repro.obs.metrics import Histogram

        h = Histogram()
        assert h.percentile(50.0) is None
        snap = reg.snapshot()
        assert "h" not in snap["hists"]

    def test_percentiles_clamp_into_min_max(self):
        reg = MetricsRegistry()
        reg.attach()
        reg.observe("h", 100.0)
        reg.observe("h", 100.1)
        p999 = reg.hists["h"].percentile(99.9)
        assert 100.0 <= p999 <= 100.1


class TestGaugeSemantics:
    def test_time_weighted_mean(self):
        reg = MetricsRegistry()
        reg.attach()
        # value 2 held for 10 ns, value 6 held for 30 ns, final sample
        # carries no weight.
        reg.sample("g", 0.0, 2.0)
        reg.sample("g", 10.0, 6.0)
        reg.sample("g", 40.0, 100.0)
        g = reg.gauges["g"]
        assert g.mean() == pytest.approx((2.0 * 10 + 6.0 * 30) / 40.0)
        assert g.value == 100.0 and g.vmin == 2.0 and g.vmax == 100.0

    def test_single_sample_mean_is_the_value(self):
        reg = MetricsRegistry()
        reg.attach()
        reg.sample("g", 5.0, 42.0)
        assert reg.gauges["g"].mean() == 42.0

    def test_clock_restart_does_not_corrupt_integral(self):
        # sim clocks restart across worlds within one sweep point; a
        # negative dt must contribute nothing.
        reg = MetricsRegistry()
        reg.attach()
        reg.sample("g", 100.0, 1.0)
        reg.sample("g", 110.0, 1.0)
        reg.sample("g", 5.0, 1.0)  # new world, clock rewound
        reg.sample("g", 15.0, 1.0)
        g = reg.gauges["g"]
        assert g.integral == pytest.approx(20.0)  # 10 + 0 + 10


class TestRegistryLifecycle:
    def test_disabled_registry_is_default(self):
        assert METRICS.enabled is False

    def test_capture_attaches_and_detaches(self):
        reg = MetricsRegistry()
        with reg.capture() as r:
            assert r.enabled
            r.count("c_total", 1.0)
        assert not reg.enabled
        assert reg.counters["c_total"].value == 1

    def test_attach_clears_by_default(self):
        reg = MetricsRegistry()
        reg.attach()
        reg.count("c_total", 1.0)
        reg.attach()
        assert len(reg) == 0
        reg.count("c_total", 1.0)
        reg.attach(clear=False)
        assert reg.counters["c_total"].value == 1

    def test_stable_only_snapshot_excludes_unstable(self):
        reg = MetricsRegistry()
        reg.attach()
        reg.count("a_total", 1.0, stable=True)
        reg.count("b_total", 1.0, stable=False)
        reg.sample("g", 1.0, 2.0, stable=False)
        reg.observe("h", 3.0, stable=False)
        full = reg.snapshot()
        stable = reg.snapshot(stable_only=True)
        assert set(full["counters"]) == {"a_total", "b_total"}
        assert set(stable["counters"]) == {"a_total"}
        assert not stable["gauges"] and not stable["hists"]


class TestSnapshotAlgebra:
    def _snap(self, reg):
        return reg.snapshot()

    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 3), (b, 4)):
            reg.attach()
            reg.count("c_total", 1.0, n)
            reg.observe("h", 100.0)
            reg.observe("h", 200.0 if reg is b else 100.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["c_total"][0] == 7
        h = merged["hists"]["h"]
        assert h["count"] == 4 and h["min"] == 100.0 and h["max"] == 200.0
        assert sum(h["buckets"].values()) == 4

    def test_merge_gauges_keeps_last_and_combines_extremes(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.attach()
        a.sample("g", 0.0, 5.0)
        a.sample("g", 10.0, 1.0)
        b.attach()
        b.sample("g", 0.0, 9.0)
        b.sample("g", 20.0, 2.0)
        m = merge_snapshots([a.snapshot(), b.snapshot()])["gauges"]["g"]
        last, vmin, vmax, integral, span, n, stable = m
        assert last == 2.0 and vmin == 1.0 and vmax == 9.0
        assert integral == pytest.approx(5.0 * 10 + 9.0 * 20)
        assert span == 30.0 and n == 4 and stable

    def test_merge_tolerates_empty_snapshots(self):
        reg = MetricsRegistry()
        reg.attach()
        reg.count("c_total", 1.0)
        merged = merge_snapshots([{}, reg.snapshot(), None])
        assert merged["counters"]["c_total"][0] == 1

    def test_metrics_block_summarizes(self):
        reg = MetricsRegistry()
        reg.attach()
        reg.count("c_total|node=0", 1.0, 5)
        reg.sample("g|node=0", 0.0, 1.0)
        reg.sample("g|node=0", 10.0, 3.0)
        for v in (100.0, 200.0, 300.0):
            reg.observe("h|node=0", v)
        block = metrics_block(reg.snapshot())
        assert block["counters"]["c_total|node=0"] == 5
        g = block["gauges"]["g|node=0"]
        assert g["last"] == 3.0 and g["mean"] == 1.0 and g["samples"] == 2
        h = block["histograms"]["h|node=0"]
        assert h["count"] == 3 and h["min"] == 100.0 and h["max"] == 300.0
        assert 100.0 <= h["p50"] <= 300.0 and h["p999"] == 300.0
        # the block is JSON-clean
        json.dumps(block)


class TestPrometheus:
    def _sample_registry(self):
        reg = MetricsRegistry()
        reg.attach()
        reg.count("tc_x_total|node=0", 1.0, 3)
        reg.count("tc_x_total|node=1", 1.0, 4)
        reg.sample("tc_g|node=0|level=l1d", 2.0, 0.75)
        for v in (10.0, 20.0, 30.0, 40.0):
            reg.observe("tc_h_ns|node=0", v)
        return reg

    def test_round_trip(self):
        text = to_prometheus(self._sample_registry().snapshot())
        fams = parse_prometheus(text)
        assert fams["tc_x_total"]["type"] == "counter"
        assert {tuple(sorted(lbl.items())) for _, lbl, _ in
                fams["tc_x_total"]["samples"]} == {
                    (("node", "0"),), (("node", "1"),)}
        assert fams["tc_g"]["type"] == "gauge"
        ((_, labels, value),) = fams["tc_g"]["samples"]
        assert labels == {"node": "0", "level": "l1d"} and value == 0.75
        hist = fams["tc_h_ns"]
        assert hist["type"] == "histogram"
        buckets = [(lbl, v) for name, lbl, v in hist["samples"]
                   if name == "tc_h_ns_count"]
        assert buckets == [({"node": "0"}, 4.0)]
        # cumulative buckets end at +Inf == count
        infs = [v for name, lbl, v in hist["samples"]
                if name == "tc_h_ns_bucket" and lbl.get("le") == "+Inf"]
        assert infs == [4.0]
        cums = [v for name, lbl, v in hist["samples"]
                if name == "tc_h_ns_bucket"]
        assert cums == sorted(cums)

    def test_malformed_lines_raise(self):
        with pytest.raises(ValueError):
            parse_prometheus("tc_x_total{node=0} 3\n")  # unquoted label
        with pytest.raises(ValueError):
            parse_prometheus("loneword\n")
        with pytest.raises(ValueError):
            parse_prometheus("tc_x_total nope\n")

    def test_split_key(self):
        assert split_key("n|a=1|b=x") == ("n", {"a": "1", "b": "x"})
        assert split_key("n") == ("n", {})


class TestCounterTracks:
    def test_node_label_routes_to_node_pid(self):
        reg = MetricsRegistry()
        reg.attach()
        reg.count("tc_x_total|node=1", 5.0)
        reg.count("tc_x_total|node=1", 7.0)
        reg.sample("tc_free|kind=a", 3.0, 0.5)
        events = counter_track_events(reg)
        by_name = {}
        for ph, pid, tid, name, ts, dur, args in events:
            assert ph == "C" and tid == 0 and dur == 0.0
            by_name.setdefault(name, []).append((pid, ts, args["value"]))
        assert by_name["tc_x_total"] == [(2, 5.0, 1), (2, 7.0, 2)]
        assert by_name["tc_free{kind=a}"] == [(0, 3.0, 0.5)]

    def test_histograms_do_not_emit_tracks(self):
        reg = MetricsRegistry()
        reg.attach()
        reg.observe("tc_h_ns|node=0", 1.0)
        assert counter_track_events(reg) == []


FIGURE = "fig7"


def _figure_metrics(jobs, fork):
    (run,) = run_figures([FIGURE], smoke=True, jobs=jobs, store=None,
                         fork=fork)
    snap = run.metrics_snapshot
    assert snap is not None
    return metrics_block(snap)


class TestMetaMetricsDeterminism:
    """Satellite contract: ``meta.metrics`` is identical across ``--jobs``
    settings and fork vs ``--no-fork`` world reuse."""

    def test_jobs_and_fork_invariance(self):
        baseline = _figure_metrics(jobs=1, fork=True)
        assert baseline["counters"] and baseline["histograms"]
        assert _figure_metrics(jobs=2, fork=True) == baseline
        assert _figure_metrics(jobs=1, fork=False) == baseline

    def test_no_metrics_run_has_no_snapshot(self):
        (run,) = run_figures([FIGURE], smoke=True, jobs=1, store=None,
                             metrics=False)
        assert run.metrics_snapshot is None
        meta = build_meta(fast=True, smoke=True, jobs=1, metrics=False)
        assert meta["metrics_enabled"] is False


def _payload(figure="figchain", *, stall=1000.0, sends=100.0, p99=250.0,
             hit=0.95, bails=0, dispatches=200):
    return {
        "figure": figure,
        "meta": {
            "metrics": {
                "counters": {
                    f"tc_fc_stall_ns_total|node={n}": stall for n in (0, 1)
                } | {
                    f"tc_am_sends_total|node={n}": sends for n in (0, 1)
                },
                "gauges": {
                    "tc_cache_hit_rate|node=0|level=l1d":
                        {"last": hit, "min": hit, "max": hit, "mean": hit,
                         "samples": 10},
                },
                "histograms": {
                    "tc_mb_dispatch_ns|node=1":
                        {"count": 100, "sum": 9999.0, "min": 50.0,
                         "max": 400.0, "p50": 120.0, "p90": 180.0,
                         "p99": p99, "p999": 390.0},
                },
            },
            "sim_throughput": {"trace_dispatches": dispatches,
                               "guard_bails": bails},
        },
    }


class TestHealthGate:
    def test_indicators_extracted(self):
        ind = health_indicators(_payload())
        assert ind["fc_stall_ns_per_send"] == pytest.approx(10.0)
        assert ind["mb_dispatch_p99_ns"] == 250.0
        assert ind["cache_hit_rate_l1d"] == 0.95
        assert ind["guard_bail_rate"] == 0.0

    def test_no_metrics_payload_is_a_note(self):
        diffs, notes = health_diff_payloads({"figure": "fig5", "meta": {}},
                                            {"figure": "fig5", "meta": {}})
        assert diffs == [] and "no health indicators" in notes[0]

    def test_injected_fc_stall_regression_is_flagged(self):
        base = _payload()
        bad = _payload(stall=10_000.0)  # 10x the stall time per send
        diffs, _notes = health_diff_payloads(base, bad)
        stall = next(d for d in diffs if d.series == "fc_stall_ns_per_send")
        assert stall.regression and stall.mean_pct == pytest.approx(900.0)
        # everything else is unchanged, hence not regressed
        assert all(not d.regression for d in diffs
                   if d.series != "fc_stall_ns_per_send")
        # and the reverse direction is an improvement, not a regression
        diffs, _ = health_diff_payloads(bad, base)
        assert not any(d.regression for d in diffs)

    def test_hit_rate_drop_is_a_regression(self):
        diffs, _ = health_diff_payloads(_payload(hit=0.95),
                                        _payload(hit=0.70))
        hr = next(d for d in diffs if d.series == "cache_hit_rate_l1d")
        assert hr.direction == "higher" and hr.regression

    def test_tiny_absolute_deltas_are_noise(self):
        # doubles relatively, but moves far below the absolute floor
        diffs, _ = health_diff_payloads(_payload(bails=0, stall=0.02),
                                        _payload(bails=0, stall=0.04))
        stall = next(d for d in diffs if d.series == "fc_stall_ns_per_send")
        assert stall.mean_pct == pytest.approx(100.0)
        assert not stall.regression

    def test_zero_baseline_clamps_display_pct(self):
        diffs, _ = health_diff_payloads(_payload(bails=0),
                                        _payload(bails=100))
        gb = next(d for d in diffs if d.series == "guard_bail_rate")
        assert gb.regression and gb.mean_pct == 999.99

    def test_one_sided_indicator_is_a_note(self):
        lopsided = _payload()
        del lopsided["meta"]["metrics"]["gauges"][
            "tc_cache_hit_rate|node=0|level=l1d"]
        diffs, notes = health_diff_payloads(_payload(), lopsided)
        assert any("cache_hit_rate_l1d only in base" in n for n in notes)
        assert not any(d.series == "cache_hit_rate_l1d" for d in diffs)

    def test_direction_and_floor_defaults(self):
        assert direction_for("cache_hit_rate_llc") == "higher"
        assert direction_for("unknown_metric") == "lower"
        assert floor_for("unknown_metric") == 0.0

    def test_renders_through_report(self):
        diffs, notes = health_diff_payloads(_payload(),
                                            _payload(stall=10_000.0))
        text = render_diff(diffs, notes,
                           threshold_pct=DEFAULT_HEALTH_THRESHOLD_PCT)
        assert "fc_stall_ns_per_send" in text
        assert isinstance(diffs[0], HealthDiff)


class TestHealthDiffCli:
    def _write(self, tmp_path, name, payload):
        d = tmp_path / name
        d.mkdir()
        (d / "BENCH_figchain.json").write_text(json.dumps(payload))
        return d

    def test_cli_health_gate_fails_on_regression(self, tmp_path, capsys):
        base = self._write(tmp_path, "base", _payload())
        bad = self._write(tmp_path, "bad", _payload(stall=10_000.0))
        assert cli_main(["bench", "diff", str(base), str(bad),
                         "--health"]) == 1
        out = capsys.readouterr().out
        assert "fc_stall_ns_per_send" in out
        assert cli_main(["bench", "diff", str(base), str(base),
                         "--health"]) == 0
        capsys.readouterr()

    def test_wall_clock_and_health_are_exclusive(self, tmp_path, capsys):
        base = self._write(tmp_path, "a", _payload())
        assert cli_main(["bench", "diff", str(base), str(base),
                         "--health", "--wall-clock"]) == 2
        capsys.readouterr()

    def test_diff_paths_health_route(self, tmp_path):
        base = self._write(tmp_path, "x", _payload())
        bad = self._write(tmp_path, "y", _payload(p99=1000.0))
        diffs, _notes = diff_paths(base, bad, health=True)
        assert any(d.series == "mb_dispatch_p99_ns" and d.regression
                   for d in diffs)


class TestMetricsCli:
    def test_metrics_export_prometheus(self, capsys):
        assert cli_main(["metrics", "export", "--figure", "fig7"]) == 0
        text = capsys.readouterr().out
        fams = parse_prometheus(text)
        assert len(fams) >= 10
        assert "tc_am_sends_total" in fams
        assert any(f["type"] == "histogram" for f in fams.values())

    def test_metrics_export_json(self, capsys, tmp_path):
        out = tmp_path / "m.json"
        assert cli_main(["metrics", "export", "--figure", "fig7",
                         "--json", "-o", str(out)]) == 0
        capsys.readouterr()
        block = json.loads(out.read_text())
        assert block["counters"] and block["histograms"]

    def test_metrics_export_unknown_figure(self, capsys):
        assert cli_main(["metrics", "export", "--figure", "nope"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_trace_export_counts_counter_tracks(self, capsys, tmp_path):
        out = tmp_path / "t.json"
        assert cli_main(["trace", "export", "--figure", "fig7",
                         "-o", str(out)]) == 0
        assert "counter tracks" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        cs = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len({(e["pid"], e["name"]) for e in cs}) >= 3
        for e in cs:
            assert "value" in e["args"]
            assert "dur" not in e and "s" not in e


class TestNaNRounding:
    def test_round_handles_hostile_floats(self):
        from repro.obs.metrics import _round

        assert _round(math.inf) is None
        assert _round(math.nan) is None
        assert _round(2.0) == 2
        assert _round(2.5004) == 2.5
        assert _round(3) == 3
