"""Tests for the cache hierarchy: miss paths, stashing, prefetch, DMA."""

import pytest

from repro.machine import HierarchyConfig, MemoryHierarchy
from repro.machine.prefetcher import StridePrefetcher


def make(stash=True, prefetch=True, **kw):
    return MemoryHierarchy(HierarchyConfig(
        stash_enabled=stash, prefetch_enabled=prefetch, **kw))


class TestDemandPath:
    def test_cold_miss_pays_dram_then_l1_hit(self):
        h = make(prefetch=False)
        cold = h.access(0.0, core=0, addr=0x10000, size=8, kind="read")
        warm = h.access(100.0, core=0, addr=0x10000, size=8, kind="read")
        assert cold >= h.cfg.dram_base_latency_ns
        assert warm == h.cfg.l1_lat

    def test_l2_hit_after_l1_eviction(self):
        h = make(prefetch=False)
        base = 0x100000
        h.access(0.0, 0, base, 8, "read")
        # Thrash L1 (64KB, 4-way, 256 sets): 5 more lines in the same set.
        l1_span = 64 * 1024
        for i in range(1, 6):
            h.access(0.0, 0, base + i * l1_span, 8, "read")
        lat = h.access(0.0, 0, base, 8, "read")
        assert lat == h.cfg.l2_lat

    def test_ifetch_uses_l1i_not_l1d(self):
        h = make(prefetch=False)
        h.access(0.0, 0, 0x20000, 8, "ifetch")
        # L1I now holds the line; L1D does not.
        assert h.l1i[0].probe(0x20000 >> 6)
        assert not h.l1d[0].probe(0x20000 >> 6)

    def test_multi_line_access_accumulates(self):
        h = make(prefetch=False)
        one = h.access(0.0, 0, 0x30000, 8, "read")
        h.flush_all()
        two = h.access(0.0, 0, 0x40000, 128, "read")
        assert two > one

    def test_write_allocates_dirty_and_writeback_charges_dram(self):
        h = make(prefetch=False)
        h.access(0.0, 0, 0x50000, 8, "write")
        assert h.l1d[0].probe(0x50000 >> 6)
        moved_before = h.dram.lines_moved
        h.flush_all()  # drops dirty silently; writebacks happen on eviction
        assert h.dram.lines_moved == moved_before

    def test_core_isolation(self):
        h = make(prefetch=False)
        h.access(0.0, 0, 0x60000, 8, "read")
        # Other core in the same cluster: misses private L1/L2, hits L3.
        lat = h.access(0.0, 1, 0x60000, 8, "read")
        assert lat == pytest.approx(h.cfg.l3_lat)
        # Core in the other cluster: hits only in LLC.
        lat2 = h.access(0.0, 2, 0x60000, 8, "read")
        assert lat2 == pytest.approx(h.cfg.llc_lat)


class TestPrefetcher:
    def test_sequential_stream_trains_and_masks_latency(self):
        h = make(prefetch=True)
        base = 0x200000
        lats = [h.access(i * 100.0, 0, base + i * 64, 8, "read")
                for i in range(16)]
        assert lats[0] >= h.cfg.dram_base_latency_ns
        # Once trained, misses are covered at prefetched latency.
        assert lats[-1] == pytest.approx(h.cfg.prefetched_line_lat, abs=5.0)

    def test_disabled_prefetcher_never_covers(self):
        h = make(prefetch=False)
        base = 0x300000
        lats = [h.access(0.0, 0, base + i * 64, 8, "read") for i in range(16)]
        assert min(lats) >= h.cfg.dram_base_latency_ns

    def test_random_pattern_does_not_train(self):
        pf = StridePrefetcher(enabled=True)
        covered = [pf.observe_miss(x) for x in (5, 900, 17, 40000, 3, 777)]
        assert not any(covered)

    def test_stride_2_trains(self):
        pf = StridePrefetcher(enabled=True)
        results = [pf.observe_miss(100 + 2 * i) for i in range(6)]
        assert results[-1] is True


class TestDma:
    def test_stash_places_lines_in_llc(self):
        h = make(stash=True)
        h.dma_write(0.0, 0x400000, 256, owner_core=0)
        assert all(h.llc.probe((0x400000 >> 6) + i) for i in range(4))
        assert h.dma_stash_lines == 4
        assert h.dma_dram_lines == 0

    def test_nonstash_goes_to_dram_and_invalidates_llc(self):
        h = make(stash=False)
        # Warm the LLC with the line first.
        h.access(0.0, 0, 0x400000, 8, "read")
        moved = h.dram.lines_moved
        h.dma_write(0.0, 0x400000, 64, owner_core=0)
        assert not h.llc.probe(0x400000 >> 6)
        assert h.dram.lines_moved == moved + 1

    def test_stashed_line_is_llc_hit_for_consumer(self):
        h = make(stash=True, prefetch=False)
        h.dma_write(0.0, 0x500000, 64, owner_core=0)
        lat = h.access(0.0, 0, 0x500000, 8, "read")
        assert lat == pytest.approx(h.cfg.llc_lat)

    def test_nonstash_line_is_dram_access_for_consumer(self):
        h = make(stash=False, prefetch=False)
        h.dma_write(0.0, 0x500000, 64, owner_core=0)
        lat = h.access(100.0, 0, 0x500000, 8, "read")
        assert lat >= h.cfg.dram_base_latency_ns

    def test_dma_invalidates_stale_cpu_copies(self):
        h = make(stash=True)
        h.access(0.0, 0, 0x600000, 8, "read")  # CPU caches the line
        h.dma_write(0.0, 0x600000, 64, owner_core=0)
        assert not h.l1d[0].probe(0x600000 >> 6)
        assert not h.l2[0].probe(0x600000 >> 6)

    def test_dma_read_prefers_llc(self):
        h = make(stash=True)
        h.dma_write(0.0, 0x700000, 128, owner_core=0)
        moved = h.dram.lines_moved
        h.dma_read(0.0, 0x700000, 128, owner_core=0)
        assert h.dram.lines_moved == moved  # served from LLC

    def test_dma_read_from_dram_charges_bandwidth(self):
        h = make(stash=False)
        moved = h.dram.lines_moved
        h.dma_read(0.0, 0x800000, 128)
        assert h.dram.lines_moved == moved + 2


class TestStreamCost:
    def test_stream_cheaper_than_demand_for_resident_data(self):
        h = make(prefetch=False)
        addr, size = 0x900000, 4096
        h.stream_cost(0.0, 0, addr, size, "read")  # warm
        warm_stream = h.stream_cost(0.0, 0, addr, size, "read")
        assert warm_stream < 4096 / 64 * h.cfg.l1_lat

    def test_cpu_bound_when_ops_dominate(self):
        h = make()
        addr, size = 0xA00000, 1024
        h.stream_cost(0.0, 0, addr, size, "read")  # warm
        t = h.stream_cost(0.0, 0, addr, size, "read", ops_per_byte=2.0)
        assert t == pytest.approx(2.0 * size / 2.6)

    def test_zero_size_free(self):
        h = make()
        assert h.stream_cost(0.0, 0, 0x100, 0, "read") == 0.0
