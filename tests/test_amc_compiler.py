"""End-to-end AMC compiler tests: compile, load raw, execute on the VM."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amc import compile_amc, parse, tokenize
from repro.errors import CompileError
from repro.isa import Vm
from repro.machine import PROT_RW
from tests.util import fresh_node, native_got, raw_load


def run_amc(source, args=(), entry="f", node=None, got_extra=None):
    _, node = (None, node) if node is not None else fresh_node()
    result = compile_amc(source)
    vm = Vm(node)
    got = native_got(vm.intrinsics,
                     [e for e in result.module.externs
                      if vm.intrinsics.index_of(e) is not None])
    if got_extra:
        got.update(got_extra)
    syms = raw_load(node, result.module, got)
    res = vm.call(syms[entry], args)
    return res, node, syms, vm


class TestLexer:
    def test_token_kinds(self):
        toks = tokenize('long x = 0x1F; // c\n"s" \'a\'')
        kinds = [t.kind for t in toks]
        assert kinds == ["kw", "ident", "op", "int", "op", "string", "char",
                         "eof"]
        assert toks[3].value == 31

    def test_block_comment_and_escapes(self):
        toks = tokenize('/* multi\nline */ "a\\n" \'\\t\'')
        assert toks[0].value == b"a\n"
        assert toks[1].value == 9

    def test_bad_char_reports_position(self):
        with pytest.raises(CompileError) as info:
            tokenize("long x;\n  @")
        assert info.value.line == 2

    def test_unterminated_string(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize('"abc')


class TestParser:
    def test_function_and_globals(self):
        prog = parse("""
            long counter = 3;
            extern long tc_hash64(long x);
            long f(long a) { return a; }
        """)
        assert len(prog.items) == 3
        assert prog.functions()[0].name == "f"

    def test_missing_semicolon(self):
        with pytest.raises(CompileError):
            parse("long f() { return 1 }")

    def test_too_many_params(self):
        params = ", ".join(f"long p{i}" for i in range(9))
        with pytest.raises(CompileError, match="8 parameters"):
            parse(f"long f({params}) {{ return 0; }}")

    def test_invalid_assign_target(self):
        with pytest.raises(CompileError, match="assignment target"):
            parse("long f() { 1 = 2; }")


class TestExecution:
    def test_return_arithmetic(self):
        res, *_ = run_amc("long f(long a, long b) { return (a + b) * 3 - 1; }",
                          args=(2, 4))
        assert res.ret == 17

    def test_precedence_and_parentheses(self):
        res, *_ = run_amc("long f() { return 2 + 3 * 4; }")
        assert res.ret == 14
        res, *_ = run_amc("long f() { return (2 + 3) * 4; }")
        assert res.ret == 20

    def test_locals_and_assignment(self):
        res, *_ = run_amc("""
            long f(long n) {
                long a = 1;
                long b;
                b = a + n;
                a = b * b;
                return a;
            }
        """, args=(3,))
        assert res.ret == 16

    def test_while_loop_factorial(self):
        res, *_ = run_amc("""
            long f(long n) {
                long acc = 1;
                while (n > 1) { acc = acc * n; n = n - 1; }
                return acc;
            }
        """, args=(6,))
        assert res.ret == 720

    def test_for_loop_sum(self):
        res, *_ = run_amc("""
            long f(long n) {
                long s = 0;
                for (long i = 1; i <= n; i = i + 1) { s = s + i; }
                return s;
            }
        """, args=(100,))
        assert res.ret == 5050

    def test_two_for_loops_reusing_name(self):
        res, *_ = run_amc("""
            long f() {
                long s = 0;
                for (long i = 0; i < 3; i = i + 1) { s = s + 1; }
                for (long i = 0; i < 4; i = i + 1) { s = s + 10; }
                return s;
            }
        """)
        assert res.ret == 43

    def test_if_else_chains(self):
        src = """
            long f(long x) {
                if (x < 0) { return -1; }
                else if (x == 0) { return 0; }
                else { return 1; }
            }
        """
        assert run_amc(src, args=(-5,))[0].ret == -1
        assert run_amc(src, args=(0,))[0].ret == 0
        assert run_amc(src, args=(9,))[0].ret == 1

    def test_break_continue(self):
        res, *_ = run_amc("""
            long f() {
                long s = 0;
                for (long i = 0; i < 10; i = i + 1) {
                    if (i == 3) { continue; }
                    if (i == 6) { break; }
                    s = s + i;
                }
                return s;
            }
        """)
        assert res.ret == 0 + 1 + 2 + 4 + 5

    def test_short_circuit_and_or(self):
        # `(x != 0) && (10 / x > 1)`: must not divide when x == 0.
        src = """
            long f(long x) {
                if (x != 0 && 10 / x > 1) { return 1; }
                return 0;
            }
        """
        assert run_amc(src, args=(0,))[0].ret == 0
        assert run_amc(src, args=(4,))[0].ret == 1
        src_or = "long f(long x) { return x == 1 || x == 2; }"
        assert run_amc(src_or, args=(2,))[0].ret == 1
        assert run_amc(src_or, args=(5,))[0].ret == 0

    def test_unary_ops(self):
        assert run_amc("long f(long x) { return -x; }", args=(7,))[0].ret == -7
        assert run_amc("long f(long x) { return !x; }", args=(7,))[0].ret == 0
        assert run_amc("long f(long x) { return ~x; }", args=(0,))[0].ret == -1

    def test_bitwise_and_shifts(self):
        res, *_ = run_amc(
            "long f(long a, long b) { return ((a & b) | 1) ^ (a << 2); }",
            args=(6, 3))
        assert res.ret == ((6 & 3) | 1) ^ (6 << 2)

    def test_local_function_calls(self):
        res, *_ = run_amc("""
            long square(long x) { return x * x; }
            long f(long n) { return square(n) + square(n + 1); }
        """, args=(3,))
        assert res.ret == 9 + 16

    def test_recursion(self):
        res, *_ = run_amc("""
            long fib(long n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            long f(long n) { return fib(n); }
        """, args=(12,))
        assert res.ret == 144

    def test_temps_survive_calls(self):
        # `n + g(n)`: n is live in a temp across the call.
        res, *_ = run_amc("""
            long g(long x) { return x * 10; }
            long f(long n) { return n + g(n) + n; }
        """, args=(2,))
        assert res.ret == 2 + 20 + 2


class TestPointersAndGlobals:
    def test_pointer_deref_and_store(self):
        _, node = fresh_node()
        buf = node.map_region(64, PROT_RW)
        node.mem.write_i64(buf, 5)
        res, node, *_ = run_amc("""
            long f(long* p) {
                *p = *p + 1;
                return *p;
            }
        """, args=(buf,), node=node)
        assert res.ret == 6
        assert node.mem.read_i64(buf) == 6

    def test_indexing_with_scaling(self):
        _, node = fresh_node()
        buf = node.map_region(128, PROT_RW)
        for i in range(8):
            node.mem.write_i64(buf + 8 * i, 10 * i)
        res, *_ = run_amc("""
            long f(long* p, long n) {
                long s = 0;
                for (long i = 0; i < n; i = i + 1) { s = s + p[i]; }
                return s;
            }
        """, args=(buf, 8), node=node)
        assert res.ret == sum(10 * i for i in range(8))

    def test_char_pointer_byte_access(self):
        _, node = fresh_node()
        buf = node.map_region(64, PROT_RW)
        node.mem.write(buf, b"abc")
        res, node, *_ = run_amc("""
            long f(char* s) {
                s[1] = 'B';
                return s[0] + s[2];
            }
        """, args=(buf,), node=node)
        assert res.ret == ord("a") + ord("c")
        assert node.mem.read(buf, 3) == b"aBc"

    def test_pointer_arithmetic_scaled(self):
        _, node = fresh_node()
        buf = node.map_region(64, PROT_RW)
        node.mem.write_i64(buf + 16, 99)
        res, *_ = run_amc("long f(long* p) { return *(p + 2); }",
                          args=(buf,), node=node)
        assert res.ret == 99

    def test_global_counter(self):
        res, *_ = run_amc("""
            long counter = 10;
            long f() {
                counter = counter + 5;
                return counter;
            }
        """)
        assert res.ret == 15

    def test_global_array_bss(self):
        res, *_ = run_amc("""
            long table[4];
            long f() {
                for (long i = 0; i < 4; i = i + 1) { table[i] = i * i; }
                return table[3];
            }
        """)
        assert res.ret == 9

    def test_address_of_local(self):
        res, *_ = run_amc("""
            long bump(long* p) { *p = *p + 1; return 0; }
            long f() {
                long x = 41;
                bump(&x);
                return x;
            }
        """)
        assert res.ret == 42

    def test_string_literal_and_puts(self):
        res, _, _, vm = run_amc("""
            extern long tc_puts(char* s);
            long f() { return tc_puts("hello from amc"); }
        """)
        assert vm.intrinsics.stdout == ["hello from amc"]
        assert res.ret == len("hello from amc")

    def test_extern_global_via_got(self):
        _, node = fresh_node()
        cell = node.map_region(64, PROT_RW)
        node.mem.write_i64(cell, 123)
        res, node, *_ = run_amc("""
            extern long remote_counter;
            long f() {
                remote_counter = remote_counter * 2;
                return remote_counter;
            }
        """, node=node, got_extra={"remote_counter": cell})
        assert res.ret == 246
        assert node.mem.read_i64(cell) == 246

    def test_extern_array_via_got(self):
        _, node = fresh_node()
        arr = node.map_region(64, PROT_RW)
        res, node, *_ = run_amc("""
            extern long results[];
            long f(long v) { results[2] = v; return results[2]; }
        """, args=(55,), node=node, got_extra={"results": arr})
        assert node.mem.read_i64(arr + 16) == 55

    def test_intrinsic_call_from_amc(self):
        _, node = fresh_node()
        buf = node.map_region(128, PROT_RW)
        for i in range(4):
            node.mem.write_i64(buf + 8 * i, i + 1)
        res, *_ = run_amc("""
            extern long tc_sum64(long* p, long n);
            long f(long* p) { return tc_sum64(p, 4); }
        """, args=(buf,), node=node)
        assert res.ret == 10


class TestErrors:
    def test_undefined_variable(self):
        with pytest.raises(CompileError, match="undefined identifier"):
            run_amc("long f() { return ghost; }")

    def test_undefined_function(self):
        with pytest.raises(CompileError, match="undefined function"):
            run_amc("long f() { return g(); }")

    def test_arity_mismatch(self):
        with pytest.raises(CompileError, match="expects 2"):
            run_amc("""
                long g(long a, long b) { return a; }
                long f() { return g(1); }
            """)

    def test_deref_non_pointer(self):
        with pytest.raises(CompileError, match="non-pointer"):
            run_amc("long f(long x) { return *x; }")

    def test_index_non_pointer(self):
        with pytest.raises(CompileError, match="indexing a non-pointer"):
            run_amc("long f(long x) { return x[0]; }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break outside"):
            run_amc("long f() { break; return 0; }")

    def test_add_two_pointers(self):
        with pytest.raises(CompileError, match="add two pointers"):
            run_amc("long f(long* a, long* b) { return a + b; }")


class TestPropertyArithmetic:
    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(-10**9, 10**9), b=st.integers(-10**9, 10**9),
           c=st.integers(1, 1000))
    def test_property_expression_matches_python(self, a, b, c):
        src = "long f(long a, long b, long c) { return (a + b) * 2 - a / c + (b % c); }"
        res, *_ = run_amc(src, args=(a, b, c))
        expected = (a + b) * 2 - c_div(a, c) + c_mod(b, c)
        assert res.ret == expected


def c_div(x, m):
    """C-style division (truncate toward zero)."""
    q = abs(x) // abs(m)
    return q if (x < 0) == (m < 0) else -q


def c_mod(x, m):
    """C-style remainder (sign follows dividend)."""
    r = abs(x) % abs(m)
    return -r if x < 0 else r
