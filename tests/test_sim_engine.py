"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import At, Delay, Engine, RngPool


def test_call_at_ordering_is_time_then_fifo():
    eng = Engine()
    seen = []
    eng.call_at(5.0, seen.append, "b")
    eng.call_at(1.0, seen.append, "a")
    eng.call_at(5.0, seen.append, "c")  # same time: insertion order
    eng.run()
    assert seen == ["a", "b", "c"]
    assert eng.now == 5.0


def test_call_in_past_rejected():
    eng = Engine()
    eng.call_at(10.0, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.call_at(5.0, lambda: None)


def test_process_delay_and_return_value():
    eng = Engine()

    def body():
        yield Delay(3.0)
        yield 2.0  # bare number == Delay
        return "done"

    result = eng.run_process(body())
    assert result == "done"
    assert eng.now == 5.0


def test_process_at_absolute_time():
    eng = Engine()

    def body():
        yield At(42.0)
        return eng.now

    assert eng.run_process(body()) == 42.0


def test_at_in_past_raises():
    eng = Engine()

    def body():
        yield Delay(10.0)
        yield At(1.0)

    with pytest.raises(SimulationError):
        eng.run_process(body())


def test_event_wakes_all_waiters_with_payload():
    eng = Engine()
    ev = eng.event("go")
    got = []

    def waiter(tag):
        payload = yield ev
        got.append((tag, payload, eng.now))

    def firer():
        yield Delay(7.0)
        ev.fire("hello")

    eng.spawn(waiter("w1"))
    eng.spawn(waiter("w2"))
    eng.spawn(firer())
    eng.run()
    assert got == [("w1", "hello", 7.0), ("w2", "hello", 7.0)]


def test_event_resets_after_fire():
    eng = Engine()
    ev = eng.event()
    wakes = []

    def waiter():
        yield ev
        wakes.append(eng.now)
        yield ev
        wakes.append(eng.now)

    def firer():
        yield Delay(1.0)
        ev.fire()
        yield Delay(1.0)
        ev.fire()

    eng.spawn(waiter())
    eng.spawn(firer())
    eng.run()
    assert wakes == [1.0, 2.0]
    assert ev.fire_count == 2


def test_done_event_fires_on_completion():
    eng = Engine()

    def child():
        yield Delay(4.0)
        return 99

    def parent():
        proc = eng.spawn(child())
        value = yield proc.done_event
        return (value, eng.now)

    assert eng.run_process(parent()) == (99, 4.0)


def test_run_until_stops_clock():
    eng = Engine()
    hits = []

    def body():
        while True:
            yield Delay(10.0)
            hits.append(eng.now)

    eng.spawn(body())
    eng.run(until=35.0)
    assert hits == [10.0, 20.0, 30.0]
    assert eng.now == 35.0


def test_runaway_guard():
    eng = Engine()

    def spinner():
        while True:
            yield Delay(0.0)

    eng.spawn(spinner())
    with pytest.raises(SimulationError, match="spinning"):
        eng.run(max_events=1000)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Delay(-1.0)


def test_rng_pool_streams_are_stable_and_independent():
    a1 = RngPool(7).child("noise").random(4)
    a2 = RngPool(7).child("noise").random(4)
    b = RngPool(7).child("other").random(4)
    assert a1.tolist() == a2.tolist()
    assert a1.tolist() != b.tolist()


def test_rng_pool_same_child_cached():
    pool = RngPool(7)
    assert pool.child("x") is pool.child("x")
    assert pool.issued_names() == ["x"]
