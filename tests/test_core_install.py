"""Tests for directory-based packaging (§IV) and the CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.core import connect_runtimes
from repro.core.install import (
    build_package_from_dir,
    collect_sources,
    install_package,
    load_installed_package,
)
from repro.core.stdworld import make_world
from repro.errors import PackageError
from repro.machine import PROT_RW

JAM = """
extern long counter;
long jam_tick(long* p, long n, long a, long b) {
    counter = counter + a;
    return counter;
}
"""
RIED = """
long counter = 0;
long read_counter() { return counter; }
"""


@pytest.fixture
def srcdir(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "jam_tick.amc").write_text(JAM)
    (src / "ried_counter.rdc").write_text(RIED)
    return src


class TestCollectSources:
    def test_canonical_names(self, srcdir):
        jams, rieds = collect_sources(srcdir)
        assert [j.name for j in jams] == ["jam_tick"]
        assert [r.name for r in rieds] == ["ried_counter"]

    def test_subdirectories_scanned(self, srcdir):
        nested = srcdir / "extra"
        nested.mkdir()
        (nested / "jam_zz.amc").write_text(
            "long jam_zz(long* p, long n, long a, long b) { return 1; }")
        jams, _ = collect_sources(srcdir)
        assert [j.name for j in jams] == ["jam_tick", "jam_zz"]

    def test_noncanonical_jam_name_rejected(self, srcdir):
        (srcdir / "myjam.amc").write_text("long f() { return 0; }")
        with pytest.raises(PackageError, match="jam_<element>"):
            collect_sources(srcdir)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(PackageError, match="does not exist"):
            collect_sources(tmp_path / "nope")

    def test_no_jams_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(PackageError, match="no jam"):
            collect_sources(empty)


class TestInstallRoundtrip:
    def test_install_writes_expected_files(self, srcdir, tmp_path):
        build = build_package_from_dir("tickpkg", srcdir)
        out = install_package(build, tmp_path / "install")
        names = {p.name for p in out.iterdir()}
        assert names == {"libtc_tickpkg.so", "libtc_tickpkg_dispatch.so",
                         "tickpkg.h", "jam_tick.jam", "jam_tick.lst",
                         "package.json"}
        manifest = json.loads((out / "package.json").read_text())
        assert manifest["name"] == "tickpkg"
        assert manifest["elements"][0]["name"] == "jam_tick"

    def test_roundtrip_preserves_build(self, srcdir, tmp_path):
        build = build_package_from_dir("tickpkg", srcdir)
        out = install_package(build, tmp_path / "install")
        loaded = load_installed_package(out)
        assert loaded.package_id == build.package_id
        assert loaded.library_elf == build.library_elf
        assert loaded.dispatch_elf == build.dispatch_elf
        art0, art1 = build.jams[0], loaded.jams[0]
        assert art0.blob == art1.blob
        assert art0.externs == art1.externs
        assert art0.entry_off == art1.entry_off

    def test_loaded_package_runs_end_to_end(self, srcdir, tmp_path):
        build = build_package_from_dir("tickpkg", srcdir)
        out = install_package(build, tmp_path / "install")
        loaded = load_installed_package(out)
        world = make_world(build=loaded)
        mb = world.server.create_mailbox(1, 1, 1024)
        conn = connect_runtimes(world.client, world.server, mb)
        waiter = world.server.make_waiter(mb)
        waiter.start()
        payload = world.bed.node0.map_region(64, PROT_RW)
        pkg = world.client.packages[loaded.package_id]

        def send():
            yield from conn.send_jam(pkg, "jam_tick", payload, 8,
                                     args=(5,), inject=True)

        world.engine.spawn(send())
        world.engine.run()
        waiter.stop()
        assert waiter.stats.last_exec_ret == 5

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(PackageError, match="missing"):
            load_installed_package(tmp_path)

    def test_corrupt_manifest_rejected(self, tmp_path):
        (tmp_path / "package.json").write_text("{not json")
        with pytest.raises(PackageError, match="corrupt"):
            load_installed_package(tmp_path)

    def test_missing_blob_rejected(self, srcdir, tmp_path):
        build = build_package_from_dir("tickpkg", srcdir)
        out = install_package(build, tmp_path / "install")
        (out / "jam_tick.jam").unlink()
        with pytest.raises(PackageError, match="missing jam blob"):
            load_installed_package(out)


class TestCli:
    def test_build_inspect_disas(self, srcdir, tmp_path, capsys):
        out = tmp_path / "inst"
        assert cli_main(["build", str(srcdir), "-n", "clipkg",
                         "-o", str(out)]) == 0
        assert cli_main(["inspect", str(out)]) == 0
        assert cli_main(["disas", str(out), "jam_tick"]) == 0
        text = capsys.readouterr().out
        assert "clipkg" in text
        assert "got[0]" in text
        assert "addi sp, sp," in text  # prologue in the disassembly

    def test_perf_pingpong(self, capsys):
        assert cli_main(["perf", "pingpong", "--size", "64",
                         "--iters", "10", "--warmup", "4"]) == 0
        assert "one-way latency" in capsys.readouterr().out

    def test_perf_rate_local(self, capsys):
        assert cli_main(["perf", "rate", "--size", "64", "--local",
                         "--messages", "150"]) == 0
        assert "message rate" in capsys.readouterr().out

    def test_perf_stress_and_nonstash_flags(self, capsys):
        assert cli_main(["perf", "pingpong", "--size", "64", "--nonstash",
                         "--stress", "--iters", "8", "--warmup", "2"]) == 0
        out = capsys.readouterr().out
        assert "+stress" in out and "tail spread" in out

    def test_figures_unknown_name(self, capsys):
        assert cli_main(["figures", "fig99"]) == 2
