"""Assembler tests: syntax, labels, relocations, data directives, errors."""

import pytest

from repro.errors import AssemblerError
from repro.isa import Op, RelocKind, assemble, decode_program


class TestBasic:
    def test_simple_function(self):
        om = assemble("""
            .global f
            f:
                movi a0, 42
                ret
        """)
        prog = decode_program(om.text)
        assert [i.op for i in prog] == [Op.MOVI, Op.RET]
        assert om.symbols["f"].is_global and om.symbols["f"].is_func
        assert om.symbols["f"].offset == 0

    def test_comments_stripped(self):
        om = assemble("movi a0, 1 ; trailing\n# whole line\nret")
        assert len(om.text) == 16

    def test_all_register_aliases(self):
        om = assemble("add a0, t0, s0\nadd x1, at, zr\nmov lr, sp")
        prog = decode_program(om.text)
        assert (prog[0].rd, prog[0].rs1, prog[0].rs2) == (0, 8, 20)
        assert (prog[1].rd, prog[1].rs1, prog[1].rs2) == (1, 28, 29)
        assert (prog[2].rd, prog[2].rs1) == (30, 31)

    def test_memory_operands(self):
        om = assemble("ld a0, -8(sp)\nst a1, 16(t0)")
        prog = decode_program(om.text)
        assert prog[0].op is Op.LD and prog[0].imm == -8 and prog[0].rs1 == 31
        assert prog[1].op is Op.ST and prog[1].imm == 16 and prog[1].rs1 == 8

    def test_hex_and_char_literals(self):
        om = assemble("movi a0, 0x10\nmovi a1, 'A'")
        prog = decode_program(om.text)
        assert prog[0].imm == 16
        assert prog[1].imm == 65


class TestBranches:
    def test_backward_and_forward_targets(self):
        om = assemble("""
            top:
                addi a0, a0, 1
                beq a0, a1, out
                b top
            out:
                ret
        """)
        prog = decode_program(om.text)
        assert prog[1].op is Op.BEQ and prog[1].imm == 16  # to out
        assert prog[2].op is Op.B and prog[2].imm == -16   # to top

    def test_call_local(self):
        om = assemble("""
            main:
                call helper
                ret
            helper:
                ret
        """)
        prog = decode_program(om.text)
        assert prog[0].op is Op.CALL and prog[0].imm == 16

    def test_undefined_label_raises(self):
        with pytest.raises(AssemblerError, match="undefined label"):
            assemble("b nowhere")

    def test_call_extern_rejected(self):
        with pytest.raises(AssemblerError, match="externs need ldg"):
            assemble(".extern foo\ncall foo")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate label"):
            assemble("x:\nnop\nx:\nnop")


class TestLiPseudo:
    def test_small_constant_single_instr(self):
        om = assemble("li a0, 100")
        assert len(om.text) == 8

    def test_negative_small_single_instr(self):
        om = assemble("li a0, -1")
        prog = decode_program(om.text)
        assert len(prog) == 1 and prog[0].imm == -1

    def test_large_constant_two_instrs(self):
        om = assemble("li a0, 0x123456789A")
        prog = decode_program(om.text)
        assert [i.op for i in prog] == [Op.MOVI, Op.MOVHI]

    def test_li_expansion_keeps_labels_right(self):
        om = assemble("""
                li a0, 0x1122334455667788
                b done
            done:
                ret
        """)
        prog = decode_program(om.text)
        assert prog[2].op is Op.B and prog[2].imm == 8


class TestGot:
    def test_ldg_assigns_slots_in_declaration_order(self):
        om = assemble("""
            .extern alpha
            .extern beta
            ldg t0, beta
            ldg t1, alpha
        """)
        prog = decode_program(om.text)
        assert prog[0].rs2 == 1  # beta
        assert prog[1].rs2 == 0  # alpha
        assert om.externs == ["alpha", "beta"]
        assert om.got_size == 16
        assert all(r.kind is RelocKind.GOTPC32 for r in om.relocs)

    def test_undeclared_extern_rejected(self):
        with pytest.raises(AssemblerError, match="not declared"):
            assemble("ldg t0, mystery")

    def test_got_slot_lookup(self):
        om = assemble(".extern a\n.extern b\nnop")
        assert om.got_slot("b") == 1
        with pytest.raises(AssemblerError):
            om.got_slot("zzz")


class TestData:
    def test_quad_word_byte_zero_asciz(self):
        om = assemble("""
            .data
            q: .quad 1, -1
            w: .word 0x10
            b: .byte 1, 2, 3
            z: .zero 5
            s: .asciz "hi\\n"
        """)
        assert om.data[0:8] == (1).to_bytes(8, "little")
        assert om.data[8:16] == b"\xff" * 8
        assert om.data[16:20] == (16).to_bytes(4, "little")
        assert om.data[20:23] == b"\x01\x02\x03"
        assert om.data[23:28] == b"\x00" * 5
        assert om.data[28:32] == b"hi\n\x00"
        assert om.symbols["s"].section == "data"
        assert om.symbols["s"].offset == 28

    def test_align_directive(self):
        om = assemble(".data\n.byte 1\n.align 8\nq: .quad 2")
        assert om.symbols["q"].offset == 8

    def test_quad_symbol_emits_abs64_reloc(self):
        om = assemble("""
            f: ret
            .data
            table: .quad f
        """)
        relocs = [r for r in om.relocs if r.kind is RelocKind.ABS64]
        assert len(relocs) == 1
        assert relocs[0].symbol == "f" and relocs[0].section == "data"

    def test_bss(self):
        om = assemble(".bss\nbuf: .zero 128\n.align 64\nbuf2: .zero 8")
        assert om.symbols["buf"].offset == 0
        assert om.symbols["buf2"].offset == 128
        assert om.bss_size == 136

    def test_adr_local_data_emits_pcrel(self):
        om = assemble("""
            f: adr a0, msg
               ret
            .data
            msg: .asciz "x"
        """)
        relocs = [r for r in om.relocs if r.kind is RelocKind.PCREL32]
        assert len(relocs) == 1 and relocs[0].symbol == "msg"

    def test_adr_text_label_resolved_immediately(self):
        om = assemble("f: adr a0, f\nret")
        assert not om.relocs
        assert decode_program(om.text)[0].imm == 0


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate a0")

    def test_bad_register(self):
        with pytest.raises(AssemblerError, match="expected register"):
            assemble("add a0, a1, 5")

    def test_instruction_in_data_section(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nmovi a0, 1")

    def test_imm_out_of_range(self):
        with pytest.raises(AssemblerError, match="out of range"):
            assemble("addi a0, a0, 0x100000000")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as info:
            assemble("nop\nnop\nbogus")
        assert info.value.line == 3
