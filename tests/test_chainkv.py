"""Tests for the chain-replicated injected-function KV store
(repro.workloads.chainkv, docs/TOPOLOGY.md): put/get correctness,
replication to every chain node, multicast install, and
relink-on-reconfig when a middle replica is dropped.
"""

from __future__ import annotations

import pytest

from repro.core.stdworld import make_world
from repro.errors import TwoChainsError
from repro.workloads.chainkv import (
    ChainKV,
    chain_point,
    chain_topology,
)


def chain_world(replicas: int):
    return make_world(topology=chain_topology(replicas), package="chainkv")


# ---------------------------------------------------------------------------
# put / get correctness
# ---------------------------------------------------------------------------

class TestPutGet:
    def test_put_then_get_roundtrip(self):
        kv = ChainKV(chain_world(2))
        value = b"injected-function kv".ljust(32, b".")
        off = kv.put(42, value)
        assert off == 0                  # first value lands at heap start
        assert kv.get(42) == value
        kv.shutdown()

    def test_get_missing_key_returns_none(self):
        kv = ChainKV(chain_world(1))
        kv.put(1, b"present")
        assert kv.get(999) is None
        kv.shutdown()

    def test_overwrite_reuses_the_slot(self):
        kv = ChainKV(chain_world(2))
        off1 = kv.put(7, b"A" * 48)
        off2 = kv.put(7, b"B" * 48)
        assert off1 == off2              # same key+size overwrites in place
        assert kv.get(7) == b"B" * 48
        kv.shutdown()

    def test_values_replicate_to_every_chain_node(self):
        kv = ChainKV(chain_world(3))
        for i in range(5):
            kv.put(100 + i, bytes([65 + i]) * 24)
        # every replica applied every put (the jam ran k times per put)
        assert [kv.put_count(i) for i in kv.replicas] == [5, 5, 5]
        kv.shutdown()

    def test_value_size_limits(self):
        kv = ChainKV(chain_world(1), value_bytes=64)
        with pytest.raises(TwoChainsError):
            kv.put(1, b"x" * 65)
        with pytest.raises(TwoChainsError):
            kv.put(1, b"")
        kv.shutdown()

    def test_needs_a_chain_topology(self):
        with pytest.raises(TwoChainsError, match="chain"):
            ChainKV(make_world())


# ---------------------------------------------------------------------------
# multicast install
# ---------------------------------------------------------------------------

class TestMulticast:
    def test_one_sweep_installs_on_every_replica(self):
        kv = ChainKV(chain_world(3))
        elapsed = kv.multicast_install()
        assert elapsed > 0
        assert [kv.install_count(i) for i in kv.replicas] == [1, 1, 1]
        kv.multicast_install()
        assert [kv.install_count(i) for i in kv.replicas] == [2, 2, 2]
        kv.shutdown()

    def test_longer_chains_amortize_the_sweep(self):
        w1, w4 = chain_world(1), chain_world(4)
        out1 = chain_point(w1, warmup=0, iters=0, mcast_iters=3)
        out4 = chain_point(w4, warmup=0, iters=0, mcast_iters=3)
        per1 = min(out1.mcast_ns) / 1
        per4 = min(out4.mcast_ns) / 4
        assert per4 < per1               # posts overlap earlier flights


# ---------------------------------------------------------------------------
# relink-on-reconfig
# ---------------------------------------------------------------------------

def run_ops(kv, ops):
    """Apply (op, key, value) tuples; return the client-visible rows."""
    rows = []
    for op, key, value in ops:
        if op == "put":
            rows.append(("put", key, kv.put(key, value)))
        else:
            rows.append(("get", key, kv.get(key)))
    return rows


PRE_OPS = [("put", 10, b"a" * 40), ("put", 11, b"b" * 40),
           ("get", 10, None), ("put", 12, b"c" * 40)]
POST_OPS = [("put", 13, b"d" * 40), ("get", 11, None),
            ("put", 10, b"A" * 40), ("get", 10, None), ("get", 13, None),
            ("get", 99, None)]


class TestRelink:
    def test_drop_validates_the_target(self):
        kv = ChainKV(chain_world(3))
        with pytest.raises(TwoChainsError, match="middle"):
            kv.drop_replica(kv.head)
        with pytest.raises(TwoChainsError, match="middle"):
            kv.drop_replica(kv.tail)
        with pytest.raises(TwoChainsError, match="not a live replica"):
            kv.drop_replica(0)
        kv.shutdown()

    def test_relink_patches_the_got_to_the_successor(self):
        w = chain_world(3)
        kv = ChainKV(w)
        kv.put(1, b"seed" * 8)
        conn = kv.drop_replica(2)
        # the new connection's frames carry the successor's element-GOT
        # address — the GOT patch the paper's relink performs
        art = w.build.jam("jam_chain_put")
        remote = conn._remote[(w.build.package_id, art.element_id)]
        assert remote.got_addr == kv.element_got_addr(3, "jam_chain_put")
        assert kv.replicas == [1, 3]
        kv.shutdown()

    def test_dropped_chain_matches_fresh_shorter_chain(self):
        """Drop a middle replica mid-sweep: subsequent puts/gets must
        produce exactly the rows a fresh (k-1)-chain produces for the
        same operation sequence."""
        kv3 = ChainKV(chain_world(3))
        pre = run_ops(kv3, PRE_OPS)
        kv3.drop_replica(2)
        post = run_ops(kv3, POST_OPS)
        survivors = [kv3.put_count(i) for i in kv3.replicas]
        kv3.shutdown()

        kv2 = ChainKV(chain_world(2))
        pre_f = run_ops(kv2, PRE_OPS)
        post_f = run_ops(kv2, POST_OPS)
        fresh = [kv2.put_count(i) for i in kv2.replicas]
        kv2.shutdown()

        assert pre == pre_f
        assert post == post_f            # identical offsets and values
        assert survivors == fresh        # surviving stores applied the same

    def test_puts_keep_flowing_through_the_relinked_chain(self):
        kv = ChainKV(chain_world(4))
        kv.put(5, b"before" * 4)
        kv.drop_replica(3)
        kv.put(6, b"after!" * 4)
        assert kv.get(5) == b"before" * 4
        assert kv.get(6) == b"after!" * 4
        # the dropped node applied only the pre-drop put
        assert [kv.put_count(i) for i in kv.replicas] == [2, 2, 2]
        assert kv.put_count(3) == 1
        kv.shutdown()


# ---------------------------------------------------------------------------
# benchmark-point physics
# ---------------------------------------------------------------------------

class TestChainPoint:
    def test_put_scales_with_k_get_stays_flat(self):
        out1 = chain_point(chain_world(1), warmup=1, iters=4)
        out3 = chain_point(chain_world(3), warmup=1, iters=4)
        assert min(out3.put_ns) > max(out1.put_ns)     # +2 hops of latency
        # tail distance is fixed regardless of k (modulo float roundoff
        # from the differing absolute sim clocks)
        assert out3.get_ns == pytest.approx(out1.get_ns)

    def test_streaming_puts_pipeline(self):
        out = chain_point(chain_world(2), warmup=1, iters=2, stream_count=24)
        assert out.stream_count == 24
        # pipelined rate beats serial round-trips: elapsed must be well
        # under count * p50(serial put)
        assert out.stream_elapsed_ns < 24 * min(out.put_ns)
        assert out.put_rate_mps > 0
