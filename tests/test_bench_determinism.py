"""Determinism contract of the benchmark orchestrator.

Two runs of the same figures at the same seed must produce
byte-identical ``BENCH_<figure>.json`` documents once the ``meta`` block
(the only place timestamps, host names, and wall-clock live) is
stripped — regardless of how many worker processes executed the sweep
points.  This is what makes the on-disk point cache and ``bench diff``
sound.
"""

from __future__ import annotations

import json

from repro.bench.orchestrator import build_meta, run_figures, write_runs

# Cheap-but-representative subset: one structural sweep and one DES
# latency sweep (smoke mode: first point only).
FIGURES = ["abl_got", "fig5"]


def _canonical_payloads(out_dir, jobs):
    """Run FIGURES uncached and return {figure: payload-sans-meta} dumps."""
    runs = run_figures(FIGURES, smoke=True, jobs=jobs, store=None)
    paths = write_runs(runs, out_dir, build_meta(fast=True, smoke=True,
                                                 jobs=jobs))
    out = {}
    for path in paths:
        payload = json.loads(path.read_text())
        payload.pop("meta")
        out[payload["figure"]] = json.dumps(payload, sort_keys=True)
    return out


def test_parallel_runs_are_byte_identical(tmp_path):
    first = _canonical_payloads(tmp_path / "run1", jobs=4)
    second = _canonical_payloads(tmp_path / "run2", jobs=4)
    assert sorted(first) == FIGURES == sorted(second)
    assert first == second


def test_parallel_equals_serial(tmp_path):
    parallel = _canonical_payloads(tmp_path / "par", jobs=4)
    serial = _canonical_payloads(tmp_path / "ser", jobs=1)
    assert parallel == serial
