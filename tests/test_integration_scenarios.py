"""End-to-end scenario tests combining multiple subsystems."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AdaptiveJamSender,
    JamSource,
    RuntimeConfig,
    WaitMode,
    build_package,
    connect_runtimes,
)
from repro.core.stdworld import make_world
from repro.machine import PROT_RW, HierarchyConfig


class TestKitchenSink:
    def test_two_packages_wfe_receiver_gotp_and_stress(self):
        """Multiple packages + WFE waiter + receiver-set GOTP + stress:
        everything composes and results stay exact."""
        extra = build_package("extra", [JamSource("jam_xor", """
            long jam_xor(long* p, long n, long key, long b) {
                long acc = 0;
                for (long i = 0; i < n / 8; i = i + 1) {
                    acc = acc ^ (p[i] + key);
                }
                return acc;
            }
        """)])
        cfg = RuntimeConfig(wait_mode=WaitMode.WFE, sender_sets_gotp=False)
        world = make_world(server_cfg=cfg)
        world.client.cfg.sender_sets_gotp = False
        world.client.load_package(extra)
        world.server.load_package(extra)
        from repro.workloads import StressConfig, StressWorkload
        stress = StressWorkload(world.engine, world.bed.node1,
                                world.bed.rngs, StressConfig())
        stress.start()

        mb = world.server.create_mailbox(2, 4, 1536)
        conn = connect_runtimes(world.client, world.server, mb,
                                flow_control=True)
        waiter = world.server.make_waiter(mb,
                                          flag_target=conn.flag_target())
        waiter.start()
        payload = world.bed.node0.map_region(64, PROT_RW)
        vals = [3, 9, 27, 81]
        for i, v in enumerate(vals):
            world.bed.node0.mem.write_i64(payload + 8 * i, v)
        std_pkg = world.client.packages[world.build.package_id]
        extra_pkg = world.client.packages[extra.package_id]

        def driver():
            # interleave elements from two different packages
            for k in range(3):
                yield from conn.send_jam(extra_pkg, "jam_xor", payload, 32,
                                         args=(k,), inject=True)
                yield from conn.send_jam(std_pkg, "jam_ss_sum_naive",
                                         payload, 16, inject=True)
            stress.stop()
            waiter.stop()

        # run the driver, then drain
        proc = world.engine.spawn(driver())
        world.engine.run()
        assert waiter.stats.frames >= 5  # the stop may race the last frame
        expected_xor = 0
        for v in vals:
            expected_xor ^= v + 2
        # last jam_xor ran with key=2
        lib = world.server.packages[world.build.package_id].library
        # naive sum of first 2 longs interpreted as 4 ints
        assert world.bed.node1.mem.read_i64(lib.symbol("ss_cursor")) >= 2

    def test_adaptive_plus_nonstash_plus_security(self):
        world = make_world(
            hier_cfg=HierarchyConfig(stash_enabled=False),
            server_cfg=RuntimeConfig(split_code_pages=True))
        fsize = world.frame_size_for("jam_ss_sum", 32, True)
        mb = world.server.create_mailbox(1, 4, fsize)
        conn = connect_runtimes(world.client, world.server, mb,
                                flow_control=True)
        waiter = world.server.make_waiter(mb,
                                          flag_target=conn.flag_target())
        waiter.start()
        payload = world.bed.node0.map_region(64, PROT_RW)
        for i in range(8):
            world.bed.node0.mem.write_u32(payload + 4 * i, 2 * i)
        pkg = world.client.packages[world.build.package_id]
        sender = AdaptiveJamSender(conn, pkg, "jam_ss_sum", payload, 32,
                                   threshold=2)

        def driver():
            for _ in range(6):
                yield from sender.send()

        world.engine.spawn(driver())
        world.engine.run()
        waiter.stop()
        assert waiter.stats.frames == 6
        assert sender.stats.local_sends == 4
        assert waiter.stats.last_exec_ret == sum(2 * i for i in range(8))


class TestPropertyEndToEnd:
    @settings(max_examples=10, deadline=None)
    @given(vals=st.lists(st.integers(-2**30, 2**30), min_size=1,
                         max_size=32))
    def test_property_injected_sum_matches_python(self, vals):
        """Whatever integers we put on the wire, the injected sum jam
        computes exactly what Python does."""
        world = make_world()
        nb = len(vals) * 4
        fsize = world.frame_size_for("jam_ss_sum_naive", nb, True)
        mb = world.server.create_mailbox(1, 1, fsize)
        conn = connect_runtimes(world.client, world.server, mb)
        waiter = world.server.make_waiter(mb)
        waiter.start()
        payload = world.bed.node0.map_region(max(nb, 64), PROT_RW)
        for i, v in enumerate(vals):
            world.bed.node0.mem.write_u32(payload + 4 * i,
                                          v & 0xFFFFFFFF)
        pkg = world.client.packages[world.build.package_id]

        def send():
            yield from conn.send_jam(pkg, "jam_ss_sum_naive", payload, nb,
                                     inject=True)

        world.engine.spawn(send())
        world.engine.run()
        waiter.stop()

        def as_i32(x):
            x &= 0xFFFFFFFF
            return x - (1 << 32) if x >= (1 << 31) else x

        assert waiter.stats.last_exec_ret == sum(as_i32(v) for v in vals)
